"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures: it runs the
corresponding experiment module once under ``pytest-benchmark`` timing and
prints the same rows/series the paper reports (captured into ``bench_output.txt``
by the top-level run command). Benchmarks default to one round so the full
harness stays fast; pass ``--benchmark-enable-rounds`` semantics via the
standard pytest-benchmark options if more samples are needed.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def bench_once(benchmark):
    """Run a callable exactly once under benchmark timing and return its result."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
