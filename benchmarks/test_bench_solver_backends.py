"""Benchmark: solver-backend portfolio on the Figure-17 scalability instances.

Quantifies the trade the registry's ``auto`` rule exploits: the vectorised
greedy + local-search heuristic must produce feasible placements at least an
order of magnitude faster than the exact branch-and-bound backend on the
fig17-size instances, while staying within 5% of the exact objective on small
instances (where the exact solve is cheap enough to verify against).
"""

import time

import pytest

from repro.core.validation import validate_solution
from repro.experiments.fig17_scalability import _build_problem, compare_backends
from repro.solver import solve
from repro.solver.backends.ortools_exact import ortools_available


#: Minimum exact-over-heuristic speedup asserted per instance size. At
#: (200, 100) — the regime the heuristic exists for, where the auto rule
#: actually deploys it — the acceptance bar is 10x (measured: ~60x). At
#: (100, 50) the auto rule still picks the exact backend and the heuristic's
#: fixed setup costs (feasibility report + dense arrays, ~4 ms) dominate its
#: runtime, so only a conservative 3x is asserted (measured: ~8x).
MIN_SPEEDUP: dict[tuple[int, int], float] = {(100, 50): 3.0, (200, 100): 10.0}


def test_bench_backend_portfolio_speed_and_quality(bench_once):
    rows = bench_once(compare_backends, sizes=tuple(MIN_SPEEDUP))
    print("\nSolver-backend portfolio (fig17 instances): backend / time / carbon")
    for row in rows:
        print(f"  {row['n_servers']:4d} servers {row['n_apps']:4d} apps  "
              f"{row['backend']:10s} {row['time_s']:8.4f} s  "
              f"{row['carbon_g']:12.2f} g  {row['placed']} placed")
    by_size: dict[tuple[int, int], dict[str, dict]] = {}
    for row in rows:
        by_size.setdefault((row["n_servers"], row["n_apps"]), {})[row["backend"]] = row
    for size, backends in by_size.items():
        exact, heuristic = backends["bnb"], backends["heuristic"]
        assert heuristic["placed"] == exact["placed"], size
        assert heuristic["time_s"] * MIN_SPEEDUP[size] <= exact["time_s"], (size, backends)


def test_bench_heuristic_within_5pct_on_small_instances(bench_once):
    def run_small():
        out = []
        for n_servers, n_apps in ((40, 20), (60, 20)):
            problem = _build_problem(n_servers, n_apps, seed=7)
            start = time.monotonic()
            exact = solve(problem, backend="bnb")
            exact_s = time.monotonic() - start
            # The 5% gap is only meaningful against a genuine exact solve, not
            # a silent heuristic fallback.
            assert exact.backend_name == "bnb", exact.backend_name
            start = time.monotonic()
            heuristic = solve(problem, backend="heuristic")
            heuristic_s = time.monotonic() - start
            validate_solution(exact)
            validate_solution(heuristic)
            out.append({"n_servers": n_servers, "n_apps": n_apps,
                        "exact_g": exact.total_carbon_g(),
                        "heuristic_g": heuristic.total_carbon_g(),
                        "exact_s": exact_s, "heuristic_s": heuristic_s})
        return out

    rows = bench_once(run_small)
    print("\nHeuristic vs exact on small instances (carbon, grams):")
    for row in rows:
        gap = row["heuristic_g"] / row["exact_g"] - 1.0 if row["exact_g"] else 0.0
        print(f"  {row['n_servers']:3d} servers {row['n_apps']:3d} apps  "
              f"exact {row['exact_g']:10.2f}  heuristic {row['heuristic_g']:10.2f}  "
              f"gap {gap * 100:+.2f}%")
        # Acceptance: objective within 5% of the exact solve on small instances.
        assert row["heuristic_g"] <= row["exact_g"] * 1.05 + 1e-9, row


@pytest.mark.skipif(not ortools_available(),
                    reason="optional ortools dependency not installed "
                           "(pip install .[exact])")
def test_bench_anytime_exact_tier_matches_bnb(bench_once):
    """With OR-Tools installed, cpsat/milp reach the bnb objective on small
    instances while recording a finite proven bound (anytime contract)."""

    def run_exact_tier():
        out = []
        for backend in ("cpsat", "milp"):
            problem = _build_problem(40, 20, seed=7)
            reference = solve(problem, backend="bnb")
            start = time.monotonic()
            exact = solve(problem, backend=backend, time_budget_s=30.0)
            elapsed = time.monotonic() - start
            validate_solution(exact)
            assert exact.backend_name == backend, exact.backend_name
            out.append({"backend": backend, "time_s": elapsed,
                        "carbon_g": exact.total_carbon_g(),
                        "bnb_g": reference.total_carbon_g(),
                        "bound": exact.solver_bound,
                        "status": exact.solver_params.get("status")})
        return out

    rows = bench_once(run_exact_tier)
    print("\nAnytime exact tier vs bnb (40 servers, 20 apps):")
    for row in rows:
        print(f"  {row['backend']:6s} {row['time_s']:8.4f} s  "
              f"{row['carbon_g']:12.2f} g (bnb {row['bnb_g']:12.2f} g)  "
              f"bound {row['bound']:.4f}  {row['status']}")
        assert row["carbon_g"] <= row["bnb_g"] * 1.001 + 1e-9, row
        assert row["bound"] == row["bound"], row  # finite, not NaN
