"""Ablation: forecast-mean intensity (paper) vs instantaneous intensity.

The placement objective uses the *mean forecast* intensity over the horizon
(Ī_j). This ablation quantifies how much carbon is lost when placements are
made against the instantaneous intensity instead (which chases short-lived dips
that do not persist over the horizon).
"""

from repro.carbon.forecasting import SeasonalNaiveForecaster
from repro.core.policies.carbon_edge import CarbonEdgePolicy
from repro.core.policies.latency_aware import LatencyAwarePolicy
from repro.core.problem import PlacementProblem
from repro.core.validation import validate_solution
from repro.datasets.regions import CENTRAL_EU
from repro.experiments.common import EXPERIMENT_SEED
from repro.testbed.emulation import build_testbed
from repro.workloads.application import Application


def _problem(testbed, hour: int, horizon: float, use_forecast: bool) -> PlacementProblem:
    apps = [Application(app_id=f"a-{site}", workload="ResNet50", source_site=site,
                        latency_slo_ms=30.0, request_rate_rps=20.0, duration_hours=horizon)
            for site in testbed.sites()]
    for server in testbed.fleet.servers():
        server.allocations.clear()
        server.power_on()
    return PlacementProblem.build(apps, testbed.fleet.servers(), testbed.latency,
                                  testbed.carbon, hour=hour, horizon_hours=horizon,
                                  use_forecast=use_forecast)


def test_bench_ablation_forecast(bench_once):
    testbed = build_testbed(CENTRAL_EU, seed=EXPERIMENT_SEED)
    testbed.carbon.forecaster = SeasonalNaiveForecaster()

    def run_all():
        out = {}
        for label, use_forecast in (("forecast-mean", True), ("instantaneous", False)):
            totals = {"CarbonEdge": 0.0, "Latency-aware": 0.0}
            for hour in range(4000, 4000 + 96, 24):
                problem = _problem(testbed, hour, horizon=24.0, use_forecast=use_forecast)
                for policy in (CarbonEdgePolicy(), LatencyAwarePolicy()):
                    solution = policy.place(problem)
                    validate_solution(solution)
                    # Evaluate against the *true* mean intensity of the horizon.
                    true_problem = _problem(testbed, hour, horizon=24.0, use_forecast=True)
                    true_solution = type(solution)(problem=true_problem,
                                                   placements=dict(solution.placements),
                                                   power_on=solution.power_on.copy(),
                                                   unplaced=list(solution.unplaced))
                    totals[policy.name] += true_solution.total_carbon_g()
            out[label] = totals
        return out

    results = bench_once(run_all)
    print("\nAblation (forecast handling): total carbon over 4 days, grams")
    for label, totals in results.items():
        print(f"  {label:14s} CarbonEdge {totals['CarbonEdge']:10.1f} g   "
              f"Latency-aware {totals['Latency-aware']:10.1f} g")
    # Both variants must still beat the Latency-aware baseline.
    for totals in results.values():
        assert totals["CarbonEdge"] < totals["Latency-aware"]
    # Using the horizon forecast is at least as good as chasing the instantaneous value.
    assert (results["forecast-mean"]["CarbonEdge"]
            <= results["instantaneous"]["CarbonEdge"] * 1.05)
