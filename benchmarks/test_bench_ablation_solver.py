"""Ablation: exact branch-and-bound vs LP-rounding vs greedy solver backends.

DESIGN.md §5 calls out the solver choice as a design decision: the exact solver
should never be worse than the heuristics on the carbon objective, and the
greedy backend should be substantially faster on larger instances.
"""

import time

from repro.core.policies.carbon_edge import CarbonEdgePolicy
from repro.core.validation import validate_solution
from repro.experiments.fig16_tradeoff import _build_problem


def test_bench_ablation_solver(bench_once):
    problem = _build_problem("low", seed=7, n_sites=20, continent="EU")

    def run_all():
        results = {}
        for solver in ("exact", "lp-round", "greedy"):
            start = time.monotonic()
            solution = CarbonEdgePolicy(solver=solver).place(problem)
            elapsed = time.monotonic() - start
            validate_solution(solution)
            results[solver] = (solution.total_carbon_g(), elapsed, solution.n_placed)
        return results

    results = bench_once(run_all)
    print("\nAblation (solver backend): carbon_g / seconds / placed")
    for solver, (carbon, elapsed, placed) in results.items():
        print(f"  {solver:9s} {carbon:12.1f} g  {elapsed:6.3f} s  {placed} placed")
    exact_carbon = results["exact"][0]
    for solver, (carbon, _elapsed, placed) in results.items():
        assert placed == results["exact"][2]
        # Heuristics never beat the exact solver by more than numerical noise.
        assert carbon >= exact_carbon - 1e-6
    # The heuristics stay within 50% of the exact objective on this instance (the
    # greedy backend trades optimality for CDN-scale speed; the ablation quantifies
    # that gap rather than bounding it tightly).
    assert results["greedy"][0] <= exact_carbon * 1.5
