"""Benchmark regenerating Figure 12 (latency-tolerance sweep)."""

import numpy as np

from repro.experiments import fig12_latency_sweep


def test_bench_fig12_latency_sweep(bench_once):
    result = bench_once(fig12_latency_sweep.run, n_epochs=3)
    print("\n" + fig12_latency_sweep.report(result))
    for continent in ("US", "EU"):
        rows = [r for r in result["rows"] if r["continent"] == continent]
        savings = np.array([r["carbon_savings_pct"] for r in rows])
        increases = np.array([r["latency_increase_rtt_ms"] for r in rows])
        limits = np.array([r["latency_limit_ms"] for r in rows])
        # Savings are (weakly) increasing in the latency limit, with small numerical slack.
        assert np.all(np.diff(savings) >= -3.0), f"{continent}: savings not increasing {savings}"
        # The realised latency increase never exceeds the limit.
        assert np.all(increases <= limits + 1e-6)
        # A 30 ms budget saves more than a 5 ms budget.
        assert savings[-1] > savings[0]
