"""Benchmark regenerating Figure 10 (regional emissions and latency overheads)."""

from repro.experiments import fig10_regional


def test_bench_fig10_regional(bench_once):
    result = bench_once(fig10_regional.run)
    print("\n" + fig10_regional.report(result))
    summary = result["summary"]
    # Paper: 39.4% savings in Florida, 78.7% in Central EU; EU > US.
    assert 15.0 <= summary["Florida"]["savings_pct"] <= 60.0
    assert 50.0 <= summary["Central EU"]["savings_pct"] <= 95.0
    assert summary["Central EU"]["savings_pct"] > summary["Florida"]["savings_pct"]
    # Response-time increases stay within a mesoscale budget.
    for region in summary.values():
        assert region["response_increase_ms"] <= 25.0
