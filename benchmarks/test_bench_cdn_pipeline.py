"""Benchmark: the compiled CDN epoch pipeline on fig11 scenarios.

Earlier revisions raced the compiled pipeline against an emulation of the
pre-compilation seed pipeline (frozen in ``tests/legacy_greedy.py``); that
oracle was kept for one release and has been retired, so the benchmark now
tracks the compiled pipeline's absolute wall-clock instead. Each run appends a
record to ``BENCH_cdn_pipeline.json`` (repo root) so the timing trajectory
stays visible across PRs — the historical records with ``seed_s``/``speedup``
fields document the original 3–8x compiled-vs-seed gain.

Two checks remain load-bearing:

* the paper's orderings hold at benchmark scale (CarbonEdge saves carbon on
  every continent), and
* the exact backend is bit-deterministic: re-solving the same epoch problem
  after dropping its memoised compilation reproduces identical placements and
  objective values.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.policies.carbon_edge import CarbonEdgePolicy
from repro.core.validation import validate_solution
from repro.simulator.cdn import CDNSimulator
from repro.simulator.scenario import CDNScenario
from repro.solver.compile import clear_compilation

#: Where the timing trajectory is appended (repo root).
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_cdn_pipeline.json"

_SMOKE = os.environ.get("CDN_PIPELINE_BENCH_SCALE", "").lower() == "smoke"

#: Coarse absolute regression tripwire for the compiled pipeline, seconds.
#: Generous enough for slow CI machines; the trajectory artifact is the
#: fine-grained signal.
TIME_CEILING_S = 30.0 if _SMOKE else 120.0

#: Fig11 defaults: 12 epochs over the year, every CDN site of the continent.
SCENARIO_KWARGS = dict(
    n_epochs=4 if _SMOKE else 12,
    max_sites=45 if _SMOKE else None,
    seed=0,
)
CONTINENTS = ("EU",) if _SMOKE else ("US", "EU")


def _append_trajectory(record: dict) -> None:
    history = []
    if ARTIFACT.exists():
        try:
            history = json.loads(ARTIFACT.read_text())
        except (ValueError, OSError):
            history = []
    history.append(record)
    ARTIFACT.write_text(json.dumps(history, indent=2) + "\n")


def test_bench_cdn_pipeline(bench_once):
    compiled_s = 0.0
    compiled_results = {}

    def run_all():
        nonlocal compiled_s
        for continent in CONTINENTS:
            scenario = CDNScenario(continent=continent, **SCENARIO_KWARGS)
            # Scenario setup (fleet, latency matrix, traces) is excluded from
            # the timed region: the epoch loop is what the compilation layer
            # and the sharded runner optimise.
            simulator = CDNSimulator(scenario=scenario)
            t0 = time.monotonic()
            compiled_results[continent] = simulator.run()
            compiled_s += time.monotonic() - t0
        return compiled_s

    bench_once(run_all)
    print(f"\ncompiled pipeline: {compiled_s:.3f} s "
          f"(ceiling: {TIME_CEILING_S:.0f} s, scale: {'smoke' if _SMOKE else 'full'})")
    _append_trajectory({
        "scale": "smoke" if _SMOKE else "full",
        "continents": list(CONTINENTS),
        "n_epochs": SCENARIO_KWARGS["n_epochs"],
        "max_sites": SCENARIO_KWARGS["max_sites"],
        "compiled_s": round(compiled_s, 4),
    })
    # Sanity: the compiled pipeline still produces the paper's orderings.
    for continent, result in compiled_results.items():
        assert result.carbon_savings_pct("CarbonEdge") > 0.0, continent
    assert compiled_s <= TIME_CEILING_S, (
        f"compiled pipeline took {compiled_s:.1f} s "
        f"(ceiling: {TIME_CEILING_S:.0f} s)")


def test_bench_exact_backend_is_deterministic(bench_once):
    """Recompiling and re-solving the same epoch problem is bit-identical."""

    def run():
        scenario = CDNScenario(continent="EU", n_epochs=1, max_sites=8, seed=3)
        simulator = CDNSimulator(scenario=scenario)
        problem = simulator.epoch_problem(0)
        policy = CarbonEdgePolicy(solver="exact")
        first = policy.place(problem)
        validate_solution(first, strict=True)
        # Drop the memoised compilation: the second solve re-derives the
        # feasibility report and dense tensors from scratch.
        clear_compilation(problem)
        second = policy.place(problem)
        validate_solution(second, strict=True)
        assert first.placements == second.placements
        assert first.total_carbon_g() == second.total_carbon_g()
        return first.total_carbon_g()

    bench_once(run)
