"""Benchmark: the compiled CDN epoch pipeline on fig11 scenarios.

Earlier revisions raced the compiled pipeline against an emulation of the
pre-compilation seed pipeline (frozen in ``tests/legacy_greedy.py``); that
oracle was kept for one release and has been retired, so the benchmark now
tracks the compiled pipeline's absolute wall-clock instead. Each run appends a
record to ``BENCH_cdn_pipeline.json`` (repo root) so the timing trajectory
stays visible across PRs — the historical records with ``seed_s``/``speedup``
fields document the original 3–8x compiled-vs-seed gain, and the plain
``compiled_s`` records without a ``tier`` field are the PR 4 era epoch-loop
baseline that the scenario-tier benchmark below measures against.

Load-bearing checks:

* the paper's orderings hold at benchmark scale (CarbonEdge saves carbon on
  every continent);
* the scenario-lifetime compilation tier is byte-identical to the cold
  per-epoch rebuild and makes the 4-policy fig11-scale epoch loop >= 1.5x
  faster than the PR 4 baseline recorded in the trajectory artifact;
* the speculative kernel schedule (which superseded intra-epoch shard
  dispatch for cold activation channels) beats the naive per-row schedule
  >= 1.5x at fig17 scale, bit-identically — and the sharded kernel stays
  bit-identical to the serial one;
* the wave-vectorised reconciliation replay beats the per-application replay
  >= 1.5x on a saturated fig17-scale epoch (4 shards, ~95% utilisation),
  bit-identically and with a near-zero revalidation rate;
* the exact backend is bit-deterministic: re-solving the same epoch problem
  after dropping its memoised compilation reproduces identical placements and
  objective values.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from bench_util import append_bench_record
from repro.core.policies.carbon_edge import CarbonEdgePolicy
from repro.core.validation import validate_solution
from repro.experiments.fig17_scalability import _build_problem
from repro.simulator.cdn import CDNSimulator, default_policies
from repro.simulator.scenario import CDNScenario
from repro.solver.compile import (
    SCENARIO_TIER_ENV,
    GreedyState,
    _greedy_fill_live,
    _pending_order,
    clear_compilation,
    clear_scenario_compilations,
    compile_placement,
    greedy_fill,
)

#: Where the timing trajectory is appended (repo root).
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_cdn_pipeline.json"

_SMOKE = os.environ.get("CDN_PIPELINE_BENCH_SCALE", "").lower() == "smoke"

#: Coarse absolute regression tripwire for the compiled pipeline, seconds.
#: Generous enough for slow CI machines; the trajectory artifact is the
#: fine-grained signal.
TIME_CEILING_S = 30.0 if _SMOKE else 120.0

#: Fig11 defaults: 12 epochs over the year, every CDN site of the continent.
SCENARIO_KWARGS = dict(
    n_epochs=4 if _SMOKE else 12,
    max_sites=45 if _SMOKE else None,
    seed=0,
)
CONTINENTS = ("EU",) if _SMOKE else ("US", "EU")


def _append_trajectory(benchmark: str, record: dict) -> None:
    append_bench_record(ARTIFACT, benchmark, record)


def _pr4_baseline_s() -> float | None:
    """Last PR 4 era full-scale epoch-loop wall-clock from the trajectory.

    PR 4 era records carry ``compiled_s`` with neither a ``benchmark`` nor a
    ``tier`` field; every record written by the current benchmark is marked,
    so the baseline stays frozen at the pre-scenario-tier measurement no
    matter how often the benchmarks re-run on this machine.
    """
    if not ARTIFACT.exists():
        return None
    try:
        history = json.loads(ARTIFACT.read_text())
    except (ValueError, OSError):
        return None
    baseline = None
    for record in history:
        if "compiled_s" in record and "benchmark" not in record \
                and "tier" not in record and record.get("scale") == "full":
            baseline = float(record["compiled_s"])
    return baseline


def test_bench_cdn_pipeline(bench_once):
    compiled_s = 0.0
    compiled_results = {}

    def run_all():
        nonlocal compiled_s
        for continent in CONTINENTS:
            scenario = CDNScenario(continent=continent, **SCENARIO_KWARGS)
            # Scenario setup (fleet, latency matrix, traces) is excluded from
            # the timed region: the epoch loop is what the compilation layers
            # optimise.
            simulator = CDNSimulator(scenario=scenario)
            t0 = time.monotonic()
            compiled_results[continent] = simulator.run()
            compiled_s += time.monotonic() - t0
        return compiled_s

    bench_once(run_all)
    print(f"\ncompiled pipeline: {compiled_s:.3f} s "
          f"(ceiling: {TIME_CEILING_S:.0f} s, scale: {'smoke' if _SMOKE else 'full'})")
    _append_trajectory("cdn_pipeline", {
        "scale": "smoke" if _SMOKE else "full",
        "tier": "scenario",
        "continents": list(CONTINENTS),
        "n_epochs": SCENARIO_KWARGS["n_epochs"],
        "max_sites": SCENARIO_KWARGS["max_sites"],
        "compiled_s": round(compiled_s, 4),
    })
    # Sanity: the compiled pipeline still produces the paper's orderings.
    for continent, result in compiled_results.items():
        assert result.carbon_savings_pct("CarbonEdge") > 0.0, continent
    assert compiled_s <= TIME_CEILING_S, (
        f"compiled pipeline took {compiled_s:.1f} s "
        f"(ceiling: {TIME_CEILING_S:.0f} s)")


#: Required epoch-loop speedup of the scenario-tier pipeline over the PR 4
#: baseline recorded in the trajectory artifact. Smoke scale (and machines
#: without a recorded baseline) only check the bit-identity contract.
TIER_SPEEDUP_FLOOR = 1.5


def _timed_epoch_loop(scenario: CDNScenario) -> tuple[float, float, list]:
    """One fig11 epoch loop, split into (compile_s, solve_s, placements).

    Mirrors :meth:`CDNSimulator.run`'s structure: per epoch, problem assembly
    + compilation (the *compile* region — what the scenario tier turns into
    delta gathers) followed by the four policies' solves (the *solve*
    region). The simulator is built outside the timed region, like the
    pipeline benchmark above.
    """
    simulator = CDNSimulator(scenario=scenario)
    policies = default_policies(scenario.solver, scenario.epoch_shards)
    compile_s = solve_s = 0.0
    placements: list = []
    for epoch in range(scenario.n_epochs):
        t0 = time.monotonic()
        problem = simulator.epoch_problem(epoch)
        compilation = compile_placement(problem)
        compilation.report  # the shared tensors every policy reads
        t1 = time.monotonic()
        solutions = [policy.timed_place(problem) for policy in policies]
        solve_s += time.monotonic() - t1
        compile_s += t1 - t0
        placements.append([s.placements for s in solutions])
    return compile_s, solve_s, placements


def test_bench_scenario_tier_speedup(bench_once):
    """The scenario-lifetime compilation claim: the delta path is
    byte-identical to the cold per-epoch rebuild and >= 1.5x faster than the
    PR 4 baseline on the 4-policy fig11-scale epoch loop.

    Two arms run the same epoch loop: *delta* (scenario tier enabled, built
    fresh inside the timed region) and *cold* (tier force-disabled via the
    environment kill-switch — the per-epoch rebuild the tier contractually
    reproduces bit for bit). The delta arm runs first so it pays any
    first-touch trace-integration cost; the recorded compile fraction shows
    how much of each arm's epoch loop is problem assembly + compilation
    versus solving.
    """
    measured: dict[str, tuple[float, float, list]] = {}

    def run_all():
        for arm in ("delta", "cold"):
            if arm == "cold":
                os.environ[SCENARIO_TIER_ENV] = "1"
            else:
                os.environ.pop(SCENARIO_TIER_ENV, None)
            clear_scenario_compilations()
            try:
                compile_s = solve_s = 0.0
                placements = []
                for continent in CONTINENTS:
                    scenario = CDNScenario(continent=continent, **SCENARIO_KWARGS)
                    c, s, p = _timed_epoch_loop(scenario)
                    compile_s += c
                    solve_s += s
                    placements.append(p)
                measured[arm] = (compile_s, solve_s, placements)
            finally:
                os.environ.pop(SCENARIO_TIER_ENV, None)
        return measured

    bench_once(run_all)
    delta_compile, delta_solve, delta_placements = measured["delta"]
    cold_compile, cold_solve, cold_placements = measured["cold"]
    # The bit-identity contract: every policy's placements in every epoch are
    # identical whichever path assembled the problem.
    assert delta_placements == cold_placements, \
        "scenario-tier epoch loop diverged from the cold rebuild"

    delta_s = delta_compile + delta_solve
    cold_s = cold_compile + cold_solve
    pr4_s = _pr4_baseline_s()
    speedup = (pr4_s / delta_s) if pr4_s else None
    print(f"\nscenario tier (fig11-scale, {len(CONTINENTS)} continents): "
          f"delta {delta_s:.3f} s (compile fraction {delta_compile / delta_s:.0%}), "
          f"cold {cold_s:.3f} s (compile fraction {cold_compile / cold_s:.0%}), "
          f"tier speedup {cold_s / delta_s:.2f}x, "
          f"vs PR4 baseline {pr4_s}: "
          f"{f'{speedup:.2f}x' if speedup else 'n/a'}")
    _append_trajectory("scenario_tier", {
        "scale": "smoke" if _SMOKE else "full",
        "continents": list(CONTINENTS),
        "n_epochs": SCENARIO_KWARGS["n_epochs"],
        "delta_epoch_s": round(delta_s, 4),
        "cold_epoch_s": round(cold_s, 4),
        "compile_fraction_delta": round(delta_compile / delta_s, 4),
        "compile_fraction_cold": round(cold_compile / cold_s, 4),
        "tier_speedup": round(cold_s / delta_s, 2),
        "pr4_baseline_s": pr4_s,
        "speedup_vs_pr4": round(speedup, 2) if speedup else None,
    })
    if not _SMOKE and pr4_s is not None:
        assert speedup >= TIER_SPEEDUP_FLOOR, (
            f"fig11-scale epoch loop {delta_s:.3f} s is only {speedup:.2f}x the "
            f"PR 4 baseline {pr4_s:.3f} s (floor: {TIER_SPEEDUP_FLOOR}x)")


#: Shard count of the shard bit-identity check (the CLI's mid-size machine
#: recommendation).
EPOCH_SHARDS = 4

#: Required speedup of the speculative kernel schedule over the naive per-row
#: schedule at full scale. This is the claim that superseded speculative
#: shard dispatch: the serial kernel now runs the batched
#: speculate-and-revalidate schedule directly, so the bar the PR 4 shard
#: benchmark held (1.5x over the then-naive serial loop) is carried by the
#: schedule itself. Smoke scale only checks the determinism contracts.
SCHEDULE_SPEEDUP_FLOOR = 1.5

#: Fig17-scale epoch-loop instances: (n_servers, n_apps, repeats).
SHARD_BENCH_SIZES = ((400, 140, 6), (400, 600, 3)) if not _SMOKE \
    else ((100, 60, 2),)


def test_bench_kernel_schedule_speedup(bench_once):
    """The speculative schedule claim: >= 1.5x over the naive per-row loop at
    fig17 scale, bit-identical state — and shard dispatch stays bit-identical
    to the serial kernel.

    The timed region is the greedy construction of the four paper policies'
    dense cost tensors on fig17-scale instances (400-server fleet), kernels
    called directly so the comparison isolates exactly the schedule. The
    shard arm (``epoch_shards=4``) runs through the policies and must
    reproduce the serial placements byte for byte (speculative plans collapse
    onto the serial schedule; component plans dispatch).
    """
    naive_s = spec_s = 0.0
    placements: dict = {}

    def run_all():
        nonlocal naive_s, spec_s
        for n_servers, n_apps, repeats in SHARD_BENCH_SIZES:
            problem = _build_problem(n_servers, n_apps, seed=1)
            compilation = compile_placement(problem)
            from repro.core.objective import ObjectiveKind
            denses = [compilation.dense(kind) for kind in
                      (ObjectiveKind.LATENCY, ObjectiveKind.ENERGY,
                       ObjectiveKind.INTENSITY, ObjectiveKind.CARBON)]
            for _ in range(repeats):
                for dense in denses:
                    naive = GreedyState(dense)
                    t0 = time.monotonic()
                    _greedy_fill_live(naive, _pending_order(naive, problem.energy_j))
                    naive_s += time.monotonic() - t0
                    spec = GreedyState(dense)
                    t0 = time.monotonic()
                    greedy_fill(spec, problem.energy_j)
                    spec_s += time.monotonic() - t0
                    # Bit-identity of the full mutable state, not just the
                    # assignment — local search consumes capacity_left.
                    assert np.array_equal(naive.assignment, spec.assignment)
                    assert np.array_equal(naive.capacity_left, spec.capacity_left)
                    assert np.array_equal(naive.served, spec.served)
            # Shard dispatch contract at the policy level.
            for shards in (1, EPOCH_SHARDS):
                policies = default_policies("greedy", epoch_shards=shards)
                placements[(n_servers, n_apps, shards)] = [
                    p.timed_place(problem).placements for p in policies]
        return naive_s, spec_s

    bench_once(run_all)
    for n_servers, n_apps, _ in SHARD_BENCH_SIZES:
        assert placements[(n_servers, n_apps, 1)] == \
            placements[(n_servers, n_apps, EPOCH_SHARDS)], \
            f"sharded epoch loop diverged at ({n_servers}, {n_apps})"
    speedup = naive_s / max(spec_s, 1e-9)
    print(f"\ngreedy kernel (fig17-scale): naive {naive_s:.3f} s, "
          f"speculative {spec_s:.3f} s, schedule speedup {speedup:.2f}x")
    _append_trajectory("kernel_schedule", {
        "scale": "smoke" if _SMOKE else "full",
        "sizes": [[s, a] for s, a, _ in SHARD_BENCH_SIZES],
        "naive_kernel_s": round(naive_s, 4),
        "speculative_kernel_s": round(spec_s, 4),
        "schedule_speedup": round(speedup, 2),
    })
    if not _SMOKE:
        assert speedup >= SCHEDULE_SPEEDUP_FLOOR, (
            f"speculative schedule speedup {speedup:.2f}x is below the "
            f"{SCHEDULE_SPEEDUP_FLOOR}x floor")


#: Required speedup of the wave-vectorised reconciliation replay over the
#: PR 5 per-application replay on the saturated epoch below. Smoke scale only
#: checks the bit-identity and telemetry contracts.
WAVE_SPEEDUP_FLOOR = 1.5

#: Saturated-epoch instance of the wave benchmark: (n_servers, n_apps,
#: repeats). Fig17-scale fleet at full scale.
WAVE_BENCH_SIZE = (100, 300, 4) if _SMOKE else (400, 1200, 12)


def _saturated_epoch(n_servers: int, n_apps: int):
    """A fig17-scale epoch rescaled so every server runs near-full.

    The plain carbon objective concentrates winners on the greenest servers
    (product-form costs give every application the same server ranking), so
    an untouched fig17 instance is *conflict-dense*: most replayed
    applications are invalidated and the wave replay correctly degrades to
    the per-application loop. The saturated regime the wave replay targets is
    the opposite — and the regime the contention certificate cares about:
    capacity rescaled to just about the speculative winner load (a few
    servers 5% short, the rest 2% over), utilisation ~95%, few
    invalidations. Seeds pinned so the instance is identical across arms and
    runs.
    """
    import dataclasses

    from repro.core.objective import ObjectiveKind

    problem = _build_problem(n_servers, n_apps, seed=1)
    dense0 = compile_placement(problem).dense(ObjectiveKind.CARBON)
    rows = dense0.cost
    choice = np.argmin(rows, axis=1)
    finite = np.isfinite(rows[np.arange(len(choice)), choice])
    winner_load = np.zeros_like(dense0.capacity)
    np.add.at(winner_load, choice[finite],
              dense0.demand[np.flatnonzero(finite), choice[finite]])
    rng = np.random.default_rng(7)
    # The compiled tensor keeps only feasible servers, so size the headroom
    # off its capacity axis (a subset of the fleet's n_servers).
    headroom = np.where(rng.random(dense0.capacity.shape[0]) < 0.10,
                        0.95, 1.02)[:, None]
    capacity = np.maximum(winner_load * headroom, dense0.capacity * 1e-3)
    return dataclasses.replace(dense0, capacity=capacity), problem.energy_j


def test_bench_wave_reconcile_speedup(bench_once):
    """The wave-reconciliation claim: committing settled waves with dense
    batched operations beats the PR 5 per-application replay >= 1.5x on a
    saturated fig17-scale epoch, bit-identically.

    Both arms run the identical sharded entry point (``epoch_shards=4`` —
    speculative plans route through the serial kernel's cold schedule, where
    the replay lives); only the reconcile mode differs. The serial arm *is*
    the PR 5 behaviour: one Python-level fit-check-and-place step per
    application. The wave arm must reproduce its full mutable state byte for
    byte while replacing almost every step with wave commits (telemetry
    asserted: waves happened, revalidation rate near zero)."""
    from repro.solver.compile import greedy_fill_sharded

    n_servers, n_apps, repeats = WAVE_BENCH_SIZE
    dense, energy = _saturated_epoch(n_servers, n_apps)
    times = {"serial": 0.0, "wave": 0.0}
    states: dict = {}

    def run_all():
        for mode in ("serial", "wave"):
            for _ in range(repeats):
                state = GreedyState(dense)
                t0 = time.monotonic()
                greedy_fill_sharded(state, energy, EPOCH_SHARDS,
                                    reconcile_mode=mode)
                times[mode] += time.monotonic() - t0
                states[mode] = state
        return times

    bench_once(run_all)
    serial, wave = states["serial"], states["wave"]
    assert np.array_equal(serial.assignment, wave.assignment)
    assert np.array_equal(serial.capacity_left, wave.capacity_left)
    assert np.array_equal(serial.served, wave.served)
    # Telemetry: the serial arm replays per application, the wave arm settles
    # nearly everything in batched commits on this instance.
    assert serial.stats.waves == 0 and serial.stats.revalidation_rate == 1.0
    assert wave.stats.waves > 0
    assert wave.stats.revalidation_rate < 0.2

    speedup = times["serial"] / max(times["wave"], 1e-9)
    print(f"\nwave reconciliation (saturated {n_servers}x{n_apps}, "
          f"{EPOCH_SHARDS} shards): per-app {times['serial']:.3f} s, "
          f"wave {times['wave']:.3f} s, speedup {speedup:.2f}x, "
          f"revalidation rate {wave.stats.revalidation_rate:.3f}")
    _append_trajectory("wave_reconcile", {
        "scale": "smoke" if _SMOKE else "full",
        "size": [n_servers, n_apps],
        "epoch_shards": EPOCH_SHARDS,
        "per_app_replay_s": round(times["serial"], 4),
        "wave_replay_s": round(times["wave"], 4),
        "wave_speedup": round(speedup, 2),
        "waves": wave.stats.waves,
        "revalidation_rate": round(wave.stats.revalidation_rate, 4),
    })
    if not _SMOKE:
        assert speedup >= WAVE_SPEEDUP_FLOOR, (
            f"wave reconciliation speedup {speedup:.2f}x is below the "
            f"{WAVE_SPEEDUP_FLOOR}x floor")


def test_bench_exact_backend_is_deterministic(bench_once):
    """Recompiling and re-solving the same epoch problem is bit-identical."""

    def run():
        scenario = CDNScenario(continent="EU", n_epochs=1, max_sites=8, seed=3)
        simulator = CDNSimulator(scenario=scenario)
        problem = simulator.epoch_problem(0)
        policy = CarbonEdgePolicy(solver="exact")
        first = policy.place(problem)
        validate_solution(first, strict=True)
        # Drop the memoised compilation: the second solve re-derives the
        # feasibility report and dense tensors from scratch.
        clear_compilation(problem)
        second = policy.place(problem)
        validate_solution(second, strict=True)
        assert first.placements == second.placements
        assert first.total_carbon_g() == second.total_carbon_g()
        return first.total_carbon_g()

    bench_once(run)
