"""Benchmark: the compiled epoch pipeline vs. the seed pipeline on fig11 scenarios.

Two measurements on identical scenarios:

* **compiled** — the current :func:`repro.simulator.cdn.run_cdn_simulation`:
  one vectorised problem build and one :class:`EpochCompilation` per epoch,
  shared by all four policies and the metrics loop.
* **seed** — a faithful emulation of the pre-compilation pipeline using the
  frozen engines in ``tests/legacy_greedy.py``: the per-pair Python problem
  build, the object-based greedy engine for the Latency-/Intensity-aware
  baselines, per-policy recomputation of the feasibility report and dense
  tensors (the memoised compilation is explicitly cleared between policies),
  and the per-placement Python metrics loop. The emulation still benefits
  from unrelated speedups (O(1) index maps, vectorised validation, the
  forecast cache), so the measured speedup *understates* the real gain over
  the seed.

The benchmark asserts the tentpole bar — compiled >= SPEEDUP_BAR x seed — and
that the exact backend produces bit-identical objective values on problems
built by the two pipelines. Each run appends a record to
``BENCH_cdn_pipeline.json`` (repo root) so the speedup trajectory is tracked
across PRs. Set ``CDN_PIPELINE_BENCH_SCALE=smoke`` (CI) for a reduced-scale
run with a correspondingly relaxed bar.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.objective import ObjectiveKind
from repro.core.policies.carbon_edge import CarbonEdgePolicy
from repro.core.validation import validate_solution
from repro.simulator.cdn import CDNSimulator
from repro.simulator.scenario import CDNScenario
from repro.solver import registry
from repro.solver.compile import clear_compilation
from tests.legacy_greedy import legacy_build_problem, legacy_greedy_place

#: Where the speedup trajectory is appended (repo root).
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_cdn_pipeline.json"

_SMOKE = os.environ.get("CDN_PIPELINE_BENCH_SCALE", "").lower() == "smoke"

#: Required compiled-vs-seed speedup. The tentpole bar is 3x at fig11 default
#: sizes; the CI smoke scale is small enough that constant overheads bite, so
#: it acts as a coarser regression tripwire.
SPEEDUP_BAR = 2.0 if _SMOKE else 3.0

#: Fig11 defaults: 12 epochs over the year, every CDN site of the continent.
SCENARIO_KWARGS = dict(
    n_epochs=4 if _SMOKE else 12,
    max_sites=45 if _SMOKE else None,
    seed=0,
)
CONTINENTS = ("EU",) if _SMOKE else ("US", "EU")


def _seed_pipeline_run(simulator: CDNSimulator) -> dict[str, float]:
    """Emulate the seed's CDNSimulator.run epoch loop; returns carbon totals."""
    scenario = simulator.scenario
    totals: dict[str, float] = {}
    for epoch in range(scenario.n_epochs):
        start_hour = scenario.epoch_start_hour(epoch)
        batch = simulator.generator.generate_batch(epoch, start_hour)
        simulator.fleet.reset_allocations()
        for server in simulator.fleet.servers():
            server.power_on()
        problem = legacy_build_problem(
            list(batch.applications), simulator.fleet.servers(), simulator.latency,
            simulator.carbon, hour=start_hour,
            horizon_hours=float(scenario.hours_per_epoch))
        feasible = problem.feasible_mask()
        nearest = np.where(feasible, problem.latency_ms, np.inf).min(axis=1)
        for name, solve in (
            ("Latency-aware", _seed_latency_aware),
            ("Energy-aware", _seed_registry_greedy(ObjectiveKind.ENERGY)),
            ("Intensity-aware", _seed_intensity_aware),
            ("CarbonEdge", _seed_registry_greedy(ObjectiveKind.CARBON)),
        ):
            clear_compilation(problem)  # the seed shared nothing across policies
            solution = solve(problem)
            validate_solution(solution, strict=True)
            # Seed metrics loop: one Python iteration per placed application.
            placed_latencies = []
            hosting_intensities = []
            for app_id, j in solution.placements.items():
                i = problem.app_index(app_id)
                placed_latencies.append(problem.latency_ms[i, j] - (
                    nearest[i] if np.isfinite(nearest[i]) else 0.0))
                hosting_intensities.append(float(problem.intensity[j]))
            totals[name] = totals.get(name, 0.0) + solution.total_carbon_g()
    return totals


def _seed_latency_aware(problem):
    return legacy_greedy_place(problem, problem.latency_ms.copy(),
                               np.zeros(problem.n_servers),
                               tie_breaker=problem.operational_carbon_g())


def _seed_intensity_aware(problem):
    assign = np.broadcast_to(problem.intensity[None, :],
                             (problem.n_applications, problem.n_servers)).copy()
    return legacy_greedy_place(problem, assign, np.zeros(problem.n_servers))


def _seed_registry_greedy(objective):
    def solve(problem):
        return registry.solve(problem, backend="greedy", objective=objective)
    return solve


def _append_trajectory(record: dict) -> None:
    history = []
    if ARTIFACT.exists():
        try:
            history = json.loads(ARTIFACT.read_text())
        except (ValueError, OSError):
            history = []
    history.append(record)
    ARTIFACT.write_text(json.dumps(history, indent=2) + "\n")


def test_bench_cdn_pipeline_speedup(bench_once):
    compiled_s = 0.0
    seed_s = 0.0
    compiled_results = {}

    def run_both():
        nonlocal compiled_s, seed_s
        for continent in CONTINENTS:
            scenario = CDNScenario(continent=continent, **SCENARIO_KWARGS)
            # Scenario setup (fleet, latency matrix, traces) is identical for
            # both pipelines and excluded from the timed region; the seed
            # emulation runs second, so it even inherits a warm carbon
            # forecast cache — both choices make the measured speedup
            # conservative.
            simulator = CDNSimulator(scenario=scenario)
            t0 = time.monotonic()
            compiled_results[continent] = simulator.run()
            t1 = time.monotonic()
            _seed_pipeline_run(simulator)
            t2 = time.monotonic()
            compiled_s += t1 - t0
            seed_s += t2 - t1
        return compiled_s, seed_s

    bench_once(run_both)
    speedup = seed_s / max(compiled_s, 1e-9)
    print(f"\ncompiled pipeline: {compiled_s:.3f} s, seed pipeline: {seed_s:.3f} s, "
          f"speedup: {speedup:.2f}x (bar: {SPEEDUP_BAR:.1f}x, "
          f"scale: {'smoke' if _SMOKE else 'full'})")
    _append_trajectory({
        "scale": "smoke" if _SMOKE else "full",
        "continents": list(CONTINENTS),
        "n_epochs": SCENARIO_KWARGS["n_epochs"],
        "max_sites": SCENARIO_KWARGS["max_sites"],
        "compiled_s": round(compiled_s, 4),
        "seed_s": round(seed_s, 4),
        "speedup": round(speedup, 2),
    })
    # Sanity: the compiled pipeline still produces the paper's orderings.
    for continent, result in compiled_results.items():
        assert result.carbon_savings_pct("CarbonEdge") > 0.0, continent
    assert speedup >= SPEEDUP_BAR, (
        f"compiled pipeline is only {speedup:.2f}x faster than the seed "
        f"pipeline (bar: {SPEEDUP_BAR}x)")


def test_bench_exact_backend_objective_is_unchanged(bench_once):
    """Identical problems through both builds -> bit-identical exact objectives."""

    def run():
        scenario = CDNScenario(continent="EU", n_epochs=1, max_sites=8, seed=3)
        simulator = CDNSimulator(scenario=scenario)
        batch = simulator.generator.generate_batch(0, 0)
        simulator.fleet.reset_allocations()
        for server in simulator.fleet.servers():
            server.power_on()
        apps = list(batch.applications)
        kwargs = dict(latency=simulator.latency, carbon=simulator.carbon,
                      hour=0, horizon_hours=float(scenario.hours_per_epoch))
        from repro.core.problem import PlacementProblem
        compiled_problem = PlacementProblem.build(
            apps, simulator.fleet.servers(), **kwargs)
        legacy_problem = legacy_build_problem(
            apps, simulator.fleet.servers(), **kwargs)
        assert np.array_equal(compiled_problem.latency_ms, legacy_problem.latency_ms)
        assert np.array_equal(compiled_problem.energy_j, legacy_problem.energy_j)
        assert np.array_equal(compiled_problem.intensity, legacy_problem.intensity)
        assert np.array_equal(compiled_problem.supported, legacy_problem.supported)
        policy = CarbonEdgePolicy(solver="exact")
        new = policy.place(compiled_problem)
        old = policy.place(legacy_problem)
        validate_solution(new, strict=True)
        assert new.placements == old.placements
        assert new.total_carbon_g() == old.total_carbon_g()
        return new.total_carbon_g()

    bench_once(run)
