"""Benchmark: the compiled CDN epoch pipeline on fig11 scenarios.

Earlier revisions raced the compiled pipeline against an emulation of the
pre-compilation seed pipeline (frozen in ``tests/legacy_greedy.py``); that
oracle was kept for one release and has been retired, so the benchmark now
tracks the compiled pipeline's absolute wall-clock instead. Each run appends a
record to ``BENCH_cdn_pipeline.json`` (repo root) so the timing trajectory
stays visible across PRs — the historical records with ``seed_s``/``speedup``
fields document the original 3–8x compiled-vs-seed gain.

Two checks remain load-bearing:

* the paper's orderings hold at benchmark scale (CarbonEdge saves carbon on
  every continent), and
* the exact backend is bit-deterministic: re-solving the same epoch problem
  after dropping its memoised compilation reproduces identical placements and
  objective values.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.policies.carbon_edge import CarbonEdgePolicy
from repro.core.validation import validate_solution
from repro.experiments.fig17_scalability import _build_problem
from repro.simulator.cdn import CDNSimulator, default_policies
from repro.simulator.scenario import CDNScenario
from repro.solver.compile import clear_compilation, compile_placement

#: Where the timing trajectory is appended (repo root).
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_cdn_pipeline.json"

_SMOKE = os.environ.get("CDN_PIPELINE_BENCH_SCALE", "").lower() == "smoke"

#: Coarse absolute regression tripwire for the compiled pipeline, seconds.
#: Generous enough for slow CI machines; the trajectory artifact is the
#: fine-grained signal.
TIME_CEILING_S = 30.0 if _SMOKE else 120.0

#: Fig11 defaults: 12 epochs over the year, every CDN site of the continent.
SCENARIO_KWARGS = dict(
    n_epochs=4 if _SMOKE else 12,
    max_sites=45 if _SMOKE else None,
    seed=0,
)
CONTINENTS = ("EU",) if _SMOKE else ("US", "EU")


def _append_trajectory(record: dict) -> None:
    history = []
    if ARTIFACT.exists():
        try:
            history = json.loads(ARTIFACT.read_text())
        except (ValueError, OSError):
            history = []
    history.append(record)
    ARTIFACT.write_text(json.dumps(history, indent=2) + "\n")


def test_bench_cdn_pipeline(bench_once):
    compiled_s = 0.0
    compiled_results = {}

    def run_all():
        nonlocal compiled_s
        for continent in CONTINENTS:
            scenario = CDNScenario(continent=continent, **SCENARIO_KWARGS)
            # Scenario setup (fleet, latency matrix, traces) is excluded from
            # the timed region: the epoch loop is what the compilation layer
            # and the sharded runner optimise.
            simulator = CDNSimulator(scenario=scenario)
            t0 = time.monotonic()
            compiled_results[continent] = simulator.run()
            compiled_s += time.monotonic() - t0
        return compiled_s

    bench_once(run_all)
    print(f"\ncompiled pipeline: {compiled_s:.3f} s "
          f"(ceiling: {TIME_CEILING_S:.0f} s, scale: {'smoke' if _SMOKE else 'full'})")
    _append_trajectory({
        "scale": "smoke" if _SMOKE else "full",
        "continents": list(CONTINENTS),
        "n_epochs": SCENARIO_KWARGS["n_epochs"],
        "max_sites": SCENARIO_KWARGS["max_sites"],
        "compiled_s": round(compiled_s, 4),
    })
    # Sanity: the compiled pipeline still produces the paper's orderings.
    for continent, result in compiled_results.items():
        assert result.carbon_savings_pct("CarbonEdge") > 0.0, continent
    assert compiled_s <= TIME_CEILING_S, (
        f"compiled pipeline took {compiled_s:.1f} s "
        f"(ceiling: {TIME_CEILING_S:.0f} s)")


#: Shard count of the intra-unit sharding benchmark (matches the CLI default
#: recommendation for one mid-size machine).
EPOCH_SHARDS = 4

#: Required sharded-vs-serial epoch-loop speedup at full scale. Smoke scale
#: only checks the determinism contract (CI machines make timing assertions
#: there meaningless).
SHARD_SPEEDUP_FLOOR = 1.5

#: Fig17-scale epoch-loop instances: (n_servers, n_apps, repeats).
SHARD_BENCH_SIZES = ((400, 140, 6), (400, 600, 3)) if not _SMOKE \
    else ((100, 60, 2),)


def test_bench_epoch_shard_speedup(bench_once):
    """The intra-unit sharding claim: >= 1.5x epoch-loop speedup at
    fig17-scale with 4 shards, bit-identical solutions.

    The timed region is the CDN epoch loop's solve body — the four paper
    policies solving one compiled placement problem — on fig17-scale
    instances (400-server fleet). Scenario setup and the per-objective dense
    tensors are warmed outside the timed region for both arms, so the
    comparison isolates exactly what the sharding layer changes.
    """
    serial_s = sharded_s = 0.0
    placements: dict = {}

    def run_all():
        nonlocal serial_s, sharded_s
        for n_servers, n_apps, repeats in SHARD_BENCH_SIZES:
            problem = _build_problem(n_servers, n_apps, seed=1)
            compile_placement(problem)
            for shards in (1, EPOCH_SHARDS):
                policies = default_policies("greedy", epoch_shards=shards)
                for policy in policies:  # warm the per-objective tensors
                    policy.timed_place(problem)
                start = time.monotonic()
                for _ in range(repeats):
                    solutions = [p.timed_place(problem) for p in policies]
                elapsed = time.monotonic() - start
                if shards == 1:
                    serial_s += elapsed
                else:
                    sharded_s += elapsed
                key = (n_servers, n_apps, shards)
                placements[key] = [s.placements for s in solutions]
        return serial_s, sharded_s

    bench_once(run_all)
    # Determinism contract: sharded placements are identical to serial.
    for n_servers, n_apps, _ in SHARD_BENCH_SIZES:
        assert placements[(n_servers, n_apps, 1)] == \
            placements[(n_servers, n_apps, EPOCH_SHARDS)], \
            f"sharded epoch loop diverged at ({n_servers}, {n_apps})"
    speedup = serial_s / max(sharded_s, 1e-9)
    print(f"\nepoch loop (fig17-scale, {EPOCH_SHARDS} shards): "
          f"serial {serial_s:.3f} s, sharded {sharded_s:.3f} s, "
          f"speedup {speedup:.2f}x")
    _append_trajectory({
        "scale": "smoke" if _SMOKE else "full",
        "benchmark": "epoch_shard_speedup",
        "sizes": [[s, a] for s, a, _ in SHARD_BENCH_SIZES],
        "epoch_shards": EPOCH_SHARDS,
        "serial_epoch_s": round(serial_s, 4),
        "sharded_epoch_s": round(sharded_s, 4),
        "shard_speedup": round(speedup, 2),
    })
    if not _SMOKE:
        assert speedup >= SHARD_SPEEDUP_FLOOR, (
            f"sharded epoch loop speedup {speedup:.2f}x is below the "
            f"{SHARD_SPEEDUP_FLOOR}x floor")


def test_bench_exact_backend_is_deterministic(bench_once):
    """Recompiling and re-solving the same epoch problem is bit-identical."""

    def run():
        scenario = CDNScenario(continent="EU", n_epochs=1, max_sites=8, seed=3)
        simulator = CDNSimulator(scenario=scenario)
        problem = simulator.epoch_problem(0)
        policy = CarbonEdgePolicy(solver="exact")
        first = policy.place(problem)
        validate_solution(first, strict=True)
        # Drop the memoised compilation: the second solve re-derives the
        # feasibility report and dense tensors from scratch.
        clear_compilation(problem)
        second = policy.place(problem)
        validate_solution(second, strict=True)
        assert first.placements == second.placements
        assert first.total_carbon_g() == second.total_carbon_g()
        return first.total_carbon_g()

    bench_once(run)
