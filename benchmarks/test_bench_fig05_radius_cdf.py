"""Benchmark regenerating Figure 5 (carbon savings within a search radius)."""

from repro.experiments import fig05_radius


def test_bench_fig05_radius_cdf(bench_once):
    result = bench_once(fig05_radius.run)
    print("\n" + fig05_radius.report(result))
    per_radius = result["per_radius"]
    frac_above_20 = [per_radius[r]["cdf"]["above_20"] for r in result["radii_km"]]
    median_latency = [per_radius[r]["median_latency_ms"] for r in result["radii_km"]]
    # Larger radii find more savings and cost more latency (monotone shapes).
    assert frac_above_20[0] <= frac_above_20[1] <= frac_above_20[2]
    assert median_latency[0] <= median_latency[1] <= median_latency[2]
    # Paper: 78% of sites can save >20% within 1000 km.
    assert frac_above_20[-1] >= 0.4
