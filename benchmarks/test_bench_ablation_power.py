"""Ablation: value of power-state management (server-activation term).

CarbonEdge's objective charges newly activated servers their base power
(Equation 6's second term). This ablation starts every server powered OFF and
compares the full policy against a variant that ignores activation emissions:
the power-aware variant must activate no more servers and emit no more carbon.
"""

import numpy as np

from repro.core.policies.carbon_edge import CarbonEdgePolicy
from repro.core.validation import validate_solution
from repro.carbon.service import CarbonIntensityService
from repro.cluster.fleet import build_regional_fleet
from repro.cluster.server import PowerState
from repro.core.problem import PlacementProblem
from repro.datasets.regions import CENTRAL_EU
from repro.experiments.common import EXPERIMENT_SEED, region_latency, region_traces
from repro.workloads.application import Application


def _problem() -> PlacementProblem:
    fleet = build_regional_fleet(CENTRAL_EU, servers_per_site=2, powered_on=False)
    fleet.reset_allocations(PowerState.OFF)
    carbon = CarbonIntensityService(traces=region_traces(CENTRAL_EU.name, seed=EXPERIMENT_SEED))
    apps = [Application(app_id=f"a{i}", workload="ResNet50", source_site=site,
                        latency_slo_ms=30.0, request_rate_rps=5.0, duration_hours=24.0)
            for i, site in enumerate(fleet.sites())]
    return PlacementProblem.build(apps, fleet.servers(), region_latency(CENTRAL_EU.name),
                                  carbon, hour=4000, horizon_hours=24.0)


def test_bench_ablation_power(bench_once):
    problem = _problem()

    def run_all():
        out = {}
        for label, manage in (("power-aware", True), ("power-blind", False)):
            policy = CarbonEdgePolicy(solver="exact", manage_power=manage)
            solution = policy.place(problem)
            validate_solution(solution)
            out[label] = {
                "carbon_g": solution.total_carbon_g(),
                "activated": float(np.sum(solution.newly_activated())),
            }
        return out

    results = bench_once(run_all)
    print("\nAblation (power-state management):")
    for label, metrics in results.items():
        print(f"  {label:12s} carbon {metrics['carbon_g']:9.1f} g   "
              f"servers activated {metrics['activated']:.0f}")
    assert results["power-aware"]["carbon_g"] <= results["power-blind"]["carbon_g"] + 1e-6
    assert results["power-aware"]["activated"] <= results["power-blind"]["activated"]
    # Power-aware placement consolidates: it activates fewer servers than sites.
    assert results["power-aware"]["activated"] <= len(problem.servers)
