"""Benchmark regenerating Figure 15 (heterogeneous resources and policies)."""

from repro.experiments import fig15_heterogeneity


def test_bench_fig15_heterogeneity(bench_once):
    result = bench_once(fig15_heterogeneity.run)
    print("\n" + fig15_heterogeneity.report(result))
    per_pool = result["per_pool"]
    # Homogeneous pools: the Orin Nano pool uses far less energy than the GTX 1080 pool
    # for the same load (paper: ~95% less) under the Latency-aware policy.
    orin_energy = per_pool["Orin Nano"]["Latency-aware"]["energy_j"]
    gtx_energy = per_pool["GTX 1080"]["Latency-aware"]["energy_j"]
    assert orin_energy < 0.6 * gtx_energy
    # On every pool, CarbonEdge emits no more carbon than any baseline.
    for pool, policies in per_pool.items():
        carbon_edge = policies["CarbonEdge"]["carbon_g"]
        for name, metrics in policies.items():
            assert carbon_edge <= metrics["carbon_g"] + 1e-6, (pool, name)
    # On the heterogeneous pool CarbonEdge strictly beats Latency-aware and Intensity-aware.
    hetero = per_pool["Hetero."]
    assert hetero["CarbonEdge"]["carbon_g"] < hetero["Latency-aware"]["carbon_g"]
    assert hetero["CarbonEdge"]["carbon_g"] <= hetero["Intensity-aware"]["carbon_g"] + 1e-6
