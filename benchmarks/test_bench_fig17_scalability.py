"""Benchmark regenerating Figure 17 (placement-algorithm scalability)."""

from repro.experiments import fig17_scalability


def test_bench_fig17_scalability(bench_once):
    result = bench_once(fig17_scalability.run)
    print("\n" + fig17_scalability.report(result))
    # Paper: 400 servers / 140 applications place within 3 s and <200 MB (OR-Tools).
    # Our in-house solver targets the same order of magnitude.
    for row in result["by_servers"] + result["by_apps"]:
        assert row["time_s"] <= 30.0, row
        assert row["peak_memory_mb"] <= 500.0, row
