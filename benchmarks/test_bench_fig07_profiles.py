"""Benchmark regenerating Figure 7 (workload profiles across devices)."""

from repro.experiments import fig07_profiles


def test_bench_fig07_profiles(bench_once):
    result = bench_once(fig07_profiles.run)
    print("\n" + fig07_profiles.report(result))
    # Paper: ~45x energy spread across models on one device, ~2x across devices.
    for device, spread in result["energy_spread_across_models"].items():
        assert 20.0 <= spread <= 70.0, f"{device}: spread {spread}"
    for model, spread in result["energy_spread_across_devices"].items():
        assert 1.5 <= spread <= 4.0, f"{model}: spread {spread}"
