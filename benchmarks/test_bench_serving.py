"""Benchmark: the serving loop's warm re-solve path vs. cold per-event builds.

The online service's rolling-horizon tick re-solves the live placement
through :meth:`IncrementalPlacer.resolve_epoch` — scenario-tier delta
assembly, warm compilation threading, warm-started solver — instead of the
cold path a naive service would take per event: release everything, a fresh
``PlacementProblem.build`` with no scenario substrate, an uncompiled solve,
then the same validate + commit. This benchmark races the two loops on the
same event sequence over two identical fleets (both sides pay identical
decision-application work, so the race isolates the warm machinery) and
asserts the warm path wins at the p99, which is the latency the soak
artifact reports.

Each run appends a record to ``BENCH_serving.json`` (repo root) so the
serving-latency trajectory stays visible across PRs, alongside a bounded
live soak that reports sustained placements/sec through the full event loop.
"""

from __future__ import annotations

import gc
import time
from pathlib import Path

import numpy as np

from bench_util import append_bench_record
from repro.core.incremental import IncrementalPlacer
from repro.core.policies.carbon_edge import CarbonEdgePolicy
from repro.core.problem import PlacementProblem
from repro.serving.loadgen import LoadGenerator
from repro.serving.service import PlacementService, ServingConfig
from repro.simulator.cdn import CDNSimulator
from repro.simulator.scenario import CDNScenario

#: Where the serving-latency trajectory is appended (repo root).
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

#: Rolling-horizon events raced by the warm-vs-cold comparison.
N_EVENTS = 16

#: Steady-state passes over the event sequence; each event's latency is the
#: minimum across passes, which filters scheduler/timer noise out of a p99
#: that would otherwise be decided by whichever side caught a stray pause.
N_PASSES = 3


def _record(benchmark: str, payload: dict) -> None:
    append_bench_record(ARTIFACT, benchmark, payload, sort_keys=True)


def _seeded_placer(scenario: CDNScenario, n_arrivals: int) -> tuple[CDNSimulator, IncrementalPlacer]:
    """A fresh simulator + placer with ``n_arrivals`` applications committed."""
    simulator = CDNSimulator(scenario=scenario)
    policy = CarbonEdgePolicy(solver="greedy")
    placer = IncrementalPlacer(fleet=simulator.fleet, latency=simulator.latency,
                               carbon=simulator.carbon, policy=policy,
                               horizon_hours=float(scenario.hours_per_epoch))
    batch = simulator.generator.generate_batch(0, 0, n_arrivals=n_arrivals)
    placer.place_batch(list(batch.applications), hour=0)
    return simulator, placer


def test_bench_warm_resolve_beats_cold_build_per_event(bench_once):
    """p99 warm re-solve latency < p99 cold build+solve on the same events."""
    from repro.core.validation import validate_solution

    scenario = CDNScenario(continent="EU", seed=0)
    # Two identical fleets (same scenario seed): the warm loop re-solves via
    # IncrementalPlacer.resolve_epoch, the cold loop is the naive service a
    # per-event rebuild implies. Both start from the same committed batch.
    _warm_sim, warm_placer = _seeded_placer(scenario, n_arrivals=300)
    cold_sim, cold_placer = _seeded_placer(scenario, n_arrivals=300)
    cold_policy = CarbonEdgePolicy(solver="greedy")
    horizon = float(scenario.hours_per_epoch)

    def cold_resolve(hour: int):
        # The naive loop does the same decision-application work as
        # resolve_epoch (release everything, validate, commit) but rebuilds
        # the problem from scratch with no scenario substrate and solves with
        # no warm compilation threading and no warm start.
        apps = list(cold_placer.active_apps.values())
        for server in cold_sim.fleet.servers():
            for app_id in list(server.allocations):
                server.release(app_id)
        problem = PlacementProblem.build(
            applications=apps, servers=cold_sim.fleet.servers(),
            latency=cold_sim.latency, carbon=cold_sim.carbon,
            hour=hour, horizon_hours=horizon)
        solution = cold_policy.timed_place(problem)
        validate_solution(solution, strict=True)
        cold_placer.commit(solution)
        return solution

    def race():
        warm_s = np.full((N_PASSES, N_EVENTS), np.inf)
        cold_s = np.full((N_PASSES, N_EVENTS), np.inf)
        # One untimed event first: the initial re-solve on each side pays
        # one-time lazy setup (import paths, memoised capacity vectors) that
        # is not part of the steady-state latency the soak artifact reports.
        assert cold_resolve(12) is not None
        assert warm_placer.resolve_epoch(12) is not None
        # A GC pause landing inside a timed window would decide the p99 by
        # itself; collect up front and keep the collector out of the race.
        gc.collect()
        gc.disable()
        try:
            for rep in range(N_PASSES):
                for event in range(N_EVENTS):
                    hour = (rep * N_EVENTS + event + 1) * 24
                    started = time.perf_counter()
                    assert cold_resolve(hour) is not None
                    cold_s[rep, event] = time.perf_counter() - started
                    # Warm path: the serving loop's rolling-horizon re-solve.
                    started = time.perf_counter()
                    solution = warm_placer.resolve_epoch(hour)
                    warm_s[rep, event] = time.perf_counter() - started
                    assert solution is not None
        finally:
            gc.enable()
        # Every pass is steady state, so the min across passes estimates the
        # true per-event cost with scheduler noise stripped.
        return warm_s.min(axis=0), cold_s.min(axis=0)

    warm_s, cold_s = bench_once(race)
    warm_p99_ms = float(np.percentile(warm_s, 99) * 1000.0)
    cold_p99_ms = float(np.percentile(cold_s, 99) * 1000.0)
    print(f"\nwarm re-solve p99: {warm_p99_ms:.2f} ms over {N_EVENTS} events "
          f"(p50 {np.percentile(warm_s, 50) * 1000.0:.2f} ms)")
    print(f"cold build+solve p99: {cold_p99_ms:.2f} ms "
          f"(p50 {np.percentile(cold_s, 50) * 1000.0:.2f} ms)")
    print(f"speedup at p99: {cold_p99_ms / warm_p99_ms:.2f}x")
    _record("warm_resolve_vs_cold_build", {
        "timestamp": time.time(),
        "n_events": N_EVENTS,
        "warm_p99_ms": warm_p99_ms,
        "cold_p99_ms": cold_p99_ms,
        "speedup_p99": cold_p99_ms / warm_p99_ms,
    })
    assert warm_p99_ms < cold_p99_ms, (
        f"warm re-solve p99 {warm_p99_ms:.2f} ms must beat the cold "
        f"per-event path {cold_p99_ms:.2f} ms")


def test_bench_live_soak_throughput(bench_once):
    """A bounded live soak through the full event loop, timed end to end."""
    scenario = CDNScenario(continent="EU", max_sites=10, seed=0)
    service = PlacementService.from_scenario(
        scenario, config=ServingConfig(batch_interval_s=300.0,
                                       resolve_interval_s=3600.0))
    load = LoadGenerator(sites=service.simulator.fleet.sites(),
                         rate_per_s=0.02, mean_lifetime_s=5400.0, seed=0)

    report = bench_once(service.run_live, load, 6 * 3600.0)
    metrics = report.metrics
    assert metrics.total_placed() > 0
    assert metrics.n_warm_resolves > 0
    print(f"\nsoak: {metrics.n_events} events, {metrics.total_placed()} "
          f"placements in {metrics.wall_elapsed_s:.2f} s wall "
          f"({metrics.placements_per_s():.0f} placements/s)")
    print(f"decision latency p50 {metrics.latency_percentile_ms(50.0):.2f} ms, "
          f"p99 {metrics.latency_percentile_ms(99.0):.2f} ms")
    _record("live_soak", {
        "timestamp": time.time(),
        "events": metrics.n_events,
        "placements": metrics.total_placed(),
        "placements_per_s": metrics.placements_per_s(),
        "p50_ms": metrics.latency_percentile_ms(50.0),
        "p99_ms": metrics.latency_percentile_ms(99.0),
    })
