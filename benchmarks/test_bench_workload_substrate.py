"""Benchmark: columnar workload substrate vs the per-object legacy path.

The columnar substrate (PR 10) generates application batches as
struct-of-arrays with a compact class table and assembles epoch tensors by
computing one row per unique class and gathering with ``class_idx`` — the
per-object path materialises every :class:`Application` and stacks per-app
rows in Python list comprehensions. This benchmark races the two on the same
seed and substrate at 10^5 applications: each arm runs batch generation plus
epoch-problem assembly through a *fresh* :class:`ScenarioCompilation` (the
epoch memo would otherwise hand the second run the finished tensors), the
object arm running under the ``CARBON_EDGE_DISABLE_COLUMNAR`` kill-switch so
it exercises the true legacy branch end to end.

The determinism contract makes the race honest: both arms must produce the
same application ids and bit-identical compiled tensors (asserted here), so
the speedup is pure mechanics, not a different computation. The trajectory
record carries both times, the class-table compression ratio, the compilation
cache statistics, and the process peak RSS.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from bench_util import append_bench_record, peak_rss_mb
from repro.experiments.planetary_sweep import build_planetary_substrate
from repro.solver.compile import ScenarioCompilation
from repro.workloads.generator import COLUMNAR_ENV, ApplicationGenerator

#: Where the timing trajectory is appended (repo root), shared with the
#: pipeline benchmarks.
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_cdn_pipeline.json"

_SMOKE = os.environ.get("CDN_PIPELINE_BENCH_SCALE", "").lower() == "smoke"

#: The issue's acceptance scale: 10^5 applications through generation +
#: assembly. The site count stays small so the apps-dimension work dominates
#: (the race measures the per-app Python overhead the class table removes).
N_SITES = 24 if _SMOKE else 48
N_APPS = 5_000 if _SMOKE else 100_000
HOUR = 4700

#: Required speedup of the columnar substrate over the per-object path at
#: full scale.
COLUMNAR_SPEEDUP_FLOOR = 5.0


@contextmanager
def _columnar_disabled():
    previous = os.environ.get(COLUMNAR_ENV)
    os.environ[COLUMNAR_ENV] = "1"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(COLUMNAR_ENV, None)
        else:
            os.environ[COLUMNAR_ENV] = previous


def test_bench_columnar_vs_object(bench_once):
    fleet, latency, carbon = build_planetary_substrate(N_SITES, seed=0)
    servers = fleet.servers()

    def make_generator():
        return ApplicationGenerator(
            sites=fleet.sites(), latency_slo_ms=40.0,
            mean_arrivals_per_batch=float(N_APPS), duration_hours=1.0, seed=0)

    columnar_s = object_s = 0.0
    columnar_problem = object_problem = None
    columnar_comp = None
    n_classes = 0

    def run_both():
        nonlocal columnar_s, object_s, columnar_problem, object_problem
        nonlocal columnar_comp, n_classes
        # Columnar arm: the batch flows to the class-table fast path whole;
        # per-app objects are never materialised.
        columnar_comp = ScenarioCompilation(servers, latency, carbon)
        t0 = time.perf_counter()
        batch = make_generator().generate_batch(0, HOUR, n_arrivals=N_APPS)
        columnar_problem = columnar_comp.build_problem(batch, HOUR)
        columnar_s = time.perf_counter() - t0
        n_classes = batch.n_classes

        # Object arm: same seed under the kill-switch — materialise every
        # Application and assemble through the per-app legacy branch.
        object_comp = ScenarioCompilation(servers, latency, carbon)
        with _columnar_disabled():
            t0 = time.perf_counter()
            apps = list(
                make_generator().generate_batch(0, HOUR, n_arrivals=N_APPS)
                .applications)
            object_problem = object_comp.build_problem(apps, HOUR)
            object_s = time.perf_counter() - t0

    bench_once(run_both)

    # The determinism contract: identical ids, bit-identical tensors.
    assert [a.app_id for a in columnar_problem.applications] == \
        [a.app_id for a in object_problem.applications]
    np.testing.assert_array_equal(columnar_problem.latency_ms,
                                  object_problem.latency_ms)
    np.testing.assert_array_equal(columnar_problem.energy_j,
                                  object_problem.energy_j)

    speedup = object_s / max(columnar_s, 1e-9)
    stats = columnar_comp.cache_stats()
    rss_mb = peak_rss_mb()
    print(f"\nworkload substrate ({N_SITES} servers x {N_APPS} apps, "
          f"{n_classes} classes): object {object_s:.3f} s, "
          f"columnar {columnar_s:.3f} s, speedup {speedup:.2f}x")
    print(f"class compression {N_APPS / max(n_classes, 1):.0f}x, "
          f"cache {stats['row_bytes'] / 1e6:.1f} MB "
          f"({stats['row_evictions']} evictions), peak RSS {rss_mb:.0f} MB")
    append_bench_record(ARTIFACT, "workload_substrate", {
        "scale": "smoke" if _SMOKE else "full",
        "size": [N_SITES, N_APPS],
        "n_classes": n_classes,
        "object_s": round(object_s, 4),
        "columnar_s": round(columnar_s, 4),
        "speedup": round(speedup, 2),
        "cache_row_bytes": stats["row_bytes"],
        "cache_row_evictions": stats["row_evictions"],
        "peak_rss_mb": round(rss_mb, 1),
    })

    assert n_classes < N_APPS
    if not _SMOKE:
        assert speedup >= COLUMNAR_SPEEDUP_FLOOR, (
            f"columnar substrate speedup {speedup:.2f}x is below the "
            f"{COLUMNAR_SPEEDUP_FLOOR}x floor at {N_APPS} apps")
