"""Benchmark: the hierarchical cluster-then-refine tier vs the flat compiled path.

At planetary footprints the flat compiled path materialises apps × servers
dense tensors; the hierarchical tier (:mod:`repro.solver.hierarchy`) solves a
coarse apps × regions aggregate, refines each region's restricted sub-problem,
and spills the remainder — never touching an apps × servers cell. This
benchmark races the two on the same ≥4k-server planetary instance (the
largest scale the flat path can still run under the dense-cell budget, so the
race is measurable) and asserts the hierarchy is >= 3x faster.

The decomposition is *not* free: the coarse pass routes each application by
the optimistic per-region minimum, so refinement lands on a worse objective
than the flat solve. That gap is science, not noise — the trajectory record
carries the flat and refined carbon side by side, plus the coarse-vs-refined
gap and the process peak RSS, so the cost of going hierarchical stays visible
across PRs in ``BENCH_cdn_pipeline.json``.
"""

from __future__ import annotations

import os
import resource
import time
from pathlib import Path

from bench_util import append_bench_record
from repro.core.objective import ObjectiveKind
from repro.experiments.planetary_sweep import build_planetary_substrate
from repro.solver.compile import ScenarioCompilation
from repro.solver.config import SolverConfig
from repro.solver.hierarchy import build_region_plan, solve_hierarchical
from repro.solver.registry import solve as registry_solve
from repro.workloads.generator import ApplicationGenerator

#: Where the timing trajectory is appended (repo root), shared with the
#: pipeline benchmarks.
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_cdn_pipeline.json"

_SMOKE = os.environ.get("CDN_PIPELINE_BENCH_SCALE", "").lower() == "smoke"

#: The issue's acceptance scale: >= 4k servers, flat still under the
#: dense-cell budget so both sides can actually run.
N_SITES = 256 if _SMOKE else 4096
N_APPS = 512 if _SMOKE else 8192
N_REGIONS = 8 if _SMOKE else 32
HOUR = 4700

#: Required speedup of the hierarchical tier over the flat compiled path.
HIERARCHY_SPEEDUP_FLOOR = 3.0


def test_bench_hierarchy_vs_flat(bench_once):
    fleet, latency, carbon = build_planetary_substrate(N_SITES, seed=0)
    servers = fleet.servers()
    generator = ApplicationGenerator(
        sites=fleet.sites(), latency_slo_ms=40.0,
        mean_arrivals_per_batch=float(N_APPS), duration_hours=1.0, seed=0)
    applications = list(
        generator.generate_batch(0, HOUR, n_arrivals=N_APPS).applications)

    # Fresh compilations per side: the class-row caches warm up during either
    # solve, and sharing one instance would hand the second runner a head
    # start.
    flat_s = hier_s = 0.0
    flat_solution = None
    outcome = None

    def run_both():
        nonlocal flat_s, hier_s, flat_solution, outcome
        flat_comp = ScenarioCompilation(servers, latency, carbon)
        t0 = time.perf_counter()
        problem = flat_comp.build_problem(applications, HOUR)
        flat_solution = registry_solve(problem, backend="greedy",
                                       objective=ObjectiveKind.CARBON)
        flat_s = time.perf_counter() - t0

        hier_comp = ScenarioCompilation(servers, latency, carbon)
        t0 = time.perf_counter()
        plan = build_region_plan(fleet.sites(), fleet.site_coordinates(),
                                 N_REGIONS, seed=0)
        outcome = solve_hierarchical(
            hier_comp, applications, plan, hour=HOUR,
            objective=ObjectiveKind.CARBON,
            config=SolverConfig(hierarchy_regions=N_REGIONS), seed=0)
        hier_s = time.perf_counter() - t0

    bench_once(run_both)

    speedup = flat_s / max(hier_s, 1e-9)
    flat_carbon_g = flat_solution.total_carbon_g()
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    print(f"\nhierarchy ({N_SITES} servers x {N_APPS} apps, "
          f"{N_REGIONS} regions): flat {flat_s:.3f} s, "
          f"hierarchical {hier_s:.3f} s, speedup {speedup:.2f}x")
    print(f"carbon: flat {flat_carbon_g:.1f} g, "
          f"refined {outcome.refined_objective:.1f} g "
          f"(coarse/refined gap {outcome.objective_gap:.1f} g, "
          f"{outcome.n_spilled} spilled), peak RSS {peak_rss_mb:.0f} MB")
    append_bench_record(ARTIFACT, "hierarchy_vs_flat", {
        "scale": "smoke" if _SMOKE else "full",
        "size": [N_SITES, N_APPS],
        "n_regions": N_REGIONS,
        "flat_s": round(flat_s, 4),
        "hierarchical_s": round(hier_s, 4),
        "speedup": round(speedup, 2),
        "flat_carbon_g": round(flat_carbon_g, 2),
        "refined_carbon_g": round(outcome.refined_objective, 2),
        "coarse_refined_gap_g": round(outcome.objective_gap, 2),
        "n_placed": outcome.n_placed,
        "n_spilled": outcome.n_spilled,
        "peak_rss_mb": round(peak_rss_mb, 1),
    })

    assert outcome.n_placed > 0
    assert len(flat_solution.placements) > 0
    if not _SMOKE:
        assert speedup >= HIERARCHY_SPEEDUP_FLOOR, (
            f"hierarchical tier speedup {speedup:.2f}x is below the "
            f"{HIERARCHY_SPEEDUP_FLOOR}x floor at {N_SITES} servers")
