"""Benchmark regenerating Figure 16 (carbon-energy trade-off, Equation 8)."""

import numpy as np

from repro.experiments import fig16_tradeoff


def test_bench_fig16_tradeoff(bench_once):
    result = bench_once(fig16_tradeoff.run)
    print("\n" + fig16_tradeoff.report(result))
    for utilization, data in result["scenarios"].items():
        carbon = np.array(data["carbon_g"])
        energy = np.array(data["energy_j"])
        # alpha=0 minimises carbon, alpha=1 minimises energy.
        assert carbon[0] <= carbon[-1] + 1e-6, utilization
        assert energy[-1] <= energy[0] + 1e-6, utilization
        # CarbonEdge at alpha=0 beats the Latency-aware baseline on carbon.
        assert carbon[0] < data["baseline_carbon_g"]
        # High utilisation moves much more carbon/energy than low utilisation.
    low_total = result["scenarios"]["low"]["carbon_g"][0]
    high_total = result["scenarios"]["high"]["carbon_g"][0]
    assert high_total > low_total
