"""Benchmark regenerating Figure 1 (energy mix + 4-region carbon intensity)."""

from repro.experiments import fig01_energy_mix


def test_bench_fig01_energy_mix(bench_once):
    result = bench_once(fig01_energy_mix.run)
    print("\n" + fig01_energy_mix.report(result))
    # Shape check: Ontario must be the greenest of the four zones, Poland the dirtiest.
    means = result["means"]
    assert means["CA-ON"] < means["US-CA"] < means["EU-PL"]
    assert means["US-NY"] < means["EU-PL"]
