"""Benchmark regenerating Figure 2 (mesoscale carbon-intensity snapshots)."""

from repro.experiments import fig02_snapshots


def test_bench_fig02_snapshots(bench_once):
    result = bench_once(fig02_snapshots.run)
    print("\n" + fig02_snapshots.report(result))
    # Every region must show a meaningful spread at the snapshot hour.
    for region, ratio in result["spread_ratios"].items():
        assert ratio > 1.5, f"{region}: expected >1.5x spatial spread, got {ratio:.2f}"
    # Central EU shows the largest spread (paper: 19.5x vs 2.2-7.9x elsewhere).
    assert result["spread_ratios"]["Central EU"] == max(result["spread_ratios"].values())
