"""Shared helpers for the benchmark harness artifacts.

Every benchmark appends its measurements to a repo-root JSON trajectory file
(``BENCH_*.json``) so timing history survives across sessions. The appenders
used to be copy-pasted per file with drifting conventions (some records
carried a ``benchmark`` name, some not; none carried an ordering key);
:func:`append_bench_record` is the single shared implementation. Every entry
it writes carries the ``benchmark`` name and a monotone ``seq`` number
(1 + the highest existing ``seq`` in the file), so consumers can name and
order records without guessing from field shapes. Pre-existing entries are
left exactly as they are — the PR 4 era baseline detection in
``test_bench_cdn_pipeline`` depends on old records *not* having these fields.
"""

from __future__ import annotations

import json
import resource
from pathlib import Path


def peak_rss_mb() -> float:
    """Process peak RSS in MB (``ru_maxrss`` is KiB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def load_bench_history(artifact: Path) -> list:
    """The artifact's record list (empty when missing or unparsable)."""
    if not artifact.exists():
        return []
    try:
        history = json.loads(artifact.read_text())
    except (ValueError, OSError):
        return []
    return history if isinstance(history, list) else []


def append_bench_record(artifact: Path, benchmark: str, record: dict,
                        sort_keys: bool = False) -> dict:
    """Append one named, sequence-numbered record to a trajectory artifact.

    Parameters
    ----------
    artifact:
        The ``BENCH_*.json`` file (created when missing).
    benchmark:
        Benchmark name stamped on the entry (callers must not put their own
        ``benchmark`` key in ``record``).
    record:
        The measurement payload.
    sort_keys:
        Serialise with sorted keys (``BENCH_serving.json``'s convention).

    Returns the appended entry (with its assigned ``seq``).
    """
    if "benchmark" in record or "seq" in record:
        raise ValueError(
            "record must not carry its own 'benchmark'/'seq' keys; "
            "they are assigned here")
    history = load_bench_history(artifact)
    seq = 1 + max((int(r.get("seq", 0)) for r in history if isinstance(r, dict)),
                  default=0)
    entry = {"benchmark": benchmark, "seq": seq, **record}
    history.append(entry)
    artifact.write_text(json.dumps(history, indent=2, sort_keys=sort_keys) + "\n")
    return entry
