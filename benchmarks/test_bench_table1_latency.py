"""Benchmark regenerating Table 1 (pairwise one-way latencies)."""

from repro.experiments import table1_latency


def test_bench_table1_latency(bench_once):
    result = bench_once(table1_latency.run)
    print("\n" + table1_latency.report(result))
    florida, central_eu = result["Florida"], result["Central EU"]
    # Paper: Florida pairs are 1.9-7.2 ms; Central EU pairs reach ~16 ms.
    assert 0.5 <= florida["mean_ms"] <= 8.0
    assert florida["max_ms"] <= 12.0
    assert central_eu["max_ms"] <= 25.0
    assert central_eu["mean_ms"] > florida["mean_ms"]
