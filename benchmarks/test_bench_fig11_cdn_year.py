"""Benchmark regenerating Figure 11 (year-long CDN-scale savings)."""

from repro.experiments import fig11_cdn_year


def test_bench_fig11_cdn_year(bench_once):
    result = bench_once(fig11_cdn_year.run)
    print("\n" + fig11_cdn_year.report(result))
    summary = result["summary"]
    # Paper: 49.5% savings in the US, 67.8% in Europe; Europe saves more.
    assert summary["US"]["carbon_savings_pct"] >= 20.0
    assert summary["EU"]["carbon_savings_pct"] >= 50.0
    assert summary["EU"]["carbon_savings_pct"] > summary["US"]["carbon_savings_pct"]
    # Paper: average round-trip latency increase stays under ~11 ms with a 20 ms limit.
    for continent in ("US", "EU"):
        assert summary[continent]["latency_increase_rtt_ms"] <= 20.0
        # CarbonEdge shifts load toward lower-intensity zones than Latency-aware.
        assert (summary[continent]["load_intensity_p50_carbon_edge"]
                <= summary[continent]["load_intensity_p50_latency_aware"])
