"""Benchmark regenerating Figure 13 (seasonality of savings and placements)."""

import numpy as np

from repro.experiments import fig13_seasonality


def test_bench_fig13_seasonality(bench_once):
    result = bench_once(fig13_seasonality.run)
    print("\n" + fig13_seasonality.report(result))
    for continent, series in result["monthly"].items():
        savings = np.array(series["savings_pct"])
        assert len(savings) == 12
        # Savings stay positive year-round and vary with the seasons
        # (paper: ~3%-points spread in the US, ~10%-points in Europe).
        assert np.all(savings > 0)
        assert 0.1 <= float(savings.max() - savings.min()) <= 40.0
    # Placement counts at the focus cities change across months (paper: up to 3x).
    swings = [max(v) - min(v) for v in result["placements_by_city"].values() if max(v) > 0]
    assert any(s > 0 for s in swings)
