"""Benchmark regenerating Figure 3 (yearly mean carbon intensity per region)."""

from repro.experiments import fig03_yearly


def test_bench_fig03_yearly(bench_once):
    result = bench_once(fig03_yearly.run)
    print("\n" + fig03_yearly.report(result))
    # Paper: 2.7x spread in the West US, 10.8x in Central EU.
    assert 1.8 <= result["West US"]["ratio"] <= 4.0
    assert 6.0 <= result["Central EU"]["ratio"] <= 16.0
    assert result["Central EU"]["ratio"] > result["West US"]["ratio"]
