"""Ablation: incremental batch size of the placement service.

The prototype batches deployment requests (e.g. every 5 minutes) and places
each batch with Algorithm 1. This ablation compares placing applications one at
a time against batching them, on the same arrival stream: batching can only
help (the optimiser sees more of the demand at once), and both must remain
feasible because the incremental placer carries capacity state forward.
"""

from repro.carbon.service import CarbonIntensityService
from repro.core.incremental import IncrementalPlacer
from repro.core.policies.carbon_edge import CarbonEdgePolicy
from repro.datasets.regions import CENTRAL_EU
from repro.experiments.common import EXPERIMENT_SEED, region_latency, region_traces
from repro.cluster.fleet import build_regional_fleet
from repro.workloads.generator import ApplicationGenerator


def _run_stream(batch_size: int, n_apps: int = 30) -> float:
    fleet = build_regional_fleet(CENTRAL_EU, servers_per_site=2)
    carbon = CarbonIntensityService(traces=region_traces(CENTRAL_EU.name, seed=EXPERIMENT_SEED))
    placer = IncrementalPlacer(fleet=fleet, latency=region_latency(CENTRAL_EU.name),
                               carbon=carbon, policy=CarbonEdgePolicy(), horizon_hours=24.0)
    generator = ApplicationGenerator(sites=fleet.sites(), workload_mix={"ResNet50": 1.0},
                                     mean_arrivals_per_batch=1.0, latency_slo_ms=25.0,
                                     seed=EXPERIMENT_SEED)
    apps = list(generator.generate_batch(0, 0, n_arrivals=n_apps).applications)
    total = 0.0
    for start in range(0, len(apps), batch_size):
        batch = apps[start:start + batch_size]
        solution = placer.place_batch(batch, hour=4000)
        total += solution.total_carbon_g()
    return total


def test_bench_ablation_batch(bench_once):
    def run_all():
        return {size: _run_stream(size) for size in (1, 5, 15, 30)}

    results = bench_once(run_all)
    print("\nAblation (incremental batch size): total carbon, grams")
    for size, carbon in results.items():
        print(f"  batch={size:2d}  {carbon:10.1f} g")
    # Larger batches never do meaningfully worse than per-arrival placement.
    assert results[30] <= results[1] * 1.05
