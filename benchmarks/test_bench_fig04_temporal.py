"""Benchmark regenerating Figure 4 (spatio-temporal variation in the West US)."""

from repro.experiments import fig04_temporal


def test_bench_fig04_temporal(bench_once):
    result = bench_once(fig04_temporal.run)
    print("\n" + fig04_temporal.report(result))
    # Paper: Flagstaff swings ~300 g/kWh within a day; Kingman ~200 g/kWh across seasons.
    assert result["diurnal_range"]["Flagstaff"] > 100.0
    assert result["seasonal_range"]["Kingman"] > 50.0
    # Every zone shows some diurnal structure.
    assert all(v > 0 for v in result["diurnal_range"].values())
