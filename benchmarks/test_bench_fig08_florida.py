"""Benchmark regenerating Figure 8 (Florida testbed intensity + emissions)."""

from repro.experiments import fig08_florida


def test_bench_fig08_florida(bench_once):
    result = bench_once(fig08_florida.run)
    print("\n" + fig08_florida.report(result))
    runs = result["runs"]
    latency_aware = runs["Latency-aware"]
    carbon_edge = runs["CarbonEdge"]
    # CarbonEdge consolidates every application in a single (greenest) zone.
    assert len(set(carbon_edge.hosting_site.values())) == 1
    # Latency-aware keeps every application at its own site.
    assert len(set(latency_aware.hosting_site.values())) == 5
    # And saves carbon overall.
    assert carbon_edge.total_emissions_g < latency_aware.total_emissions_g
