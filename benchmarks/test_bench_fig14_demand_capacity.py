"""Benchmark regenerating Figure 14 (demand and capacity distributions)."""

from repro.experiments import fig14_demand_capacity


def test_bench_fig14_demand_capacity(bench_once):
    result = bench_once(fig14_demand_capacity.run, n_epochs=3)
    print("\n" + fig14_demand_capacity.report(result))
    rows = {(r["continent"], r["scenario"]): r for r in result["rows"]}
    for continent in ("US", "EU"):
        homo = rows[(continent, "Homo")]["carbon_savings_pct"]
        demand = rows[(continent, "Demand")]["carbon_savings_pct"]
        capacity = rows[(continent, "Capacity")]["carbon_savings_pct"]
        # All scenarios keep substantial savings…
        assert homo > 10.0 and demand > 10.0 and capacity > 10.0
        # …and skewing demand/capacity never *increases* savings by a large margin
        # (the paper reports reductions of up to ~6%).
        assert demand <= homo + 15.0
        assert capacity <= homo + 15.0
