"""Benchmark regenerating Figure 9 (Florida response times)."""

from repro.experiments import fig09_response


def test_bench_fig09_response(bench_once):
    result = bench_once(fig09_response.run)
    print("\n" + fig09_response.report(result))
    # Paper: response-time increases stay below ~10 ms (avg 6.6 ms) because the
    # data centers are close together. Allow headroom for the synthetic latency model.
    assert result["mean_increase_ms"] <= 15.0
    assert result["max_increase_ms"] <= 25.0
    # The increase is non-negative on average (CarbonEdge never reduces latency).
    assert result["mean_increase_ms"] >= 0.0
