"""The scenario-lifetime compilation tier: bit-identity vs the cold rebuild.

The contract under test (see the scenario-lifetime section of
:mod:`repro.solver.compile`): for every epoch, the problem tensors, the epoch
compilation's report and dense cost tensors, and every simulation artifact
must be byte-identical whether assembled through the scenario tier's delta
path or rebuilt cold per epoch — the tier is a pure performance layer.
"""

from __future__ import annotations

import contextlib
import os

import numpy as np
import pytest

from repro.core.objective import ObjectiveKind
from repro.core.problem import PlacementProblem
from repro.simulator.cdn import CDNSimulator, clear_substrate_cache
from repro.simulator.scenario import CDNScenario
from repro.solver.compile import (
    SCENARIO_TIER_ENV,
    clear_scenario_compilations,
    compile_placement,
    compile_scenario,
    scenario_tier_enabled,
)

SCENARIO_KWARGS = dict(continent="EU", n_epochs=2, max_sites=8, seed=0)


@contextlib.contextmanager
def tier_disabled():
    os.environ[SCENARIO_TIER_ENV] = "1"
    try:
        yield
    finally:
        os.environ.pop(SCENARIO_TIER_ENV, None)


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_substrate_cache()
    yield
    clear_substrate_cache()


def _compiled_epochs(**scenario_kwargs):
    scenario = CDNScenario(**{**SCENARIO_KWARGS, **scenario_kwargs})
    simulator = CDNSimulator(scenario=scenario)
    out = []
    for epoch in range(scenario.n_epochs):
        problem = simulator.epoch_problem(epoch)
        out.append((problem, compile_placement(problem)))
    return out


def _assert_problems_identical(cold: PlacementProblem, fast: PlacementProblem):
    for name in ("latency_ms", "energy_j", "supported", "intensity",
                 "base_power_w", "current_power"):
        a, b = getattr(cold, name), getattr(fast, name)
        assert a.dtype == b.dtype and np.array_equal(a, b), name
    assert cold.horizon_hours == fast.horizon_hours
    assert cold.resource_keys() == fast.resource_keys()
    assert np.array_equal(cold.capacity_dense(), fast.capacity_dense())
    assert np.array_equal(cold.demand_dense(), fast.demand_dense())
    assert np.array_equal(cold.feasible_mask(), fast.feasible_mask())
    assert np.array_equal(cold.nearest_feasible_ms(), fast.nearest_feasible_ms())
    for ca, fa in zip(cold.capacities, fast.capacities):
        assert set(ca.keys()) == set(fa.keys())
        assert all(ca.get(k) == fa.get(k) for k in ca.keys())
    for ci, fi in zip(cold.demands, fast.demands):
        for cv, fv in zip(ci, fi):
            assert set(cv.keys()) == set(fv.keys())
            assert all(cv.get(k) == fv.get(k) for k in cv.keys())


def test_scenario_tier_env_gate():
    assert scenario_tier_enabled()
    with tier_disabled():
        assert not scenario_tier_enabled()
    assert scenario_tier_enabled()


def test_epoch_tensors_bit_identical_to_cold_rebuild():
    with tier_disabled():
        cold = _compiled_epochs()
    clear_substrate_cache()
    fast = _compiled_epochs()
    for (pc, cc), (pf, cf) in zip(cold, fast):
        _assert_problems_identical(pc, pf)
        # The pre-seeded feasibility report vs the cold vectorised filter.
        assert np.array_equal(cc.report.mask, cf.report.mask)
        assert cc.report.unplaceable == cf.report.unplaceable
        assert cc.report.useful_servers == cf.report.useful_servers
        assert np.array_equal(cc.nearest_feasible_ms, cf.nearest_feasible_ms)
        assert cc.n_nearest_unreachable == cf.n_nearest_unreachable
        # Dense cost tensors per objective (what every backend solves over).
        for kind in (ObjectiveKind.CARBON, ObjectiveKind.ENERGY,
                     ObjectiveKind.LATENCY, ObjectiveKind.INTENSITY):
            dc, df = cc.dense(kind), cf.dense(kind)
            assert dc.keys == df.keys
            for attr in ("demand", "capacity", "mask", "cost", "raw_assign",
                         "activation", "initially_on"):
                a, b = getattr(dc, attr), getattr(df, attr)
                assert a.dtype == b.dtype and np.array_equal(a, b), (kind, attr)


def test_simulation_artifacts_identical_to_cold_rebuild():
    scenario = CDNScenario(**SCENARIO_KWARGS)
    with tier_disabled():
        cold = CDNSimulator(scenario=scenario).run()
    clear_substrate_cache()
    fast = CDNSimulator(scenario=scenario).run()
    assert cold.policies() == fast.policies()
    for policy in cold.policies():
        for rc, rf in zip(cold.records[policy], fast.records[policy]):
            assert rc.carbon_g == rf.carbon_g
            assert rc.energy_j == rf.energy_j
            assert rc.mean_one_way_latency_ms == rf.mean_one_way_latency_ms
            assert rc.latency_increase_one_way_ms == rf.latency_increase_one_way_ms
            assert rc.n_placed == rf.n_placed
            assert rc.n_unplaced == rf.n_unplaced
            assert rc.apps_per_site == rf.apps_per_site
            assert rc.hosting_intensities == rf.hosting_intensities
            assert rc.n_nearest_unreachable == rf.n_nearest_unreachable


def test_pristine_epochs_are_memoised_per_delta():
    first = _compiled_epochs()
    second = _compiled_epochs()  # same scenario, substrate cache warm
    for (_, ca), (_, cb) in zip(first, second):
        assert ca is cb


def test_compile_scenario_memoised_on_substrate_identity():
    scenario = CDNScenario(**SCENARIO_KWARGS)
    sim = CDNSimulator(scenario=scenario)
    a = compile_scenario(sim.fleet.servers(), sim.latency, sim.carbon)
    b = compile_scenario(sim.fleet.servers(), sim.latency, sim.carbon)
    assert a is b
    # A second simulator over the same scenario shares the substrate — and
    # therefore the scenario compilation.
    sim2 = CDNSimulator(scenario=scenario)
    assert sim2.scenario_compilation() is a
    clear_scenario_compilations()
    assert compile_scenario(sim.fleet.servers(), sim.latency, sim.carbon) is not a


def test_mismatched_substrate_falls_back_to_cold_build():
    scenario = CDNScenario(**SCENARIO_KWARGS)
    sim = CDNSimulator(scenario=scenario)
    substrate = sim.scenario_compilation()
    batch = sim.generator.generate_batch(0, 0)
    apps = list(batch.applications)
    # Dropping a server breaks the element-wise identity check, so build()
    # must take the cold path — and still produce a correct problem.
    servers = sim.fleet.servers()[:-1]
    assert not substrate.matches(servers, sim.latency, sim.carbon)
    problem = PlacementProblem.build(
        applications=apps, servers=servers, latency=sim.latency,
        carbon=sim.carbon, hour=0, horizon_hours=1.0, substrate=substrate)
    assert problem.n_servers == len(servers)
    assert problem._compilation is None  # cold builds compile lazily


def test_non_pristine_delta_reads_live_fleet_state():
    scenario = CDNScenario(**SCENARIO_KWARGS)
    sim = CDNSimulator(scenario=scenario)
    problem0 = sim.epoch_problem(0)  # registers classes, resets the fleet
    # Dirty the fleet: allocate one placed pair and power another server off.
    report = compile_placement(problem0).report
    i = next(i for i in range(problem0.n_applications)
             if len(report.candidates_for(i)) > 0)
    j = int(report.candidates_for(i)[0])
    app = problem0.applications[i]
    sim.fleet.servers()[j].allocate(app.app_id, problem0.demands[i][j])
    off = (j + 1) % problem0.n_servers
    sim.fleet.servers()[off].power_off()

    apps = list(problem0.applications)
    fast = PlacementProblem.build(
        applications=apps, servers=sim.fleet.servers(), latency=sim.latency,
        carbon=sim.carbon, hour=7, horizon_hours=2.0,
        substrate=sim.scenario_compilation())
    with tier_disabled():
        cold = PlacementProblem.build(
            applications=apps, servers=sim.fleet.servers(), latency=sim.latency,
            carbon=sim.carbon, hour=7, horizon_hours=2.0)
    _assert_problems_identical(cold, fast)
    assert fast.current_power[off] == 0.0
    # The capacity-dependent report is not served from the pristine rows.
    rc = compile_placement(cold).report
    rf = compile_placement(fast).report
    assert np.array_equal(rc.mask, rf.mask)
    assert rc.unplaceable == rf.unplaceable
    # Non-pristine deltas are never memoised: a second build re-reads state.
    again = PlacementProblem.build(
        applications=apps, servers=sim.fleet.servers(), latency=sim.latency,
        carbon=sim.carbon, hour=7, horizon_hours=2.0,
        substrate=sim.scenario_compilation())
    assert again is not fast


def test_shard_parallel_fraction_observable_in_records():
    # Enough arrivals (~48 > MIN_SHARD_APPS) for the planner to draw a plan.
    kwargs = dict(SCENARIO_KWARGS, n_epochs=1, apps_per_site_per_epoch=6.0)
    serial = CDNSimulator(scenario=CDNScenario(**kwargs)).run()
    sharded = CDNSimulator(
        scenario=CDNScenario(**kwargs, epoch_shards=2)).run()
    for policy in serial.policies():
        for record in serial.records[policy]:
            assert record.shard_parallel_fraction is None
        assert serial.mean_shard_parallel_fraction(policy) is None
        fractions = [r.shard_parallel_fraction for r in sharded.records[policy]]
        assert all(f is not None and 0.0 <= f <= 1.0 for f in fractions)
        mean = sharded.mean_shard_parallel_fraction(policy)
        assert mean == pytest.approx(float(np.mean(fractions)))
        # Sharding is an execution knob: the science is unchanged.
        assert serial.total_carbon_g(policy) == sharded.total_carbon_g(policy)
