"""Replay-parity regression: the service must reproduce the batch simulator.

The correctness anchor of the serving mode: a :class:`PlacementService` run
driven by events derived from a fig11-style scenario must produce
*bit-identical* placement decisions to the batch
:meth:`~repro.simulator.cdn.CDNSimulator.run` loop — across every default
policy, across intra-epoch shard counts, and with the scenario-compilation
tier force-disabled (the kill-switch sends both loops down the cold rebuild
path, and parity must still hold).
"""

from __future__ import annotations

import pytest

from repro.experiments.common import EXPERIMENT_SEED
from repro.serving.parity import canonical_records, check_replay_parity
from repro.serving.service import PlacementService
from repro.simulator.cdn import CDNSimulator
from repro.simulator.scenario import CDNScenario


def _smoke_scenario(epoch_shards: int = 1, n_epochs: int = 1) -> CDNScenario:
    """The fig11 smoke configuration (EU side), as used by CI."""
    return CDNScenario(continent="EU", n_epochs=n_epochs, max_sites=10,
                       apps_per_site_per_epoch=6.0, epoch_shards=epoch_shards,
                       seed=EXPERIMENT_SEED)


@pytest.mark.parametrize("epoch_shards", [1, 2])
def test_replay_parity_across_default_policies(epoch_shards):
    """Byte-diff every default policy's decisions, serial and sharded."""
    report = check_replay_parity(_smoke_scenario(epoch_shards=epoch_shards))
    assert [c.policy for c in report.checks] == [
        "Latency-aware", "Energy-aware", "Intensity-aware", "CarbonEdge"]
    for check in report.checks:
        assert check.service_json == check.batch_json, (
            f"{check.policy} decisions diverged from the batch loop")
        # The canonical payload must actually carry the decisions.
        assert '"assignments":{"' in check.service_json
    assert report.ok


def test_replay_parity_with_scenario_tier_disabled(monkeypatch):
    """The kill-switch sends both loops down cold rebuilds; parity holds."""
    monkeypatch.setenv("CARBON_EDGE_DISABLE_SCENARIO_TIER", "1")
    report = check_replay_parity(_smoke_scenario())
    assert report.ok, report.summary()


def test_replay_parity_over_multiple_epochs():
    """Warm compilation threading across epochs must not perturb decisions."""
    report = check_replay_parity(_smoke_scenario(n_epochs=2))
    assert report.ok, report.summary()
    for check in report.checks:
        assert check.service_json.count('"epoch":') == 2


def test_canonical_records_exclude_wall_clock():
    """solve_time_s is measurement, not decision — it must not leak in."""
    scenario = _smoke_scenario()
    result = CDNSimulator(scenario=scenario).run(record_assignments=True)
    payload = canonical_records(result, "CarbonEdge")
    assert "solve_time_s" not in payload
    assert '"assignments"' in payload and '"hosting_intensities"' in payload


def test_replay_report_metrics_mirror_the_epochs():
    """Replay mode's ServingMetrics: one 'epoch' decision per scenario epoch."""
    scenario = _smoke_scenario(n_epochs=2)
    service = PlacementService.from_scenario(scenario)
    report = service.run_replay()
    assert report.metrics.n_events == 2
    assert [d.kind for d in report.metrics.decisions] == ["epoch", "epoch"]
    assert report.metrics.n_batch_solves == 2
    assert report.result is not None
    assert len(report.result.records[service.policy.name]) == 2
    # Digest is a pure function of the decisions: a fresh run reproduces it.
    again = PlacementService.from_scenario(scenario).run_replay()
    assert again.metrics.decision_digest() == report.metrics.decision_digest()
