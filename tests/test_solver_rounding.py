"""LP rounding / repair tests."""

import pytest

from repro.solver.milp import MILPModel
from repro.solver.result import SolveResult, SolveStatus
from repro.solver.rounding import fractional_binaries, integrality_gap, round_and_repair


def _assignment_model():
    """Two apps, two servers, each server holds one app (capacity 1)."""
    model = MILPModel()
    for i in range(2):
        for j in range(2):
            model.add_binary(f"x[{i},{j}]")
    for j in range(2):
        model.add_binary(f"y[{j}]", lower=1.0)
    for i in range(2):
        model.add_constraint(f"assign[{i}]", {f"x[{i},0]": 1.0, f"x[{i},1]": 1.0},
                             rhs=1.0, equality=True)
    for j in range(2):
        model.add_constraint(f"cap[{j}]", {f"x[0,{j}]": 1.0, f"x[1,{j}]": 1.0,
                                           f"y[{j}]": -1.0}, rhs=0.0)
    model.set_objective({f"x[{i},{j}]": 1.0 + i + j for i in range(2) for j in range(2)})
    return model


def test_round_and_repair_respects_groups_and_capacity():
    model = _assignment_model()
    fractional = {"x[0,0]": 0.5, "x[0,1]": 0.5, "x[1,0]": 0.5, "x[1,1]": 0.5,
                  "y[0]": 1.0, "y[1]": 1.0}
    groups = [["x[0,0]", "x[0,1]"], ["x[1,0]", "x[1,1]"]]
    result = round_and_repair(model, fractional, groups=groups)
    assert result.status is SolveStatus.FEASIBLE
    assert model.is_feasible(result.values)
    # Exactly one server per app, and not both on the same server.
    assert result.value("x[0,0]") + result.value("x[0,1]") == pytest.approx(1.0)
    assert result.value("x[1,0]") + result.value("x[1,1]") == pytest.approx(1.0)
    assert result.value("x[0,0]") + result.value("x[1,0]") <= 1.0 + 1e-9


def test_round_and_repair_reports_infeasible_group():
    model = MILPModel()
    model.add_binary("x")
    model.add_constraint("never", {"x": 1.0}, rhs=-1.0)
    model.set_objective({"x": 1.0})
    result = round_and_repair(model, {"x": 0.9}, groups=[["x"]])
    assert result.status is SolveStatus.INFEASIBLE


def test_round_and_repair_keeps_continuous_values():
    model = MILPModel()
    model.add_variable("c", lower=0.0, upper=10.0)
    model.add_binary("b")
    model.set_objective({"c": 1.0, "b": 1.0})
    result = round_and_repair(model, {"c": 2.5, "b": 0.7})
    assert result.value("c") == pytest.approx(2.5)
    assert result.value("b") in (0.0, 1.0)


def test_fractional_binaries_ordering():
    values = {"a": 0.5, "b": 0.9, "c": 1.0}
    ranked = fractional_binaries(values, ["a", "b", "c"])
    assert ranked == ["a", "b"]  # most fractional first, integral dropped


def test_integrality_gap():
    assert integrality_gap({"a": 1.0, "b": 0.3}, ["a", "b"]) == pytest.approx(0.3)
    assert integrality_gap({}, []) == 0.0


def test_solve_result_helpers():
    result = SolveResult(status=SolveStatus.OPTIMAL, objective=1.0, values={"x": 0.9})
    assert result.has_solution
    assert result.binary_value("x")
    assert not result.binary_value("missing")
    assert SolveResult(status=SolveStatus.INFEASIBLE).has_solution is False
    assert SolveStatus.FEASIBLE.has_solution and not SolveStatus.ERROR.has_solution
