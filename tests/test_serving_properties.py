"""Property-based invariants of the serving loop (hypothesis).

The online service's replay-parity contract stands on two determinism pillars:
the event queue must be a *stable* priority queue — equal ``(time, priority)``
keys pop in insertion (FIFO) order — and the load generator's stream must be a
pure function of its seed. These properties hammer both, plus the envelope
invariant of the thinning-based shape synthesis, and the end-to-end property
that two service runs over the same stream produce byte-identical canonical
decision logs.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.serving.loadgen import SHAPES, LoadGenerator
from repro.serving.service import PlacementService, ServingConfig
from repro.simulator.events import Event, EventQueue
from repro.simulator.scenario import CDNScenario

# -- EventQueue: stable priority-queue order -----------------------------------

event_keys = st.lists(
    st.tuples(st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False),
              st.integers(0, 3)),
    min_size=0, max_size=50)


@given(keys=event_keys)
def test_pop_order_is_stable_sort_by_time_then_priority(keys):
    """Pop order == stable sort of insertion order by (time, priority).

    This *is* the FIFO tie-break guarantee: list.sort is stable, so events
    with equal keys appear in insertion order in the expected sequence, and
    the queue must reproduce exactly that.
    """
    queue = EventQueue()
    events = [Event(time_s=t, priority=p, payload=i)
              for i, (t, p) in enumerate(keys)]
    for event in events:
        queue.push(event)
    popped = []
    while not queue.empty:
        popped.append(queue.pop())
    expected = sorted(events, key=lambda e: (e.time_s, e.priority))
    assert [e.payload for e in popped] == [e.payload for e in expected]


@given(keys=event_keys, salt=st.randoms(use_true_random=False))
def test_unique_keys_pop_identically_for_any_insertion_order(keys, salt):
    """With unique (time, priority) keys the pop order ignores insertion order."""
    unique = list({(t, p): None for t, p in keys})
    shuffled = list(unique)
    salt.shuffle(shuffled)
    orders = []
    for sequence in (unique, shuffled):
        queue = EventQueue()
        for t, p in sequence:
            queue.push(Event(time_s=t, priority=p, payload=(t, p)))
        popped = []
        while not queue.empty:
            popped.append(queue.pop().payload)
        orders.append(popped)
    assert orders[0] == orders[1]


@given(times=st.lists(st.floats(0.0, 10.0, allow_nan=False,
                                allow_infinity=False),
                      min_size=1, max_size=30))
def test_equal_timestamps_preserve_fifo(times):
    """All events at one timestamp pop in exactly the order they were pushed."""
    queue = EventQueue()
    t = times[0]
    for i in range(len(times)):
        queue.push(Event(time_s=t, payload=i))
    popped = []
    while not queue.empty:
        popped.append(queue.pop().payload)
    assert popped == list(range(len(times)))


# -- LoadGenerator: determinism and shape envelope -----------------------------


@given(seed=st.integers(0, 2**31 - 1), shape=st.sampled_from(SHAPES),
       rate=st.floats(0.001, 0.05, allow_nan=False))
@settings(max_examples=25, deadline=None)
def test_load_stream_is_a_pure_function_of_the_seed(seed, shape, rate):
    streams = []
    for _ in range(2):
        load = LoadGenerator(sites=["a", "b", "c"], rate_per_s=rate,
                             shape=shape, mean_lifetime_s=1800.0, seed=seed)
        events = load.events(6 * 3600.0)
        streams.append([(e.time_s, e.kind,
                         e.payload if isinstance(e.payload, str)
                         else e.payload.app_id)
                        for e in events])
    assert streams[0] == streams[1]
    # Time-ordered, inside the horizon, and every departure follows its arrival.
    times = [t for t, _, _ in streams[0]]
    assert times == sorted(times)
    assert all(0.0 <= t < 6 * 3600.0 for t in times)
    arrivals = {app_id: t for t, kind, app_id in streams[0] if kind == "arrival"}
    for t, kind, app_id in streams[0]:
        if kind == "departure":
            assert app_id in arrivals and t >= arrivals[app_id]


@given(shape=st.sampled_from(SHAPES),
       t=st.floats(0.0, 7 * 86400.0, allow_nan=False))
def test_rate_never_exceeds_the_thinning_envelope(shape, t):
    load = LoadGenerator(sites=["a"], rate_per_s=0.02, shape=shape,
                         diurnal_amplitude=0.8, burst_multiplier=6.0)
    assert 0.0 <= load.rate_at(t) <= load.peak_rate() + 1e-12


# -- end-to-end: the serving loop's decisions are deterministic ----------------


def _live_decision_log(scenario: CDNScenario, seed: int) -> str:
    service = PlacementService.from_scenario(
        scenario, config=ServingConfig(batch_interval_s=300.0,
                                       resolve_interval_s=3600.0))
    load = LoadGenerator(sites=service.simulator.fleet.sites(),
                         rate_per_s=0.01, mean_lifetime_s=3600.0, seed=seed)
    report = service.run_live(load, duration_s=3 * 3600.0)
    return report.metrics.canonical_decision_log()


def test_service_decision_log_is_deterministic():
    """Two live runs over the same stream produce identical canonical bytes."""
    scenario = CDNScenario(continent="EU", max_sites=5, seed=3)
    first = _live_decision_log(scenario, seed=11)
    second = _live_decision_log(scenario, seed=11)
    assert first == second
    assert first != _live_decision_log(scenario, seed=12)
