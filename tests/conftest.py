"""Shared fixtures for the test suite.

Fixtures that are expensive to build (trace sets, latency matrices, fleets) are
session-scoped and use short trace horizons so the whole suite stays fast while
still exercising the real code paths.
"""

from __future__ import annotations

import pytest

from repro.carbon.service import CarbonIntensityService
from repro.carbon.synthetic import SyntheticTraceGenerator
from repro.cluster.fleet import build_regional_fleet
from repro.core.problem import PlacementProblem
from repro.datasets.cities import default_city_catalog
from repro.datasets.electricity_maps import default_zone_catalog
from repro.datasets.regions import CENTRAL_EU, FLORIDA
from repro.network.latency import build_latency_matrix
from repro.workloads.application import Application

#: Trace length used by most tests (one week keeps generation fast).
TEST_TRACE_HOURS = 7 * 24


@pytest.fixture(scope="session")
def city_catalog():
    """The default city catalogue."""
    return default_city_catalog()


@pytest.fixture(scope="session")
def zone_catalog():
    """The default 148-zone catalogue."""
    return default_zone_catalog()


@pytest.fixture(scope="session")
def florida_traces(zone_catalog):
    """One-week traces for the Florida region zones."""
    generator = SyntheticTraceGenerator(seed=3, n_hours=TEST_TRACE_HOURS)
    return generator.generate_set(zone_catalog.get(z) for z in FLORIDA.zone_ids())


@pytest.fixture(scope="session")
def central_eu_traces(zone_catalog):
    """One-week traces for the Central-EU region zones."""
    generator = SyntheticTraceGenerator(seed=3, n_hours=TEST_TRACE_HOURS)
    return generator.generate_set(zone_catalog.get(z) for z in CENTRAL_EU.zone_ids())


@pytest.fixture(scope="session")
def florida_latency(city_catalog):
    """Pairwise latency matrix over the Florida cities."""
    cities = FLORIDA.cities(city_catalog)
    names = [c.name for c in cities]
    return build_latency_matrix(names, city_catalog.coordinates_array(names),
                                countries=[c.state for c in cities])


@pytest.fixture(scope="session")
def central_eu_latency(city_catalog):
    """Pairwise latency matrix over the Central-EU cities."""
    cities = CENTRAL_EU.cities(city_catalog)
    names = [c.name for c in cities]
    return build_latency_matrix(names, city_catalog.coordinates_array(names),
                                countries=[c.country for c in cities])


@pytest.fixture
def florida_fleet():
    """A fresh Florida regional fleet (1 server per city, powered on)."""
    return build_regional_fleet(FLORIDA)


@pytest.fixture
def central_eu_fleet():
    """A fresh Central-EU regional fleet (1 server per city, powered on)."""
    return build_regional_fleet(CENTRAL_EU)


@pytest.fixture
def florida_carbon(florida_traces):
    """Carbon-intensity service replaying the Florida traces."""
    return CarbonIntensityService(traces=florida_traces)


@pytest.fixture
def central_eu_carbon(central_eu_traces):
    """Carbon-intensity service replaying the Central-EU traces."""
    return CarbonIntensityService(traces=central_eu_traces)


def make_apps(sites, workload="ResNet50", n_per_site=1, slo_ms=25.0, rate_rps=10.0,
              duration_hours=1.0):
    """Helper constructing a batch of applications spread over the given sites."""
    apps = []
    for k in range(n_per_site):
        for site in sites:
            apps.append(Application(
                app_id=f"{workload}-{site.replace(' ', '_')}-{k}", workload=workload,
                source_site=site, latency_slo_ms=slo_ms, request_rate_rps=rate_rps,
                duration_hours=duration_hours))
    return apps


@pytest.fixture
def florida_problem(florida_fleet, florida_latency, florida_carbon):
    """A small Florida placement problem (5 apps, 5 servers)."""
    apps = make_apps(florida_fleet.sites())
    return PlacementProblem.build(apps, florida_fleet.servers(), florida_latency,
                                  florida_carbon, hour=12, horizon_hours=24.0)


@pytest.fixture
def central_eu_problem(central_eu_fleet, central_eu_latency, central_eu_carbon):
    """A small Central-EU placement problem (10 apps, 5 servers)."""
    apps = make_apps(central_eu_fleet.sites(), n_per_site=2)
    return PlacementProblem.build(apps, central_eu_fleet.servers(), central_eu_latency,
                                  central_eu_carbon, hour=12, horizon_hours=24.0)
