"""The columnar workload substrate: equivalence, bit-identity, cache caps.

The contract under test (see the columnar section of
:mod:`repro.workloads.generator`): the struct-of-arrays batch is a pure
representation change — application ids, per-app fields, the class partition,
every compiled epoch tensor, and every simulation artifact must be identical
whether the batch flows through the class-table fast path or the per-object
legacy path under the ``CARBON_EDGE_DISABLE_COLUMNAR`` kill-switch.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.incremental import IncrementalPlacer
from repro.core.objective import ObjectiveKind
from repro.core.policies.carbon_edge import CarbonEdgePolicy
from repro.experiments.planetary_sweep import build_planetary_substrate
from repro.serving.loadgen import LoadGenerator
from repro.simulator.cdn import CDNSimulator, clear_substrate_cache
from repro.simulator.scenario import CDNScenario
from repro.solver.compile import (
    CLASS_CACHE_ENV,
    ScenarioCompilation,
    class_cache_limit,
)
from repro.solver.config import SolverConfig
from repro.solver.hierarchy import build_region_plan, solve_hierarchical
from repro.workloads.generator import (
    COLUMNAR_ENV,
    ApplicationBatch,
    ApplicationGenerator,
    LazyApplications,
    app_id_pad_width,
    columnar_enabled,
)

SCENARIO_KWARGS = dict(continent="EU", n_epochs=2, max_sites=8, seed=0)


@contextlib.contextmanager
def _env(name: str, value: str | None):
    previous = os.environ.get(name)
    if value is None:
        os.environ.pop(name, None)
    else:
        os.environ[name] = value
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = previous


def columnar_disabled():
    return _env(COLUMNAR_ENV, "1")


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_substrate_cache()
    yield
    clear_substrate_cache()


# -- id scheme ----------------------------------------------------------------


def test_app_id_pad_width_widens_past_ten_thousand():
    assert app_id_pad_width(0) == 4
    assert app_id_pad_width(1) == 4
    assert app_id_pad_width(9_999) == 4
    assert app_id_pad_width(10_000) == 4  # last id is 9999 — still 4 digits
    assert app_id_pad_width(10_001) == 5
    assert app_id_pad_width(100_001) == 6


def _batch(count: int, n_sites: int = 4, seed: int = 0) -> ApplicationBatch:
    generator = ApplicationGenerator(
        sites=[f"site{i:02d}" for i in range(n_sites)],
        mean_arrivals_per_batch=float(max(count, 1)), seed=seed)
    return generator.generate_batch(0, 100, n_arrivals=count)


def test_ids_unchanged_at_ten_thousand_and_sorted_above():
    batch = _batch(10_000)
    ids = batch.app_ids()
    assert ids[0] == "app-00000-0000" and ids[-1] == "app-00000-9999"

    wide = _batch(10_001)
    wide_ids = wide.app_ids()
    assert wide_ids[0] == "app-00000-00000" and wide_ids[-1] == "app-00000-10000"
    # The whole point of deriving the pad from the batch count: lexicographic
    # order equals arrival order, with no aliasing past the 4-digit overflow.
    assert sorted(wide_ids) == list(wide_ids)
    assert len(set(wide_ids)) == len(wide_ids)


# -- columnar <-> object equivalence -----------------------------------------

_values = st.floats(min_value=0.25, max_value=64.0, allow_nan=False,
                    allow_infinity=False)


@st.composite
def _columns(draw):
    n_sites = draw(st.integers(1, 5))
    n_workloads = draw(st.integers(1, 3))
    count = draw(st.integers(0, 40))
    site_idx = draw(st.lists(st.integers(0, n_sites - 1),
                             min_size=count, max_size=count))
    workload_idx = draw(st.lists(st.integers(0, n_workloads - 1),
                                 min_size=count, max_size=count))

    def column(scalar_ok: bool):
        if scalar_ok and draw(st.booleans()):
            return draw(_values)
        return np.asarray(draw(st.lists(_values, min_size=count, max_size=count)))

    return dict(
        interval_index=draw(st.integers(0, 3)),
        hour_of_year=draw(st.integers(0, 8759)),
        site_names=tuple(f"s{i}" for i in range(n_sites)),
        workload_names=tuple(f"w{i}" for i in range(n_workloads)),
        site_idx=np.asarray(site_idx, dtype=np.int64),
        workload_idx=np.asarray(workload_idx, dtype=np.int64),
        latency_slo_ms=column(scalar_ok=True),
        request_rate_rps=column(scalar_ok=True),
        duration_hours=column(scalar_ok=True),
    )


@given(_columns())
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_class_table_partitions_the_batch(cols):
    batch = ApplicationBatch.from_columns(**cols)
    count = len(cols["site_idx"])
    assert len(batch) == count
    assert int(batch.class_counts.sum()) == count
    assert np.array_equal(np.bincount(batch.class_idx,
                                      minlength=batch.n_classes),
                          batch.class_counts)
    # Every class row reproduces its members' per-app values exactly.
    assert np.array_equal(batch.class_site_idx[batch.class_idx], batch.site_idx)
    assert np.array_equal(batch.class_workload_idx[batch.class_idx],
                          batch.workload_idx)
    assert np.array_equal(batch.class_slo_ms[batch.class_idx],
                          batch.latency_slo_ms)
    assert np.array_equal(batch.class_rate_rps[batch.class_idx],
                          batch.request_rate_rps)
    assert np.array_equal(batch.class_duration_h[batch.class_idx],
                          batch.duration_hours)
    # The class table is a real dedup: rows are pairwise distinct.
    rows = {(int(batch.class_site_idx[c]), int(batch.class_workload_idx[c]),
             float(batch.class_slo_ms[c]), float(batch.class_rate_rps[c]),
             float(batch.class_duration_h[c])) for c in range(batch.n_classes)}
    assert len(rows) == batch.n_classes
    # first-occurrence: position k of class c has no earlier member of c.
    first = batch.class_first_occurrence()
    for c, k in enumerate(first):
        members = np.flatnonzero(batch.class_idx == c)
        assert members[0] == k


@given(_columns())
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_object_view_matches_columns(cols):
    batch = ApplicationBatch.from_columns(**cols)
    apps = batch.applications
    assert len(apps) == len(batch)
    for k, app in enumerate(apps):
        assert app.app_id == batch.app_id(k)
        assert app.source_site == cols["site_names"][batch.site_idx[k]]
        assert app.workload == cols["workload_names"][batch.workload_idx[k]]
        assert app.latency_slo_ms == float(batch.latency_slo_ms[k])
        assert app.request_rate_rps == float(batch.request_rate_rps[k])
        assert app.duration_hours == float(batch.duration_hours[k])
        assert batch.application(k) is apps[k] or \
            batch.application(k).app_id == apps[k].app_id


def test_from_applications_preserves_object_identity():
    apps = tuple(_batch(16).applications)
    wrapped = ApplicationBatch.from_applications(apps)
    assert wrapped.applications is apps
    assert wrapped.app_ids() == tuple(a.app_id for a in apps)
    view = LazyApplications(wrapped)
    assert len(view) == len(apps)
    assert view[3] is apps[3]
    assert [a.app_id for a in view] == [a.app_id for a in apps]


def test_generate_schedule_is_deterministic_at_scale():
    def schedule():
        return ApplicationGenerator(
            sites=[f"site{i:02d}" for i in range(24)],
            mean_arrivals_per_batch=10_000.0, seed=7).generate_schedule(2)

    first, second = schedule(), schedule()
    assert len(first) == len(second) == 2
    for a, b in zip(first, second):
        assert len(a) >= 9_000  # Poisson(10^4) — the scale regression is real
        assert np.array_equal(a.site_idx, b.site_idx)
        assert np.array_equal(a.workload_idx, b.workload_idx)
        assert np.array_equal(a.class_idx, b.class_idx)
        assert a.app_ids() == b.app_ids()
        assert sorted(a.app_ids()) == list(a.app_ids())


# -- compiled-tensor and artifact bit-identity -------------------------------


def test_columnar_env_gate():
    assert columnar_enabled()
    for value in ("1", "true", "YES", " on "):
        with _env(COLUMNAR_ENV, value):
            assert not columnar_enabled()
    with _env(COLUMNAR_ENV, "0"):
        assert columnar_enabled()


def _epoch_problems(**scenario_kwargs):
    scenario = CDNScenario(**{**SCENARIO_KWARGS, **scenario_kwargs})
    simulator = CDNSimulator(scenario=scenario)
    return [simulator.epoch_problem(epoch) for epoch in range(scenario.n_epochs)]


def _assert_problems_identical(cold, fast):
    assert [a.app_id for a in cold.applications] == \
        [a.app_id for a in fast.applications]
    for name in ("latency_ms", "energy_j", "supported", "intensity",
                 "base_power_w", "current_power"):
        a, b = getattr(cold, name), getattr(fast, name)
        assert a.dtype == b.dtype and np.array_equal(a, b), name
    assert np.array_equal(cold.demand_dense(), fast.demand_dense())
    assert np.array_equal(cold.feasible_mask(), fast.feasible_mask())
    assert np.array_equal(cold.nearest_feasible_ms(), fast.nearest_feasible_ms())
    for ci, fi in zip(cold.demands, fast.demands):
        for cv, fv in zip(ci, fi):
            assert set(cv.keys()) == set(fv.keys())
            assert all(cv.get(k) == fv.get(k) for k in cv.keys())


@pytest.mark.parametrize("epoch_shards", [1, 2])
def test_epoch_tensors_bit_identical_across_killswitch(epoch_shards):
    columnar = _epoch_problems(epoch_shards=epoch_shards)
    clear_substrate_cache()
    with columnar_disabled():
        legacy = _epoch_problems(epoch_shards=epoch_shards)
    for fast, cold in zip(columnar, legacy):
        assert isinstance(fast.applications, LazyApplications)
        assert not isinstance(cold.applications, LazyApplications)
        _assert_problems_identical(cold, fast)


@pytest.mark.parametrize("epoch_shards", [1, 2])
def test_simulation_records_identical_across_killswitch(epoch_shards):
    def run():
        scenario = CDNScenario(**{**SCENARIO_KWARGS,
                                  "epoch_shards": epoch_shards})
        return CDNSimulator(scenario=scenario).run()

    columnar = run()
    clear_substrate_cache()
    with columnar_disabled():
        legacy = run()
    assert columnar.records.keys() == legacy.records.keys()
    for policy in columnar.records:
        for a, b in zip(columnar.records[policy], legacy.records[policy],
                        strict=True):
            # solve_time_s is wall-clock telemetry, never artifact bytes.
            assert dataclasses.replace(a, solve_time_s=0.0) == \
                dataclasses.replace(b, solve_time_s=0.0)


# -- solver integration -------------------------------------------------------


def test_hierarchy_solves_batch_and_list_identically():
    fleet, latency, carbon = build_planetary_substrate(12, seed=0)
    generator = ApplicationGenerator(
        sites=fleet.sites(), latency_slo_ms=40.0,
        mean_arrivals_per_batch=200.0, duration_hours=1.0, seed=0)
    batch = generator.generate_batch(0, 4700, n_arrivals=200)
    plan = build_region_plan(fleet.sites(), fleet.site_coordinates(), 3, seed=0)

    def solve(applications):
        compilation = ScenarioCompilation(fleet.servers(), latency, carbon)
        return solve_hierarchical(
            compilation, applications, plan, hour=4700,
            objective=ObjectiveKind.CARBON,
            config=SolverConfig(hierarchy_regions=3), seed=0)

    from_batch = solve(batch)
    from_list = solve(list(batch.applications))
    assert from_batch.n_placed == from_list.n_placed
    assert from_batch.n_spilled == from_list.n_spilled
    assert from_batch.coarse_objective == from_list.coarse_objective
    assert from_batch.refined_objective == from_list.refined_objective


def test_place_batch_accepts_columnar_batch():
    fleet, latency, carbon = build_planetary_substrate(8, seed=0)
    generator = ApplicationGenerator(
        sites=fleet.sites(), latency_slo_ms=40.0,
        mean_arrivals_per_batch=40.0, duration_hours=1.0, seed=0)
    batch = generator.generate_batch(0, 4700, n_arrivals=40)

    def place(applications):
        placer = IncrementalPlacer(fleet=fleet, latency=latency, carbon=carbon,
                                   policy=CarbonEdgePolicy())
        solution = placer.place_batch(applications, hour=4700, commit=False)
        return solution

    fleet.reset_allocations()
    from_batch = place(batch)
    fleet.reset_allocations()
    from_list = place(list(batch.applications))
    assert from_batch.placements == from_list.placements


def test_loadgen_arrival_batch_matches_event_stream():
    load = LoadGenerator(sites=["a", "b", "c"], rate_per_s=0.1, shape="burst",
                         workload_mix={"ResNet50": 0.6, "BERT": 0.4}, seed=3)
    arrivals = [e.payload for e in load.events(3600.0) if e.kind == "arrival"]
    batch = load.arrival_batch(3600.0)
    assert len(batch) == len(arrivals)
    for k, app in enumerate(arrivals):
        got = batch.application(k)
        assert got.app_id == app.app_id
        assert got.source_site == app.source_site
        assert got.workload == app.workload
        assert got.duration_hours == app.duration_hours


# -- class-row cache caps ------------------------------------------------------


def test_class_cache_limit_env_override():
    assert class_cache_limit() == 4096
    with _env(CLASS_CACHE_ENV, "7"):
        assert class_cache_limit() == 7
    with _env(CLASS_CACHE_ENV, "not-a-number"):
        assert class_cache_limit() == 4096
    with _env(CLASS_CACHE_ENV, "-3"):
        assert class_cache_limit() == 4096


def test_row_caches_evict_past_the_limit():
    fleet, latency, carbon = build_planetary_substrate(10, seed=0)
    sites = fleet.sites()
    # The row caches key on (workload, rate): distinct per-app request rates
    # force one cached row per application class.
    count = 12
    batch = ApplicationBatch.from_columns(
        interval_index=0, hour_of_year=4700,
        site_names=tuple(sites), workload_names=("ResNet50",),
        site_idx=np.arange(count, dtype=np.int64) % len(sites),
        workload_idx=np.zeros(count, dtype=np.int64),
        latency_slo_ms=40.0,
        request_rate_rps=np.linspace(4.0, 26.0, count),
        duration_hours=1.0)
    assert batch.n_classes == count

    with _env(CLASS_CACHE_ENV, "2"):
        compilation = ScenarioCompilation(fleet.servers(), latency, carbon)
        compilation.build_problem(batch, hour=4700)
        stats = compilation.cache_stats()
    assert stats["cache_limit"] == 2
    assert stats["row_evictions"] > 0
    assert stats["n_energy_rows"] <= 2
    assert stats["n_dense_rows"] <= 2

    # Unbounded by default: the same batch evicts nothing.
    compilation = ScenarioCompilation(fleet.servers(), latency, carbon)
    compilation.build_problem(batch, hour=4700)
    assert compilation.cache_stats()["row_evictions"] == 0
