"""Tests for warm-started epoch re-solves (IncrementalPlacer.resolve_epoch and
EdgeOrchestrator.reoptimize)."""

import pytest

from repro.core.incremental import IncrementalPlacer
from repro.core.policies.carbon_edge import CarbonEdgePolicy
from repro.core.validation import validate_solution
from repro.network.latency import LatencyMatrix  # noqa: F401  (fixture types)
from repro.orchestrator.orchestrator import EdgeOrchestrator
from repro.orchestrator.deployment import DeploymentState

from tests.conftest import make_apps


@pytest.fixture
def placer(central_eu_fleet, central_eu_latency, central_eu_carbon):
    return IncrementalPlacer(fleet=central_eu_fleet, latency=central_eu_latency,
                             carbon=central_eu_carbon, policy=CarbonEdgePolicy(),
                             horizon_hours=24.0)


def test_resolve_epoch_without_running_apps_is_noop(placer):
    assert placer.resolve_epoch(hour=0) is None
    assert placer.history == []


def test_resolve_epoch_keeps_every_app_running(placer, central_eu_fleet):
    apps = make_apps(central_eu_fleet.sites(), n_per_site=2)
    first = placer.place_batch(apps, hour=0)
    assert first.all_placed

    resolved = placer.resolve_epoch(hour=12)
    assert resolved is not None
    validate_solution(resolved)
    assert resolved.all_placed
    assert set(resolved.placements) == set(first.placements)
    # The re-solve round is recorded but not double-counted as new arrivals.
    assert placer.history[-1].kind == "resolve"
    assert placer.total_placed() == len(apps)
    # Fleet allocations reflect the re-solved placement exactly.
    allocated = {app_id for server in central_eu_fleet.servers()
                 for app_id in server.allocations}
    assert allocated == set(resolved.placements)


def test_resolve_epoch_warm_start_never_worse_than_staying(placer, central_eu_fleet):
    apps = make_apps(central_eu_fleet.sites(), n_per_site=2)
    first = placer.place_batch(apps, hour=0)

    resolved = placer.resolve_epoch(hour=12)
    # Evaluate "keep the old placement" on the hour-12 problem: the re-solve
    # was warm-started from it, so it can only be equal or better.
    stay = resolved.problem.operational_carbon_g()
    stay_carbon = sum(stay[resolved.problem.app_index(a), j]
                      for a, j in first.placements.items())
    assert resolved.operational_carbon_g() <= stay_carbon + 1e-9


def test_orchestrator_reoptimize_migrates_and_rebinds(placer, central_eu_fleet):
    orchestrator = EdgeOrchestrator(placer=placer)
    apps = make_apps(central_eu_fleet.sites(), n_per_site=2)
    orchestrator.deploy_batch(apps, hour=0)
    before = {a: b.server_id for a, b in orchestrator.bindings.items()}
    assert len(before) == len(apps)

    moved = orchestrator.reoptimize(hour=12)
    # Every app still has a RUNNING deployment and a binding that matches it.
    for app in apps:
        binding = orchestrator.binding_for(app.app_id)
        deployment = orchestrator.deployments[f"dep-{app.app_id}"]
        assert deployment.state is DeploymentState.RUNNING
        assert deployment.server_id == binding.server_id
    # The reported moves are exactly the bindings that changed.
    after = {a: b.server_id for a, b in orchestrator.bindings.items()}
    assert moved == {a: s for a, s in after.items() if before[a] != s}


def test_reoptimize_with_nothing_deployed_returns_empty(placer):
    orchestrator = EdgeOrchestrator(placer=placer)
    assert orchestrator.reoptimize(hour=3) == {}


def test_terminated_apps_are_not_resolved_again(placer, central_eu_fleet):
    orchestrator = EdgeOrchestrator(placer=placer)
    apps = make_apps(central_eu_fleet.sites())
    orchestrator.deploy_batch(apps, hour=0)
    victim = apps[0].app_id
    orchestrator.terminate(victim)
    assert victim not in placer.active_apps

    resolved = placer.resolve_epoch(hour=6)
    assert resolved is not None
    assert victim not in resolved.placements
    assert set(resolved.placements) == {a.app_id for a in apps[1:]}


class _FailingPolicy(CarbonEdgePolicy):
    """Policy whose solve always explodes (rollback-path test double)."""

    def place(self, problem, warm_start=None):
        raise RuntimeError("solver exploded")


class _EvictingPolicy(CarbonEdgePolicy):
    """Policy that drops one placed application (eviction-path test double)."""

    def place(self, problem, warm_start=None):
        solution = super().place(problem, warm_start=warm_start)
        victim = sorted(solution.placements)[0]
        del solution.placements[victim]
        solution.unplaced.append(victim)
        return solution


def _allocation_map(fleet):
    return {app_id: server.server_id for server in fleet.servers()
            for app_id in server.allocations}


def test_resolve_epoch_failure_restores_allocations(placer, central_eu_fleet):
    apps = make_apps(central_eu_fleet.sites(), n_per_site=2)
    placer.place_batch(apps, hour=0)
    before = _allocation_map(central_eu_fleet)

    placer.policy = _FailingPolicy()
    with pytest.raises(RuntimeError, match="solver exploded"):
        placer.resolve_epoch(hour=12)
    # The fleet is exactly as it was, and a later re-solve still works.
    assert _allocation_map(central_eu_fleet) == before
    placer.policy = CarbonEdgePolicy()
    resolved = placer.resolve_epoch(hour=12)
    assert resolved is not None and resolved.all_placed


class _ExpectedFailurePolicy(CarbonEdgePolicy):
    """Policy raising an *expected* failure type (ValueError)."""

    def place(self, problem, warm_start=None):
        raise ValueError("infeasible by construction")


def test_resolve_epoch_unexpected_error_is_logged_and_propagates(
        placer, central_eu_fleet, caplog):
    import logging

    apps = make_apps(central_eu_fleet.sites(), n_per_site=2)
    placer.place_batch(apps, hour=0)
    before = _allocation_map(central_eu_fleet)

    placer.policy = _FailingPolicy()  # raises RuntimeError: not an expected type
    with caplog.at_level(logging.ERROR, logger="repro.core.incremental"):
        with pytest.raises(RuntimeError, match="solver exploded"):
            placer.resolve_epoch(hour=12)
    # The injected error surfaced to the caller, the fleet was restored, AND
    # the unexpected type was logged (it must never be silently
    # indistinguishable from a routine validation failure).
    assert _allocation_map(central_eu_fleet) == before
    logged = [r for r in caplog.records if "unexpected RuntimeError" in r.getMessage()]
    assert len(logged) == 1
    assert "fleet state restored" in logged[0].getMessage()


def test_resolve_epoch_expected_error_propagates_without_noise(
        placer, central_eu_fleet, caplog):
    import logging

    apps = make_apps(central_eu_fleet.sites(), n_per_site=2)
    placer.place_batch(apps, hour=0)
    before = _allocation_map(central_eu_fleet)

    placer.policy = _ExpectedFailurePolicy()
    with caplog.at_level(logging.ERROR, logger="repro.core.incremental"):
        with pytest.raises(ValueError, match="infeasible by construction"):
            placer.resolve_epoch(hour=12)
    assert _allocation_map(central_eu_fleet) == before
    # Expected failure types surface as-is, with no "unexpected" log record.
    assert not [r for r in caplog.records if "unexpected" in r.getMessage()]


def test_reoptimize_tears_down_evicted_apps(placer, central_eu_fleet):
    orchestrator = EdgeOrchestrator(placer=placer)
    apps = make_apps(central_eu_fleet.sites(), n_per_site=2)
    orchestrator.deploy_batch(apps, hour=0)

    placer.policy = _EvictingPolicy()
    orchestrator.reoptimize(hour=12)
    resolved = placer.history[-1].solution
    assert len(resolved.unplaced) == 1
    victim = resolved.unplaced[0]
    # The evicted app holds no capacity, binding, running deployment, or
    # active-apps entry any more.
    assert victim not in _allocation_map(central_eu_fleet)
    assert victim not in orchestrator.bindings
    assert orchestrator.deployments[f"dep-{victim}"].state is DeploymentState.TERMINATED
    assert victim not in placer.active_apps
    # Everyone else is still consistently deployed.
    for app_id in resolved.placements:
        assert orchestrator.binding_for(app_id).server_id == \
            orchestrator.deployments[f"dep-{app_id}"].server_id


# -- scenario-lifetime compilation: delta path vs cold rebuild -------------------


def _run_batch_and_resolve(fleet, latency, carbon, disable_tier: bool):
    """One arrival batch + one warm-started epoch re-solve, delta or cold."""
    import os

    from repro.solver.compile import SCENARIO_TIER_ENV, clear_scenario_compilations

    clear_scenario_compilations()
    if disable_tier:
        os.environ[SCENARIO_TIER_ENV] = "1"
    try:
        placer = IncrementalPlacer(fleet=fleet, latency=latency, carbon=carbon,
                                   policy=CarbonEdgePolicy(), horizon_hours=24.0)
        apps = make_apps(fleet.sites(), n_per_site=2)
        batch = placer.place_batch(apps, hour=0)
        resolved = placer.resolve_epoch(hour=12)
        return batch, resolved, _allocation_map(fleet)
    finally:
        os.environ.pop(SCENARIO_TIER_ENV, None)


def test_resolve_epoch_delta_path_bit_identical_to_cold_rebuild(
        central_eu_latency, central_eu_carbon):
    """The scenario tier's warm-start (non-pristine) delta path must produce
    bit-identical batch and re-solve solutions — and identical committed
    fleet state — to building every epoch problem from scratch."""
    import numpy as np

    from repro.cluster.fleet import build_regional_fleet
    from repro.datasets.regions import CENTRAL_EU

    arms = {}
    for disable in (True, False):
        fleet = build_regional_fleet(CENTRAL_EU)  # fresh fleet per arm
        arms[disable] = _run_batch_and_resolve(
            fleet, central_eu_latency, central_eu_carbon, disable_tier=disable)

    (cold_batch, cold_resolved, cold_alloc) = arms[True]
    (fast_batch, fast_resolved, fast_alloc) = arms[False]
    for cold, fast in ((cold_batch, fast_batch), (cold_resolved, fast_resolved)):
        assert cold.placements == fast.placements
        assert cold.unplaced == fast.unplaced
        assert np.array_equal(cold.power_on, fast.power_on)
        assert cold.total_carbon_g() == fast.total_carbon_g()
        assert cold.total_energy_j() == fast.total_energy_j()
        # The problems themselves carry identical tensors (the re-solve's
        # problem reads live, non-pristine fleet state through the delta).
        for name in ("latency_ms", "energy_j", "supported", "intensity",
                     "current_power"):
            assert np.array_equal(getattr(cold.problem, name),
                                  getattr(fast.problem, name)), name
        assert np.array_equal(cold.problem.capacity_dense(),
                              fast.problem.capacity_dense())
    assert cold_alloc == fast_alloc
