"""Resource-vector tests (including hypothesis properties)."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster.resources import ResourceVector

amounts = st.dictionaries(
    st.sampled_from(["cpu_cores", "memory_mb", "gpu_memory_mb"]),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    max_size=3,
)


def test_construction_and_access():
    rv = ResourceVector.of(cpu_cores=4, memory_mb=2048)
    assert rv["cpu_cores"] == 4.0
    assert rv["gpu_memory_mb"] == 0.0  # absent dimensions read as zero
    assert "cpu_cores" in rv and "gpu_memory_mb" not in rv


def test_negative_amounts_rejected():
    with pytest.raises(ValueError):
        ResourceVector.of(cpu_cores=-1)


def test_addition_merges_dimensions():
    total = ResourceVector.of(cpu_cores=2) + ResourceVector.of(memory_mb=100)
    assert total["cpu_cores"] == 2 and total["memory_mb"] == 100


def test_subtraction_and_underflow():
    a = ResourceVector.of(cpu_cores=4)
    b = ResourceVector.of(cpu_cores=1)
    assert (a - b)["cpu_cores"] == 3
    with pytest.raises(ValueError):
        b - a


def test_scaling():
    rv = ResourceVector.of(cpu_cores=2) * 3
    assert rv["cpu_cores"] == 6
    with pytest.raises(ValueError):
        rv * -1


def test_fits_within_and_dominates():
    demand = ResourceVector.of(cpu_cores=2, gpu_memory_mb=100)
    capacity = ResourceVector.of(cpu_cores=4, gpu_memory_mb=100, memory_mb=1000)
    assert demand.fits_within(capacity)
    assert capacity.dominates(demand)
    assert not capacity.fits_within(demand)


def test_fits_within_missing_capacity_dimension():
    demand = ResourceVector.of(gpu_memory_mb=10)
    capacity = ResourceVector.of(cpu_cores=4)
    assert not demand.fits_within(capacity)


def test_utilization():
    demand = ResourceVector.of(cpu_cores=2, memory_mb=500)
    capacity = ResourceVector.of(cpu_cores=4, memory_mb=1000)
    utils = demand.utilization_of(capacity)
    assert utils["cpu_cores"] == pytest.approx(0.5)
    assert demand.max_utilization_of(capacity) == pytest.approx(0.5)


def test_zero_and_equality():
    assert ResourceVector.zeros().is_zero()
    assert ResourceVector.of(cpu_cores=1) == ResourceVector.of(cpu_cores=1.0)
    assert ResourceVector.of(cpu_cores=1) != ResourceVector.of(cpu_cores=2)


def test_copy_is_independent():
    a = ResourceVector.of(cpu_cores=1)
    b = a.copy()
    b.amounts["cpu_cores"] = 5.0
    assert a["cpu_cores"] == 1.0


@given(amounts, amounts)
def test_addition_commutative_property(a, b):
    x, y = ResourceVector(a), ResourceVector(b)
    assert (x + y) == (y + x)


@given(amounts, amounts)
def test_add_then_subtract_roundtrip_property(a, b):
    x, y = ResourceVector(a), ResourceVector(b)
    assert ((x + y) - y) == x


@given(amounts)
def test_self_fits_within_self_property(a):
    x = ResourceVector(a)
    assert x.fits_within(x)
    assert x.dominates(x)


@given(amounts, amounts)
def test_sum_dominates_parts_property(a, b):
    x, y = ResourceVector(a), ResourceVector(b)
    assert (x + y).dominates(x)
    assert (x + y).dominates(y)
