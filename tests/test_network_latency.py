"""Latency model and matrix tests (calibrated against the paper's Table 1)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.network.latency import LatencyMatrix, LatencyModel, build_latency_matrix


def test_zero_distance_zero_latency():
    assert LatencyModel().one_way_ms(0.0) == 0.0


def test_latency_grows_with_distance():
    model = LatencyModel()
    assert model.one_way_ms(100.0) < model.one_way_ms(500.0) < model.one_way_ms(2000.0)


def test_cross_border_inflation_range_wider():
    model = LatencyModel()
    low_i, high_i = model.intra_inflation
    low_x, high_x = model.inter_inflation
    assert high_x > high_i and low_x >= low_i


def test_per_pair_inflation_deterministic():
    model = LatencyModel()
    a = model.one_way_ms(400.0, cross_border=True, pair_key=("A", "B"))
    b = model.one_way_ms(400.0, cross_border=True, pair_key=("B", "A"))
    assert a == pytest.approx(b)


def test_negative_distance_rejected():
    with pytest.raises(ValueError):
        LatencyModel().one_way_ms(-1.0)


@given(st.floats(min_value=1.0, max_value=5000.0))
def test_latency_bounds_property(distance_km):
    model = LatencyModel()
    latency = model.one_way_ms(distance_km, cross_border=True, pair_key=("x", "y"))
    # Never faster than straight-line fibre, never slower than 6x the fibre time + base.
    assert latency >= distance_km / 200.0
    assert latency <= model.base_ms + distance_km / 200.0 * 6.0


def test_florida_pairs_in_table1_band(city_catalog):
    from repro.datasets.regions import FLORIDA
    cities = FLORIDA.cities(city_catalog)
    names = [c.name for c in cities]
    matrix = build_latency_matrix(names, city_catalog.coordinates_array(names),
                                  countries=[c.state for c in cities])
    # Paper Table 1a: 1.86 - 7.2 ms one-way.
    off_diag = matrix.matrix_ms[~np.eye(5, dtype=bool)]
    assert off_diag.min() >= 0.5
    assert off_diag.max() <= 12.0


def test_central_eu_pairs_in_table1_band(central_eu_latency):
    # Paper Table 1b: up to ~16.2 ms one-way (Graz-Lyon).
    off_diag = central_eu_latency.matrix_ms[~np.eye(5, dtype=bool)]
    assert off_diag.max() <= 25.0
    assert off_diag.max() >= 6.0


def test_matrix_lookup_and_rtt(central_eu_latency):
    one_way = central_eu_latency.one_way_ms("Bern", "Munich")
    assert central_eu_latency.round_trip_ms("Bern", "Munich") == pytest.approx(2 * one_way)
    assert central_eu_latency.one_way_ms("Bern", "Bern") == 0.0


def test_matrix_neighbors_within(central_eu_latency):
    all_neighbors = central_eu_latency.neighbors_within("Bern", 1000.0)
    assert len(all_neighbors) == 4
    assert central_eu_latency.neighbors_within("Bern", 0.01) == []


def test_matrix_submatrix(central_eu_latency):
    sub = central_eu_latency.submatrix(["Bern", "Milan"])
    assert sub.names == ["Bern", "Milan"]
    assert sub.one_way_ms("Bern", "Milan") == pytest.approx(
        central_eu_latency.one_way_ms("Bern", "Milan"))


def test_matrix_validation():
    with pytest.raises(ValueError):
        LatencyMatrix(names=["a", "b"], matrix_ms=np.zeros((3, 3)))
    with pytest.raises(ValueError):
        LatencyMatrix(names=["a", "a"], matrix_ms=np.zeros((2, 2)))
    with pytest.raises(ValueError):
        LatencyMatrix(names=["a", "b"], matrix_ms=np.array([[0.0, -1.0], [1.0, 0.0]]))


def test_matrix_unknown_name(central_eu_latency):
    with pytest.raises(KeyError):
        central_eu_latency.one_way_ms("Bern", "Atlantis")


def test_build_matrix_shape_mismatch(city_catalog):
    with pytest.raises(ValueError):
        build_latency_matrix(["Miami"], city_catalog.coordinates_array(["Miami", "Bern"]))


def test_mean_off_diagonal_single_site():
    matrix = LatencyMatrix(names=["only"], matrix_ms=np.zeros((1, 1)))
    assert matrix.mean_off_diagonal() == 0.0
