"""Tests for the scenario compilation layer (repro.solver.compile)."""

import numpy as np
import pytest

from repro.core.objective import ObjectiveKind
from repro.core.policies import (
    CarbonEdgePolicy,
    IntensityAwarePolicy,
    LatencyAwarePolicy,
)
from repro.solver.backend import SolveRequest
from repro.solver.compile import clear_compilation, compile_placement


def test_compilation_is_memoised_per_problem(central_eu_problem):
    a = compile_placement(central_eu_problem)
    b = compile_placement(central_eu_problem)
    assert a is b
    clear_compilation(central_eu_problem)
    c = compile_placement(central_eu_problem)
    assert c is not a


def test_solve_requests_share_the_problem_compilation(central_eu_problem):
    compilation = compile_placement(central_eu_problem)
    r1 = SolveRequest(problem=central_eu_problem)
    r2 = SolveRequest(problem=central_eu_problem, objective=ObjectiveKind.ENERGY)
    assert r1.compilation is compilation
    assert r1.report is r2.report  # one feasibility report per epoch
    assert r1.dense() is compilation.dense(ObjectiveKind.CARBON)
    # Different objectives get different (cached) cost tensors.
    assert r1.dense() is not r2.dense()
    assert r2.dense() is compilation.dense(ObjectiveKind.ENERGY)


def test_dense_tensors_cached_per_objective_and_power_mode(central_eu_problem):
    compilation = compile_placement(central_eu_problem)
    managed = compilation.dense(ObjectiveKind.CARBON, manage_power=True)
    unmanaged = compilation.dense(ObjectiveKind.CARBON, manage_power=False)
    assert managed is not unmanaged
    assert unmanaged.initially_on.all()
    assert not np.any(unmanaged.activation)
    assert managed is compilation.dense(ObjectiveKind.CARBON, manage_power=True)
    # The demand/capacity tensors are shared across every dense view.
    assert managed.demand is unmanaged.demand
    assert managed.capacity is unmanaged.capacity


def test_nearest_feasible_latencies(central_eu_problem):
    compilation = compile_placement(central_eu_problem)
    nearest = compilation.nearest_feasible_ms
    problem = central_eu_problem
    expected = np.where(problem.feasible_mask(), problem.latency_ms, np.inf).min(axis=1)
    assert np.array_equal(nearest, expected)
    assert compilation.n_nearest_unreachable == int(np.isinf(expected).sum())
    assert np.array_equal(compilation.epoch_mean_intensity, problem.intensity)


def test_policies_reuse_one_compilation(central_eu_problem):
    compilation = compile_placement(central_eu_problem)
    for policy in (LatencyAwarePolicy(), IntensityAwarePolicy(),
                   CarbonEdgePolicy(solver="greedy")):
        policy.place(central_eu_problem)
    # All three objectives were compiled into the same shared object.
    kinds = {key[0] for key in compilation._dense}
    assert {ObjectiveKind.LATENCY, ObjectiveKind.INTENSITY,
            ObjectiveKind.CARBON} <= kinds


def test_unreachable_apps_are_counted(central_eu_fleet, central_eu_latency,
                                      central_eu_carbon):
    from repro.core.problem import PlacementProblem
    from tests.conftest import make_apps

    apps = make_apps(["Bern"], workload="UnknownNet") + make_apps(["Lyon"])
    problem = PlacementProblem.build(apps, central_eu_fleet.servers(),
                                     central_eu_latency, central_eu_carbon, hour=0)
    compilation = compile_placement(problem)
    assert compilation.n_nearest_unreachable == 1
    assert np.isinf(compilation.nearest_feasible_ms[0])
    assert np.isfinite(compilation.nearest_feasible_ms[1])


def test_clear_compilation_invalidates_problem_caches(central_eu_problem):
    problem = central_eu_problem
    compile_placement(problem).report  # populate every cache
    stale_mask = problem.feasible_mask()
    # Mutate in place (tests only; production builds a fresh problem per
    # epoch) and invalidate per the documented contract.
    problem.latency_ms = np.full_like(problem.latency_ms, 1e9)
    clear_compilation(problem)
    fresh_mask = problem.feasible_mask()
    assert fresh_mask is not stale_mask
    assert not fresh_mask.any()


def test_problem_dense_resource_tensors(central_eu_problem):
    problem = central_eu_problem
    keys = problem.resource_keys()
    demand = problem.demand_dense()
    capacity = problem.capacity_dense()
    assert demand.shape == (problem.n_applications, problem.n_servers, len(keys))
    assert capacity.shape == (problem.n_servers, len(keys))
    for j, cap in enumerate(problem.capacities):
        for ki, key in enumerate(keys):
            assert capacity[j, ki] == cap.get(key)
    for i in range(problem.n_applications):
        for j in range(problem.n_servers):
            vec = problem.demands[i][j]
            for ki, key in enumerate(keys):
                assert demand[i, j, ki] == vec.get(key)


def test_app_indices_vectorised_lookup(central_eu_problem):
    problem = central_eu_problem
    ids = [app.app_id for app in problem.applications][::-1]
    idx = problem.app_indices(ids)
    assert idx.tolist() == list(range(problem.n_applications))[::-1]
    with pytest.raises(KeyError, match="unknown application"):
        problem.app_indices(["nope"])


def test_forecast_mean_is_memoised(central_eu_carbon):
    service = central_eu_carbon
    service.clear_forecast_cache()
    zone = service.zones()[0]
    first = service.forecast_mean(zone, 0, 24)
    assert len(service._forecast_cache) == 1
    assert service.forecast_mean(zone, 0, 24) == first
    assert len(service._forecast_cache) == 1
    # A different epoch window is a different cache entry.
    service.forecast_mean(zone, 24, 24)
    assert len(service._forecast_cache) == 2
    # Swapping the forecaster never serves a stale mean.
    from repro.carbon.forecasting import PersistenceForecaster
    service.forecaster = PersistenceForecaster()
    persisted = service.forecast_mean(zone, 0, 24)
    assert persisted == pytest.approx(service.current_intensity(zone, 0))


def test_incremental_placer_records_compilation(central_eu_fleet, central_eu_latency,
                                                central_eu_carbon):
    from repro.core.incremental import IncrementalPlacer
    from tests.conftest import make_apps

    placer = IncrementalPlacer(fleet=central_eu_fleet, latency=central_eu_latency,
                               carbon=central_eu_carbon,
                               policy=CarbonEdgePolicy(solver="greedy"))
    placer.release_all()
    apps = make_apps(central_eu_fleet.sites())
    placer.place_batch(apps, hour=0)
    assert placer.last_compilation is not None
    first = placer.last_compilation
    resolved = placer.resolve_epoch(hour=1)
    assert resolved is not None
    assert placer.last_compilation is not first
    placer.release_all()
