"""Fault injection for the carbon feed: retries, fallbacks, recovery.

The serving loop's feed contract: a :class:`ResilientCarbonFeed` never raises;
adapter failures walk retry → cached last-good → synthetic-forecast fallback
with the exponential-backoff schedule recorded on the feed events; and —
because the forecast fallback returns exactly the values the placement
objective already optimises against — a degraded feed changes feed telemetry,
never placement decisions.
"""

from __future__ import annotations

import json

import pytest

from repro.carbon.service import CarbonIntensityService
from repro.carbon.synthetic import SyntheticTraceGenerator
from repro.datasets.electricity_maps import default_zone_catalog
from repro.serving.feed import (
    ElectricityMapsFeed,
    FeedError,
    ResilientCarbonFeed,
    RetryPolicy,
    TraceFeed,
)
from repro.serving.loadgen import LoadGenerator
from repro.serving.service import PlacementService, ServingConfig
from repro.simulator.scenario import CDNScenario


class FlakyAdapter:
    """Fails the first ``fail_times`` fetches with FeedError, then succeeds."""

    def __init__(self, fail_times: int, value: float = 250.0):
        self.fail_times = fail_times
        self.value = value
        self.calls = 0

    def fetch(self, zone_id: str, hour: int) -> float:
        self.calls += 1
        if self.calls <= self.fail_times:
            raise FeedError(f"injected failure #{self.calls}")
        return self.value


@pytest.fixture()
def carbon_service() -> CarbonIntensityService:
    catalog = default_zone_catalog()
    zones = [catalog.get("EU-PL"), catalog.get("EU-IT-MIL")]
    traces = SyntheticTraceGenerator(seed=5, n_hours=168).generate_set(zones)
    return CarbonIntensityService(traces=traces)


def test_retry_policy_backoff_schedule():
    assert RetryPolicy(max_attempts=4, base_delay_s=0.5,
                       factor=2.0).delays() == [0.5, 1.0, 2.0]
    # The cap clamps the tail of the schedule.
    assert RetryPolicy(max_attempts=5, base_delay_s=1.0, factor=10.0,
                       max_delay_s=50.0).delays() == [1.0, 10.0, 50.0, 50.0]
    assert RetryPolicy(max_attempts=1).delays() == []
    with pytest.raises(ValueError, match="max_attempts"):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError, match="factor"):
        RetryPolicy(factor=0.5)
    with pytest.raises(ValueError, match="non-negative"):
        RetryPolicy(base_delay_s=-1.0)


def test_transient_failures_retry_with_recorded_backoff(carbon_service):
    """Two failures then success: two backoff sleeps, then a live sample."""
    adapter = FlakyAdapter(fail_times=2)
    slept: list[float] = []
    feed = ResilientCarbonFeed(adapter=adapter, service=carbon_service,
                               retry=RetryPolicy(max_attempts=4,
                                                 base_delay_s=0.5, factor=2.0),
                               sleep=slept.append)
    sample = feed.fetch("EU-PL", hour=10, now_s=0.0)
    assert sample.source == "live" and sample.intensity == 250.0
    assert not sample.stale
    assert slept == [0.5, 1.0]
    assert [e.kind for e in feed.events] == ["retry", "retry"]
    assert [e.delay_s for e in feed.events] == [0.5, 1.0]
    assert adapter.calls == 3
    assert not feed.any_failing()


def test_exhausted_retries_fall_back_to_cache_then_forecast(carbon_service):
    """live → (fresh) cache → (stale) forecast, with staleness flagged."""
    adapter = FlakyAdapter(fail_times=10 ** 6, value=0.0)
    feed = ResilientCarbonFeed(adapter=adapter, service=carbon_service,
                               retry=RetryPolicy(max_attempts=2),
                               staleness_limit_s=3600.0)
    # Seed the cache as if a live fetch had succeeded at t=0.
    state = feed._state("EU-PL")
    state.last_good, state.last_good_at_s = 321.0, 0.0

    cached = feed.fetch("EU-PL", hour=11, now_s=100.0)
    assert cached.source == "cache" and cached.intensity == 321.0
    assert not cached.stale
    assert feed.any_failing()

    degraded = feed.fetch("EU-PL", hour=11, now_s=5000.0)
    assert degraded.source == "forecast" and degraded.stale
    # Graceful degradation returns exactly the optimiser's forecast value.
    assert degraded.intensity == pytest.approx(
        carbon_service.forecast_mean("EU-PL", 11, horizon_hours=1))
    kinds = feed.event_counts()
    assert kinds["fallback-cache"] == 1
    assert kinds["fallback-forecast"] == 1
    assert kinds["retry"] == 2  # one recorded backoff per exhausted fetch


def test_recovery_after_outage_emits_recovered_event(carbon_service):
    adapter = FlakyAdapter(fail_times=2, value=199.0)
    feed = ResilientCarbonFeed(adapter=adapter, service=carbon_service,
                               retry=RetryPolicy(max_attempts=1))
    first = feed.fetch("EU-PL", hour=0, now_s=0.0)
    second = feed.fetch("EU-PL", hour=1, now_s=10.0)
    assert first.source == "forecast" and second.source == "forecast"
    assert feed.any_failing()
    third = feed.fetch("EU-PL", hour=2, now_s=20.0)
    assert third.source == "live" and third.intensity == 199.0
    assert not feed.any_failing()
    assert feed.event_counts()["recovered"] == 1


def test_refresh_resolves_every_zone(carbon_service):
    feed = ResilientCarbonFeed(adapter=TraceFeed(carbon_service),
                               service=carbon_service)
    samples = feed.refresh(["EU-PL", "EU-IT-MIL"], hour=7, now_s=0.0)
    assert set(samples) == {"EU-PL", "EU-IT-MIL"}
    for zone, sample in samples.items():
        assert sample.source == "live"
        assert sample.intensity == pytest.approx(
            carbon_service.current_intensity(zone, 7))


def test_trace_feed_rejects_unknown_zone(carbon_service):
    with pytest.raises(FeedError, match="no trace"):
        TraceFeed(carbon_service).fetch("??", hour=0)


# -- ElectricityMaps adapter (offline, via injected transport) -----------------


def test_electricity_maps_feed_parses_live_payload():
    seen: dict[str, object] = {}

    def transport(url, headers, timeout_s):
        seen.update(url=url, headers=headers, timeout_s=timeout_s)
        return json.dumps({"zone": "EU-PL", "carbonIntensity": 301.5})

    feed = ElectricityMapsFeed(api_key="k3y", transport=transport)
    assert feed.fetch("EU-PL", hour=0) == pytest.approx(301.5)
    assert "carbon-intensity/latest" in seen["url"] and "zone=EU-PL" in seen["url"]
    assert seen["headers"] == {"auth-token": "k3y"}
    assert seen["timeout_s"] == 5.0


@pytest.mark.parametrize("body, match", [
    ("{not json", "invalid JSON"),
    (json.dumps({"zone": "EU-PL"}), "no finite"),
    (json.dumps({"carbonIntensity": "high"}), "no finite"),
    (json.dumps({"carbonIntensity": float("nan")}), "no finite"),
    (json.dumps([1, 2, 3]), "no finite"),
])
def test_electricity_maps_feed_rejects_bad_payloads(body, match):
    feed = ElectricityMapsFeed(api_key="k3y",
                               transport=lambda *_args: body)
    with pytest.raises(FeedError, match=match):
        feed.fetch("EU-PL", hour=0)


def test_electricity_maps_feed_requires_api_key():
    def transport(*_args):
        raise AssertionError("must not hit the network without a key")

    with pytest.raises(FeedError, match="API key"):
        ElectricityMapsFeed(api_key="", transport=transport).fetch("EU-PL", 0)


def test_electricity_maps_transport_errors_surface_as_feed_errors():
    def transport(url, headers, timeout_s):
        raise FeedError("connection timed out")

    adapter = ElectricityMapsFeed(api_key="k3y", transport=transport)
    with pytest.raises(FeedError, match="timed out"):
        adapter.fetch("EU-PL", hour=0)


# -- the satellite contract: degraded feeds never change placements ------------


def _decision_log_with_adapter(scenario, adapter, seed=21):
    service = PlacementService.from_scenario(
        scenario, adapter=adapter,
        config=ServingConfig(batch_interval_s=600.0, resolve_interval_s=3600.0))
    load = LoadGenerator(sites=service.simulator.fleet.sites(),
                         rate_per_s=0.01, mean_lifetime_s=3600.0, seed=seed)
    report = service.run_live(load, duration_s=2 * 3600.0)
    return report.metrics


def test_feed_outage_changes_telemetry_but_not_placements():
    scenario = CDNScenario(continent="EU", max_sites=5, seed=9)
    healthy = _decision_log_with_adapter(scenario, adapter=None)
    broken = _decision_log_with_adapter(
        scenario, adapter=FlakyAdapter(fail_times=10 ** 9))
    # Identical decisions, byte for byte …
    assert broken.canonical_decision_log() == healthy.canonical_decision_log()
    assert broken.decision_digest() == healthy.decision_digest()
    # … but very different feed telemetry.
    assert set(healthy.feed_samples) == {"live"} and not healthy.feed_stale
    assert set(broken.feed_samples) == {"forecast"} and broken.feed_stale
    assert broken.feed_events["fallback-forecast"] > 0
