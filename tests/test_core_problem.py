"""Placement-problem construction tests."""

import numpy as np
import pytest

from repro.core.problem import INFEASIBLE_LATENCY_MS, PlacementProblem
from repro.utils.units import joules_to_kwh
from tests.conftest import make_apps


def test_problem_shapes(florida_problem):
    p = florida_problem
    assert p.n_applications == 5 and p.n_servers == 5
    assert p.latency_ms.shape == (5, 5)
    assert p.energy_j.shape == (5, 5)
    assert p.intensity.shape == (5,)
    assert len(p.demands) == 5 and len(p.demands[0]) == 5
    assert np.all(p.current_power == 1.0)


def test_source_site_has_zero_latency(florida_problem):
    p = florida_problem
    for i, app in enumerate(p.applications):
        j = p.server_index(f"{app.source_site.replace(' ', '_')}-srv00")
        assert p.latency_ms[i, j] == 0.0


def test_feasible_mask_respects_slo(florida_fleet, florida_latency, florida_carbon):
    apps = make_apps(florida_fleet.sites(), slo_ms=2.0)  # 1 ms one-way: only the local site
    p = PlacementProblem.build(apps, florida_fleet.servers(), florida_latency,
                               florida_carbon, hour=0)
    mask = p.feasible_mask()
    assert np.all(mask.sum(axis=1) == 1)


def test_unsupported_workload_marked(florida_fleet, florida_latency, florida_carbon):
    apps = make_apps(florida_fleet.sites()[:1], workload="UnknownNet")
    p = PlacementProblem.build(apps, florida_fleet.servers(), florida_latency,
                               florida_carbon, hour=0)
    assert not p.supported.any()
    assert np.all(p.latency_ms == INFEASIBLE_LATENCY_MS)
    assert not p.feasible_mask().any()


def test_operational_carbon_matches_energy_times_intensity(florida_problem):
    p = florida_problem
    expected = joules_to_kwh(p.energy_j) * p.intensity[None, :]
    assert np.allclose(p.operational_carbon_g(), expected)


def test_activation_carbon_and_energy(florida_problem):
    p = florida_problem
    expected_energy = p.base_power_w * p.horizon_hours * 3600.0
    assert np.allclose(p.activation_energy_j(), expected_energy)
    expected_carbon = p.base_power_w * p.horizon_hours / 1000.0 * p.intensity
    assert np.allclose(p.activation_carbon_g(), expected_carbon)


def test_forecast_vs_instantaneous_intensity(florida_fleet, florida_latency, florida_carbon):
    apps = make_apps(florida_fleet.sites()[:1])
    with_forecast = PlacementProblem.build(apps, florida_fleet.servers(), florida_latency,
                                           florida_carbon, hour=10, horizon_hours=24.0,
                                           use_forecast=True)
    instantaneous = PlacementProblem.build(apps, florida_fleet.servers(), florida_latency,
                                           florida_carbon, hour=10, horizon_hours=24.0,
                                           use_forecast=False)
    # The 24-hour mean differs from the instantaneous value for a varying trace.
    assert not np.allclose(with_forecast.intensity, instantaneous.intensity)


def test_index_lookups(florida_problem):
    p = florida_problem
    assert p.app_index(p.applications[2].app_id) == 2
    assert p.server_index(p.servers[3].server_id) == 3
    with pytest.raises(KeyError):
        p.app_index("ghost")
    with pytest.raises(KeyError):
        p.server_index("ghost")


def test_empty_batches_rejected(florida_fleet, florida_latency, florida_carbon):
    with pytest.raises(ValueError):
        PlacementProblem.build([], florida_fleet.servers(), florida_latency, florida_carbon)
    with pytest.raises(ValueError):
        PlacementProblem.build(make_apps(["Miami"]), [], florida_latency, florida_carbon)


def test_shape_validation_on_raw_constructor(florida_problem):
    p = florida_problem
    with pytest.raises(ValueError):
        PlacementProblem(applications=p.applications, servers=p.servers,
                         latency_ms=np.zeros((2, 2)), energy_j=p.energy_j,
                         demands=p.demands, intensity=p.intensity,
                         capacities=p.capacities, base_power_w=p.base_power_w,
                         current_power=p.current_power)
    with pytest.raises(ValueError):
        PlacementProblem(applications=p.applications, servers=p.servers,
                         latency_ms=p.latency_ms, energy_j=p.energy_j,
                         demands=p.demands, intensity=p.intensity,
                         capacities=p.capacities, base_power_w=p.base_power_w,
                         current_power=p.current_power, horizon_hours=0.0)
