"""Mesoscale-region definition tests."""

import pytest

from repro.datasets.regions import (
    ALL_REGIONS,
    CENTRAL_EU,
    FIGURE1_ZONES,
    FLORIDA,
    ITALY,
    WEST_US,
    region_by_name,
)


def test_all_regions_have_five_cities():
    for region in ALL_REGIONS:
        assert len(region) == 5


def test_region_city_resolution():
    cities = FLORIDA.cities()
    assert [c.name for c in cities] == list(FLORIDA.city_names)
    assert all(c.state == "FL" for c in cities)


def test_region_zone_ids_are_city_level():
    assert FLORIDA.zone_ids() == ["US-FL-JAX", "US-FL-MIA", "US-FL-TPA", "US-FL-ORL", "US-FL-TAL"]
    assert CENTRAL_EU.zone_ids() == ["EU-CH-BRN", "EU-DE-MUC", "EU-FR-LYS", "EU-AT-GRZ", "EU-IT-MIL"]


def test_central_eu_and_italy_share_milan():
    assert "Milan" in CENTRAL_EU.city_names and "Milan" in ITALY.city_names


def test_region_continents():
    assert FLORIDA.continent == "US" and WEST_US.continent == "US"
    assert ITALY.continent == "EU" and CENTRAL_EU.continent == "EU"


def test_region_by_name_case_insensitive():
    assert region_by_name("florida") is FLORIDA
    assert region_by_name("Central EU") is CENTRAL_EU


def test_region_by_name_unknown():
    with pytest.raises(KeyError):
        region_by_name("Mars")


def test_figure1_zones_exist_in_zone_catalog():
    from repro.datasets.electricity_maps import default_zone_catalog
    zones = default_zone_catalog()
    for zone_id in FIGURE1_ZONES:
        assert zone_id in zones
