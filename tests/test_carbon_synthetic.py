"""Synthetic trace-generator tests (calibration against the paper's spreads)."""

import numpy as np
import pytest

from repro.carbon.statistics import max_min_ratio
from repro.carbon.synthetic import SyntheticTraceGenerator, generate_trace, generate_traces
from repro.datasets.regions import CENTRAL_EU, FLORIDA, WEST_US
from repro.datasets.electricity_maps import default_zone_catalog


def test_trace_length_and_positivity():
    trace = generate_trace("US-CA", seed=0, n_hours=336)
    assert len(trace) == 336
    assert trace.min() >= 1.0


def test_generation_is_deterministic():
    a = generate_trace("EU-PL", seed=4, n_hours=168)
    b = generate_trace("EU-PL", seed=4, n_hours=168)
    assert np.array_equal(a.values, b.values)


def test_different_seeds_differ():
    a = generate_trace("EU-PL", seed=1, n_hours=168)
    b = generate_trace("EU-PL", seed=2, n_hours=168)
    assert not np.array_equal(a.values, b.values)


def test_mean_tracks_static_mix_intensity():
    catalog = default_zone_catalog()
    for zone_id in ("EU-PL", "CA-ON", "US-FL-MIA"):
        spec = catalog.get(zone_id)
        trace = generate_trace(zone_id, seed=0, n_hours=8760)
        assert trace.mean() == pytest.approx(spec.annual_mean_intensity, rel=0.45)


def test_poland_dirtier_than_ontario():
    traces = generate_traces(["EU-PL", "CA-ON"], seed=0, n_hours=8760)
    assert traces.get("EU-PL").mean() > 5 * traces.get("CA-ON").mean()


def test_west_us_yearly_ratio_band():
    traces = generate_traces(WEST_US.zone_ids(), seed=0)
    ratio = max_min_ratio(traces, WEST_US.zone_ids())
    assert 1.8 <= ratio <= 4.0  # paper: 2.7x


def test_central_eu_yearly_ratio_band():
    traces = generate_traces(CENTRAL_EU.zone_ids(), seed=0)
    ratio = max_min_ratio(traces, CENTRAL_EU.zone_ids())
    assert 6.0 <= ratio <= 16.0  # paper: 10.8x


def test_miami_is_greenest_florida_zone():
    traces = generate_traces(FLORIDA.zone_ids(), seed=0)
    means = {z: traces.get(z).mean() for z in FLORIDA.zone_ids()}
    assert min(means, key=means.get) == "US-FL-MIA"


def test_generate_set_covers_requested_zones():
    generator = SyntheticTraceGenerator(seed=0, n_hours=24)
    catalog = default_zone_catalog()
    ts = generator.generate_set([catalog.get("US-CA"), catalog.get("US-NY")])
    assert ts.zone_ids() == ["US-CA", "US-NY"]
    assert ts.n_hours == 24


def test_generate_catalog_subset():
    generator = SyntheticTraceGenerator(seed=0, n_hours=24)
    ts = generator.generate_catalog(zone_ids=["EU-PL"])
    assert ts.zone_ids() == ["EU-PL"]


def test_diurnal_structure_in_solar_zones():
    trace = generate_trace("US-CA", seed=0, n_hours=8760)
    profile = trace.daily_profile()
    # California's duck curve: mid-day intensity below the overnight level.
    assert profile[13] < profile[3]
