"""Carbon statistics tests."""

import numpy as np
import pytest

from repro.carbon.statistics import (
    coefficient_of_variation,
    max_min_ratio,
    monthly_means,
    pairwise_percentage_difference,
    regional_summary,
    spatial_spread,
    temporal_range,
)
from repro.carbon.traces import TraceSet


@pytest.fixture
def traces():
    return TraceSet.from_mapping({
        "a": np.full(8760, 100.0),
        "b": np.full(8760, 400.0),
        "c": np.linspace(100.0, 300.0, 8760),
    })


def test_spatial_spread(traces):
    spread = spatial_spread(traces, ["a", "b"], hour=0)
    assert spread["min"] == 100.0 and spread["max"] == 400.0
    assert spread["ratio"] == pytest.approx(4.0)
    assert spread["range"] == pytest.approx(300.0)


def test_max_min_ratio(traces):
    assert max_min_ratio(traces, ["a", "b"]) == pytest.approx(4.0)
    assert max_min_ratio(traces, ["a"]) == pytest.approx(1.0)


def test_pairwise_percentage_difference(traces):
    assert pairwise_percentage_difference(traces, "b", "a") == pytest.approx(75.0)
    assert pairwise_percentage_difference(traces, "a", "b") == pytest.approx(-300.0)


def test_temporal_range(traces):
    assert temporal_range(traces, "a", 0, 100) == 0.0
    assert temporal_range(traces, "c", 0, 8760) == pytest.approx(200.0)


def test_monthly_means_keys_and_monotonicity(traces):
    months = monthly_means(traces, "c")
    assert list(months) == ["Jan", "Feb", "Mar", "Apr", "May", "Jun",
                            "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"]
    values = list(months.values())
    assert values == sorted(values)  # the linear trace grows month over month


def test_coefficient_of_variation(traces):
    assert coefficient_of_variation(traces, "a") == 0.0
    assert coefficient_of_variation(traces, "c") > 0.0


def test_regional_summary(traces):
    summary = regional_summary(traces, ["a", "c"])
    assert set(summary) == {"a", "c"}
    assert summary["a"]["mean"] == pytest.approx(100.0)
    assert set(summary["c"]) == {"mean", "min", "max", "cv"}
