"""Tests of the sharded parallel scenario runner.

The load-bearing property is determinism regardless of worker count: the same
experiment must produce byte-identical JSON artifacts whether it runs inline
or sharded across a process pool.
"""

import pytest

from repro.experiments import common, registry
from repro.experiments.results import jsonable
from repro.simulator.cdn import clear_substrate_cache, scenario_substrate
from repro.simulator.scenario import CDNScenario
from repro.simulator.runner import (
    ScenarioRunner,
    expand_units,
    merge_artifacts,
    run_experiments,
)


# -- work-unit expansion ------------------------------------------------------


def test_expand_units_respects_grid_order():
    units = expand_units(registry.get("fig12"))
    assert len(units) == 12  # 2 continents x 6 limits
    assert units[0].params["continents"] == ("US",)
    assert units[0].params["limits_ms"] == (5.0,)
    assert units[5].params["limits_ms"] == (30.0,)
    assert units[6].params["continents"] == ("EU",)
    assert all(u.n_units == 12 for u in units)


def test_expand_units_without_sweep_is_single_unit():
    units = expand_units(registry.get("fig04"))
    assert len(units) == 1
    assert units[0].index == 0 and units[0].n_units == 1


def test_expand_units_applies_smoke_and_overrides():
    units = expand_units(registry.get("fig11"), smoke=True, overrides={"seed": 3})
    assert len(units) == 1
    assert units[0].params["seed"] == 3
    assert units[0].params["n_epochs"] == 1


# -- artifact merging ---------------------------------------------------------


def test_merge_dicts_recursively_and_concatenates_lists():
    merged = merge_artifacts([
        {"summary": {"US": 1}, "rows": [{"a": 1}], "shared": "x"},
        {"summary": {"EU": 2}, "rows": [{"a": 2}], "shared": "x"},
    ])
    assert merged == {"summary": {"US": 1, "EU": 2},
                      "rows": [{"a": 1}, {"a": 2}], "shared": "x"}


def test_merge_collapses_equal_lists_but_concatenates_different_ones():
    merged = merge_artifacts([{"axis": [1, 2], "rows": [1]},
                              {"axis": [1, 2], "rows": [2]}])
    assert merged == {"axis": [1, 2], "rows": [1, 2]}


def test_merge_conflicting_scalars_raises():
    with pytest.raises(ValueError, match="cannot merge"):
        merge_artifacts([{"x": 1}, {"x": 2}])


def test_merge_empty_raises():
    with pytest.raises(ValueError, match="no unit artifacts"):
        merge_artifacts([])


# -- execution ----------------------------------------------------------------


def test_runner_rejects_bad_worker_counts_and_empty_selection():
    with pytest.raises(ValueError, match="workers"):
        ScenarioRunner(workers=0)
    with pytest.raises(ValueError, match="no experiments"):
        ScenarioRunner().run([])


@pytest.mark.parametrize(
    "name", [s.name for s in registry.all_specs() if s.deterministic])
def test_worker_count_does_not_change_artifact_bytes(name):
    """--workers 1/2/4 produce byte-identical artifacts (the tentpole claim).

    Covers every spec whose artifact claims to be a pure function of its
    parameters; fig17 (wall-clock/memory payload) opts out via
    ``deterministic=False``.
    """
    reference = None
    for workers in (1, 2, 4):
        result = ScenarioRunner(workers=workers, smoke=True).run_one(name)
        blob = result.to_json()
        if reference is None:
            reference = blob
        assert blob == reference, f"workers={workers} changed {name} artifact"


def test_sharded_merge_equals_sequential_run():
    """The merged sharded artifact matches one unsharded run() call."""
    from repro.experiments import fig12_latency_sweep

    spec = registry.get("fig12")
    direct = fig12_latency_sweep.run(**spec.resolved_params(smoke=True))
    sharded = ScenarioRunner(workers=2, smoke=True).run_one("fig12")
    assert sharded.artifact["rows"] == jsonable(direct["rows"])
    assert sharded.n_units == 2


def test_epoch_shards_do_not_change_artifact_bytes():
    """--epoch-shards 1/4 produce byte-identical fig11 artifacts.

    The app count is pushed above the shard-size threshold so the sharded
    kernel genuinely executes (rather than falling back to serial), and the
    recorded params must not leak the execution-only override.
    """
    overrides = {"apps_per_site_per_epoch": 6.0}
    reference = None
    for epoch_shards in (1, 4):
        result = ScenarioRunner(smoke=True, overrides=overrides,
                                epoch_shards=epoch_shards).run_one("fig11")
        assert result.params["epoch_shards"] == 1  # execution knob, not science
        blob = result.to_json()
        if reference is None:
            reference = blob
        assert blob == reference, f"epoch_shards={epoch_shards} changed fig11"


def test_sub_shard_size_epochs_fall_back_to_serial_byte_identically():
    """Epochs below the shard-size threshold (here ~10 apps < 32) take the
    serial fallback even under an aggressive --epoch-shards, and the artifact
    still matches the serial run byte for byte."""
    overrides = {"apps_per_site_per_epoch": 1.0}
    serial = ScenarioRunner(smoke=True, overrides=overrides).run_one("fig11")
    sharded = ScenarioRunner(smoke=True, overrides=overrides,
                             epoch_shards=16).run_one("fig11")
    assert sharded.to_json() == serial.to_json()


def test_surplus_workers_become_intra_unit_shards():
    runner = ScenarioRunner(workers=8)
    assert runner._effective_epoch_shards(n_units=2) == 4
    assert runner._effective_epoch_shards(n_units=8) == 1
    assert runner._effective_epoch_shards(n_units=0) == 1
    explicit = ScenarioRunner(workers=1, epoch_shards=3)
    assert explicit._effective_epoch_shards(n_units=50) == 3


def test_runner_rejects_bad_epoch_shards():
    with pytest.raises(ValueError, match="epoch_shards"):
        ScenarioRunner(epoch_shards=0)


def test_run_experiments_multiple_specs_in_one_session():
    results = run_experiments(["table1", "fig07"], workers=2, smoke=True)
    assert list(results) == ["table1", "fig07"]
    for name, result in results.items():
        result.validate(registry.get(name).schema)


def test_seed_override_reaches_seeded_specs_only():
    result = ScenarioRunner(smoke=True, seed=123).run_one("fig01")
    assert result.params["seed"] == 123
    result = ScenarioRunner(smoke=True, seed=123).run_one("table1")
    assert "seed" not in result.params


# -- cache management ---------------------------------------------------------


def test_clear_caches_drops_experiment_and_substrate_caches():
    common.region_traces("Florida", seed=11, n_hours=48)
    assert common._region_traces.cache_info().currsize > 0
    scenario = CDNScenario(continent="EU", n_epochs=1, max_sites=6, seed=11)
    first = scenario_substrate(scenario)
    assert scenario_substrate(scenario) is first
    common.clear_caches()
    assert common._region_traces.cache_info().currsize == 0
    assert scenario_substrate(scenario) is not first
    common.clear_caches()


def test_cache_keying_normalises_defaulted_and_explicit_seeds():
    common.clear_caches()
    a = common.region_traces("Florida", n_hours=48)
    b = common.region_traces("Florida", seed=common.EXPERIMENT_SEED, n_hours=48)
    assert a is b
    assert common._region_traces.cache_info().currsize == 1
    c = common.region_traces("Florida", seed=1, n_hours=48)
    assert c is not a
    common.clear_caches()


def test_substrate_shared_across_scenario_variants():
    clear_substrate_cache()
    base = CDNScenario(continent="EU", n_epochs=1, max_sites=6, seed=5)
    variant = CDNScenario(continent="EU", n_epochs=4, max_sites=6, seed=5,
                          latency_limit_ms=10.0)
    other_seed = CDNScenario(continent="EU", n_epochs=1, max_sites=6, seed=6)
    assert scenario_substrate(base) is scenario_substrate(variant)
    assert scenario_substrate(base) is not scenario_substrate(other_seed)
    clear_substrate_cache()


def test_fresh_simulator_sees_pristine_fleet_despite_shared_substrate():
    """A new CDNSimulator must not inherit a previous run's fleet state."""
    from repro.simulator.cdn import CDNSimulator

    clear_substrate_cache()
    scenario = CDNScenario(continent="EU", n_epochs=1, max_sites=6, seed=5)
    first = CDNSimulator(scenario=scenario)
    first.run()
    second = CDNSimulator(scenario=scenario)
    assert second.fleet is first.fleet  # substrate is shared...
    for server in second.fleet.servers():  # ...but the baseline is restored
        assert not server.allocations
        assert server.is_on
    clear_substrate_cache()


# -- merge error paths and the streaming merge --------------------------------


def test_merge_type_mismatch_reports_the_json_path():
    with pytest.raises(ValueError, match=r"\$\.summary"):
        merge_artifacts([{"summary": {"US": 1}}, {"summary": [1, 2]}])


def test_merge_conflict_reports_nested_paths():
    with pytest.raises(ValueError, match=r"\$\.scale\.n_sites"):
        merge_artifacts([{"scale": {"n_sites": 10}},
                         {"scale": {"n_sites": 20}}])
    with pytest.raises(ValueError, match=r"\$\.a\.b\.c"):
        merge_artifacts([{"a": {"b": {"c": "x"}}},
                         {"a": {"b": {"c": "y"}}}])


def test_merge_artifact_parts_equals_in_memory_merge(tmp_path):
    import json

    from repro.simulator.runner import merge_artifact_parts

    fragments = [
        {"summary": {"US": {"v": 1}}, "rows": [[0, 1]], "shared": "x"},
        {"summary": {"EU": {"v": 2}}, "rows": [[2, 3]], "shared": "x"},
        {"summary": {"AS": {"v": 3}}, "rows": [[4, 5]], "shared": "x"},
    ]
    paths = []
    for i, fragment in enumerate(fragments):
        path = tmp_path / f"part-{i:05d}.json"
        path.write_text(json.dumps(fragment))
        paths.append(path)
    assert merge_artifact_parts(paths) == merge_artifacts(fragments)
    with pytest.raises(ValueError, match="no unit artifacts"):
        merge_artifact_parts([])


def test_runner_rejects_bad_merge_mode():
    with pytest.raises(ValueError, match="merge"):
        ScenarioRunner(merge="mmap")


def test_stream_merge_is_byte_identical_to_memory_merge():
    """The spill-directory streaming merge must not change artifact bytes —
    planetary_sweep has two sweep units even at smoke scale, so this folds a
    real multi-part artifact."""
    memory = ScenarioRunner(smoke=True, merge="memory").run_one("planetary_sweep")
    stream = ScenarioRunner(smoke=True, merge="stream").run_one("planetary_sweep")
    assert stream.to_json() == memory.to_json()
    streamed_workers = ScenarioRunner(smoke=True, merge="stream",
                                      workers=2).run_one("planetary_sweep")
    assert streamed_workers.to_json() == memory.to_json()
