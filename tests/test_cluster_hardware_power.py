"""Hardware-catalogue and power-model tests."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster.hardware import (
    DEVICE_CATALOG,
    GTX_1080,
    NVIDIA_A2,
    ORIN_NANO,
    XEON_E5_2660V3,
    DeviceSpec,
    device_by_name,
)
from repro.cluster.power import IdleProportionalPowerModel, LinearPowerModel
from repro.cluster.resources import ResourceVector


def test_catalog_contents():
    assert set(DEVICE_CATALOG) == {"Xeon E5-2660v3", "NVIDIA A2", "Orin Nano", "GTX 1080"}
    assert device_by_name("NVIDIA A2") is NVIDIA_A2
    with pytest.raises(KeyError):
        device_by_name("H100")


def test_paper_device_specs():
    # Section 6.1.2: A2 has 1280 CUDA cores / 16 GB / 60 W; Orin Nano 1024 / 8 GB / 15 W;
    # GTX 1080 2560 / 8 GB / 180 W; the host is a 40-core Xeon with 256 GB.
    assert NVIDIA_A2.cuda_cores == 1280 and NVIDIA_A2.max_power_w == 60.0
    assert NVIDIA_A2.capacity["gpu_memory_mb"] == 16_000
    assert ORIN_NANO.cuda_cores == 1024 and ORIN_NANO.max_power_w == 15.0
    assert GTX_1080.cuda_cores == 2560 and GTX_1080.max_power_w == 180.0
    assert XEON_E5_2660V3.capacity["cpu_cores"] == 40


def test_device_validation():
    with pytest.raises(ValueError):
        DeviceSpec(name="x", kind="tpu", capacity=ResourceVector(), idle_power_w=1, max_power_w=2)
    with pytest.raises(ValueError):
        DeviceSpec(name="x", kind="gpu", capacity=ResourceVector(), idle_power_w=10, max_power_w=5)


def test_dynamic_power_range():
    assert NVIDIA_A2.dynamic_power_range_w == pytest.approx(52.0)


def test_linear_power_model_endpoints():
    model = LinearPowerModel(idle_w=100.0, max_w=300.0)
    assert model.power_w(0.0) == 100.0
    assert model.power_w(1.0) == 300.0
    assert model.power_w(0.5) == 200.0


def test_linear_power_model_energy():
    model = LinearPowerModel(idle_w=100.0, max_w=300.0)
    assert model.energy_j(0.5, 10.0) == pytest.approx(2000.0)
    assert model.dynamic_energy_j(0.5, 10.0) == pytest.approx(1000.0)


def test_power_model_validation():
    with pytest.raises(ValueError):
        LinearPowerModel(idle_w=10.0, max_w=5.0)
    with pytest.raises(ValueError):
        LinearPowerModel(idle_w=10.0, max_w=20.0).power_w(1.5)
    with pytest.raises(ValueError):
        LinearPowerModel(idle_w=10.0, max_w=20.0).energy_j(0.5, -1.0)


def test_idle_proportional_model_sublinear():
    model = IdleProportionalPowerModel(idle_w=100.0, max_w=300.0, exponent=0.5)
    linear = LinearPowerModel(idle_w=100.0, max_w=300.0)
    assert model.power_w(0.25) > linear.power_w(0.25)
    assert model.power_w(0.0) == 100.0 and model.power_w(1.0) == 300.0
    with pytest.raises(ValueError):
        IdleProportionalPowerModel(idle_w=1.0, max_w=2.0, exponent=0.0)


@given(st.floats(0.0, 1.0), st.floats(0.0, 1.0))
def test_linear_power_monotone_property(u1, u2):
    model = LinearPowerModel(idle_w=50.0, max_w=250.0)
    if u1 <= u2:
        assert model.power_w(u1) <= model.power_w(u2)
