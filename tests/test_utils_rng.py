"""Deterministic RNG substream tests."""

import numpy as np
from hypothesis import given, strategies as st

from repro.utils.rng import spawn_seed, substream


def test_same_names_same_stream():
    a = substream(1, "carbon", "US-CA").standard_normal(8)
    b = substream(1, "carbon", "US-CA").standard_normal(8)
    assert np.array_equal(a, b)


def test_different_names_different_streams():
    a = substream(1, "carbon", "US-CA").standard_normal(8)
    b = substream(1, "carbon", "US-NY").standard_normal(8)
    assert not np.array_equal(a, b)


def test_different_seeds_different_streams():
    a = substream(1, "x").standard_normal(8)
    b = substream(2, "x").standard_normal(8)
    assert not np.array_equal(a, b)


def test_name_order_matters():
    assert spawn_seed(0, "a", "b") != spawn_seed(0, "b", "a")


def test_numeric_and_string_names_distinct():
    assert spawn_seed(0, 1, 2) != spawn_seed(0, 12)


def test_spawn_seed_is_64bit_unsigned():
    s = spawn_seed(123, "anything")
    assert 0 <= s < 2**64


@given(st.integers(min_value=0, max_value=2**31), st.text(max_size=20))
def test_spawn_seed_deterministic_property(seed, name):
    assert spawn_seed(seed, name) == spawn_seed(seed, name)
