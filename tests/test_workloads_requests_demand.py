"""Request-load and demand-distribution tests."""

import numpy as np
import pytest

from repro.workloads.demand import (
    capacity_weights_from_population,
    demand_per_site,
    population_weights,
    uniform_weights,
)
from repro.workloads.requests import RequestLoad, generate_request_load


def test_request_load_rate_matches():
    load = generate_request_load("app", rate_rps=10.0, duration_s=3600.0, seed=1)
    assert load.mean_rate_rps == pytest.approx(10.0, rel=0.15)
    assert load.arrival_times_s.min() >= 0.0
    assert load.arrival_times_s.max() <= 3600.0


def test_request_load_deterministic_per_app():
    a = generate_request_load("app", 5.0, 100.0, seed=2)
    b = generate_request_load("app", 5.0, 100.0, seed=2)
    c = generate_request_load("other", 5.0, 100.0, seed=2)
    assert np.array_equal(a.arrival_times_s, b.arrival_times_s)
    assert not np.array_equal(a.arrival_times_s, c.arrival_times_s)


def test_request_load_window_and_hourly_counts():
    load = generate_request_load("app", 2.0, 7200.0, seed=1)
    counts = load.hourly_counts()
    assert counts.shape == (2,)
    assert counts.sum() == len(load)
    assert load.requests_in_window(0.0, 7200.0) == len(load)
    with pytest.raises(ValueError):
        load.requests_in_window(10.0, 5.0)


def test_request_load_validation():
    with pytest.raises(ValueError):
        generate_request_load("a", 0.0, 10.0)
    with pytest.raises(ValueError):
        generate_request_load("a", 1.0, 0.0)
    with pytest.raises(ValueError):
        RequestLoad(app_id="a", arrival_times_s=np.array([5.0]), duration_s=1.0)


def test_population_weights_normalised():
    weights = population_weights(["New York", "Kingman"])
    assert sum(weights.values()) == pytest.approx(1.0)
    assert weights["New York"] > weights["Kingman"]


def test_uniform_weights():
    weights = uniform_weights(["a", "b", "c", "d"])
    assert all(v == pytest.approx(0.25) for v in weights.values())
    with pytest.raises(ValueError):
        uniform_weights([])


def test_demand_per_site_split():
    demand = demand_per_site(["New York", "Kingman"], total_demand=100.0)
    assert sum(demand.values()) == pytest.approx(100.0)
    assert demand["New York"] > demand["Kingman"]
    with pytest.raises(KeyError):
        demand_per_site(["New York"], 10.0, weights={"Boston": 1.0})


def test_capacity_weights_mean_one_and_floored():
    sites = ["New York", "Miami", "Kingman", "Flagstaff"]
    weights = capacity_weights_from_population(sites)
    assert np.mean(list(weights.values())) == pytest.approx(1.0)
    assert min(weights.values()) > 0.0
    assert weights["New York"] == max(weights.values())
