"""Mesoscale-analysis and reporting tests."""

import numpy as np
import pytest

from repro.analysis.mesoscale import (
    radius_latency_analysis,
    radius_savings_analysis,
    region_snapshot,
    savings_cdf,
    yearly_region_stats,
)
from repro.analysis.reporting import format_cdf, format_series, format_table
from repro.analysis.savings import carbon_savings_pct, compare_solutions
from repro.carbon.traces import TraceSet
from repro.core.policies import CarbonEdgePolicy, LatencyAwarePolicy
from repro.datasets.akamai import build_cdn_footprint
from repro.datasets.regions import FLORIDA


def test_region_snapshot(florida_traces):
    snap = region_snapshot(FLORIDA, florida_traces, hour=12)
    assert set(snap.intensities) == set(FLORIDA.city_names)
    assert snap.spread_ratio >= 1.0
    assert snap.width_km > 100 and snap.height_km > 100


def test_yearly_region_stats(florida_traces):
    stats = yearly_region_stats(FLORIDA, florida_traces)
    assert stats["region"] == "Florida"
    assert stats["ratio"] >= 1.0
    assert min(stats["means"], key=stats["means"].get) == "Miami"


def _footprint_traces(footprint):
    zone_ids = footprint.zone_ids()
    rng = np.random.default_rng(0)
    return TraceSet.from_mapping({z: np.full(24, float(rng.uniform(50, 800)))
                                  for z in zone_ids})


def test_radius_savings_monotone_in_radius():
    footprint = build_cdn_footprint(n_sites=80, seed=2)
    traces = _footprint_traces(footprint)
    small = radius_savings_analysis(footprint, traces, 200.0)
    large = radius_savings_analysis(footprint, traces, 1000.0)
    assert small.shape == large.shape
    assert np.all(large >= small - 1e-9)
    assert np.all(small >= 0.0) and np.all(small <= 100.0)


def test_radius_savings_validation():
    footprint = build_cdn_footprint(n_sites=20, seed=2)
    traces = _footprint_traces(footprint)
    with pytest.raises(ValueError):
        radius_savings_analysis(footprint, traces, 0.0)
    with pytest.raises(ValueError):
        radius_savings_analysis(footprint, traces, 100.0, continents=("ASIA",))


def test_radius_latency_grows_with_radius():
    footprint = build_cdn_footprint(n_sites=60, seed=2)
    near = radius_latency_analysis(footprint, 200.0)
    far = radius_latency_analysis(footprint, 1000.0)
    assert len(far) > len(near)
    assert np.median(far) > np.median(near)


def test_savings_cdf_summary():
    savings = np.array([0.0, 10.0, 25.0, 50.0, 80.0])
    cdf = savings_cdf(savings)
    assert cdf["below_20"] == pytest.approx(0.4)
    assert cdf["above_40"] == pytest.approx(0.4)
    assert cdf["median"] == pytest.approx(25.0)
    with pytest.raises(ValueError):
        savings_cdf(np.array([]))


def test_carbon_savings_pct():
    assert carbon_savings_pct(100.0, 40.0) == pytest.approx(60.0)
    assert carbon_savings_pct(0.0, 0.0) == 0.0
    with pytest.raises(ValueError):
        carbon_savings_pct(-1.0, 0.0)


def test_compare_solutions(central_eu_problem):
    baseline = LatencyAwarePolicy().timed_place(central_eu_problem)
    policy = CarbonEdgePolicy().timed_place(central_eu_problem)
    comparison = compare_solutions(baseline, policy)
    assert comparison.carbon_savings_pct > 0.0
    assert comparison.latency_increase_ms >= 0.0
    assert comparison.policy == "CarbonEdge"
    row = comparison.as_row()
    assert set(row) == {"policy", "carbon_savings_pct", "latency_increase_ms", "energy_ratio"}


def test_format_table_and_series_and_cdf():
    table = format_table([{"a": 1, "b": 2.5}, {"a": 3, "b": 4.0}], title="T")
    assert "T" in table and "a" in table and "2.50" in table
    assert "(no rows)" in format_table([])
    series = format_series({"x": [1.0, 2.0]}, title="S")
    assert "x: [1.00, 2.00]" in series
    cdf = format_cdf([1.0, 2.0, 3.0], title="C")
    assert "p50" in cdf
    assert "(empty)" in format_cdf([])
