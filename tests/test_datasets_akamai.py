"""Synthetic CDN-footprint tests."""

import pytest

from repro.datasets.akamai import CDNFootprint, build_cdn_footprint, default_cdn_footprint
from repro.datasets.electricity_maps import default_zone_catalog


def test_default_footprint_has_496_sites():
    assert len(default_cdn_footprint()) == 496


def test_every_city_gets_at_least_one_site():
    footprint = default_cdn_footprint()
    from repro.datasets.cities import default_city_catalog
    assert set(footprint.city_names()) == set(default_city_catalog().names())


def test_sites_weighted_by_population():
    footprint = default_cdn_footprint()
    per_city = {}
    for site in footprint:
        per_city[site.city_name] = per_city.get(site.city_name, 0) + 1
    assert per_city["New York"] > per_city["Kingman"]


def test_zone_ids_resolvable():
    zones = default_zone_catalog()
    for site in default_cdn_footprint():
        assert site.zone_id in zones


def test_one_per_city_deduplicates():
    footprint = default_cdn_footprint()
    deduplicated = footprint.one_per_city()
    assert len(deduplicated) == len(set(s.city_name for s in footprint))
    assert len(deduplicated) < len(footprint)


def test_continent_partition():
    footprint = default_cdn_footprint()
    us, eu = footprint.by_continent("US"), footprint.by_continent("EU")
    assert len(us) + len(eu) == len(footprint)
    assert len(us) > 100 and len(eu) > 100


def test_jitter_stays_near_anchor_city():
    footprint = default_cdn_footprint()
    for site in footprint:
        # 40 km max offset is well under one degree of latitude.
        from repro.datasets.cities import default_city_catalog
        city = default_city_catalog().get(site.city_name)
        assert abs(site.lat - city.lat) < 1.0
        assert abs(site.lon - city.lon) < 3.0


def test_build_deterministic():
    a = build_cdn_footprint(n_sites=100, seed=5)
    b = build_cdn_footprint(n_sites=100, seed=5)
    assert [s.site_id for s in a] == [s.site_id for s in b]
    assert a.coordinates_array().tolist() == b.coordinates_array().tolist()


def test_small_footprint_keeps_largest_cities():
    footprint = build_cdn_footprint(n_sites=10)
    assert len(footprint) == 10
    assert "New York" in footprint.city_names()


def test_invalid_site_count_rejected():
    with pytest.raises(ValueError):
        build_cdn_footprint(n_sites=0)


def test_get_and_unknown_site():
    footprint = default_cdn_footprint()
    first = next(iter(footprint))
    assert footprint.get(first.site_id) is first
    with pytest.raises(KeyError):
        footprint.get("nope")


def test_duplicate_site_ids_rejected():
    site = next(iter(default_cdn_footprint()))
    with pytest.raises(ValueError):
        CDNFootprint(sites=(site, site))
