"""Discrete-event engine tests."""

import pytest

from repro.simulator.engine import SimulationEngine
from repro.simulator.events import Event, EventQueue


def test_event_validation_and_ordering():
    with pytest.raises(ValueError):
        Event(time_s=-1.0)
    queue = EventQueue()
    queue.schedule(5.0, kind="b")
    queue.schedule(1.0, kind="a")
    queue.schedule(5.0, kind="c", priority=-1)
    assert queue.pop().kind == "a"
    assert queue.pop().kind == "c"  # same time, higher priority (lower value) first
    assert queue.pop().kind == "b"


def test_event_rejects_non_finite_times():
    # Regression: ``NaN < 0`` is False, so NaN used to slip past the
    # non-negativity check and corrupt the heap's ordering invariant.
    for bad in (float("nan"), float("inf"), float("-inf")):
        with pytest.raises(ValueError, match="finite|non-negative"):
            Event(time_s=bad)
    queue = EventQueue()
    with pytest.raises(ValueError):
        queue.schedule(float("nan"))


def test_engine_rejects_non_finite_schedule_times():
    engine = SimulationEngine()
    for bad in (float("nan"), float("inf")):
        with pytest.raises(ValueError, match="finite"):
            engine.schedule(bad, kind="tick")
        with pytest.raises(ValueError, match="finite"):
            engine.schedule_at(bad, kind="tick")
    # NaN must not poison comparisons against the current clock either.
    with pytest.raises(ValueError, match="finite"):
        engine.schedule_at(float("-inf"), kind="tick")


def test_queue_fifo_for_equal_keys():
    queue = EventQueue()
    queue.schedule(1.0, kind="first")
    queue.schedule(1.0, kind="second")
    assert queue.pop().kind == "first"
    assert queue.pop().kind == "second"


def test_queue_empty_behaviour():
    queue = EventQueue()
    assert queue.empty and len(queue) == 0
    with pytest.raises(IndexError):
        queue.pop()
    with pytest.raises(IndexError):
        queue.peek()


def test_engine_dispatches_handlers_in_order():
    engine = SimulationEngine()
    seen = []
    engine.register_handler("tick", lambda e: seen.append(e.time_s))
    engine.schedule(3.0, kind="tick")
    engine.schedule(1.0, kind="tick")
    engine.schedule(2.0, kind="tick")
    processed = engine.run()
    assert processed == 3
    assert seen == [1.0, 2.0, 3.0]
    assert engine.clock.now_seconds == 3.0
    assert engine.events_processed == 3


def test_engine_event_specific_handler_takes_precedence():
    engine = SimulationEngine()
    seen = []
    engine.register_handler("tick", lambda e: seen.append("kind"))
    engine.schedule(1.0, kind="tick", handler=lambda e: seen.append("specific"))
    engine.run()
    assert seen == ["specific"]


def test_engine_run_until_and_max_events():
    engine = SimulationEngine()
    for t in (1.0, 2.0, 3.0, 4.0):
        engine.schedule(t, kind="tick")
    assert engine.run(until_s=2.5) == 2
    assert engine.clock.now_seconds == 2.5
    assert engine.run(max_events=1) == 1
    assert len(engine.queue) == 1


def test_engine_cascading_events():
    engine = SimulationEngine()
    seen = []

    def spawn(event):
        seen.append(event.time_s)
        if len(seen) < 4:
            engine.schedule(1.0, kind="spawn")

    engine.register_handler("spawn", spawn)
    engine.schedule(0.0, kind="spawn")
    engine.run()
    assert seen == [0.0, 1.0, 2.0, 3.0]


def test_engine_rejects_scheduling_in_the_past():
    engine = SimulationEngine()
    engine.schedule(1.0, kind="tick")
    engine.run()
    with pytest.raises(ValueError):
        engine.schedule_at(0.5, kind="late")
    with pytest.raises(ValueError):
        engine.schedule(-1.0, kind="late")
