"""Geodesic helper tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.network.geo import bounding_box, haversine_km, pairwise_distances_km


def test_haversine_zero_distance():
    assert haversine_km(40.0, -70.0, 40.0, -70.0) == 0.0


def test_haversine_known_distance_nyc_la():
    # New York -> Los Angeles is ~3940 km great circle.
    d = haversine_km(40.71, -74.01, 34.05, -118.24)
    assert 3800 <= d <= 4050


def test_haversine_symmetry():
    a = haversine_km(25.76, -80.19, 30.33, -81.66)
    b = haversine_km(30.33, -81.66, 25.76, -80.19)
    assert a == pytest.approx(b)


def test_pairwise_matches_scalar():
    coords = np.array([[25.76, -80.19], [30.33, -81.66], [28.54, -81.38]])
    matrix = pairwise_distances_km(coords)
    assert matrix.shape == (3, 3)
    assert np.allclose(np.diag(matrix), 0.0)
    assert matrix[0, 1] == pytest.approx(haversine_km(25.76, -80.19, 30.33, -81.66), rel=1e-9)
    assert np.allclose(matrix, matrix.T)


def test_pairwise_rectangular():
    a = np.array([[0.0, 0.0], [10.0, 10.0]])
    b = np.array([[0.0, 0.0], [5.0, 5.0], [20.0, 20.0]])
    matrix = pairwise_distances_km(a, b)
    assert matrix.shape == (2, 3)
    assert matrix[0, 0] == 0.0


def test_pairwise_rejects_bad_shape():
    with pytest.raises(ValueError):
        pairwise_distances_km(np.zeros((3, 3)))


@given(st.floats(-60, 60), st.floats(-170, 170), st.floats(-60, 60), st.floats(-170, 170))
def test_haversine_triangle_inequality_with_midpoint(lat1, lon1, lat2, lon2):
    mid_lat, mid_lon = (lat1 + lat2) / 2, (lon1 + lon2) / 2
    direct = haversine_km(lat1, lon1, lat2, lon2)
    via_mid = haversine_km(lat1, lon1, mid_lat, mid_lon) + haversine_km(mid_lat, mid_lon, lat2, lon2)
    assert direct <= via_mid + 1e-6


def test_bounding_box_florida():
    coords = np.array([[30.33, -81.66], [25.76, -80.19], [27.95, -82.46],
                       [28.54, -81.38], [30.44, -84.28]])
    box = bounding_box(coords)
    assert box["lat_min"] == pytest.approx(25.76)
    assert box["lat_max"] == pytest.approx(30.44)
    # The paper annotates Florida as roughly 807 km x 712 km.
    assert 250 <= box["width_km"] <= 900
    assert 400 <= box["height_km"] <= 900


def test_bounding_box_single_point():
    box = bounding_box(np.array([[10.0, 10.0]]))
    assert box["width_km"] == 0.0 and box["height_km"] == 0.0
