"""Smoke tests of the experiment runners (small configurations).

The full-size experiments are exercised by the benchmark harness; these tests
run each experiment at a reduced scale to make sure the plumbing (run + report)
works and the headline relationships hold.
"""

import pytest

from repro.experiments import (
    fig01_energy_mix,
    fig02_snapshots,
    fig03_yearly,
    fig04_temporal,
    fig05_radius,
    fig07_profiles,
    fig08_florida,
    fig10_regional,
    fig11_cdn_year,
    fig12_latency_sweep,
    fig14_demand_capacity,
    fig16_tradeoff,
    fig17_scalability,
    table1_latency,
)


def test_fig01_runs_and_reports():
    result = fig01_energy_mix.run(n_days=1)
    assert result["means"]["EU-PL"] > result["means"]["CA-ON"]
    assert "Figure 1a" in fig01_energy_mix.report(result)
    with pytest.raises(ValueError):
        fig01_energy_mix.run(n_days=0)


def test_fig02_fig03_fig04_reports():
    assert "Figure 2" in fig02_snapshots.report(fig02_snapshots.run())
    assert "Figure 3" in fig03_yearly.report(fig03_yearly.run())
    assert "Figure 4" in fig04_temporal.report(fig04_temporal.run())


def test_table1_report_contains_pairs():
    result = table1_latency.run()
    report = table1_latency.report(result)
    assert "Jacksonville - Miami" in report
    assert "Graz - Lyon" in report or "Lyon - Graz" in report or "Graz" in report


def test_fig05_small_footprint():
    result = fig05_radius.run(n_sites=60, radii_km=(200.0, 1000.0))
    assert result["per_radius"][200.0]["n_sites"] == 60
    assert "Figure 5" in fig05_radius.report(result)


def test_fig07_report():
    assert "Figure 7" in fig07_profiles.report(fig07_profiles.run())


def test_fig08_short_run():
    result = fig08_florida.run(hours=6)
    assert "CarbonEdge" in result["runs"]
    assert "savings" in fig08_florida.report(result)


def test_fig10_single_workload():
    result = fig10_regional.run(hours=6, workloads=("ResNet50",))
    assert result["summary"]["Central EU"]["savings_pct"] > result["summary"]["Florida"][
        "savings_pct"] - 100.0
    assert "Figure 10" in fig10_regional.report(result)


def test_fig11_small_scale():
    result = fig11_cdn_year.run(n_epochs=1, max_sites=10, continents=("EU",))
    assert result["summary"]["EU"]["carbon_savings_pct"] > 0
    assert "Figure 11" in fig11_cdn_year.report(result)


def test_fig12_small_sweep():
    result = fig12_latency_sweep.run(n_epochs=1, limits_ms=(5.0, 30.0), max_sites=10,
                                     continents=("EU",))
    rows = result["rows"]
    assert rows[-1]["carbon_savings_pct"] >= rows[0]["carbon_savings_pct"] - 5.0
    assert "Figure 12" in fig12_latency_sweep.report(result)


def test_fig14_small_scale():
    result = fig14_demand_capacity.run(n_epochs=1, max_sites=10, continents=("EU",))
    assert len(result["rows"]) == 3
    assert "Figure 14" in fig14_demand_capacity.report(result)


def test_fig16_small_scale():
    result = fig16_tradeoff.run(alphas=(0.0, 1.0), n_sites=8)
    low = result["scenarios"]["low"]
    assert low["carbon_g"][0] <= low["carbon_g"][-1] + 1e-6
    assert "Figure 16" in fig16_tradeoff.report(result)


def test_fig17_small_scale():
    result = fig17_scalability.run(server_counts=(20,), app_counts=(10,), fixed_apps=10,
                                   fixed_servers=20)
    assert result["by_servers"][0]["time_s"] < 30.0
    assert "Figure 17" in fig17_scalability.report(result)
