"""Application arrival-generator tests."""

import numpy as np
import pytest

from repro.workloads.generator import ApplicationGenerator


SITES = ["Miami", "Tampa", "Orlando"]


def test_batch_determinism():
    gen = ApplicationGenerator(sites=SITES, seed=1)
    a = gen.generate_batch(3, 100)
    b = gen.generate_batch(3, 100)
    assert [x.app_id for x in a.applications] == [x.app_id for x in b.applications]
    assert [x.source_site for x in a.applications] == [x.source_site for x in b.applications]


def test_different_intervals_differ():
    gen = ApplicationGenerator(sites=SITES, seed=1, mean_arrivals_per_batch=20)
    a = gen.generate_batch(0, 0)
    b = gen.generate_batch(1, 1)
    assert [x.source_site for x in a.applications] != [x.source_site for x in b.applications]


def test_fixed_arrival_count():
    gen = ApplicationGenerator(sites=SITES, seed=1)
    batch = gen.generate_batch(0, 0, n_arrivals=7)
    assert len(batch) == 7


def test_poisson_mean_roughly_respected():
    gen = ApplicationGenerator(sites=SITES, seed=1, mean_arrivals_per_batch=30)
    counts = [len(gen.generate_batch(i, i)) for i in range(50)]
    assert 20 <= np.mean(counts) <= 40


def test_site_weights_bias_sources():
    gen = ApplicationGenerator(sites=SITES, site_weights=[0.9, 0.05, 0.05], seed=1,
                               mean_arrivals_per_batch=100)
    batch = gen.generate_batch(0, 0, n_arrivals=200)
    sources = [a.source_site for a in batch.applications]
    assert sources.count("Miami") > 100


def test_workload_mix_respected():
    gen = ApplicationGenerator(sites=SITES, workload_mix={"ResNet50": 0.5, "YOLOv4": 0.5},
                               seed=1)
    batch = gen.generate_batch(0, 0, n_arrivals=100)
    workloads = {a.workload for a in batch.applications}
    assert workloads == {"ResNet50", "YOLOv4"}


def test_application_parameters_propagate():
    gen = ApplicationGenerator(sites=SITES, latency_slo_ms=15.0, request_rate_rps=7.0,
                               duration_hours=3.0, seed=1)
    app = gen.generate_batch(0, 0, n_arrivals=1).applications[0]
    assert app.latency_slo_ms == 15.0
    assert app.request_rate_rps == 7.0
    assert app.duration_hours == 3.0


def test_schedule_generation():
    gen = ApplicationGenerator(sites=SITES, seed=1)
    schedule = gen.generate_schedule(n_batches=5, start_hour=10, hours_per_batch=2)
    assert len(schedule) == 5
    assert [b.hour_of_year for b in schedule] == [10, 12, 14, 16, 18]


def test_validation_errors():
    with pytest.raises(ValueError):
        ApplicationGenerator(sites=[])
    with pytest.raises(ValueError):
        ApplicationGenerator(sites=SITES, site_weights=[1.0])
    with pytest.raises(ValueError):
        ApplicationGenerator(sites=SITES, site_weights=[-1, 1, 1])
    with pytest.raises(ValueError):
        ApplicationGenerator(sites=SITES, workload_mix={})
    with pytest.raises(ValueError):
        ApplicationGenerator(sites=SITES, mean_arrivals_per_batch=0)
    with pytest.raises(ValueError):
        ApplicationGenerator(sites=SITES).generate_schedule(0)
