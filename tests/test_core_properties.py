"""Property-based tests of the placement core (hypothesis).

These generate random placement problems — random SLOs, rates, workloads, and
carbon intensities — and check the invariants every policy must uphold:
solutions validate against all constraints, the exact solver never loses to the
greedy heuristic, and carbon accounting is consistent.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.carbon.service import CarbonIntensityService
from repro.carbon.traces import TraceSet
from repro.cluster.fleet import build_regional_fleet
from repro.core.policies import CarbonEdgePolicy, GreedyCarbonPolicy, LatencyAwarePolicy
from repro.core.problem import PlacementProblem
from repro.core.validation import validate_solution
from repro.datasets.regions import CENTRAL_EU
from repro.network.latency import build_latency_matrix
from repro.datasets.cities import default_city_catalog
from repro.workloads.application import Application

_CATALOG = default_city_catalog()
_CITIES = CENTRAL_EU.cities(_CATALOG)
_NAMES = [c.name for c in _CITIES]
_LATENCY = build_latency_matrix(_NAMES, _CATALOG.coordinates_array(_NAMES),
                                countries=[c.country for c in _CITIES])

app_strategy = st.builds(
    dict,
    workload=st.sampled_from(["ResNet50", "EfficientNetB0", "YOLOv4", "Sci"]),
    source=st.sampled_from(_NAMES),
    slo_ms=st.sampled_from([6.0, 12.0, 20.0, 40.0]),
    rate_rps=st.floats(min_value=1.0, max_value=40.0),
)

intensity_strategy = st.lists(st.floats(min_value=10.0, max_value=900.0),
                              min_size=5, max_size=5)


def _build_problem(app_specs, intensities):
    fleet = build_regional_fleet(CENTRAL_EU)
    traces = TraceSet.from_mapping({
        zone: np.full(24, value)
        for zone, value in zip(CENTRAL_EU.zone_ids(_CATALOG), intensities)
    })
    carbon = CarbonIntensityService(traces=traces)
    apps = [Application(app_id=f"app-{k}", workload=spec["workload"],
                        source_site=spec["source"], latency_slo_ms=spec["slo_ms"],
                        request_rate_rps=spec["rate_rps"], duration_hours=1.0)
            for k, spec in enumerate(app_specs)]
    return PlacementProblem.build(apps, fleet.servers(), _LATENCY, carbon, hour=0,
                                  horizon_hours=1.0)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(app_strategy, min_size=1, max_size=8), intensity_strategy)
def test_policies_always_produce_valid_solutions(app_specs, intensities):
    problem = _build_problem(app_specs, intensities)
    for policy in (LatencyAwarePolicy(), GreedyCarbonPolicy(), CarbonEdgePolicy(solver="greedy")):
        solution = policy.place(problem)
        assert validate_solution(solution) == []
        # Every application is accounted for exactly once.
        assert solution.n_placed + len(solution.unplaced) == problem.n_applications


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(app_strategy, min_size=1, max_size=6), intensity_strategy)
def test_exact_solver_never_worse_than_greedy(app_specs, intensities):
    problem = _build_problem(app_specs, intensities)
    exact = CarbonEdgePolicy(solver="exact").place(problem)
    greedy = GreedyCarbonPolicy().place(problem)
    validate_solution(exact)
    if exact.n_placed == greedy.n_placed:
        assert exact.total_carbon_g() <= greedy.total_carbon_g() + 1e-6


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(app_strategy, min_size=1, max_size=8), intensity_strategy)
def test_carbon_edge_never_worse_than_latency_aware(app_specs, intensities):
    problem = _build_problem(app_specs, intensities)
    carbon_edge = CarbonEdgePolicy(solver="greedy").place(problem)
    baseline = LatencyAwarePolicy().place(problem)
    if carbon_edge.n_placed == baseline.n_placed:
        assert carbon_edge.total_carbon_g() <= baseline.total_carbon_g() + 1e-6


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(app_strategy, min_size=1, max_size=8), intensity_strategy)
def test_latency_slo_always_respected(app_specs, intensities):
    problem = _build_problem(app_specs, intensities)
    solution = CarbonEdgePolicy(solver="greedy").place(problem)
    for app_id, j in solution.placements.items():
        i = problem.app_index(app_id)
        assert 2.0 * problem.latency_ms[i, j] <= problem.applications[i].latency_slo_ms + 1e-9


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(app_strategy, min_size=1, max_size=8), intensity_strategy)
def test_carbon_accounting_is_consistent(app_specs, intensities):
    problem = _build_problem(app_specs, intensities)
    solution = GreedyCarbonPolicy().place(problem)
    total = solution.total_carbon_g()
    assert total >= 0.0
    assert total == (solution.operational_carbon_g() + solution.activation_carbon_g())
    # Scaling every intensity scales operational carbon linearly.
    scaled_problem = _build_problem(app_specs, [2.0 * v for v in intensities])
    scaled_solution = GreedyCarbonPolicy().place(scaled_problem)
    if solution.placements == scaled_solution.placements:
        np.testing.assert_allclose(scaled_solution.operational_carbon_g(),
                                   2.0 * solution.operational_carbon_g(), rtol=1e-9)
