"""LP-relaxation and branch-and-bound tests on known instances."""

import pytest

from repro.solver.branch_and_bound import BranchAndBoundSolver
from repro.solver.lp_relaxation import solve_lp_relaxation
from repro.solver.milp import MILPModel
from repro.solver.result import SolveStatus


def knapsack(values, weights, capacity):
    """0/1 knapsack as a minimisation MILP (negated values)."""
    model = MILPModel(name="knapsack")
    for i, _ in enumerate(values):
        model.add_binary(f"x{i}")
    model.add_constraint("cap", {f"x{i}": w for i, w in enumerate(weights)}, rhs=capacity)
    model.set_objective({f"x{i}": -v for i, v in enumerate(values)})
    return model


def test_lp_relaxation_simple_optimum():
    model = MILPModel()
    model.add_variable("x", lower=0.0, upper=10.0)
    model.add_constraint("c", {"x": 1.0}, rhs=4.0)
    model.set_objective({"x": -1.0})
    result = solve_lp_relaxation(model)
    assert result.status is SolveStatus.OPTIMAL
    assert result.value("x") == pytest.approx(4.0)
    assert result.objective == pytest.approx(-4.0)


def test_lp_relaxation_infeasible():
    model = MILPModel()
    model.add_variable("x", lower=0.0, upper=1.0)
    model.add_constraint("c", {"x": 1.0}, rhs=-1.0)
    model.set_objective({"x": 1.0})
    assert solve_lp_relaxation(model).status is SolveStatus.INFEASIBLE


def test_lp_relaxation_extra_bounds_conflict():
    model = MILPModel()
    model.add_binary("x")
    model.set_objective({"x": 1.0})
    result = solve_lp_relaxation(model, extra_bounds={"x": (1.0, 1.0)})
    assert result.value("x") == pytest.approx(1.0)
    with pytest.raises(KeyError):
        solve_lp_relaxation(model, extra_bounds={"y": (0.0, 1.0)})


def test_lp_relaxation_empty_model():
    model = MILPModel()
    model.objective_constant = 3.0
    result = solve_lp_relaxation(model)
    assert result.status is SolveStatus.OPTIMAL
    assert result.objective == pytest.approx(3.0)


def test_bnb_knapsack_optimum():
    # values (6, 5, 5), weights (4, 3, 3), capacity 6 -> best is items 2+3 = 10.
    model = knapsack([6, 5, 5], [4, 3, 3], 6)
    result = BranchAndBoundSolver().solve(model)
    assert result.has_solution
    assert result.objective == pytest.approx(-10.0)
    assert result.binary_value("x1") and result.binary_value("x2")
    assert not result.binary_value("x0")


def test_bnb_integral_root_shortcut():
    model = knapsack([1, 1], [1, 1], 2)  # trivially take both
    result = BranchAndBoundSolver().solve(model)
    assert result.status is SolveStatus.OPTIMAL
    assert result.nodes_explored == 1
    assert result.objective == pytest.approx(-2.0)


def test_bnb_infeasible_model():
    model = MILPModel()
    model.add_binary("x", lower=1.0)
    model.add_constraint("c", {"x": 1.0}, rhs=0.0)
    model.set_objective({"x": 1.0})
    result = BranchAndBoundSolver().solve(model)
    assert result.status is SolveStatus.INFEASIBLE


def test_bnb_respects_node_budget_but_returns_feasible():
    # A larger knapsack where the LP is fractional: limit nodes hard.
    values = [10, 9, 8, 7, 6, 5, 4, 3]
    weights = [5, 5, 4, 4, 3, 3, 2, 2]
    model = knapsack(values, weights, 11)
    result = BranchAndBoundSolver(max_nodes=3).solve(model)
    assert result.has_solution
    names = [f"x{i}" for i in range(len(values))]
    assert result.is_integral(names)
    # The incumbent is feasible for the capacity constraint.
    chosen_weight = sum(w for i, w in enumerate(weights) if result.binary_value(f"x{i}"))
    assert chosen_weight <= 11


def test_bnb_matches_bruteforce_on_random_instances():
    import itertools
    import numpy as np
    rng = np.random.default_rng(0)
    for _ in range(5):
        n = 6
        values = rng.integers(1, 20, size=n).tolist()
        weights = rng.integers(1, 10, size=n).tolist()
        capacity = int(sum(weights) * 0.5)
        model = knapsack(values, weights, capacity)
        result = BranchAndBoundSolver(max_nodes=500).solve(model)
        best = 0
        for combo in itertools.product([0, 1], repeat=n):
            if sum(c * w for c, w in zip(combo, weights)) <= capacity:
                best = max(best, sum(c * v for c, v in zip(combo, values)))
        assert -result.objective == pytest.approx(best)
