"""Cross-backend metamorphic tests on small random epochs.

Three relations every solver-backend pair must satisfy on the same compiled
instance, checked over seeded random grids (deterministic, CI-stable):

* **Ordering** — a proven-optimal exact solve is never beaten by the
  heuristic under the raw objective, and the heuristic stays within a bounded
  multiplicative gap of the exact optimum.
* **Permutation invariance** — rebuilding the same problem with the
  applications in a different order must not change the exact backend's
  objective value, nor which server each application lands on (the epsilon
  tie-break makes the optimum generically unique).
* **Registry floor** — ``solve(backend="exact")`` is never worse than
  ``solve(backend="heuristic")``: the registry's better-of rule guarantees
  the exact path cannot lose to the baseline it could have used.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.carbon.service import CarbonIntensityService
from repro.carbon.traces import TraceSet
from repro.cluster.fleet import build_regional_fleet
from repro.core.problem import PlacementProblem
from repro.core.validation import validate_solution
from repro.datasets.cities import default_city_catalog
from repro.datasets.regions import CENTRAL_EU
from repro.network.latency import build_latency_matrix
from repro.solver.backend import SolveRequest, raw_objective_value
from repro.solver.registry import get_backend, solve
from repro.workloads.application import Application

#: Multiplicative slack allowed for the greedy+local-search heuristic over a
#: proven exact optimum on these instance sizes (regression bound, not a
#: theorem — the observed gaps on the seeded grid are far below it).
HEURISTIC_GAP_BOUND = 0.25

_CATALOG = default_city_catalog()
_CITIES = CENTRAL_EU.cities(_CATALOG)
_NAMES = [c.name for c in _CITIES]
_LATENCY = build_latency_matrix(_NAMES, _CATALOG.coordinates_array(_NAMES),
                                countries=[c.country for c in _CITIES])
_WORKLOADS = ("ResNet50", "EfficientNetB0", "YOLOv4")


def _random_problem(seed: int, n_apps: int,
                    order: np.ndarray | None = None) -> PlacementProblem:
    """A small random epoch over the Central-EU fleet (seeded, deterministic).

    Rates are drawn continuously so no two applications are exact duplicates
    — that keeps the tie-broken optimum unique and the permutation test
    meaningful rather than vacuous.
    """
    rng = np.random.default_rng(seed)
    fleet = build_regional_fleet(CENTRAL_EU)
    zones = CENTRAL_EU.zone_ids(_CATALOG)
    traces = TraceSet.from_mapping({
        zone: np.full(24, value)
        for zone, value in zip(zones, rng.uniform(20.0, 800.0, len(zones)))
    })
    carbon = CarbonIntensityService(traces=traces)
    apps = [Application(app_id=f"app-{k}",
                        workload=str(rng.choice(_WORKLOADS)),
                        source_site=str(rng.choice(_NAMES)),
                        latency_slo_ms=float(rng.choice([12.0, 20.0, 40.0])),
                        request_rate_rps=float(rng.uniform(1.0, 30.0)),
                        duration_hours=1.0)
            for k in range(n_apps)]
    if order is not None:
        apps = [apps[i] for i in order]
    return PlacementProblem.build(apps, fleet.servers(), _LATENCY, carbon,
                                  hour=0, horizon_hours=1.0)


@pytest.mark.parametrize("seed,n_apps", [(0, 3), (1, 4), (2, 5), (3, 6), (4, 5)])
def test_exact_vs_heuristic_objective_ordering(seed, n_apps):
    problem = _random_problem(seed, n_apps)
    request = SolveRequest(problem=problem)
    exact = get_backend("bnb").solve(request)
    heuristic = get_backend("heuristic").solve(SolveRequest(problem=problem))
    assert exact is not None and heuristic is not None
    validate_solution(exact, strict=True)
    validate_solution(heuristic, strict=True)
    assert exact.n_placed == heuristic.n_placed == n_apps

    exact_obj = raw_objective_value(request, exact)
    heuristic_obj = raw_objective_value(request, heuristic)
    if not exact.solver_gap:  # proven optimum (gap 0 or None)
        # The tie-break epsilon perturbs the two objectives by < 1e-5 of the
        # largest coefficient; allow that much relative slack.
        assert exact_obj <= heuristic_obj + 1e-5 * max(1.0, abs(heuristic_obj))
        assert heuristic_obj <= exact_obj * (1.0 + HEURISTIC_GAP_BOUND) + 1e-9


@pytest.mark.parametrize("seed,n_apps", [(0, 4), (1, 5), (2, 6)])
def test_exact_backend_is_permutation_invariant(seed, n_apps):
    """Shuffling the application list must not change what the exact backend
    decides — same objective value, same server per application id."""
    rng = np.random.default_rng(1000 + seed)
    problem = _random_problem(seed, n_apps)
    shuffled = _random_problem(seed, n_apps, order=rng.permutation(n_apps))

    base_request = SolveRequest(problem=problem)
    shuf_request = SolveRequest(problem=shuffled)
    base = get_backend("bnb").solve(base_request)
    shuf = get_backend("bnb").solve(shuf_request)
    assert base is not None and shuf is not None
    validate_solution(base, strict=True)
    validate_solution(shuf, strict=True)

    assert base.placements == shuf.placements  # keyed by app_id, order-free
    base_obj = raw_objective_value(base_request, base)
    shuf_obj = raw_objective_value(shuf_request, shuf)
    np.testing.assert_allclose(shuf_obj, base_obj, rtol=1e-9, atol=1e-9)


@pytest.mark.parametrize("seed,n_apps", [(0, 4), (2, 5), (4, 6)])
def test_registry_exact_path_never_loses_to_heuristic(seed, n_apps):
    """The registry's better-of rule: solve(exact) <= solve(heuristic)."""
    problem = _random_problem(seed, n_apps)
    via_exact = solve(problem, backend="exact")
    via_heuristic = solve(problem, backend="heuristic")
    assert via_exact.n_placed >= via_heuristic.n_placed
    if via_exact.n_placed == via_heuristic.n_placed:
        assert via_exact.total_carbon_g() <= via_heuristic.total_carbon_g() + 1e-6
