"""Tests of the declarative experiment registry and the results layer.

The round-trip test is the registry's contract: every registered spec builds,
runs at smoke scale through the scenario runner, passes its declared artifact
schema, and survives JSON serialisation unchanged.
"""

import pytest

from repro.experiments import registry
from repro.experiments.registry import ExperimentSpec, RunContext, SweepAxis
from repro.experiments.results import (
    ArtifactSchemaError,
    ExperimentResult,
    jsonable,
)
from repro.simulator.runner import ScenarioRunner

#: Every artifact of the paper's evaluation, in paper order, plus the
#: online-serving soak (a "service" artifact, registered last).
EXPECTED_NAMES = [
    "fig01", "fig02", "fig03", "fig04", "table1", "fig05", "fig07", "fig08",
    "fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
    "fig17", "serving_soak", "planetary_sweep", "planetary_sweep_xl",
    "backend_tournament",
]


def test_every_paper_artifact_is_registered():
    assert registry.names() == EXPECTED_NAMES
    for spec in registry.all_specs():
        assert spec.title
        assert spec.kind in ("figure", "table", "service")


def test_get_unknown_experiment_raises():
    with pytest.raises(KeyError, match="unknown experiment"):
        registry.get("fig99")


def test_register_duplicate_name_raises_except_for_main_reexecution():
    spec = registry.get("fig01")

    def duplicate_compute(spec, ctx):
        return {}

    with pytest.raises(ValueError, match="already registered"):
        registry.register(
            ExperimentSpec(name="fig01", title="dup", kind="figure",
                           compute=duplicate_compute))
    # `python -m repro.experiments.figXX` re-executes the module as __main__;
    # that re-registration must resolve to the canonical spec, not fail.
    duplicate_compute.__module__ = "__main__"
    reregistered = registry.register(
        ExperimentSpec(name="fig01", title="dup", kind="figure",
                       compute=duplicate_compute))
    assert reregistered is spec
    assert registry.get("fig01") is spec


def _noop_compute(spec, ctx):
    return {}


def test_spec_rejects_bad_kind_and_undeclared_axes():
    with pytest.raises(ValueError, match="kind"):
        ExperimentSpec(name="x", title="t", kind="plot", compute=_noop_compute)
    with pytest.raises(ValueError, match="sweep axis"):
        ExperimentSpec(name="x", title="t", kind="figure", compute=_noop_compute,
                       sweep=(SweepAxis("missing"),))
    with pytest.raises(ValueError, match="tuple-valued"):
        ExperimentSpec(name="x", title="t", kind="figure", compute=_noop_compute,
                       params=dict(n=3), sweep=(SweepAxis("n"),))
    with pytest.raises(ValueError, match="smoke_params"):
        ExperimentSpec(name="x", title="t", kind="figure", compute=_noop_compute,
                       params=dict(n=3), smoke_params=dict(m=1))


def test_resolved_params_layering():
    spec = registry.get("fig11")
    full = spec.resolved_params()
    smoke = spec.resolved_params(smoke=True)
    assert full["n_epochs"] == 12 and smoke["n_epochs"] == 1
    # Overrides apply only where the spec declares the parameter.
    assert spec.resolved_params(overrides={"seed": 99})["seed"] == 99
    no_seed = registry.get("table1")
    assert "seed" not in no_seed.resolved_params(overrides={"seed": 99})


def test_jsonable_conversions():
    import numpy as np

    assert jsonable({("a", "b"): np.float64(1.5)}) == {"a|b": 1.5}
    assert jsonable({200.0: np.arange(3)}) == {"200.0": [0, 1, 2]}
    assert jsonable((1, "x", None)) == [1, "x", None]
    assert jsonable(float("nan")) == "NaN"
    with pytest.raises(TypeError, match="non-JSON-serialisable"):
        jsonable({"bad": object()})


def test_experiment_result_schema_validation():
    result = ExperimentResult(name="x", kind="figure", params={}, artifact={"a": 1})
    result.validate(("a",))
    with pytest.raises(ArtifactSchemaError, match="missing"):
        result.validate(("a", "b"))


@pytest.mark.parametrize("name", EXPECTED_NAMES)
def test_registry_round_trip_at_smoke_scale(name):
    """Every spec runs at smoke scale, validates, and survives serialisation."""
    spec = registry.get(name)
    result = ScenarioRunner(workers=1, smoke=True).run_one(name)
    result.validate(spec.schema)
    rebuilt = ExperimentResult.from_json(result.to_json())
    assert rebuilt == result
    assert rebuilt.name == name and rebuilt.smoke is True
    assert rebuilt.to_json() == result.to_json()
