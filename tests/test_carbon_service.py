"""Carbon-intensity service tests."""

import numpy as np
import pytest

from repro.carbon.forecasting import PersistenceForecaster
from repro.carbon.service import CarbonIntensityService
from repro.carbon.traces import TraceSet


@pytest.fixture
def service():
    traces = TraceSet.from_mapping({
        "green": np.full(48, 50.0),
        "dirty": np.concatenate([np.full(24, 600.0), np.full(24, 400.0)]),
    })
    return CarbonIntensityService(traces=traces, horizon_hours=24)


def test_requires_traces():
    with pytest.raises(ValueError):
        CarbonIntensityService(traces=TraceSet())


def test_requires_positive_horizon():
    traces = TraceSet.from_mapping({"a": np.ones(4)})
    with pytest.raises(ValueError):
        CarbonIntensityService(traces=traces, horizon_hours=0)


def test_zone_queries(service):
    assert service.zones() == ["dirty", "green"]
    assert service.has_zone("green") and not service.has_zone("nope")


def test_current_intensity(service):
    assert service.current_intensity("dirty", 0) == 600.0
    assert service.current_intensity("dirty", 30) == 400.0


def test_current_intensities_vector(service):
    values = service.current_intensities(["green", "dirty"], 0)
    assert values.tolist() == [50.0, 600.0]


def test_forecast_mean_oracle_default(service):
    # Over hours 12..35 the dirty zone averages (12*600 + 12*400)/24 = 500.
    assert service.forecast_mean("dirty", 12) == pytest.approx(500.0)


def test_forecast_mean_with_persistence():
    traces = TraceSet.from_mapping({"z": np.arange(48, dtype=float) + 1})
    service = CarbonIntensityService(traces=traces, forecaster=PersistenceForecaster())
    assert service.forecast_mean("z", 10) == pytest.approx(11.0)


def test_forecast_means_vector(service):
    means = service.forecast_means(["green", "dirty"], 0, horizon_hours=24)
    assert means.tolist() == [50.0, 600.0]


def test_greenest_zone(service):
    assert service.greenest_zone(["green", "dirty"], 0) == "green"
    with pytest.raises(ValueError):
        service.greenest_zone([], 0)


def test_mean_intensity(service):
    assert service.mean_intensity("dirty") == pytest.approx(500.0)


def test_unknown_zone_raises(service):
    with pytest.raises(KeyError):
        service.current_intensity("missing", 0)
