"""Edge-server tests."""

import pytest

from repro.cluster.hardware import GTX_1080, NVIDIA_A2, ORIN_NANO, XEON_E5_2660V3
from repro.cluster.resources import ResourceVector
from repro.cluster.server import EdgeServer, PowerState


@pytest.fixture
def server():
    s = EdgeServer(server_id="s1", site="Miami", zone_id="US-FL-MIA")
    s.power_on()
    return s


def test_total_capacity_combines_cpu_and_gpu(server):
    cap = server.total_capacity
    assert cap["cpu_cores"] == 40
    assert cap["gpu_memory_mb"] == 16_000
    assert cap["memory_mb"] == 256_000


def test_cpu_only_server_capacity():
    s = EdgeServer(server_id="s", site="x", zone_id="z", accelerator=None)
    assert s.total_capacity["gpu_memory_mb"] == 0.0
    assert s.device_name == XEON_E5_2660V3.name


def test_base_and_max_power(server):
    assert server.base_power_w == pytest.approx(XEON_E5_2660V3.idle_power_w + NVIDIA_A2.idle_power_w)
    assert server.max_power_w == pytest.approx(XEON_E5_2660V3.max_power_w + NVIDIA_A2.max_power_w)
    model = server.power_model()
    assert model.idle_power_w == server.base_power_w


def test_allocate_and_release(server):
    demand = ResourceVector.of(cpu_cores=4, gpu_memory_mb=1000)
    server.allocate("app1", demand)
    assert server.used_capacity["cpu_cores"] == 4
    assert server.available_capacity["cpu_cores"] == 36
    assert server.utilization() > 0
    freed = server.release("app1")
    assert freed == demand
    assert server.used_capacity.is_zero()


def test_allocate_requires_power(server):
    server.power_off()
    with pytest.raises(RuntimeError):
        server.allocate("a", ResourceVector.of(cpu_cores=1))


def test_double_allocation_rejected(server):
    server.allocate("a", ResourceVector.of(cpu_cores=1))
    with pytest.raises(ValueError):
        server.allocate("a", ResourceVector.of(cpu_cores=1))


def test_over_capacity_rejected(server):
    with pytest.raises(ValueError):
        server.allocate("a", ResourceVector.of(cpu_cores=100))


def test_release_unknown_app(server):
    with pytest.raises(KeyError):
        server.release("ghost")


def test_power_off_with_allocations_refused(server):
    server.allocate("a", ResourceVector.of(cpu_cores=1))
    with pytest.raises(RuntimeError):
        server.power_off()


def test_power_transitions(server):
    assert server.is_on
    server.power_off()
    assert server.power_state is PowerState.OFF
    server.power_on()
    server.power_on()  # idempotent
    assert server.is_on


def test_device_kind_validation():
    with pytest.raises(ValueError):
        EdgeServer(server_id="s", site="x", zone_id="z", cpu=NVIDIA_A2)
    with pytest.raises(ValueError):
        EdgeServer(server_id="s", site="x", zone_id="z", accelerator=XEON_E5_2660V3)


def test_device_name_uses_accelerator():
    a = EdgeServer(server_id="a", site="x", zone_id="z", accelerator=ORIN_NANO)
    b = EdgeServer(server_id="b", site="x", zone_id="z", accelerator=GTX_1080)
    assert a.device_name == "Orin Nano"
    assert b.device_name == "GTX 1080"
