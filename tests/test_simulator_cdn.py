"""CDN-scale simulator tests (small configurations for speed)."""

import numpy as np
import pytest

from repro.simulator.cdn import CDNSimulator, default_policies, run_cdn_simulation
from repro.simulator.metrics import EpochRecord, SimulationResult
from repro.simulator.scenario import CDNScenario


@pytest.fixture(scope="module")
def small_result():
    scenario = CDNScenario(continent="EU", n_epochs=2, max_sites=12,
                           apps_per_site_per_epoch=1.5, seed=11)
    return run_cdn_simulation(scenario)


def test_scenario_validation():
    with pytest.raises(ValueError):
        CDNScenario(continent="ASIA")
    with pytest.raises(ValueError):
        CDNScenario(latency_limit_ms=0)
    with pytest.raises(ValueError):
        CDNScenario(n_epochs=0)
    with pytest.raises(ValueError):
        CDNScenario(demand="weird")
    with pytest.raises(ValueError):
        CDNScenario(max_sites=1)


def test_scenario_epoch_arithmetic():
    scenario = CDNScenario(n_epochs=12)
    assert scenario.hours_per_epoch == 730
    assert scenario.epoch_start_hour(0) == 0
    assert scenario.epoch_start_hour(11) == 11 * 730
    with pytest.raises(ValueError):
        scenario.epoch_start_hour(12)


def test_default_policies_names():
    names = [p.name for p in default_policies()]
    assert names == ["Latency-aware", "Energy-aware", "Intensity-aware", "CarbonEdge"]


def test_simulation_runs_all_policies(small_result):
    assert set(small_result.policies()) == {"Latency-aware", "Energy-aware",
                                            "Intensity-aware", "CarbonEdge"}
    for policy in small_result.policies():
        assert len(small_result.records[policy]) == 2


def test_carbon_edge_beats_latency_aware(small_result):
    assert small_result.carbon_savings_pct("CarbonEdge") > 0.0
    assert small_result.total_carbon_g("CarbonEdge") <= small_result.total_carbon_g(
        "Intensity-aware") + 1e-6


def test_latency_increase_within_limit(small_result):
    assert 0.0 <= small_result.mean_latency_increase_rtt_ms("CarbonEdge") <= 20.0
    assert small_result.mean_latency_increase_rtt_ms("Latency-aware") == pytest.approx(0.0)


def test_load_shifts_toward_greener_zones(small_result):
    ce = np.median(small_result.hosting_intensity_distribution("CarbonEdge"))
    la = np.median(small_result.hosting_intensity_distribution("Latency-aware"))
    assert ce <= la


def test_monthly_series_lengths(small_result):
    assert len(small_result.monthly_savings_pct("CarbonEdge")) == 2
    assert len(small_result.monthly_latency_increase_rtt_ms("CarbonEdge")) == 2
    per_site = small_result.placements_per_site("CarbonEdge")
    assert all(len(v) == 2 for v in per_site.values())


def test_unknown_policy_raises(small_result):
    with pytest.raises(KeyError):
        small_result.total_carbon_g("Nope")


def test_population_demand_and_capacity_scenarios_run():
    scenario = CDNScenario(continent="US", n_epochs=1, max_sites=10, demand="population",
                           capacity="population", servers_per_site=2, seed=5)
    result = run_cdn_simulation(scenario)
    assert result.total_unplaced("CarbonEdge") == 0
    assert result.carbon_savings_pct("CarbonEdge") >= 0.0


def test_heterogeneous_accelerator_mix_runs():
    scenario = CDNScenario(continent="EU", n_epochs=1, max_sites=10,
                           accelerator_mix=("Orin Nano", "GTX 1080"),
                           workload_mix={"ResNet50": 0.5, "EfficientNetB0": 0.5}, seed=5)
    simulator = CDNSimulator(scenario=scenario)
    devices = {s.device_name for s in simulator.fleet.servers()}
    assert devices <= {"Orin Nano", "GTX 1080"}
    result = simulator.run()
    assert result.carbon_savings_pct("CarbonEdge") >= 0.0


def test_epoch_problem_is_reproducible():
    scenario = CDNScenario(continent="EU", n_epochs=2, max_sites=8, seed=9)
    sim_a = CDNSimulator(scenario=scenario)
    sim_b = CDNSimulator(scenario=scenario)
    pa = sim_a.epoch_problem(0)
    pb = sim_b.epoch_problem(0)
    assert [a.app_id for a in pa.applications] == [b.app_id for b in pb.applications]
    assert np.allclose(pa.intensity, pb.intensity)


def test_simulation_result_container():
    result = SimulationResult(scenario_name="x")
    record = EpochRecord(epoch=0, start_hour=0, policy="P", carbon_g=10.0, energy_j=5.0,
                         mean_one_way_latency_ms=1.0, latency_increase_one_way_ms=0.5,
                         n_placed=3, n_unplaced=1)
    result.add(record)
    assert result.total_carbon_g("P") == 10.0
    assert result.total_energy_j("P") == 5.0
    assert result.total_unplaced("P") == 1
