"""Telemetry substrate tests (metrics, power, carbon, latency monitors)."""

import numpy as np
import pytest

from repro.carbon.service import CarbonIntensityService
from repro.carbon.traces import TraceSet
from repro.cluster.server import EdgeServer
from repro.telemetry.carbon_monitor import CarbonMonitor
from repro.telemetry.latency_monitor import LatencyMonitor
from repro.telemetry.metrics import MetricRegistry
from repro.telemetry.power_monitor import PowerMonitor


@pytest.fixture
def server():
    s = EdgeServer(server_id="s1", site="Miami", zone_id="US-FL-MIA")
    s.power_on()
    return s


def test_counter_gauge_histogram():
    registry = MetricRegistry()
    counter = registry.counter("requests_total", {"site": "Miami"})
    counter.inc()
    counter.inc(2)
    assert counter.value == 3
    with pytest.raises(ValueError):
        counter.inc(-1)
    gauge = registry.gauge("utilization")
    gauge.set(0.4)
    gauge.add(0.1)
    assert gauge.value == pytest.approx(0.5)
    hist = registry.histogram("latency_ms")
    for v in (1.0, 2.0, 3.0):
        hist.observe(v)
    assert hist.count == 3
    assert hist.mean() == pytest.approx(2.0)
    assert hist.percentile(50) == pytest.approx(2.0)


def test_registry_reuses_and_distinguishes_labels():
    registry = MetricRegistry()
    a = registry.counter("x", {"site": "A"})
    b = registry.counter("x", {"site": "A"})
    c = registry.counter("x", {"site": "B"})
    assert a is b and a is not c


def test_registry_collect_rendering():
    registry = MetricRegistry()
    registry.counter("hits", {"site": "Miami"}).inc(5)
    registry.histogram("lat").observe(2.0)
    snapshot = registry.collect()
    assert snapshot["hits{site=Miami}"] == 5
    assert snapshot["lat_count"] == 1.0
    assert snapshot["lat_sum"] == 2.0


def test_power_monitor_integrates_energy(server):
    monitor = PowerMonitor()
    sample = monitor.record_interval(server, start_s=0.0, duration_s=3600.0, utilization=0.5)
    assert sample.base_energy_j == pytest.approx(server.base_power_w * 3600.0)
    assert sample.dynamic_energy_j > 0.0
    assert monitor.total_energy_j("s1") == pytest.approx(sample.total_energy_j)
    assert monitor.base_energy_j() + monitor.dynamic_energy_j() == pytest.approx(
        monitor.total_energy_j())


def test_power_monitor_off_server_consumes_nothing(server):
    server.power_off()
    monitor = PowerMonitor()
    sample = monitor.record_interval(server, 0.0, 100.0, 0.0)
    assert sample.total_energy_j == 0.0


def test_power_monitor_validation(server):
    monitor = PowerMonitor()
    with pytest.raises(ValueError):
        monitor.record_interval(server, 0.0, -1.0, 0.5)
    with pytest.raises(ValueError):
        monitor.record_interval(server, 0.0, 1.0, 1.5)


def test_carbon_monitor_accounts_emissions(server):
    traces = TraceSet.from_mapping({"US-FL-MIA": np.full(24, 500.0)})
    carbon = CarbonMonitor(carbon=CarbonIntensityService(traces=traces))
    power = PowerMonitor()
    sample = power.record_interval(server, 0.0, 3600.0, 1.0)
    record = carbon.record(sample, zone_id="US-FL-MIA", hour=0)
    expected = sample.total_energy_j / 3.6e6 * 500.0
    assert record.total_carbon_g == pytest.approx(expected)
    assert carbon.total_carbon_g() == pytest.approx(expected)
    assert carbon.base_carbon_g() + carbon.dynamic_carbon_g() == pytest.approx(expected)
    assert carbon.carbon_by_server()["s1"] == pytest.approx(expected)


def test_latency_monitor_stats():
    monitor = LatencyMonitor()
    for v in (10.0, 20.0, 30.0):
        monitor.record_response("app1", "Miami", v)
    monitor.record_response("app2", "Tampa", 100.0)
    assert monitor.mean_response_ms("app1") == pytest.approx(20.0)
    assert monitor.mean_response_ms(site="Tampa") == pytest.approx(100.0)
    assert monitor.mean_response_ms() == pytest.approx(40.0)
    assert monitor.percentile_response_ms(50, "app1") == pytest.approx(20.0)
    assert monitor.request_count() == 4
    assert monitor.request_count("app1") == 3
    with pytest.raises(ValueError):
        monitor.record_response("a", "b", -1.0)


def test_latency_monitor_empty():
    monitor = LatencyMonitor()
    assert monitor.mean_response_ms() == 0.0
    assert monitor.percentile_response_ms(99) == 0.0
