"""Zone-catalogue (Electricity Maps stand-in) tests."""

import pytest

from repro.datasets.electricity_maps import (
    SOURCE_INTENSITY,
    TARGET_COUNTS,
    ZoneCatalog,
    ZoneSpec,
    build_zone_catalog,
    default_zone_catalog,
)


def test_catalog_has_148_zones():
    catalog = default_zone_catalog()
    assert len(catalog) == sum(TARGET_COUNTS.values()) == 148


def test_continental_counts_match_paper():
    counts = default_zone_catalog().counts_by_continent()
    assert counts["US"] == 54
    assert counts["EU"] == 45
    assert counts["OTHER"] == 49


def test_every_mix_normalises():
    for zone in default_zone_catalog():
        total = sum(zone.normalized_mix.values())
        assert total == pytest.approx(1.0)


def test_annual_mean_intensity_bounds():
    lo, hi = min(SOURCE_INTENSITY.values()), max(SOURCE_INTENSITY.values())
    for zone in default_zone_catalog():
        assert lo <= zone.annual_mean_intensity <= hi


def test_figure1_zone_ordering():
    catalog = default_zone_catalog()
    ontario = catalog.get("CA-ON").annual_mean_intensity
    california = catalog.get("US-CA").annual_mean_intensity
    poland = catalog.get("EU-PL").annual_mean_intensity
    assert ontario < california < poland


def test_central_eu_static_spread_matches_paper_band():
    catalog = default_zone_catalog()
    means = [catalog.get(z).annual_mean_intensity
             for z in ("EU-CH-BRN", "EU-DE-MUC", "EU-FR-LYS", "EU-AT-GRZ", "EU-IT-MIL")]
    assert 6.0 <= max(means) / min(means) <= 30.0


def test_grouped_mix_sums_to_one():
    for zone in default_zone_catalog():
        assert sum(zone.grouped_mix().values()) == pytest.approx(1.0)


def test_fossil_share_in_unit_interval():
    for zone in default_zone_catalog():
        assert 0.0 <= zone.fossil_share <= 1.0


def test_tallahassee_is_smallest_paper_zone():
    assert default_zone_catalog().get("US-FL-TAL").area_km2 == pytest.approx(123.73)


def test_invalid_mix_rejected():
    with pytest.raises(ValueError, match="sum to 1"):
        ZoneSpec(zone_id="X", name="x", continent="US", mix={"gas": 0.5})


def test_unknown_source_rejected():
    with pytest.raises(ValueError, match="unknown sources"):
        ZoneSpec(zone_id="X", name="x", continent="US", mix={"fusion": 1.0})


def test_duplicate_zone_ids_rejected():
    z = ZoneSpec(zone_id="A", name="a", continent="US", mix={"gas": 1.0})
    with pytest.raises(ValueError, match="duplicate"):
        ZoneCatalog(zones=(z, z))


def test_build_is_deterministic():
    a = build_zone_catalog(seed=0)
    b = build_zone_catalog(seed=0)
    assert a.ids() == b.ids()
    assert all(a.get(i).mix == b.get(i).mix for i in a.ids())


def test_unknown_zone_lookup():
    with pytest.raises(KeyError):
        default_zone_catalog().get("ZZ-NOWHERE")
