"""Orchestrator substrate tests (recipes, deployments, cluster state, rollout)."""

import pytest

from repro.cluster.server import EdgeServer
from repro.core.incremental import IncrementalPlacer
from repro.core.policies import CarbonEdgePolicy
from repro.orchestrator.cluster_state import ClusterState
from repro.orchestrator.deployment import Deployment, DeploymentState
from repro.orchestrator.orchestrator import EdgeOrchestrator
from repro.orchestrator.profiling import ProfilingService
from repro.orchestrator.recipes import recipe_for_application
from repro.workloads.application import make_application
from tests.conftest import make_apps


@pytest.fixture
def a2_server():
    s = EdgeServer(server_id="s", site="Miami", zone_id="US-FL-MIA")
    s.power_on()
    return s


def test_recipe_from_application(a2_server):
    app = make_application("a", "ResNet50", "Miami", request_rate_rps=10)
    recipe = recipe_for_application(app, a2_server)
    assert recipe.app_id == "a"
    assert recipe.replicas == 1
    assert recipe.device == "NVIDIA A2"
    assert "resnet50" in recipe.image
    assert dict(recipe.env)["CARBON_ZONE"] == "US-FL-MIA"


def test_recipe_replica_scaling(a2_server):
    heavy = make_application("a", "ResNet50", "Miami", request_rate_rps=300)
    recipe = recipe_for_application(heavy, a2_server)
    assert recipe.replicas == 3
    assert recipe.total_resources["gpu_memory_mb"] == pytest.approx(
        3 * recipe.resources["gpu_memory_mb"])
    assert recipe.with_replicas(5).replicas == 5


def test_deployment_lifecycle(a2_server):
    recipe = recipe_for_application(make_application("a", "Sci", "Miami"), a2_server)
    deployment = Deployment(deployment_id="d", recipe=recipe, server_id="s", site="Miami")
    deployment.transition(DeploymentState.DEPLOYING)
    deployment.transition(DeploymentState.RUNNING, at_s=5.0)
    assert deployment.is_active and deployment.started_at_s == 5.0
    deployment.transition(DeploymentState.TERMINATED, at_s=9.0)
    assert not deployment.is_active
    with pytest.raises(ValueError):
        deployment.transition(DeploymentState.RUNNING)


def test_deployment_illegal_transition(a2_server):
    recipe = recipe_for_application(make_application("a", "Sci", "Miami"), a2_server)
    deployment = Deployment(deployment_id="d", recipe=recipe, server_id="s", site="Miami")
    with pytest.raises(ValueError):
        deployment.transition(DeploymentState.TERMINATED)


def test_profiling_service_lookup_and_refinement():
    service = ProfilingService(smoothing=0.5)
    base = service.profile("ResNet50", "NVIDIA A2")
    updated = service.record_measurement("ResNet50", "NVIDIA A2", energy_per_request_j=base.energy_per_request_j * 2)
    assert updated.energy_per_request_j == pytest.approx(base.energy_per_request_j * 1.5)
    assert service.profile("ResNet50", "NVIDIA A2").energy_per_request_j == pytest.approx(
        updated.energy_per_request_j)
    with pytest.raises(ValueError):
        service.record_measurement("ResNet50", "NVIDIA A2", energy_per_request_j=-1.0)
    with pytest.raises(ValueError):
        ProfilingService(smoothing=2.0)


def test_orchestrator_deploys_and_binds(central_eu_fleet, central_eu_latency, central_eu_carbon):
    placer = IncrementalPlacer(fleet=central_eu_fleet, latency=central_eu_latency,
                               carbon=central_eu_carbon, policy=CarbonEdgePolicy())
    orchestrator = EdgeOrchestrator(placer=placer)
    apps = make_apps(central_eu_fleet.sites())
    deployments = orchestrator.deploy_batch(apps, hour=0)
    assert len(deployments) == len(apps)
    assert all(d.state is DeploymentState.RUNNING for d in deployments)
    assert len(orchestrator.running_deployments()) == len(apps)
    binding = orchestrator.binding_for(apps[0].app_id)
    assert binding.endpoint.startswith("http://")
    assert sum(orchestrator.deployments_per_site().values()) == len(apps)


def test_orchestrator_terminate_releases_allocation(central_eu_fleet, central_eu_latency,
                                                    central_eu_carbon):
    placer = IncrementalPlacer(fleet=central_eu_fleet, latency=central_eu_latency,
                               carbon=central_eu_carbon, policy=CarbonEdgePolicy())
    orchestrator = EdgeOrchestrator(placer=placer)
    apps = make_apps(central_eu_fleet.sites()[:1])
    orchestrator.deploy_batch(apps, hour=0)
    app_id = apps[0].app_id
    server = central_eu_fleet.server(orchestrator.binding_for(app_id).server_id)
    assert app_id in server.allocations
    orchestrator.terminate(app_id)
    assert app_id not in server.allocations
    with pytest.raises(KeyError):
        orchestrator.binding_for(app_id)
    with pytest.raises(KeyError):
        orchestrator.terminate("ghost")


def test_cluster_state_snapshot(central_eu_fleet, central_eu_carbon):
    state = ClusterState(fleet=central_eu_fleet, carbon=central_eu_carbon)
    snapshots = state.snapshot(hour=0)
    assert len(snapshots) == len(central_eu_fleet.servers())
    assert all(s.carbon_intensity > 0 for s in snapshots)
    assert state.powered_on_count() == len(central_eu_fleet.servers())
    assert state.total_base_power_w() > 0
    assert set(state.site_utilization()) == set(central_eu_fleet.sites())
