"""Smoke tests of the ``carbon-edge`` CLI (experiments list / run)."""

import json

import pytest

from repro.cli import carbon_edge_main
from repro.experiments import registry
from repro.experiments.results import ARTIFACT_VERSION


def test_experiments_list_prints_every_spec(capsys):
    assert carbon_edge_main(["experiments", "list"]) == 0
    out = capsys.readouterr().out
    for name in registry.names():
        assert name in out
    assert "sweep" in out and "continents" in out


def test_experiments_run_writes_validated_artifacts(tmp_path, capsys):
    rc = carbon_edge_main(["experiments", "run", "fig07", "table1", "--smoke",
                           "--workers", "2", "--output-dir", str(tmp_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "ran 2 experiment(s) at smoke scale" in out
    for name in ("fig07", "table1"):
        payload = json.loads((tmp_path / f"{name}.json").read_text())
        assert payload["version"] == ARTIFACT_VERSION
        assert payload["name"] == name
        assert payload["smoke"] is True
        assert payload["artifact"]


def test_experiments_run_no_write_leaves_no_artifacts(tmp_path, capsys):
    rc = carbon_edge_main(["experiments", "run", "fig07", "--smoke", "--no-write",
                           "--output-dir", str(tmp_path)])
    assert rc == 0
    assert list(tmp_path.iterdir()) == []


@pytest.mark.parametrize("argv", [
    ["experiments", "run"],                              # nothing selected
    ["experiments", "run", "fig99", "--smoke"],          # unknown name
    ["experiments", "run", "fig07", "--all", "--smoke"],  # names and --all
    ["experiments", "run", "fig07", "--workers", "0"],   # bad worker count
    ["experiments", "run", "fig07", "--epoch-shards", "0"],   # bad shard count
    ["experiments", "run", "fig11", "--epoch-shards", "-2"],  # negative shards
])
def test_experiments_run_rejects_bad_invocations(argv, capsys):
    with pytest.raises(SystemExit) as excinfo:
        carbon_edge_main(argv)
    assert excinfo.value.code != 0


def test_unknown_experiment_error_names_the_registry(capsys):
    with pytest.raises(SystemExit):
        carbon_edge_main(["experiments", "run", "fig99", "--smoke"])
    err = capsys.readouterr().err
    assert "fig99" in err
    for name in ("fig11", "table1"):
        assert name in err  # the message lists what IS registered


def test_experiments_list_output_is_stable(capsys):
    """Two list invocations print byte-identical tables (no ordering or
    timing noise in the registry projection)."""
    assert carbon_edge_main(["experiments", "list"]) == 0
    first = capsys.readouterr().out
    assert carbon_edge_main(["experiments", "list"]) == 0
    second = capsys.readouterr().out
    assert first == second
    header = first.splitlines()[0].split()
    assert header == ["name", "kind", "units", "sweep", "title"]


def test_oversized_epoch_shards_write_byte_identical_artifacts(tmp_path, capsys):
    """An --epoch-shards value far beyond the epoch's app count is safe: the
    sharded run's fig11 artifact is byte-identical to the serial run's.
    (fig11 smoke epochs sit *above* the shard-size threshold, so this drives
    the sharded kernel; the sub-threshold serial fallback is covered by
    tests/test_shard_properties.py and tests/test_scenario_runner.py.)"""
    rc = carbon_edge_main(["experiments", "run", "fig11", "--smoke",
                           "--output-dir", str(tmp_path / "serial")])
    assert rc == 0
    rc = carbon_edge_main(["experiments", "run", "fig11", "--smoke",
                           "--epoch-shards", "16",
                           "--output-dir", str(tmp_path / "sharded")])
    assert rc == 0
    capsys.readouterr()
    serial = (tmp_path / "serial" / "fig11.json").read_bytes()
    sharded = (tmp_path / "sharded" / "fig11.json").read_bytes()
    assert serial == sharded


def test_quickstart_subcommand_places_applications(capsys):
    rc = carbon_edge_main(["quickstart", "--backend", "heuristic",
                           "--time-budget-s", "0.05"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "CarbonEdge placement" in out
    assert "savings" in out


@pytest.mark.parametrize("argv", [
    ["experiments", "run", "fig07", "--hierarchy-regions", "0"],
    ["experiments", "run", "fig07", "--hierarchy-regions", "-3"],
    ["experiments", "run", "fig07", "--merge", "mmap"],
    ["serve", "--max-sites", "1", "--smoke"],
    ["serve", "--max-sites", "0", "--smoke"],
])
def test_hierarchy_merge_and_serve_flag_validation(argv, capsys):
    with pytest.raises(SystemExit) as excinfo:
        carbon_edge_main(argv)
    assert excinfo.value.code != 0


def test_max_sites_error_names_the_flag(capsys):
    with pytest.raises(SystemExit):
        carbon_edge_main(["serve", "--max-sites", "1"])
    assert "--max-sites" in capsys.readouterr().err


def test_hierarchy_regions_is_a_recorded_override(tmp_path):
    """--hierarchy-regions reaches specs that take the parameter and is
    recorded in the artifact params (unlike the execution-only knobs)."""
    rc = carbon_edge_main(["experiments", "run", "planetary_sweep", "--smoke",
                           "--hierarchy-regions", "2",
                           "--output-dir", str(tmp_path)])
    assert rc == 0
    payload = json.loads((tmp_path / "planetary_sweep.json").read_text())
    assert payload["params"]["hierarchy_regions"] == 2
    assert set(payload["artifact"]["sweep"]) == {"2"}


def test_stream_merge_cli_writes_identical_artifacts(tmp_path):
    rc = carbon_edge_main(["experiments", "run", "fig07", "--smoke",
                           "--merge", "stream",
                           "--output-dir", str(tmp_path / "stream")])
    assert rc == 0
    rc = carbon_edge_main(["experiments", "run", "fig07", "--smoke",
                           "--output-dir", str(tmp_path / "memory")])
    assert rc == 0
    streamed = (tmp_path / "stream" / "fig07.json").read_bytes()
    in_memory = (tmp_path / "memory" / "fig07.json").read_bytes()
    assert streamed == in_memory
