"""Placement-solution accounting tests."""

import numpy as np
import pytest

from repro.core.policies import CarbonEdgePolicy, LatencyAwarePolicy
from repro.core.solution import PlacementSolution
from repro.utils.units import joules_to_kwh


def test_summary_keys(central_eu_problem):
    solution = CarbonEdgePolicy().timed_place(central_eu_problem)
    summary = solution.summary()
    assert set(summary) == {"placed", "unplaced", "carbon_g", "operational_carbon_g",
                            "activation_carbon_g", "energy_j", "mean_latency_ms",
                            "latency_increase_ms", "solve_time_s"}
    assert summary["placed"] == central_eu_problem.n_applications


def test_carbon_decomposition(central_eu_problem):
    solution = CarbonEdgePolicy().place(central_eu_problem)
    assert solution.total_carbon_g() == pytest.approx(
        solution.operational_carbon_g() + solution.activation_carbon_g())
    # All servers are already on, so no activation carbon.
    assert solution.activation_carbon_g() == 0.0
    assert np.all(solution.newly_activated() == 0.0)


def test_operational_carbon_matches_manual_sum(central_eu_problem):
    solution = LatencyAwarePolicy().place(central_eu_problem)
    manual = 0.0
    for app_id, j in solution.placements.items():
        i = central_eu_problem.app_index(app_id)
        manual += joules_to_kwh(central_eu_problem.energy_j[i, j]) * central_eu_problem.intensity[j]
    assert solution.operational_carbon_g() == pytest.approx(manual)


def test_assignments_records(central_eu_problem):
    solution = CarbonEdgePolicy().place(central_eu_problem)
    records = solution.assignments()
    assert len(records) == solution.n_placed
    for record in records:
        assert record.server_id == solution.server_of(record.app_id)
        assert record.operational_carbon_g >= 0.0


def test_apps_per_server_and_site_consistency(central_eu_problem):
    solution = CarbonEdgePolicy().place(central_eu_problem)
    assert sum(solution.apps_per_server().values()) == solution.n_placed
    assert sum(solution.apps_per_site().values()) == solution.n_placed


def test_latency_metrics(central_eu_problem):
    solution = CarbonEdgePolicy().place(central_eu_problem)
    assert solution.max_latency_ms() >= solution.mean_latency_ms() >= 0.0
    assert solution.latency_increase_ms() >= 0.0


def test_server_of_unknown_app(central_eu_problem):
    solution = CarbonEdgePolicy().place(central_eu_problem)
    with pytest.raises(KeyError):
        solution.server_of("ghost")


def test_empty_solution_metrics(central_eu_problem):
    solution = PlacementSolution(problem=central_eu_problem,
                                 unplaced=[a.app_id for a in central_eu_problem.applications])
    assert solution.n_placed == 0
    assert not solution.all_placed
    assert solution.total_carbon_g() == 0.0
    assert solution.mean_latency_ms() == 0.0
    assert solution.latency_increase_ms() == 0.0


def test_power_on_shape_validation(central_eu_problem):
    with pytest.raises(ValueError):
        PlacementSolution(problem=central_eu_problem, power_on=np.ones(2))
