"""Feasibility-filter and solution-validation tests."""

import numpy as np
import pytest

from repro.core.filters import filter_feasible_servers
from repro.core.problem import PlacementProblem
from repro.core.solution import PlacementSolution
from repro.core.validation import ValidationError, validate_solution
from tests.conftest import make_apps


def test_filter_matches_feasible_mask(central_eu_problem):
    report = filter_feasible_servers(central_eu_problem, check_capacity=False)
    assert np.array_equal(report.mask, central_eu_problem.feasible_mask())
    assert report.unplaceable == []
    assert report.n_candidate_pairs == int(central_eu_problem.feasible_mask().sum())


def test_filter_capacity_prunes_oversized_demands(florida_fleet, florida_latency, florida_carbon):
    # 10000 rps of YOLOv4 needs far more GPU memory than one A2 offers.
    apps = make_apps(["Miami"], workload="YOLOv4", rate_rps=10_000.0)
    problem = PlacementProblem.build(apps, florida_fleet.servers(), florida_latency,
                                     florida_carbon, hour=0)
    without_capacity = filter_feasible_servers(problem, check_capacity=False)
    with_capacity = filter_feasible_servers(problem, check_capacity=True)
    assert without_capacity.n_candidate_pairs > 0
    assert with_capacity.n_candidate_pairs == 0
    assert with_capacity.unplaceable == [0]


def test_filter_useful_servers(central_eu_problem):
    report = filter_feasible_servers(central_eu_problem)
    assert set(report.useful_servers) <= set(range(central_eu_problem.n_servers))
    assert len(report.useful_servers) >= 1


def test_validate_accepts_trivial_local_placement(central_eu_problem):
    placements = {}
    for i, app in enumerate(central_eu_problem.applications):
        j = int(np.argmin(central_eu_problem.latency_ms[i]))
        placements[app.app_id] = j
    solution = PlacementSolution(problem=central_eu_problem, placements=placements)
    assert validate_solution(solution) == []


def test_validate_detects_latency_violation(central_eu_fleet, central_eu_latency,
                                            central_eu_carbon):
    # Place an app on the farthest server while its SLO only allows the local one.
    apps = make_apps(["Bern"], slo_ms=1.0)
    problem = PlacementProblem.build(apps, central_eu_fleet.servers(), central_eu_latency,
                                     central_eu_carbon, hour=0)
    far = int(np.argmax(problem.latency_ms[0]))
    solution = PlacementSolution(problem=problem, placements={apps[0].app_id: far})
    with pytest.raises(ValidationError, match="latency"):
        validate_solution(solution)


def test_validate_detects_missing_application(central_eu_problem):
    solution = PlacementSolution(problem=central_eu_problem, placements={})
    violations = validate_solution(solution, strict=False)
    assert any("neither placed nor marked unplaced" in v for v in violations)


def test_validate_detects_capacity_violation(florida_fleet, florida_latency, florida_carbon):
    apps = make_apps(["Miami"], workload="Sci", n_per_site=15)  # 15 * 4 cores > 40 cores
    problem = PlacementProblem.build(apps, florida_fleet.servers(), florida_latency,
                                     florida_carbon, hour=0)
    miami = problem.server_index("Miami-srv00")
    solution = PlacementSolution(problem=problem,
                                 placements={a.app_id: miami for a in apps})
    violations = validate_solution(solution, strict=False)
    assert any("over capacity" in v for v in violations)


def test_validate_detects_powered_off_host(central_eu_problem):
    p = central_eu_problem
    solution = PlacementSolution(problem=p,
                                 placements={p.applications[0].app_id: 0},
                                 power_on=np.zeros(p.n_servers),
                                 unplaced=[a.app_id for a in p.applications[1:]])
    violations = validate_solution(solution, strict=False)
    assert any("powered off" in v for v in violations)
    # Switching off an already-on server also violates power-state consistency.
    assert any("powers it off" in v for v in violations)


def test_validate_detects_unknown_placement(central_eu_problem):
    solution = PlacementSolution(problem=central_eu_problem,
                                 placements={"ghost": 0},
                                 unplaced=[a.app_id for a in central_eu_problem.applications])
    violations = validate_solution(solution, strict=False)
    assert any("unknown applications" in v for v in violations)
