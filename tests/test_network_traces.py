"""Time-varying latency trace tests."""

import numpy as np
import pytest

from repro.network.traces import LatencyTrace, generate_latency_trace


def test_generated_trace_centred_on_mean():
    trace = generate_latency_trace(("A", "B"), mean_one_way_ms=8.0, n_samples=2000, seed=1)
    assert trace.mean() == pytest.approx(8.0, rel=0.1)
    assert trace.percentile(99) < 8.0 * 2.0


def test_generated_trace_deterministic():
    a = generate_latency_trace(("A", "B"), 5.0, 100, seed=2)
    b = generate_latency_trace(("A", "B"), 5.0, 100, seed=2)
    assert np.array_equal(a.samples_ms, b.samples_ms)


def test_different_pairs_differ():
    a = generate_latency_trace(("A", "B"), 5.0, 100, seed=2)
    b = generate_latency_trace(("A", "C"), 5.0, 100, seed=2)
    assert not np.array_equal(a.samples_ms, b.samples_ms)


def test_zero_mean_gives_zero_samples():
    trace = generate_latency_trace(("A", "A"), 0.0, 10, seed=0)
    assert np.all(trace.samples_ms == 0.0)


def test_invalid_arguments():
    with pytest.raises(ValueError):
        generate_latency_trace(("A", "B"), -1.0, 10)
    with pytest.raises(ValueError):
        generate_latency_trace(("A", "B"), 1.0, 0)


def test_trace_validation():
    with pytest.raises(ValueError):
        LatencyTrace(pair=("A", "B"), mean_ms=1.0, samples_ms=np.array([]))
    with pytest.raises(ValueError):
        LatencyTrace(pair=("A", "B"), mean_ms=1.0, samples_ms=np.array([-1.0]))


def test_trace_stats():
    trace = LatencyTrace(pair=("A", "B"), mean_ms=2.0, samples_ms=np.array([1.0, 2.0, 3.0]))
    assert len(trace) == 3
    assert trace.max() == 3.0
    assert trace.percentile(50) == 2.0
