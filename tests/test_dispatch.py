"""Lifecycle and resolution tests of the persistent dispatch pool.

The sharded kernel's execution layer (:mod:`repro.solver.dispatch`) keeps one
process-lifetime executor instead of building a ``ThreadPoolExecutor`` per
call. These tests pin the lifecycle (lazy creation, singleton reuse,
idempotent shutdown, re-creation, the ``clear_caches`` hook), the mode
resolution precedence (env override > explicit knob > free-threading-aware
auto), and that pooled execution is result-identical to inline execution.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

import repro.solver.dispatch as dispatch
from repro.solver.dispatch import (
    DISPATCH_ENV,
    DISPATCH_MODES,
    dispatch_pool,
    free_threading_enabled,
    resolve_dispatch_mode,
    run_tasks,
    shutdown_dispatch_pool,
)


@pytest.fixture(autouse=True)
def _fresh_pool():
    """Each test starts and ends without a live pool."""
    shutdown_dispatch_pool()
    yield
    shutdown_dispatch_pool()


def test_pool_is_a_lazy_singleton():
    assert dispatch._POOL is None
    pool = dispatch_pool()
    assert dispatch_pool() is pool
    assert dispatch._POOL is pool


def test_shutdown_is_idempotent_and_pool_recreates():
    first = dispatch_pool()
    shutdown_dispatch_pool()
    shutdown_dispatch_pool()  # second shutdown is a no-op
    assert dispatch._POOL is None
    second = dispatch_pool()
    assert second is not first
    # The recreated pool actually works.
    assert run_tasks([lambda: 1, lambda: 2], mode="pool") == [1, 2]


def test_clear_caches_shuts_the_pool_down():
    from repro.experiments.common import clear_caches

    dispatch_pool()
    assert dispatch._POOL is not None
    clear_caches()
    assert dispatch._POOL is None


def test_free_threading_probe_returns_bool():
    assert isinstance(free_threading_enabled(), bool)


def test_resolve_precedence(monkeypatch):
    monkeypatch.delenv(DISPATCH_ENV, raising=False)
    # Explicit knob wins over auto.
    assert resolve_dispatch_mode("pool") == "pool"
    assert resolve_dispatch_mode("serial") == "serial"
    # Auto follows the capability probe.
    expected_auto = "pool" if free_threading_enabled() else "serial"
    assert resolve_dispatch_mode("auto") == expected_auto
    # The environment override beats an explicit knob (CI pins it globally).
    monkeypatch.setenv(DISPATCH_ENV, "pool")
    assert resolve_dispatch_mode("serial") == "pool"
    monkeypatch.setenv(DISPATCH_ENV, "serial")
    assert resolve_dispatch_mode("pool") == "serial"
    # Unrecognised env values are ignored, not errors.
    monkeypatch.setenv(DISPATCH_ENV, "bogus")
    assert resolve_dispatch_mode("pool") == "pool"


def test_run_tasks_preserves_submission_order():
    tasks = [lambda k=k: k * k for k in range(20)]
    expected = [k * k for k in range(20)]
    assert run_tasks(tasks, mode="serial") == expected
    assert run_tasks(tasks, mode="pool") == expected


def test_single_task_runs_inline_without_creating_a_pool():
    ran_in = []
    result = run_tasks([lambda: ran_in.append(threading.current_thread()) or 7],
                       mode="pool")
    assert result == [7]
    assert ran_in == [threading.main_thread()]
    assert dispatch._POOL is None


def test_pooled_tasks_run_on_pool_threads():
    names = run_tasks([lambda: threading.current_thread().name
                       for _ in range(4)], mode="pool")
    assert all(name.startswith("carbon-edge-dispatch") for name in names)


def test_solver_config_validates_dispatch_and_reconcile_modes():
    from repro.solver.config import RECONCILE_MODES, SolverConfig

    assert set(DISPATCH_MODES) == {"auto", "pool", "serial"}
    assert set(RECONCILE_MODES) == {"auto", "wave", "serial"}
    for dispatch_mode in DISPATCH_MODES:
        for reconcile_mode in RECONCILE_MODES:
            SolverConfig(dispatch=dispatch_mode, reconcile_mode=reconcile_mode)
    with pytest.raises(ValueError, match="dispatch"):
        SolverConfig(dispatch="threads")
    with pytest.raises(ValueError, match="reconcile_mode"):
        SolverConfig(reconcile_mode="waves")


def test_sharded_fill_pool_vs_serial_dispatch_bit_identity():
    """End-to-end through the kernel: forcing the pool on a GIL build must
    still reproduce inline dispatch bit-for-bit (a live-activation instance,
    so the plan has real component bins to dispatch)."""
    from repro.solver.compile import DenseCosts, GreedyState, greedy_fill_sharded

    rng = np.random.default_rng(11)
    n_apps, n_servers = 40, 8
    dense = DenseCosts(
        keys=["r"], demand=rng.uniform(0.1, 1.0, (n_apps, n_servers, 1)),
        capacity=rng.uniform(2.0, 5.0, (n_servers, 1)),
        mask=rng.random((n_apps, n_servers)) < 0.6,
        cost=rng.uniform(0, 1, (n_apps, n_servers)),
        raw_assign=np.zeros((n_apps, n_servers)),
        activation=rng.uniform(0.0, 2.0, n_servers),
        initially_on=rng.random(n_servers) < 0.5)
    energy = rng.uniform(0, 1, (n_apps, n_servers))

    arms = {}
    for mode in ("serial", "pool"):
        state = GreedyState(dense)
        greedy_fill_sharded(state, energy, 4, min_shard_apps=1, dispatch=mode)
        arms[mode] = state
    assert np.array_equal(arms["serial"].assignment, arms["pool"].assignment)
    assert np.array_equal(arms["serial"].capacity_left,
                          arms["pool"].capacity_left)
    assert np.array_equal(arms["serial"].served, arms["pool"].served)
