"""Placement-policy behaviour tests."""

import numpy as np
import pytest

from repro.core.policies import (
    CarbonEdgePolicy,
    EnergyAwarePolicy,
    GreedyCarbonPolicy,
    IntensityAwarePolicy,
    LatencyAwarePolicy,
    RandomPolicy,
)
from repro.core.problem import PlacementProblem
from repro.core.validation import validate_solution
from tests.conftest import make_apps

ALL_POLICIES = (LatencyAwarePolicy(), EnergyAwarePolicy(), IntensityAwarePolicy(),
                CarbonEdgePolicy(), GreedyCarbonPolicy(), RandomPolicy())


@pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.name)
def test_every_policy_produces_valid_full_placements(central_eu_problem, policy):
    solution = policy.timed_place(central_eu_problem)
    assert validate_solution(solution) == []
    assert solution.all_placed
    assert solution.policy_name == policy.name
    assert solution.solve_time_s >= 0.0


def test_latency_aware_places_locally(central_eu_problem):
    solution = LatencyAwarePolicy().place(central_eu_problem)
    assert solution.mean_latency_ms() == pytest.approx(0.0)
    assert solution.latency_increase_ms() == pytest.approx(0.0)


def test_carbon_edge_never_worse_than_baselines(central_eu_problem):
    carbon_edge = CarbonEdgePolicy().place(central_eu_problem).total_carbon_g()
    for baseline in (LatencyAwarePolicy(), EnergyAwarePolicy(), IntensityAwarePolicy(),
                     RandomPolicy()):
        assert carbon_edge <= baseline.place(central_eu_problem).total_carbon_g() + 1e-6


def test_carbon_edge_concentrates_on_green_zones(central_eu_problem):
    solution = CarbonEdgePolicy().place(central_eu_problem)
    sites = solution.apps_per_site()
    # The greenest Central-EU zones are Lyon and Bern; Munich/Milan should be empty.
    assert sites.get("Munich", 0) == 0
    assert sites.get("Milan", 0) == 0


def test_carbon_edge_respects_latency_slo(central_eu_fleet, central_eu_latency,
                                          central_eu_carbon):
    apps = make_apps(central_eu_fleet.sites(), slo_ms=4.0)  # 2 ms one-way: stay local-ish
    problem = PlacementProblem.build(apps, central_eu_fleet.servers(), central_eu_latency,
                                     central_eu_carbon, hour=0)
    solution = CarbonEdgePolicy().place(problem)
    validate_solution(solution)
    assert 2.0 * solution.max_latency_ms() <= 4.0 + 1e-9


def test_carbon_edge_solver_strategies_agree_on_feasibility(central_eu_problem):
    results = {}
    for solver in ("exact", "lp-round", "greedy"):
        solution = CarbonEdgePolicy(solver=solver).place(central_eu_problem)
        validate_solution(solution)
        results[solver] = solution
    assert all(s.all_placed for s in results.values())
    # The exact solver is at least as good as the heuristics.
    assert results["exact"].total_carbon_g() <= results["greedy"].total_carbon_g() + 1e-6
    assert results["exact"].total_carbon_g() <= results["lp-round"].total_carbon_g() + 1e-6


def test_invalid_policy_parameters():
    with pytest.raises(ValueError):
        CarbonEdgePolicy(solver="quantum")
    with pytest.raises(ValueError):
        CarbonEdgePolicy(alpha=2.0)
    with pytest.raises(ValueError):
        EnergyAwarePolicy(solver="quantum")


def test_alpha_zero_matches_pure_carbon_objective(central_eu_problem):
    pure = CarbonEdgePolicy(solver="exact").place(central_eu_problem).total_carbon_g()
    multi = CarbonEdgePolicy(alpha=0.0, solver="exact").place(central_eu_problem).total_carbon_g()
    assert multi == pytest.approx(pure, rel=1e-6)


def test_alpha_one_tracks_energy_objective(central_eu_problem):
    energy_aware = EnergyAwarePolicy(solver="exact").place(central_eu_problem).total_energy_j()
    alpha_one = CarbonEdgePolicy(alpha=1.0, solver="exact").place(central_eu_problem).total_energy_j()
    assert alpha_one == pytest.approx(energy_aware, rel=0.05)


def test_unplaceable_apps_are_reported(central_eu_fleet, central_eu_latency, central_eu_carbon):
    apps = make_apps(["Bern"], workload="UnknownNet") + make_apps(["Lyon"])
    problem = PlacementProblem.build(apps, central_eu_fleet.servers(), central_eu_latency,
                                     central_eu_carbon, hour=0)
    solution = CarbonEdgePolicy().place(problem)
    validate_solution(solution)
    assert len(solution.unplaced) == 1
    assert solution.n_placed == 1


def test_random_policy_deterministic_per_seed(central_eu_problem):
    a = RandomPolicy(seed=1).place(central_eu_problem).placements
    b = RandomPolicy(seed=1).place(central_eu_problem).placements
    c = RandomPolicy(seed=2).place(central_eu_problem).placements
    assert a == b
    assert a != c or len(a) <= 1


def test_intensity_aware_picks_lowest_intensity_zone(central_eu_problem):
    solution = IntensityAwarePolicy().place(central_eu_problem)
    p = central_eu_problem
    greenest = p.servers[int(np.argmin(p.intensity))].site
    # Most applications land in the greenest zone (capacity permitting).
    assert solution.apps_per_site().get(greenest, 0) >= p.n_applications // 2
