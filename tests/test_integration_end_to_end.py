"""End-to-end integration tests: substrate -> placement -> orchestration -> accounting."""

import numpy as np
import pytest

from repro.analysis.savings import compare_solutions
from repro.carbon.service import CarbonIntensityService
from repro.carbon.synthetic import SyntheticTraceGenerator
from repro.cluster.fleet import build_regional_fleet
from repro.core.incremental import IncrementalPlacer
from repro.core.policies import CarbonEdgePolicy, LatencyAwarePolicy
from repro.core.problem import PlacementProblem
from repro.core.validation import validate_solution
from repro.datasets.cities import default_city_catalog
from repro.datasets.electricity_maps import default_zone_catalog
from repro.datasets.regions import CENTRAL_EU
from repro.network.latency import build_latency_matrix
from repro.orchestrator.orchestrator import EdgeOrchestrator
from repro.workloads.generator import ApplicationGenerator


@pytest.fixture(scope="module")
def stack():
    """The full CarbonEdge stack wired from public constructors only."""
    catalog = default_city_catalog()
    zones = default_zone_catalog()
    cities = CENTRAL_EU.cities(catalog)
    names = [c.name for c in cities]
    latency = build_latency_matrix(names, catalog.coordinates_array(names),
                                   countries=[c.country for c in cities])
    traces = SyntheticTraceGenerator(seed=13, n_hours=336).generate_set(
        zones.get(z) for z in CENTRAL_EU.zone_ids(catalog))
    carbon = CarbonIntensityService(traces=traces)
    fleet = build_regional_fleet(CENTRAL_EU, servers_per_site=2)
    return {"latency": latency, "carbon": carbon, "fleet": fleet, "sites": names}


def test_full_pipeline_orchestrates_arrivals(stack):
    placer = IncrementalPlacer(fleet=stack["fleet"], latency=stack["latency"],
                               carbon=stack["carbon"], policy=CarbonEdgePolicy(),
                               horizon_hours=24.0)
    orchestrator = EdgeOrchestrator(placer=placer)
    generator = ApplicationGenerator(sites=stack["sites"], seed=13,
                                     workload_mix={"ResNet50": 0.6, "Sci": 0.4},
                                     mean_arrivals_per_batch=8, latency_slo_ms=25.0)
    total_deployed = 0
    for interval in range(3):
        batch = generator.generate_batch(interval, hour_of_year=interval * 24)
        if not batch.applications:
            continue
        deployments = orchestrator.deploy_batch(list(batch.applications), hour=interval * 24)
        total_deployed += len(deployments)
    assert total_deployed > 0
    assert len(orchestrator.running_deployments()) == total_deployed
    # Every deployment's allocation is present on the hosting server.
    for deployment in orchestrator.running_deployments():
        server = stack["fleet"].server(deployment.server_id)
        assert deployment.app_id in server.allocations
    # All placements across rounds were validated and carbon was accounted.
    assert placer.total_carbon_g() > 0.0
    # Clean up: terminate everything and confirm the fleet drains.
    for deployment in list(orchestrator.running_deployments()):
        orchestrator.terminate(deployment.app_id)
    assert all(not s.allocations for s in stack["fleet"].servers())


def test_carbon_edge_vs_baseline_end_to_end(stack):
    stack["fleet"].reset_allocations()
    for server in stack["fleet"].servers():
        server.power_on()
    generator = ApplicationGenerator(sites=stack["sites"], seed=17,
                                     workload_mix={"ResNet50": 1.0},
                                     mean_arrivals_per_batch=15, latency_slo_ms=20.0)
    batch = generator.generate_batch(0, 0, n_arrivals=15)
    problem = PlacementProblem.build(list(batch.applications), stack["fleet"].servers(),
                                     stack["latency"], stack["carbon"], hour=100,
                                     horizon_hours=24.0)
    baseline = LatencyAwarePolicy().timed_place(problem)
    carbon_edge = CarbonEdgePolicy().timed_place(problem)
    validate_solution(baseline)
    validate_solution(carbon_edge)
    comparison = compare_solutions(baseline, carbon_edge)
    # Central EU offers large mesoscale savings at a few ms of extra latency.
    assert comparison.carbon_savings_pct > 30.0
    assert comparison.latency_increase_ms < 2 * 20.0


def test_deterministic_end_to_end_repetition(stack):
    generator = ApplicationGenerator(sites=stack["sites"], seed=23,
                                     mean_arrivals_per_batch=10)
    batch = generator.generate_batch(0, 0, n_arrivals=10)
    stack["fleet"].reset_allocations()
    for server in stack["fleet"].servers():
        server.power_on()
    problem = PlacementProblem.build(list(batch.applications), stack["fleet"].servers(),
                                     stack["latency"], stack["carbon"], hour=50)
    a = CarbonEdgePolicy().place(problem)
    b = CarbonEdgePolicy().place(problem)
    assert a.placements == b.placements
    assert a.total_carbon_g() == pytest.approx(b.total_carbon_g())


def test_intensity_scaling_scales_emissions(stack):
    """Doubling every zone's intensity doubles the reported carbon (fixed placement)."""
    from repro.carbon.traces import TraceSet
    stack["fleet"].reset_allocations()
    for server in stack["fleet"].servers():
        server.power_on()
    generator = ApplicationGenerator(sites=stack["sites"], seed=29, mean_arrivals_per_batch=6)
    apps = list(generator.generate_batch(0, 0, n_arrivals=6).applications)
    problem = PlacementProblem.build(apps, stack["fleet"].servers(), stack["latency"],
                                     stack["carbon"], hour=10)
    doubled_traces = TraceSet.from_mapping(
        {z: stack["carbon"].trace(z).values * 2.0 for z in stack["carbon"].zones()})
    doubled = CarbonIntensityService(traces=doubled_traces)
    doubled_problem = PlacementProblem.build(apps, stack["fleet"].servers(), stack["latency"],
                                             doubled, hour=10)
    solution = LatencyAwarePolicy().place(problem)
    doubled_solution = LatencyAwarePolicy().place(doubled_problem)
    assert doubled_solution.total_carbon_g() == pytest.approx(2.0 * solution.total_carbon_g(),
                                                              rel=1e-9)
    assert np.isclose(doubled_solution.total_energy_j(), solution.total_energy_j())
