"""Tests for the anytime exact tier (OR-Tools ``cpsat`` / ``milp`` backends).

Two regimes, both CI-covered:

* **Without ortools** (the default container): the fallback contract — the
  backends register, emit a structured :class:`OrToolsUnavailableWarning`,
  and the registry degrades to the deterministic heuristic. Never an
  ``ImportError`` on a solve path.
* **With ortools** (the optional-deps CI job): the real-solver contract —
  cpsat/milp agree with the branch-and-bound optimum on small seeded
  instances, honour the time budget (anytime: any budget returns an
  incumbent plus a recorded bound), never return worse than their warm hint,
  and record the solver parameters used.
"""

from __future__ import annotations

import time
import warnings

import numpy as np
import pytest

from repro.core.validation import validate_solution
from repro.solver import registry
from repro.solver.backend import SolveRequest, raw_objective_value
from repro.solver.backends import ortools_exact
from repro.solver.backends.ortools_exact import (
    OrToolsUnavailableWarning,
    ortools_available,
)
from repro.solver.compile import GreedyState, greedy_fill
from repro.solver.config import SolverConfig

from tests.test_backend_metamorphic import _random_problem

needs_ortools = pytest.mark.skipif(
    not ortools_available(),
    reason="optional ortools dependency not installed (pip install .[exact])")


# -- registration (no ortools needed) ---------------------------------------------

def test_exact_tier_backends_and_aliases_registered():
    assert registry.get_backend("cpsat").name == "cpsat"
    assert registry.get_backend("cp-sat").name == "cpsat"
    assert registry.get_backend("ortools").name == "cpsat"
    assert registry.get_backend("milp").name == "milp"
    assert registry.get_backend("pywraplp").name == "milp"
    assert registry.get_backend("mip").name == "milp"


# -- graceful degradation (forced, so it holds with ortools installed too) --------

@pytest.mark.parametrize("backend", ["cpsat", "milp"])
def test_missing_ortools_degrades_to_heuristic_with_structured_warning(
        backend, monkeypatch):
    monkeypatch.setattr(ortools_exact, "_load_ortools", lambda: None)
    problem = _random_problem(seed=0, n_apps=4)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        solution = registry.solve(problem, backend=backend)
    validate_solution(solution)
    assert solution.all_placed
    assert solution.backend_name == "heuristic"
    messages = [w for w in caught if isinstance(w.message, OrToolsUnavailableWarning)]
    assert len(messages) == 1
    assert backend in str(messages[0].message)
    assert "pip install .[exact]" in str(messages[0].message)


@pytest.mark.parametrize("backend", ["cpsat", "milp"])
def test_missing_ortools_backend_returns_none_not_importerror(backend, monkeypatch):
    monkeypatch.setattr(ortools_exact, "_load_ortools", lambda: None)
    request = SolveRequest(problem=_random_problem(seed=1, n_apps=3))
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", OrToolsUnavailableWarning)
        assert registry.get_backend(backend).solve(request) is None


def test_ortools_available_reflects_import(monkeypatch):
    monkeypatch.setattr(ortools_exact, "_load_ortools", lambda: None)
    assert ortools_exact.ortools_available() is False


# -- warm-start sanitization (satellite 3) ----------------------------------------

def test_solve_request_drops_and_counts_malformed_hints():
    problem = _random_problem(seed=2, n_apps=4)
    good_app = problem.applications[0].app_id
    request = SolveRequest(problem=problem, warm_start={
        good_app: 0,                 # kept
        "departed-app": 1,           # unknown id -> dropped
        problem.applications[1].app_id: 10**6,   # out-of-range server -> dropped
        problem.applications[2].app_id: "zero",  # non-numeric -> dropped
    })
    assert request.warm_hints_dropped == 3
    assert request.warm_start == {good_app: 0}


def test_clean_warm_start_drops_nothing():
    problem = _random_problem(seed=2, n_apps=4)
    warm = {app.app_id: 0 for app in problem.applications}
    request = SolveRequest(problem=problem, warm_start=warm)
    assert request.warm_hints_dropped == 0
    assert request.warm_start == warm


def test_dropped_hint_counter_reaches_the_solution():
    problem = _random_problem(seed=3, n_apps=4)
    solution = registry.solve(problem, backend="heuristic",
                              warm_start={"no-such-app": 0, "nor-this-one": 2})
    validate_solution(solution)
    assert solution.all_placed
    assert solution.warm_hints_dropped == 2
    untainted = registry.solve(problem, backend="heuristic")
    assert untainted.warm_hints_dropped == 0


# -- construction deadline (satellite 2) ------------------------------------------

def test_greedy_fill_expired_deadline_truncates_with_valid_state():
    request = SolveRequest(problem=_random_problem(seed=4, n_apps=6))
    state = GreedyState(request.dense())
    greedy_fill(state, request.problem.energy_j, deadline=time.monotonic() - 1.0)
    assert state.stats.truncated
    # Whatever was filled before the cut is a consistent partial assignment.
    assert np.all(state.assignment == -1) or state.assignment.max() >= 0


def test_expired_budget_flags_construction_truncated_on_the_solution():
    problem = _random_problem(seed=4, n_apps=6)
    request = SolveRequest(problem=problem, time_budget_s=5.0,
                           started_at=time.monotonic() - 10.0)  # already expired
    solution = registry.get_backend("heuristic").solve(request)
    assert solution is not None
    validate_solution(solution)
    assert solution.construction_truncated
    assert not solution.all_placed


def test_no_budget_leaves_construction_untruncated():
    problem = _random_problem(seed=4, n_apps=6)
    solution = registry.get_backend("heuristic").solve(SolveRequest(problem=problem))
    assert solution is not None
    assert not solution.construction_truncated
    assert solution.all_placed


# -- real-solver contract (optional-deps CI job) ----------------------------------

@needs_ortools
@pytest.mark.parametrize("backend", ["cpsat", "milp"])
@pytest.mark.parametrize("seed,n_apps", [(0, 3), (1, 4), (2, 5)])
def test_exact_tier_matches_bnb_optimum(backend, seed, n_apps):
    problem = _random_problem(seed, n_apps)
    request = SolveRequest(problem=problem)
    bnb = registry.get_backend("bnb").solve(request)
    exact = registry.get_backend(backend).solve(SolveRequest(problem=problem))
    assert bnb is not None and exact is not None
    validate_solution(exact, strict=True)
    assert exact.n_placed == n_apps
    bnb_obj = raw_objective_value(request, bnb)
    exact_obj = raw_objective_value(request, exact)
    # Both prove optimality on these sizes; the CP-SAT fixed-point scaling
    # perturbs coefficients by at most 1/CPSAT_SCALE each.
    assert exact_obj <= bnb_obj + 1e-4 * max(1.0, abs(bnb_obj))
    assert bnb_obj <= exact_obj + 1e-4 * max(1.0, abs(exact_obj))


@needs_ortools
@pytest.mark.parametrize("backend", ["cpsat", "milp"])
def test_exact_tier_records_bound_and_params(backend):
    problem = _random_problem(seed=1, n_apps=4)
    solution = registry.solve(problem, backend=backend, time_budget_s=20.0,
                              config=SolverConfig(num_search_workers=1))
    validate_solution(solution)
    assert solution.backend_name == backend
    assert np.isfinite(solution.solver_bound)
    params = solution.solver_params
    assert params["backend"] == backend
    assert params["num_search_workers"] == 1
    assert "status" in params
    # Anytime contract: incumbent objective never beats the proven bound.
    request = SolveRequest(problem=problem)
    assert solution.solver_bound <= raw_objective_value(request, solution) + 1e-6


@needs_ortools
@pytest.mark.parametrize("backend", ["cpsat", "milp"])
def test_warm_hinted_solve_never_worse_than_hint(backend):
    problem = _random_problem(seed=3, n_apps=6)
    request = SolveRequest(problem=problem)
    hint = registry.get_backend("heuristic").solve(request)
    warm = registry.solve(problem, backend=backend, time_budget_s=20.0,
                          warm_start=dict(hint.placements))
    validate_solution(warm)
    assert warm.n_placed >= hint.n_placed
    assert raw_objective_value(request, warm) <= \
        raw_objective_value(request, hint) + 1e-6


@needs_ortools
@pytest.mark.parametrize("backend", ["cpsat", "milp"])
def test_tight_budget_still_returns_an_incumbent(backend):
    problem = _random_problem(seed=2, n_apps=6)
    solution = registry.solve(problem, backend=backend, time_budget_s=0.5)
    validate_solution(solution)
    # Anytime: either the exact incumbent (hint-seeded) or the registry's
    # heuristic fallback — always a usable solution.
    assert solution.all_placed or solution.construction_truncated
