"""Application-spec tests."""

import pytest

from repro.cluster.hardware import GTX_1080, ORIN_NANO
from repro.cluster.server import EdgeServer
from repro.workloads.application import Application, make_application


@pytest.fixture
def a2_server():
    return EdgeServer(server_id="s", site="Miami", zone_id="US-FL-MIA")


def test_validation():
    with pytest.raises(ValueError):
        Application(app_id="a", workload="ResNet50", source_site="Miami", latency_slo_ms=0)
    with pytest.raises(ValueError):
        Application(app_id="a", workload="ResNet50", source_site="Miami", request_rate_rps=0)
    with pytest.raises(ValueError):
        Application(app_id="a", workload="ResNet50", source_site="Miami", duration_hours=0)


def test_one_way_slo_is_half_rtt():
    app = make_application("a", "ResNet50", "Miami", latency_slo_ms=20.0)
    assert app.one_way_latency_slo_ms == 10.0


def test_gpu_workload_resolves_accelerator_profile(a2_server):
    app = make_application("a", "ResNet50", "Miami")
    assert app.profile_on(a2_server).device == "NVIDIA A2"


def test_cpu_workload_falls_back_to_host_cpu(a2_server):
    app = make_application("a", "Sci", "Miami")
    assert app.profile_on(a2_server).device == "Xeon E5-2660v3"
    assert app.supports_server(a2_server)


def test_unknown_workload_unsupported(a2_server):
    app = make_application("a", "UnknownNet", "Miami")
    assert not app.supports_server(a2_server)
    with pytest.raises(KeyError):
        app.profile_on(a2_server)


def test_energy_scales_with_rate_and_duration(a2_server):
    slow = make_application("a", "ResNet50", "Miami", request_rate_rps=5, duration_hours=1)
    fast = make_application("b", "ResNet50", "Miami", request_rate_rps=10, duration_hours=2)
    assert fast.energy_on(a2_server) == pytest.approx(4 * slow.energy_on(a2_server))


def test_energy_depends_on_device():
    app = make_application("a", "ResNet50", "Miami", request_rate_rps=10)
    orin = EdgeServer(server_id="o", site="Miami", zone_id="US-FL-MIA", accelerator=ORIN_NANO)
    gtx = EdgeServer(server_id="g", site="Miami", zone_id="US-FL-MIA", accelerator=GTX_1080)
    assert app.energy_on(orin) < app.energy_on(gtx)


def test_resource_demand_replicas(a2_server):
    # ResNet50 on A2 sustains ~133 rps per replica; 300 rps needs 3 replicas.
    light = make_application("a", "ResNet50", "Miami", request_rate_rps=10)
    heavy = make_application("b", "ResNet50", "Miami", request_rate_rps=300)
    assert heavy.resource_demand_on(a2_server)["gpu_memory_mb"] == pytest.approx(
        3 * light.resource_demand_on(a2_server)["gpu_memory_mb"])


def test_processing_latency(a2_server):
    app = make_application("a", "YOLOv4", "Miami")
    assert app.processing_latency_on(a2_server) == pytest.approx(18.5)
