"""Property-based invariants of the sharded placement kernel (hypothesis).

The intra-epoch sharding layer (:mod:`repro.solver.compile`) carries a hard
determinism contract: for every shard count, ``greedy_fill_sharded`` must be
*bit-identical* to the serial ``greedy_fill`` — same assignment, same remaining
capacity down to float arithmetic order, same served counts — across both
execution modes (cold-channel speculation and hot-component bins). These tests
hammer that contract plus the physical invariants every fill must uphold
(capacity never exceeded, demand conservation) on randomized dense instances
and on randomized :class:`~repro.core.problem.PlacementProblem`\\ s.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.carbon.service import CarbonIntensityService
from repro.carbon.traces import TraceSet
from repro.cluster.fleet import build_regional_fleet
from repro.core.problem import PlacementProblem
from repro.core.validation import validate_solution
from repro.datasets.cities import default_city_catalog
from repro.datasets.regions import CENTRAL_EU
from repro.network.latency import build_latency_matrix
from repro.solver.backend import SolveRequest
from repro.solver.compile import (
    DenseCosts,
    GreedyState,
    greedy_fill,
    greedy_fill_sharded,
    plan_shards,
)
from repro.solver.config import MIN_SHARD_APPS, SolverConfig
from repro.solver.registry import get_backend
from repro.workloads.application import Application

SHARD_COUNTS = (1, 2, 4)

# -- randomized dense instances ------------------------------------------------


@st.composite
def dense_instances(draw):
    """A random DenseCosts + warm-started GreedyState + energy matrix.

    Deliberately adversarial for the shard planner: contended capacity,
    initially-off servers with nonzero (even negative) activation costs,
    occasional ``inf`` costs inside the mask, and zero-width resource axes.
    """
    n_apps = draw(st.integers(1, 10))
    n_servers = draw(st.integers(1, 6))
    n_keys = draw(st.integers(0, 2))
    mask = draw(hnp.arrays(bool, (n_apps, n_servers)))
    capacity = draw(hnp.arrays(
        float, (n_servers, n_keys),
        elements=st.floats(0.0, 8.0, allow_nan=False, width=32)))
    demand = draw(hnp.arrays(
        float, (n_apps, n_servers, n_keys),
        elements=st.floats(0.0, 5.0, allow_nan=False, width=32)))
    finite_cost = draw(hnp.arrays(
        float, (n_apps, n_servers),
        elements=st.floats(-5.0, 5.0, allow_nan=False, width=32)))
    inf_spots = draw(hnp.arrays(bool, (n_apps, n_servers)))
    inject_inf = draw(st.booleans())
    cost = np.where(mask, finite_cost, np.inf)
    if inject_inf:
        cost = np.where(inf_spots, np.inf, cost)
    activation = draw(hnp.arrays(
        float, (n_servers,),
        elements=st.floats(-2.0, 4.0, allow_nan=False, width=32)))
    initially_on = draw(hnp.arrays(bool, (n_servers,)))
    energy = draw(hnp.arrays(
        float, (n_apps, n_servers),
        elements=st.floats(0.0, 9.0, allow_nan=False, width=32)))
    dense = DenseCosts(keys=[f"r{k}" for k in range(n_keys)], demand=demand,
                       capacity=capacity.astype(float), mask=mask, cost=cost,
                       raw_assign=cost, activation=activation,
                       initially_on=initially_on)
    state = GreedyState(dense)
    warm = draw(st.lists(
        st.tuples(st.integers(0, n_apps - 1), st.integers(0, n_servers - 1)),
        max_size=n_apps))
    for i, j in warm:
        if mask[i, j] and state.assignment[i] < 0 and \
                bool(np.all(demand[i, j] <= state.capacity_left[j] + 1e-9)):
            state.place(i, j)
    return state, energy


COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.filter_too_much])


@settings(max_examples=120, **COMMON)
@given(dense_instances())
def test_sharded_fill_is_bit_identical_to_serial(instance):
    """The contract: shard counts 1/2/4 reproduce the serial kernel exactly."""
    state, energy = instance
    serial = state.clone()
    greedy_fill(serial, energy)
    for n_shards in SHARD_COUNTS:
        sharded = state.clone()
        greedy_fill_sharded(sharded, energy, n_shards, min_shard_apps=1)
        assert np.array_equal(serial.assignment, sharded.assignment)
        # Bit-equal, not allclose: the reconciliation pass must replay the
        # serial kernel's float subtraction sequence exactly.
        assert np.array_equal(serial.capacity_left, sharded.capacity_left)
        assert np.array_equal(serial.served, sharded.served)


@settings(max_examples=120, **COMMON)
@given(dense_instances())
def test_fill_never_exceeds_capacity(instance):
    state, energy = instance
    greedy_fill(state, energy)
    dense = state.dense
    used = np.zeros_like(dense.capacity)
    for i, j in enumerate(state.assignment):
        if j >= 0:
            used[j] += dense.demand[i, j]
    # The kernel tolerates 1e-9 per placement; allow the accumulated slack.
    tolerance = 1e-9 * max(1, len(state.assignment))
    assert np.all(used <= dense.capacity + tolerance)


@settings(max_examples=120, **COMMON)
@given(dense_instances())
def test_fill_conserves_demand_and_state(instance):
    """Every application is assigned at most once, within its mask, and the
    shared state is exactly the ledger of the placements made."""
    state, energy = instance
    greedy_fill(state, energy)
    dense = state.dense
    n_servers = dense.capacity.shape[0]
    expected_capacity = dense.capacity.copy()
    expected_served = np.zeros(n_servers, dtype=int)
    for i, j in enumerate(state.assignment):
        assert -1 <= j < n_servers
        if j >= 0:
            assert dense.mask[i, j], "placement outside the candidate mask"
            expected_capacity[j] -= dense.demand[i, j]
            expected_served[j] += 1
    np.testing.assert_allclose(state.capacity_left, expected_capacity,
                               rtol=1e-9, atol=1e-9)
    assert np.array_equal(state.served, expected_served)


@settings(max_examples=120, **COMMON)
@given(dense_instances(), st.sampled_from(SHARD_COUNTS[1:]))
def test_shard_plan_partitions_pending_apps(instance, n_shards):
    """A plan covers each pending application exactly once, free + coupled."""
    state, energy = instance
    plan = plan_shards(state.clone(), energy, n_shards, min_shard_apps=1)
    if plan is None:
        return
    pending = {i for i in range(len(state.assignment)) if state.assignment[i] < 0}
    chunks = [c for c in plan.free_chunks] + [b for b in plan.bins]
    covered = [int(i) for chunk in chunks for i in chunk]
    assert sorted(covered) == sorted(pending)
    assert sorted(int(i) for i in plan.order) == sorted(pending)
    assert plan.n_free + plan.n_coupled == len(pending)
    assert 0.0 <= plan.parallel_fraction <= 1.0


def test_plan_falls_back_to_serial_below_shard_size_threshold():
    """Sub-shard-size epochs must take the serial path under the *default*
    threshold: ``plan_shards`` declines, and ``greedy_fill_sharded`` reports
    the fallback (``None``) while still producing the serial result."""
    rng = np.random.default_rng(9)
    n_apps, n_servers = MIN_SHARD_APPS - 1, 4
    mask = np.ones((n_apps, n_servers), dtype=bool)
    dense = DenseCosts(
        keys=["r"], demand=rng.uniform(0, 1, (n_apps, n_servers, 1)),
        capacity=np.full((n_servers, 1), 100.0), mask=mask,
        cost=rng.uniform(0, 1, (n_apps, n_servers)),
        raw_assign=np.zeros((n_apps, n_servers)),
        activation=np.zeros(n_servers), initially_on=np.ones(n_servers, dtype=bool))
    energy = rng.uniform(0, 1, (n_apps, n_servers))
    state = GreedyState(dense)
    assert plan_shards(state.clone(), energy, 4) is None

    serial = state.clone()
    greedy_fill(serial, energy)
    sharded = state.clone()
    assert greedy_fill_sharded(sharded, energy, 4) is None  # serial fallback ran
    assert np.array_equal(serial.assignment, sharded.assignment)

    # One more application crosses the threshold and a real plan appears.
    bigger = DenseCosts(
        keys=["r"], demand=rng.uniform(0, 1, (MIN_SHARD_APPS, n_servers, 1)),
        capacity=np.full((n_servers, 1), 100.0),
        mask=np.ones((MIN_SHARD_APPS, n_servers), dtype=bool),
        cost=rng.uniform(0, 1, (MIN_SHARD_APPS, n_servers)),
        raw_assign=np.zeros((MIN_SHARD_APPS, n_servers)),
        activation=np.zeros(n_servers), initially_on=np.ones(n_servers, dtype=bool))
    assert plan_shards(GreedyState(bigger),
                       rng.uniform(0, 1, (MIN_SHARD_APPS, n_servers)), 4) is not None


# -- randomized placement problems --------------------------------------------

_CATALOG = default_city_catalog()
_CITIES = CENTRAL_EU.cities(_CATALOG)
_NAMES = [c.name for c in _CITIES]
_LATENCY = build_latency_matrix(_NAMES, _CATALOG.coordinates_array(_NAMES),
                                countries=[c.country for c in _CITIES])

app_strategy = st.builds(
    dict,
    workload=st.sampled_from(["ResNet50", "EfficientNetB0", "YOLOv4", "Sci"]),
    source=st.sampled_from(_NAMES),
    slo_ms=st.sampled_from([6.0, 12.0, 20.0, 40.0]),
    rate_rps=st.floats(min_value=1.0, max_value=40.0),
)

intensity_strategy = st.lists(st.floats(min_value=10.0, max_value=900.0),
                              min_size=5, max_size=5)


def _build_problem(app_specs, intensities):
    fleet = build_regional_fleet(CENTRAL_EU)
    traces = TraceSet.from_mapping({
        zone: np.full(24, value)
        for zone, value in zip(CENTRAL_EU.zone_ids(_CATALOG), intensities)
    })
    carbon = CarbonIntensityService(traces=traces)
    apps = [Application(app_id=f"app-{k}", workload=spec["workload"],
                        source_site=spec["source"], latency_slo_ms=spec["slo_ms"],
                        request_rate_rps=spec["rate_rps"], duration_hours=1.0)
            for k, spec in enumerate(app_specs)]
    return PlacementProblem.build(apps, fleet.servers(), _LATENCY, carbon, hour=0,
                                  horizon_hours=1.0)


@settings(max_examples=25, **COMMON)
@given(st.lists(app_strategy, min_size=1, max_size=10), intensity_strategy)
def test_sharded_backend_solutions_identical_on_problems(app_specs, intensities):
    """End-to-end: the heuristic backend is shard-count invariant on real
    placement problems (placements, unplaced, power state — the lot)."""
    problem = _build_problem(app_specs, intensities)
    solutions = []
    for n_shards in SHARD_COUNTS:
        config = SolverConfig(epoch_shards=n_shards, min_shard_apps=1)
        request = SolveRequest(problem=problem, config=config)
        solution = get_backend("heuristic").solve(request)
        assert validate_solution(solution) == []
        solutions.append(solution)
    reference = solutions[0]
    for other in solutions[1:]:
        assert other.placements == reference.placements
        assert other.unplaced == reference.unplaced
        assert np.array_equal(other.power_on, reference.power_on)


@settings(max_examples=20, **COMMON)
@given(st.lists(app_strategy, min_size=1, max_size=10), intensity_strategy)
def test_local_search_objective_monotone(app_specs, intensities):
    """Objective monotonicity: local search only ever improves on the greedy
    construction it starts from (same placements count, lower-or-equal raw
    objective) — sharded or not."""
    from repro.solver.backend import raw_objective_value

    problem = _build_problem(app_specs, intensities)
    for n_shards in (1, 2):
        config = SolverConfig(epoch_shards=n_shards, min_shard_apps=1)
        greedy = get_backend("greedy").solve(
            SolveRequest(problem=problem, config=config))
        improved = get_backend("heuristic").solve(
            SolveRequest(problem=problem, config=config))
        assert improved.n_placed >= greedy.n_placed
        if improved.n_placed == greedy.n_placed:
            request = SolveRequest(problem=problem, config=config)
            assert raw_objective_value(request, improved) <= \
                raw_objective_value(request, greedy) + 1e-9


@settings(max_examples=150, **COMMON)
@given(dense_instances())
def test_cold_speculative_schedule_is_bit_identical_to_naive_loop(instance):
    """The serial kernel's speculate-and-revalidate fast path must reproduce
    the naive per-row schedule exactly on every instance it dispatches for.

    ``greedy_fill`` auto-routes cold activation channels onto the batched
    schedule, so the shard bit-identity tests above would compare the cold
    path against itself; this test pins the naive loop as the reference arm
    explicitly (adversarial inf-costs-inside-the-mask, warm starts, and
    zero-width resource axes included).
    """
    from repro.solver.compile import _greedy_fill_live, _pending_order

    state, energy = instance
    naive = state.clone()
    _greedy_fill_live(naive, _pending_order(naive, energy))
    auto = state.clone()
    greedy_fill(auto, energy)
    assert np.array_equal(naive.assignment, auto.assignment)
    # Bit-equal, not allclose: the replay must reproduce the naive loop's
    # float subtraction sequence exactly.
    assert np.array_equal(naive.capacity_left, auto.capacity_left)
    assert np.array_equal(naive.served, auto.served)


# -- wave-vectorised reconciliation -------------------------------------------


@settings(max_examples=100, **COMMON)
@given(dense_instances())
def test_wave_replay_bit_identical_across_modes_shards_and_dispatch(instance):
    """The reconcile mode (wave commits vs per-application replay) and the
    dispatch mode (persistent pool vs inline) are pure execution knobs: every
    combination, at every shard count, must reproduce the serial
    per-application kernel bit-for-bit — assignment, remaining capacity down
    to float arithmetic order, and served counts."""
    state, energy = instance
    reference = state.clone()
    greedy_fill(reference, energy, reconcile_mode="serial")

    def check(arm):
        assert np.array_equal(reference.assignment, arm.assignment)
        assert np.array_equal(reference.capacity_left, arm.capacity_left)
        assert np.array_equal(reference.served, arm.served)

    wave = state.clone()
    greedy_fill(wave, energy, reconcile_mode="wave")
    check(wave)
    assert 0.0 <= wave.stats.revalidation_rate <= 1.0

    for n_shards in SHARD_COUNTS:
        for reconcile_mode in ("wave", "serial"):
            sharded = state.clone()
            greedy_fill_sharded(sharded, energy, n_shards, min_shard_apps=1,
                                reconcile_mode=reconcile_mode,
                                dispatch="serial")
            check(sharded)
    pooled = state.clone()
    greedy_fill_sharded(pooled, energy, 2, min_shard_apps=1,
                        reconcile_mode="wave", dispatch="pool")
    check(pooled)


@settings(max_examples=100, **COMMON)
@given(dense_instances(), st.randoms(use_true_random=False))
def test_place_batch_replays_sequential_place_exactly(instance, rnd):
    """A batched wave commit is arithmetically *the same program* as the
    per-placement loop: ``np.subtract.at`` applies repeated server indices in
    order of appearance, so remaining capacity matches bit-for-bit even when
    a wave lands several placements on one server."""
    state, _ = instance
    n_apps, n_servers = state.dense.mask.shape
    pending = [i for i in range(n_apps) if state.assignment[i] < 0]
    rnd.shuffle(pending)
    apps = pending[:rnd.randint(0, len(pending))]
    servers = [rnd.randrange(n_servers) for _ in apps]

    loop = state.clone()
    for i, j in zip(apps, servers):
        loop.place(int(i), int(j))
    batch = state.clone()
    batch.place_batch(np.asarray(apps, dtype=int),
                      np.asarray(servers, dtype=int))
    assert np.array_equal(loop.assignment, batch.assignment)
    assert np.array_equal(loop.capacity_left, batch.capacity_left)
    assert np.array_equal(loop.served, batch.served)


def test_wave_replay_kill_switch_forces_per_app_replay(monkeypatch):
    """The env kill-switch flips auto reconciliation back to the per-app
    replay (zero wave commits) without changing any placement."""
    from repro.solver.compile import WAVE_REPLAY_ENV

    rng = np.random.default_rng(3)
    n_apps, n_servers = 12, 4
    dense = DenseCosts(
        keys=["r"], demand=rng.uniform(0, 1, (n_apps, n_servers, 1)),
        capacity=np.full((n_servers, 1), 100.0),
        mask=np.ones((n_apps, n_servers), dtype=bool),
        cost=rng.uniform(0, 1, (n_apps, n_servers)),
        raw_assign=np.zeros((n_apps, n_servers)),
        activation=np.zeros(n_servers),
        initially_on=np.ones(n_servers, dtype=bool))
    energy = rng.uniform(0, 1, (n_apps, n_servers))

    monkeypatch.delenv(WAVE_REPLAY_ENV, raising=False)
    waved = GreedyState(dense)
    greedy_fill(waved, energy)
    assert waved.stats.waves > 0

    monkeypatch.setenv(WAVE_REPLAY_ENV, "1")
    killed = GreedyState(dense)
    greedy_fill(killed, energy)
    assert killed.stats.waves == 0
    assert killed.stats.serial_steps == killed.stats.pending == n_apps
    assert np.array_equal(waved.assignment, killed.assignment)
    assert np.array_equal(waved.capacity_left, killed.capacity_left)


# -- contention-certificate soundness ------------------------------------------


@settings(max_examples=150, **COMMON)
@given(dense_instances(), st.sampled_from(SHARD_COUNTS[1:]))
def test_no_app_marked_free_ever_fails_a_fit(instance, n_shards):
    """Certificate soundness, checked against the naive serial walk: every
    application the planner marks free must (a) still fit its static winner
    at its own serial turn and (b) be placed exactly there — free chunks
    commit the static row argmin *without revalidation*, so any violation
    here is a silent wrong placement in component mode."""
    from repro.solver.compile import _argmin_chunk

    state, energy = instance
    plan = plan_shards(state.clone(), energy, n_shards, min_shard_apps=1)
    if plan is None or plan.mode != "components":
        return
    free = {int(i) for chunk in plan.free_chunks for i in chunk}
    dense = state.dense
    _, static_choice = _argmin_chunk(dense, plan.order)
    static_of = {int(i): int(c) for i, c in zip(plan.order, static_choice)}

    live = state.clone()
    for i in (int(x) for x in plan.order):
        feasible = dense.mask[i] & dense.fits(i, live.capacity_left)
        if i in free and static_of[i] >= 0:
            assert feasible[static_of[i]], \
                "free application's static winner no longer fits at its turn"
        if not feasible.any():
            assert i not in free or static_of[i] < 0
            continue
        marginal = dense.cost[i] + dense.activation * live.would_activate()
        marginal = np.where(feasible, marginal, np.inf)
        j = int(np.argmin(marginal))
        if np.isfinite(marginal[j]):
            live.place(i, j)
            if i in free:
                assert j == static_of[i], \
                    "free application placed away from its static winner"
        elif i in free:
            assert static_of[i] < 0


@settings(max_examples=150, **COMMON)
@given(dense_instances())
def test_refined_certificate_is_conservative_vs_coarse_interest_rule(instance):
    """Every server the refined certificate marks hot, the historical
    sum-of-all-interested-demand rule (at matched slack) marked too — the
    refinement only ever *unmarks* servers, never invents contention."""
    from repro.solver.compile import _contended_servers, _pending_order, bool_any

    state, energy = instance
    dense = state.dense
    order = np.asarray(_pending_order(state, energy), dtype=int)
    if len(order) == 0:
        return
    mask_p = dense.mask[order]
    activation_coupled = (dense.activation != 0.0) & ~dense.initially_on \
        & (state.served == 0)
    refined = _contended_servers(dense, state.capacity_left, order, mask_p,
                                 activation_coupled)
    interested = np.einsum("ps,psk->sk", mask_p.astype(float),
                           dense.demand[order])
    slack = 1e-9 * (len(order) + 2) + 1e-7 * np.abs(state.capacity_left)
    coarse = bool_any(interested > state.capacity_left - slack)
    assert not np.any(refined & ~coarse)
