"""Behavioral tests of the live serving loop, its metrics, and the CLI.

Replay parity is covered by tests/test_serving_parity.py; here the live mode:
arrivals batch and place, departures release fleet capacity, the rolling
horizon warm re-solves, the soak bounds hold, the metrics artifact round-trips
through JSON, and ``carbon-edge serve`` wires it all up (including the
non-zero exit of a failed parity check).
"""

from __future__ import annotations

import json

import pytest

from repro.cli import carbon_edge_main
from repro.serving.loadgen import LoadGenerator
from repro.serving.metrics import SERVING_METRICS_VERSION, ServingMetrics
from repro.serving.service import PlacementService, ServingConfig
from repro.simulator.scenario import CDNScenario


@pytest.fixture(scope="module")
def scenario() -> CDNScenario:
    return CDNScenario(continent="EU", max_sites=5, seed=9)


def _run(scenario, duration_s=3 * 3600.0, max_events=None, *,
         rate_per_s=0.01, mean_lifetime_s=3600.0, seed=21,
         batch_interval_s=600.0, resolve_interval_s=3600.0):
    service = PlacementService.from_scenario(
        scenario, config=ServingConfig(batch_interval_s=batch_interval_s,
                                       resolve_interval_s=resolve_interval_s))
    load = LoadGenerator(sites=service.simulator.fleet.sites(),
                         rate_per_s=rate_per_s,
                         mean_lifetime_s=mean_lifetime_s, seed=seed)
    report = service.run_live(load, duration_s=duration_s,
                              max_events=max_events)
    return service, load, report


def test_live_loop_places_arrivals_and_counts_events(scenario):
    service, load, report = _run(scenario)
    m = report.metrics
    stream = load.events(3 * 3600.0)
    assert m.n_arrivals == sum(1 for e in stream if e.kind == "arrival")
    assert m.n_departures == sum(1 for e in stream if e.kind == "departure")
    assert m.n_batch_solves > 0
    assert m.n_warm_resolves > 0  # the 3 h run crosses re-solve ticks
    assert m.total_placed() > 0
    assert m.total_requests > 0 and m.carbon_per_request_g() > 0
    # Ticks are part of the processed-event count.
    assert m.n_events >= len(stream)


def test_departures_release_fleet_capacity(scenario):
    """No departed application may still hold an allocation after the run."""
    service, load, report = _run(scenario, mean_lifetime_s=900.0, seed=5)
    departed = {e.payload for e in load.events(3 * 3600.0)
                if e.kind == "departure"}
    assert departed  # the short lifetimes guarantee departures fired
    allocated = {app_id for server in service.simulator.fleet.servers()
                 for app_id in server.allocations}
    assert not allocated & departed
    assert report.metrics.n_departures == len(departed)


def test_max_events_bounds_the_soak(scenario):
    _service, _load, report = _run(scenario, max_events=10)
    assert report.metrics.n_events == 10


def test_run_live_rejects_non_positive_duration(scenario):
    service = PlacementService.from_scenario(scenario)
    load = LoadGenerator(sites=service.simulator.fleet.sites())
    with pytest.raises(ValueError, match="duration_s"):
        service.run_live(load, duration_s=0.0)


def test_serving_config_validation():
    with pytest.raises(ValueError, match="batch_interval_s"):
        ServingConfig(batch_interval_s=0.0)
    with pytest.raises(ValueError, match="resolve_interval_s"):
        ServingConfig(resolve_interval_s=-1.0)
    with pytest.raises(ValueError, match="start_hour"):
        ServingConfig(start_hour=8760)
    with pytest.raises(ValueError, match="horizon_hours"):
        ServingConfig(horizon_hours=0.0)


def test_load_generator_validation():
    with pytest.raises(ValueError, match="at least one site"):
        LoadGenerator(sites=[])
    with pytest.raises(ValueError, match="shape"):
        LoadGenerator(sites=["a"], shape="square")
    with pytest.raises(ValueError, match="rate_per_s"):
        LoadGenerator(sites=["a"], rate_per_s=0.0)
    with pytest.raises(ValueError, match="align"):
        LoadGenerator(sites=["a", "b"], site_weights=[1.0])
    with pytest.raises(ValueError, match="burst_duration_s"):
        LoadGenerator(sites=["a"], burst_duration_s=7200.0,
                      burst_period_s=3600.0)


def test_expected_arrivals_matches_the_homogeneous_rate():
    load = LoadGenerator(sites=["a"], rate_per_s=0.02)
    assert load.expected_arrivals(10_000.0) == pytest.approx(200.0, rel=0.01)


def test_metrics_artifact_round_trips(tmp_path, scenario):
    _service, _load, report = _run(scenario)
    m = report.metrics
    path = m.write(tmp_path / "nested" / "serving_metrics.json",
                   include_decisions=True)
    artifact = json.loads(path.read_text())
    assert artifact["version"] == SERVING_METRICS_VERSION
    assert artifact["decision_digest"] == m.decision_digest()
    assert artifact["counters"]["placements"] == m.total_placed()
    assert artifact["counters"]["warm_resolves"] == m.n_warm_resolves
    assert artifact["latency_ms"]["p99"] >= artifact["latency_ms"]["p50"] >= 0
    assert artifact["throughput"]["placements_per_s"] > 0
    assert artifact["feed"]["samples"] == {"live": m.feed_samples["live"]}
    assert artifact["decisions"] == json.loads(m.canonical_decision_log())


def test_empty_metrics_are_well_defined():
    m = ServingMetrics()
    m.finish()
    assert m.latency_percentile_ms(99.0) == 0.0
    assert m.placements_per_s() == 0.0
    assert m.carbon_per_request_g() == 0.0
    artifact = m.to_artifact()
    assert artifact["counters"]["decisions"] == 0


# -- the latency reservoirs -----------------------------------------------------


def test_latency_reservoir_is_exact_below_capacity():
    from repro.serving.metrics import LatencyReservoir

    r = LatencyReservoir(capacity=16)
    stream = [float(k) for k in range(10)]
    for v in stream:
        r.add(v)
    assert not r.saturated
    assert len(r) == r.n_seen == 10
    assert r.values().tolist() == stream


def test_latency_reservoir_caps_memory_and_stays_deterministic():
    from repro.serving.metrics import LatencyReservoir

    stream = [float(k) % 37.0 for k in range(5000)]
    a, b = LatencyReservoir(capacity=64), LatencyReservoir(capacity=64)
    for v in stream:
        a.add(v)
        b.add(v)
    assert a.saturated and a.n_seen == 5000
    assert len(a) == 64  # bounded memory no matter the stream length
    # Same seed, same stream -> the identical uniform sample (and therefore
    # identical p50/p99 in any report built on it).
    assert a.values().tolist() == b.values().tolist()
    # A different seed subsamples differently (the sample is seed-pinned,
    # not accidentally order-stable).
    c = LatencyReservoir(capacity=64, seed=1)
    for v in stream:
        c.add(v)
    assert c.values().tolist() != a.values().tolist()
    assert set(c.values().tolist()) <= set(stream)


def test_latency_reservoir_rejects_degenerate_capacity():
    from repro.serving.metrics import LatencyReservoir

    with pytest.raises(ValueError, match="capacity"):
        LatencyReservoir(capacity=0)


class _StubProblem:
    n_applications = 0
    servers = ()


class _StubSolution:
    problem = _StubProblem()
    placements = {}
    n_placed = 0

    @staticmethod
    def total_carbon_g():
        return 0.0


def test_serving_metrics_percentiles_are_reservoir_backed():
    """Long decision streams must not grow memory: percentiles read from a
    seeded reservoir, identically across two metric sinks fed the same
    stream, and the artifact reports the subsampling provenance."""
    sinks = [ServingMetrics(latency_reservoir_size=32) for _ in range(2)]
    for m in sinks:
        for k in range(500):
            m.record_decision("batch" if k % 3 else "resolve",
                              time_s=float(k), hour=0,
                              solution=_StubSolution(),
                              latency_s=(k * 7) % 101 / 1000.0)
        m.finish()
    a, b = sinks
    assert len(a.decision_latencies_s()) == 32  # capped, not 500
    assert a.decision_latencies_s().tolist() == b.decision_latencies_s().tolist()
    for kind in (None, "batch", "resolve"):
        assert a.latency_percentile_ms(50.0, kind) == \
            b.latency_percentile_ms(50.0, kind)
        assert a.latency_percentile_ms(99.0, kind) == \
            b.latency_percentile_ms(99.0, kind)
    reservoir = a.to_artifact()["latency_ms"]["reservoir"]
    assert reservoir["capacity"] == 32
    assert reservoir["seen"] == 500
    assert reservoir["sampled"] == 32


# -- the CLI --------------------------------------------------------------------


def test_cli_serve_soak_writes_the_metrics_artifact(tmp_path, capsys):
    out = tmp_path / "serving_metrics.json"
    rc = carbon_edge_main([
        "serve", "--smoke", "--duration-s", "3600", "--seed", "3",
        "--metrics-out", str(out)])
    assert rc == 0
    artifact = json.loads(out.read_text())
    assert artifact["version"] == SERVING_METRICS_VERSION
    printed = capsys.readouterr().out
    assert "decision latency" in printed and "placements/s" in printed


def test_cli_serve_replay_parity_smoke(capsys):
    rc = carbon_edge_main(["serve", "--replay-parity", "--smoke",
                           "--max-sites", "8"])
    assert rc == 0
    assert "CarbonEdge: OK" in capsys.readouterr().out


def test_cli_serve_replay_parity_fails_loudly_on_mismatch(monkeypatch, capsys):
    """A decision divergence must exit non-zero, not just print."""
    from repro.serving import parity as parity_module

    real = parity_module.canonical_records
    flips = {"n": 0}

    def corrupted(result, policy):
        flips["n"] += 1
        payload = real(result, policy)
        # Corrupt only the service side (first of each compared pair).
        return payload.replace('"epoch":0', '"epoch":99') \
            if flips["n"] % 2 == 1 else payload

    monkeypatch.setattr(parity_module, "canonical_records", corrupted)
    rc = carbon_edge_main(["serve", "--replay-parity", "--smoke",
                           "--max-sites", "6"])
    assert rc == 1
    assert "MISMATCH" in capsys.readouterr().out


def test_cli_serve_rejects_bad_flags():
    with pytest.raises(SystemExit):
        carbon_edge_main(["serve", "--epoch-shards", "0"])
    with pytest.raises(SystemExit):
        carbon_edge_main(["serve", "--duration-s", "0"])
