"""Unit-conversion tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils import units


def test_joules_to_kwh_known_value():
    assert units.joules_to_kwh(3.6e6) == pytest.approx(1.0)


def test_kwh_to_joules_known_value():
    assert units.kwh_to_joules(2.0) == pytest.approx(7.2e6)


def test_joules_kwh_roundtrip_array():
    values = np.array([0.0, 1.0, 3.6e6, 1e9])
    back = units.kwh_to_joules(units.joules_to_kwh(values))
    assert np.allclose(back, values)


@given(st.floats(min_value=0.0, max_value=1e15, allow_nan=False))
def test_joules_kwh_roundtrip_property(joules):
    assert units.kwh_to_joules(units.joules_to_kwh(joules)) == pytest.approx(joules, rel=1e-12)


def test_watts_to_kw():
    assert units.watts_to_kw(1500.0) == pytest.approx(1.5)


def test_grams_tonnes_roundtrip():
    assert units.tonnes_to_grams(units.grams_to_tonnes(123456.0)) == pytest.approx(123456.0)


def test_ms_seconds_roundtrip():
    assert units.seconds_to_ms(units.ms_to_seconds(250.0)) == pytest.approx(250.0)


def test_km_m_roundtrip():
    assert units.m_to_km(units.km_to_m(12.5)) == pytest.approx(12.5)


def test_energy_to_emissions_zero_intensity():
    assert units.energy_to_emissions(1e6, 0.0) == 0.0


def test_energy_to_emissions_scaling():
    # 1 kWh at 500 g/kWh = 500 g.
    assert units.energy_to_emissions(3.6e6, 500.0) == pytest.approx(500.0)


def test_hours_per_year_constant():
    assert units.HOURS_PER_YEAR == 8760
