"""Incremental placement (Algorithm 1) tests."""

import pytest

from repro.core.incremental import IncrementalPlacer
from repro.core.policies import CarbonEdgePolicy, LatencyAwarePolicy
from tests.conftest import make_apps


@pytest.fixture
def placer(central_eu_fleet, central_eu_latency, central_eu_carbon):
    return IncrementalPlacer(fleet=central_eu_fleet, latency=central_eu_latency,
                             carbon=central_eu_carbon, policy=CarbonEdgePolicy(),
                             horizon_hours=24.0)


def test_place_batch_commits_allocations(placer, central_eu_fleet):
    apps = make_apps(central_eu_fleet.sites())
    solution = placer.place_batch(apps, hour=12)
    assert solution.all_placed
    allocated = {a for s in central_eu_fleet.servers() for a in s.allocations}
    assert allocated == {a.app_id for a in apps}
    assert placer.total_placed() == len(apps)
    assert placer.total_carbon_g() == pytest.approx(solution.total_carbon_g())


def test_capacity_carries_across_batches(placer, central_eu_fleet):
    # Each Sci app pins 4 cores; a 40-core server fits 10. Three batches of 5 Sci
    # apps all sourced at Bern must eventually spill beyond the greenest server.
    for batch_index in range(3):
        apps = make_apps(["Bern"], workload="Sci", n_per_site=5, slo_ms=40.0)
        apps = [type(a)(app_id=f"b{batch_index}-{a.app_id}", workload=a.workload,
                        source_site=a.source_site, latency_slo_ms=a.latency_slo_ms,
                        request_rate_rps=a.request_rate_rps, duration_hours=a.duration_hours)
                for a in apps]
        placer.place_batch(apps, hour=12)
    per_server = {s.server_id: len(s.allocations) for s in central_eu_fleet.servers()}
    assert sum(per_server.values()) == 15
    assert max(per_server.values()) <= 10


def test_no_commit_leaves_fleet_untouched(placer, central_eu_fleet):
    apps = make_apps(central_eu_fleet.sites())
    placer.place_batch(apps, hour=0, commit=False)
    assert all(not s.allocations for s in central_eu_fleet.servers())
    assert placer.history[-1].committed is False
    assert placer.total_placed() == 0


def test_empty_batch_rejected(placer):
    with pytest.raises(ValueError):
        placer.place_batch([], hour=0)


def test_release_all(placer, central_eu_fleet):
    placer.place_batch(make_apps(central_eu_fleet.sites()), hour=0)
    placer.release_all()
    assert all(not s.allocations for s in central_eu_fleet.servers())


def test_placer_with_powered_off_fleet_turns_servers_on(central_eu_latency, central_eu_carbon):
    from repro.cluster.fleet import build_regional_fleet
    from repro.datasets.regions import CENTRAL_EU
    fleet = build_regional_fleet(CENTRAL_EU, powered_on=False)
    placer = IncrementalPlacer(fleet=fleet, latency=central_eu_latency,
                               carbon=central_eu_carbon, policy=CarbonEdgePolicy(),
                               horizon_hours=24.0)
    solution = placer.place_batch(make_apps(fleet.sites(), slo_ms=40.0), hour=0)
    assert solution.all_placed
    used_sites = set(solution.apps_per_site())
    for dc in fleet:
        if dc.site in used_sites:
            assert any(s.is_on for s in dc.servers)
    # Power management consolidates: fewer servers on than sites with demand.
    assert sum(1 for s in fleet.servers() if s.is_on) <= len(fleet.sites())


def test_history_records_hours(placer, central_eu_fleet):
    placer.place_batch(make_apps(central_eu_fleet.sites()), hour=5)
    placer.place_batch(make_apps(central_eu_fleet.sites(), n_per_site=1, workload="Sci"), hour=6)
    assert [r.hour for r in placer.history] == [5, 6]


def test_latency_aware_policy_through_placer(central_eu_fleet, central_eu_latency,
                                             central_eu_carbon):
    placer = IncrementalPlacer(fleet=central_eu_fleet, latency=central_eu_latency,
                               carbon=central_eu_carbon, policy=LatencyAwarePolicy())
    solution = placer.place_batch(make_apps(central_eu_fleet.sites()), hour=0)
    assert solution.mean_latency_ms() == pytest.approx(0.0)
