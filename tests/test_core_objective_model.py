"""Objective-builder and MILP model-builder tests."""

import numpy as np
import pytest

from repro.core.filters import filter_feasible_servers
from repro.core.model_builder import (
    assignment_groups,
    build_placement_model,
    solution_from_values,
    x_name,
    y_name,
)
from repro.core.objective import (
    ObjectiveKind,
    carbon_objective_coefficients,
    energy_objective_coefficients,
    latency_objective_coefficients,
    multi_objective_coefficients,
    objective_coefficients,
)
from repro.solver.branch_and_bound import BranchAndBoundSolver
from repro.solver.lp_relaxation import solve_lp_relaxation


def test_carbon_coefficients_match_problem(central_eu_problem):
    assign, activation = carbon_objective_coefficients(central_eu_problem)
    assert np.allclose(assign, central_eu_problem.operational_carbon_g())
    assert np.allclose(activation, central_eu_problem.activation_carbon_g())


def test_energy_and_latency_coefficients(central_eu_problem):
    assign, activation = energy_objective_coefficients(central_eu_problem)
    assert np.allclose(assign, central_eu_problem.energy_j)
    lat_assign, lat_activation = latency_objective_coefficients(central_eu_problem)
    assert np.allclose(lat_assign, central_eu_problem.latency_ms)
    assert np.all(lat_activation == 0.0)


def test_multi_objective_endpoints(central_eu_problem):
    carbon0, _ = multi_objective_coefficients(central_eu_problem, alpha=0.0)
    energy1, _ = multi_objective_coefficients(central_eu_problem, alpha=1.0)
    feasible = central_eu_problem.feasible_mask()
    # alpha=0 ranks pairs by carbon; alpha=1 by energy (after normalisation the
    # ordering over feasible entries must match the raw coefficients).
    raw_carbon = central_eu_problem.operational_carbon_g()[feasible]
    raw_energy = central_eu_problem.energy_j[feasible]
    assert np.allclose(np.argsort(carbon0[feasible]), np.argsort(raw_carbon))
    assert np.allclose(np.argsort(energy1[feasible]), np.argsort(raw_energy))


def test_multi_objective_normalised_range(central_eu_problem):
    assign, activation = multi_objective_coefficients(central_eu_problem, alpha=0.5)
    assert assign.min() >= -1e-9 and activation.min() >= -1e-9


def test_multi_objective_invalid_alpha(central_eu_problem):
    with pytest.raises(ValueError):
        multi_objective_coefficients(central_eu_problem, alpha=1.5)


def test_objective_dispatch(central_eu_problem):
    for kind in ObjectiveKind:
        assign, activation = objective_coefficients(central_eu_problem, kind, alpha=0.5)
        assert assign.shape == (central_eu_problem.n_applications, central_eu_problem.n_servers)
        assert activation.shape == (central_eu_problem.n_servers,)


def test_model_structure(central_eu_problem):
    model, report = build_placement_model(central_eu_problem)
    # One y per server plus one x per feasible pair.
    assert model.n_variables == central_eu_problem.n_servers + report.n_candidate_pairs
    assign_rows = [c for c in model.constraints if c.name.startswith("assign")]
    assert len(assign_rows) == central_eu_problem.n_applications
    assert all(c.equality for c in assign_rows)
    # Servers already on have their y lower bound pinned to 1 (Equation 4).
    for j in range(central_eu_problem.n_servers):
        assert model.variables[y_name(j)].lower == 1.0


def test_model_solution_decoding(central_eu_problem):
    model, report = build_placement_model(central_eu_problem)
    result = BranchAndBoundSolver(rounding_groups=assignment_groups(central_eu_problem, report)
                                  ).solve(model)
    assert result.has_solution
    placements, power_on = solution_from_values(central_eu_problem, report, result.values)
    assert len(placements) == central_eu_problem.n_applications
    assert power_on.shape == (central_eu_problem.n_servers,)
    # Every used server is powered on in the decoded solution.
    for j in placements.values():
        assert power_on[j] == 1.0


def test_model_lp_relaxation_is_integral_for_assignment_structure(central_eu_problem):
    model, _ = build_placement_model(central_eu_problem)
    relaxed = solve_lp_relaxation(model)
    assert relaxed.status.has_solution
    assert relaxed.is_integral(model.binary_names(), tol=1e-6)


def test_model_without_power_management(central_eu_problem):
    model, _ = build_placement_model(central_eu_problem, manage_power=False)
    # No activation terms on y variables: their objective coefficients are absent.
    for j in range(central_eu_problem.n_servers):
        assert y_name(j) not in model.objective
    assert model.objective_constant == 0.0


def test_assignment_groups_cover_feasible_apps(central_eu_problem):
    report = filter_feasible_servers(central_eu_problem)
    groups = assignment_groups(central_eu_problem, report)
    assert len(groups) == central_eu_problem.n_applications - len(report.unplaceable)
    for i, group in enumerate(groups):
        assert all(name.startswith("x[") for name in group)


def test_x_y_names_are_stable():
    assert x_name(3, 7) == "x[3,7]"
    assert y_name(2) == "y[2]"
