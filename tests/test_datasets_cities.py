"""City-catalogue tests."""

import numpy as np
import pytest

from repro.datasets.cities import CITY_LEVEL_ZONES, City, CityCatalog, default_city_catalog


def test_catalog_has_wondernetwork_scale_coverage():
    catalog = default_city_catalog()
    assert len(catalog.by_continent("US")) >= 60
    assert len(catalog.by_continent("EU")) >= 60


def test_all_region_cities_present():
    catalog = default_city_catalog()
    for name in ("Miami", "Tallahassee", "Kingman", "Flagstaff", "Bern", "Graz", "Milan",
                 "Cagliari", "Arezzo", "Lyon", "Munich"):
        assert name in catalog


def test_city_level_zone_assignment():
    catalog = default_city_catalog()
    assert catalog.get("Miami").zone_id == "US-FL-MIA"
    assert catalog.get("Tallahassee").zone_id == "US-FL-TAL"
    assert catalog.get("Bern").zone_id == "EU-CH-BRN"


def test_state_and_country_zone_assignment():
    catalog = default_city_catalog()
    assert catalog.get("Chicago").zone_id == "US-IL"
    assert catalog.get("Paris").zone_id == "EU-FR"


def test_unknown_city_raises():
    with pytest.raises(KeyError, match="Atlantis"):
        default_city_catalog().get("Atlantis")


def test_duplicate_city_names_rejected():
    c = City(name="X", country="US", continent="US", lat=0, lon=0, population_k=1, state="NY")
    with pytest.raises(ValueError, match="duplicate"):
        CityCatalog(cities=(c, c))


def test_coordinates_array_alignment():
    catalog = default_city_catalog()
    coords = catalog.coordinates_array(["Miami", "Bern"])
    assert coords.shape == (2, 2)
    assert coords[0, 0] == pytest.approx(25.76, abs=0.1)
    assert coords[1, 0] == pytest.approx(46.95, abs=0.1)


def test_coordinates_within_valid_ranges():
    catalog = default_city_catalog()
    coords = catalog.coordinates_array()
    assert np.all(coords[:, 0] >= -90) and np.all(coords[:, 0] <= 90)
    assert np.all(coords[:, 1] >= -180) and np.all(coords[:, 1] <= 180)


def test_populations_positive():
    catalog = default_city_catalog()
    assert np.all(catalog.populations() > 0)


def test_zone_ids_resolvable_against_zone_catalog():
    from repro.datasets.electricity_maps import default_zone_catalog
    zones = default_zone_catalog()
    for city in default_city_catalog():
        assert city.zone_id in zones, f"{city.name} maps to unknown zone {city.zone_id}"


def test_city_level_zone_cities_exist():
    catalog = default_city_catalog()
    for city_name in CITY_LEVEL_ZONES:
        assert city_name in catalog


def test_contains_and_names():
    catalog = default_city_catalog()
    assert "Miami" in catalog
    assert "Nowhere" not in catalog
    assert len(catalog.names()) == len(catalog)
