"""Simulation-calendar tests."""

import numpy as np
import pytest

from repro.utils.timeutils import (
    MONTH_NAMES,
    MONTH_START_HOURS,
    SimClock,
    day_of_year,
    hour_of_day,
    hours_in_month,
    month_of_hour,
    month_slice,
)


def test_month_start_hours_cover_the_year():
    assert MONTH_START_HOURS[0] == 0
    assert MONTH_START_HOURS[-1] == 8760
    assert len(MONTH_START_HOURS) == 13


def test_hour_of_day_wraps():
    assert hour_of_day(0) == 0
    assert hour_of_day(23) == 23
    assert hour_of_day(24) == 0
    assert hour_of_day(49) == 1


def test_day_of_year():
    assert day_of_year(0) == 0
    assert day_of_year(23) == 0
    assert day_of_year(24) == 1


def test_hour_of_day_vectorised():
    hours = np.arange(48)
    assert np.array_equal(hour_of_day(hours), np.concatenate([np.arange(24), np.arange(24)]))


def test_month_of_hour_boundaries():
    assert month_of_hour(0) == 1
    assert month_of_hour(31 * 24 - 1) == 1
    assert month_of_hour(31 * 24) == 2
    assert month_of_hour(8759) == 12


def test_hours_in_month_february():
    assert hours_in_month(2) == 28 * 24


def test_hours_in_month_rejects_invalid():
    with pytest.raises(ValueError):
        hours_in_month(0)
    with pytest.raises(ValueError):
        hours_in_month(13)


def test_month_slice_lengths_sum_to_year():
    total = sum(month_slice(m).stop - month_slice(m).start for m in range(1, 13))
    assert total == 8760


def test_month_names():
    assert len(MONTH_NAMES) == 12
    assert MONTH_NAMES[0] == "Jan" and MONTH_NAMES[-1] == "Dec"


def test_clock_advance():
    clock = SimClock()
    clock.advance(3600.0)
    assert clock.now_seconds == 3600.0
    assert clock.hour_of_year == 1


def test_clock_advance_negative_rejected():
    clock = SimClock()
    with pytest.raises(ValueError):
        clock.advance(-1.0)


def test_clock_advance_to_monotonic():
    clock = SimClock()
    clock.advance_to(100.0)
    with pytest.raises(ValueError):
        clock.advance_to(50.0)


def test_clock_start_offset_and_reset():
    clock = SimClock(start_hour_of_year=100)
    assert clock.hour_of_year == 100
    clock.advance(2 * 3600.0)
    assert clock.hour_of_year == 102
    clock.reset()
    assert clock.now_seconds == 0.0


def test_clock_hour_of_day():
    clock = SimClock(start_hour_of_year=25)
    assert clock.hour_of_day == 1
