"""Site-topology tests."""

import numpy as np
import pytest

from repro.network.topology import SiteTopology, build_site_topology


def test_topology_is_complete_graph(central_eu_latency):
    topology = build_site_topology(central_eu_latency)
    assert topology.n_sites == 5
    assert topology.graph.number_of_edges() == 10
    assert topology.is_connected()
    assert topology.average_degree() == pytest.approx(4.0)


def test_topology_latency_matches_matrix(central_eu_latency):
    topology = build_site_topology(central_eu_latency)
    assert topology.latency_ms("Bern", "Munich") == pytest.approx(
        central_eu_latency.one_way_ms("Bern", "Munich"))
    assert topology.latency_ms("Bern", "Bern") == 0.0


def test_topology_zone_attributes(central_eu_latency, city_catalog):
    zones = {name: city_catalog.get(name).zone_id for name in central_eu_latency.names}
    topology = build_site_topology(central_eu_latency, zone_by_site=zones)
    assert topology.graph.nodes["Bern"]["zone_id"] == "EU-CH-BRN"


def test_neighbors_within_budget(central_eu_latency):
    topology = build_site_topology(central_eu_latency)
    tight = topology.neighbors_within("Graz", 5.0)
    loose = topology.neighbors_within("Graz", 50.0)
    assert set(tight) <= set(loose)
    assert len(loose) == 4


def test_restricted_topology_can_disconnect(central_eu_latency):
    topology = build_site_topology(central_eu_latency)
    restricted = topology.restricted(0.5)
    assert restricted.graph.number_of_edges() == 0
    assert len(restricted.connected_components()) == 5
    assert not restricted.is_connected()


def test_missing_edge_and_site_raise(central_eu_latency):
    topology = build_site_topology(central_eu_latency).restricted(0.5)
    with pytest.raises(KeyError):
        topology.latency_ms("Bern", "Munich")
    with pytest.raises(KeyError):
        topology.neighbors_within("Atlantis", 10.0)


# --------------------------------------------------------------------------
# Property tests: the vectorised mask operations vs a naive edge-loop
# reference on random topologies
# --------------------------------------------------------------------------

def _random_topology(seed: int, n: int = 24) -> SiteTopology:
    rng = np.random.default_rng(seed)
    matrix = rng.uniform(1.0, 30.0, size=(n, n))
    matrix = np.triu(matrix, k=1)
    matrix = matrix + matrix.T
    adjacency = rng.random((n, n)) < 0.15
    adjacency = np.triu(adjacency, k=1)
    adjacency = adjacency | adjacency.T
    return SiteTopology(names=[f"site-{i:02d}" for i in range(n)],
                        matrix_ms=matrix, adjacency=adjacency)


def _naive_components(topology: SiteTopology) -> list[set[str]]:
    """Edge-loop reference: the pre-vectorisation per-pair implementation."""
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(topology.names)
    n = len(topology.names)
    for i in range(n):
        for j in range(i + 1, n):
            if topology.adjacency[i, j]:
                g.add_edge(topology.names[i], topology.names[j])
    # Same ordering contract as the vectorised walk: by lowest member index.
    index = {name: k for k, name in enumerate(topology.names)}
    return sorted((set(c) for c in nx.connected_components(g)),
                  key=lambda c: min(index[name] for name in c))


@pytest.mark.parametrize("seed", range(8))
def test_connected_components_match_naive_reference(seed):
    topology = _random_topology(seed)
    assert topology.connected_components() == _naive_components(topology)


@pytest.mark.parametrize("seed", range(8))
def test_restricted_matches_naive_edge_filter(seed):
    topology = _random_topology(seed)
    bound = float(np.median(topology.matrix_ms))
    restricted = topology.restricted(bound)
    n = len(topology.names)
    for i in range(n):
        for j in range(n):
            expected = bool(topology.adjacency[i, j]
                            and topology.matrix_ms[i, j] <= bound)
            assert bool(restricted.adjacency[i, j]) == expected
    # Components of the restriction also agree with the reference.
    assert restricted.connected_components() == _naive_components(restricted)


@pytest.mark.parametrize("seed", range(4))
def test_component_partition_properties(seed):
    topology = _random_topology(seed, n=32)
    components = topology.connected_components()
    flat = [name for c in components for name in c]
    assert sorted(flat) == sorted(topology.names)  # partition: no dup, no loss
    assert len(flat) == len(set(flat))
    assert topology.is_connected() == (len(components) == 1)
