"""Site-topology tests."""

import pytest

from repro.network.topology import build_site_topology


def test_topology_is_complete_graph(central_eu_latency):
    topology = build_site_topology(central_eu_latency)
    assert topology.n_sites == 5
    assert topology.graph.number_of_edges() == 10
    assert topology.is_connected()
    assert topology.average_degree() == pytest.approx(4.0)


def test_topology_latency_matches_matrix(central_eu_latency):
    topology = build_site_topology(central_eu_latency)
    assert topology.latency_ms("Bern", "Munich") == pytest.approx(
        central_eu_latency.one_way_ms("Bern", "Munich"))
    assert topology.latency_ms("Bern", "Bern") == 0.0


def test_topology_zone_attributes(central_eu_latency, city_catalog):
    zones = {name: city_catalog.get(name).zone_id for name in central_eu_latency.names}
    topology = build_site_topology(central_eu_latency, zone_by_site=zones)
    assert topology.graph.nodes["Bern"]["zone_id"] == "EU-CH-BRN"


def test_neighbors_within_budget(central_eu_latency):
    topology = build_site_topology(central_eu_latency)
    tight = topology.neighbors_within("Graz", 5.0)
    loose = topology.neighbors_within("Graz", 50.0)
    assert set(tight) <= set(loose)
    assert len(loose) == 4


def test_restricted_topology_can_disconnect(central_eu_latency):
    topology = build_site_topology(central_eu_latency)
    restricted = topology.restricted(0.5)
    assert restricted.graph.number_of_edges() == 0
    assert len(restricted.connected_components()) == 5
    assert not restricted.is_connected()


def test_missing_edge_and_site_raise(central_eu_latency):
    topology = build_site_topology(central_eu_latency).restricted(0.5)
    with pytest.raises(KeyError):
        topology.latency_ms("Bern", "Munich")
    with pytest.raises(KeyError):
        topology.neighbors_within("Atlantis", 10.0)
