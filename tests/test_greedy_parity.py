"""Parity: the unified dense greedy kernel vs. the seed's object-based engine.

The seed shipped two greedy engines (``repro.core.policies.greedy.greedy_place``
and the dense ``_greedy_fill`` in the heuristic backend); this PR consolidated
them into :func:`repro.solver.compile.greedy_fill`. ``tests/legacy_greedy.py``
keeps a frozen copy of the old engine as a regression oracle for one release;
these tests pin the equivalence:

* on instances whose cost gaps exceed the kernel's epsilon tie-break
  perturbation, placements are **identical**;
* on arbitrary instances, the objective value matches up to the documented
  tie-break tolerance (the perturbation never exceeds ``1e-5`` of the largest
  feasible assignment cost per application).
"""

import numpy as np
import pytest

from repro.cluster.resources import ResourceVector
from repro.core.filters import filter_feasible_servers
from repro.core.objective import ObjectiveKind, objective_coefficients
from repro.core.problem import PlacementProblem
from repro.core.validation import validate_solution
from repro.solver.compile import (
    DenseCosts,
    GreedyState,
    assignment_to_solution,
    compile_placement,
    greedy_fill,
)
from tests.legacy_greedy import legacy_greedy_place


class _StubServer:
    """Minimal stand-in exposing the attributes the solver layer reads."""

    def __init__(self, server_id: str):
        self.server_id = server_id
        self.site = "s0"
        self.zone_id = "Z"

    is_on = False


def _random_problem(seed: int, n_apps: int = 14, n_servers: int = 6,
                    integer_costs: bool = True) -> tuple[PlacementProblem, np.ndarray,
                                                         np.ndarray, np.ndarray]:
    """A seeded random instance plus (assign, activation, tie) cost matrices.

    With ``integer_costs`` the cost gaps are at least 1 while the epsilon
    perturbation stays below 1e-2, so the two engines cannot legitimately
    diverge.
    """
    from repro.workloads.application import Application

    rng = np.random.default_rng(seed)
    apps = [Application(app_id=f"a{i}", workload="ResNet50", source_site="s0",
                        latency_slo_ms=float(rng.integers(20, 200)),
                        request_rate_rps=float(rng.integers(1, 30)))
            for i in range(n_apps)]
    latency = rng.integers(0, 60, size=(n_apps, n_servers)).astype(float)
    energy = rng.integers(1, 50, size=(n_apps, n_servers)).astype(float) * 1e5
    demands = [[ResourceVector.of(cpu_cores=float(rng.integers(1, 3)),
                                  memory_mb=256.0)
                for _ in range(n_servers)] for _ in range(n_apps)]
    capacities = [ResourceVector.of(cpu_cores=float(rng.integers(3, 8)),
                                    memory_mb=8192.0) for _ in range(n_servers)]
    problem = PlacementProblem(
        applications=apps, servers=[_StubServer(f"srv{j}") for j in range(n_servers)],
        latency_ms=latency, energy_j=energy, demands=demands,
        intensity=rng.integers(20, 500, size=n_servers).astype(float),
        capacities=capacities,
        base_power_w=rng.integers(50, 200, size=n_servers).astype(float),
        current_power=(rng.random(n_servers) < 0.5).astype(float),
        horizon_hours=1.0)
    if integer_costs:
        assign = rng.integers(0, 1000, size=(n_apps, n_servers)).astype(float)
        tie = rng.integers(0, 100, size=(n_apps, n_servers)).astype(float)
    else:
        assign = rng.random((n_apps, n_servers)) * 1000.0
        tie = rng.random((n_apps, n_servers)) * 100.0
    activation = rng.integers(0, 200, size=n_servers).astype(float)
    return problem, assign, activation, tie


def _dense_greedy(problem, assign, activation, tie):
    report = compile_placement(problem).report
    dense = DenseCosts.from_matrices(problem, report, assign, activation,
                                     tie_breaker=tie)
    state = GreedyState(dense)
    greedy_fill(state, problem.energy_j)
    return assignment_to_solution(problem, state.assignment)


def _augmented_objective(problem, solution, assign, activation):
    total = sum(float(assign[problem.app_index(a), j])
                for a, j in solution.placements.items())
    return total + float(np.dot(solution.newly_activated(), activation))


@pytest.mark.parametrize("seed", range(6))
def test_dense_kernel_matches_legacy_engine_exactly_on_separated_costs(seed):
    problem, assign, activation, tie = _random_problem(seed, integer_costs=True)
    legacy = legacy_greedy_place(problem, assign, activation, tie_breaker=tie)
    dense = _dense_greedy(problem, assign, activation, tie)
    assert validate_solution(dense) == []
    assert dense.placements == legacy.placements
    assert dense.unplaced == legacy.unplaced
    assert np.array_equal(dense.power_on, legacy.power_on)


@pytest.mark.parametrize("seed", range(6, 10))
def test_dense_kernel_within_tie_break_tolerance_on_continuous_costs(seed):
    problem, assign, activation, tie = _random_problem(seed, integer_costs=False)
    legacy = legacy_greedy_place(problem, assign, activation, tie_breaker=tie)
    dense = _dense_greedy(problem, assign, activation, tie)
    assert validate_solution(dense) == []
    assert dense.n_placed == legacy.n_placed
    # Documented tie-break: the epsilon perturbation can only reorder servers
    # whose cost gap is below 1e-5 of the largest feasible assignment cost.
    tolerance = 1e-5 * float(np.abs(assign).max()) * problem.n_applications
    legacy_obj = _augmented_objective(problem, legacy, assign, activation)
    dense_obj = _augmented_objective(problem, dense, assign, activation)
    assert dense_obj <= legacy_obj + tolerance


@pytest.mark.parametrize("kind", [ObjectiveKind.CARBON, ObjectiveKind.ENERGY,
                                  ObjectiveKind.LATENCY, ObjectiveKind.INTENSITY])
def test_registry_greedy_matches_legacy_engine_on_real_problem(central_eu_problem, kind):
    """Every baseline objective: registry kernel vs. the seed engine."""
    from repro.solver import registry

    problem = central_eu_problem
    assign, activation = objective_coefficients(problem, kind)
    report = filter_feasible_servers(problem)
    # The seed's baselines used latency as the default tie-break; the
    # Latency-aware baseline tie-broke by operational carbon.
    tie = problem.operational_carbon_g() if kind is ObjectiveKind.LATENCY \
        else problem.latency_ms
    legacy = legacy_greedy_place(problem, assign, activation, report=report,
                                 tie_breaker=tie)
    unified = registry.solve(problem, backend="greedy", objective=kind)
    assert validate_solution(unified) == []
    assert unified.n_placed == legacy.n_placed
    legacy_obj = _augmented_objective(problem, legacy, assign, activation)
    unified_obj = _augmented_objective(problem, unified, assign, activation)
    scale = max(1.0, float(np.abs(assign).max()))
    assert abs(unified_obj - legacy_obj) <= 1e-5 * scale * problem.n_applications
