"""Edge data center and fleet tests."""

import pytest

from repro.cluster.datacenter import EdgeDataCenter
from repro.cluster.fleet import build_cdn_fleet, build_regional_fleet
from repro.cluster.hardware import ORIN_NANO
from repro.cluster.resources import ResourceVector
from repro.cluster.server import EdgeServer, PowerState
from repro.datasets.akamai import build_cdn_footprint
from repro.datasets.regions import CENTRAL_EU, FLORIDA
from repro.workloads.demand import capacity_weights_from_population


def test_datacenter_rejects_inconsistent_servers():
    dc = EdgeDataCenter(site="Miami", zone_id="US-FL-MIA", lat=25.76, lon=-80.19)
    with pytest.raises(ValueError):
        dc.add_server(EdgeServer(server_id="s", site="Tampa", zone_id="US-FL-MIA"))
    with pytest.raises(ValueError):
        dc.add_server(EdgeServer(server_id="s", site="Miami", zone_id="US-FL-TPA"))


def test_datacenter_duplicate_server_ids_rejected():
    dc = EdgeDataCenter(site="Miami", zone_id="US-FL-MIA", lat=25.76, lon=-80.19)
    dc.add_server(EdgeServer(server_id="s", site="Miami", zone_id="US-FL-MIA"))
    with pytest.raises(ValueError):
        dc.add_server(EdgeServer(server_id="s", site="Miami", zone_id="US-FL-MIA"))


def test_datacenter_capacity_and_power():
    dc = EdgeDataCenter(site="Miami", zone_id="US-FL-MIA", lat=25.76, lon=-80.19)
    s1 = EdgeServer(server_id="s1", site="Miami", zone_id="US-FL-MIA")
    s2 = EdgeServer(server_id="s2", site="Miami", zone_id="US-FL-MIA")
    dc.add_server(s1)
    dc.add_server(s2)
    assert dc.total_capacity()["cpu_cores"] == 80
    assert dc.base_power_w() == 0.0  # both off
    s1.power_on()
    assert dc.powered_on_servers() == [s1]
    assert dc.base_power_w() == pytest.approx(s1.base_power_w)
    assert dc.server("s2") is s2
    with pytest.raises(KeyError):
        dc.server("nope")


def test_regional_fleet_structure():
    fleet = build_regional_fleet(FLORIDA)
    assert len(fleet) == 5
    assert fleet.sites() == list(FLORIDA.city_names)
    assert len(fleet.servers()) == 5
    assert all(s.is_on for s in fleet.servers())
    assert fleet.zone_ids() == sorted(FLORIDA.zone_ids())


def test_regional_fleet_multiple_servers_and_powered_off():
    fleet = build_regional_fleet(CENTRAL_EU, servers_per_site=3, powered_on=False)
    assert len(fleet.servers()) == 15
    assert all(not s.is_on for s in fleet.servers())
    with pytest.raises(ValueError):
        build_regional_fleet(CENTRAL_EU, servers_per_site=0)


def test_fleet_lookup_and_reset():
    fleet = build_regional_fleet(FLORIDA)
    server = fleet.servers()[0]
    assert fleet.server(server.server_id) is server
    with pytest.raises(KeyError):
        fleet.server("missing")
    with pytest.raises(KeyError):
        fleet.datacenter("missing")
    server.allocate("a", ResourceVector.of(cpu_cores=1))
    fleet.reset_allocations(PowerState.OFF)
    assert not server.allocations and not server.is_on


def test_fleet_site_coordinates_shape():
    fleet = build_regional_fleet(FLORIDA)
    assert fleet.site_coordinates().shape == (5, 2)


def test_cdn_fleet_dedupes_cities():
    footprint = build_cdn_footprint(n_sites=50, seed=1)
    fleet = build_cdn_fleet(footprint)
    assert len(fleet) == len(footprint.one_per_city())


def test_cdn_fleet_accelerator_mix():
    footprint = build_cdn_footprint(n_sites=60, seed=1)
    fleet = build_cdn_fleet(footprint, servers_per_site=2,
                            accelerator_mix=("Orin Nano", "GTX 1080"), seed=3)
    devices = {s.device_name for s in fleet.servers()}
    assert devices <= {"Orin Nano", "GTX 1080"}
    assert len(devices) == 2


def test_cdn_fleet_single_accelerator():
    footprint = build_cdn_footprint(n_sites=30, seed=1)
    fleet = build_cdn_fleet(footprint, accelerator=ORIN_NANO)
    assert all(s.device_name == "Orin Nano" for s in fleet.servers())


def test_cdn_fleet_capacity_weights_scale_server_counts():
    footprint = build_cdn_footprint(n_sites=200, seed=1)
    cities = [s.city_name for s in footprint.one_per_city()]
    weights = capacity_weights_from_population(cities)
    fleet = build_cdn_fleet(footprint, servers_per_site=2, capacity_weights=weights)
    counts = {dc.site: len(dc) for dc in fleet}
    assert counts["New York"] > counts["Kingman"]
    assert min(counts.values()) >= 1
    assert max(counts.values()) <= 8


def test_cdn_fleet_invalid_servers_per_site():
    footprint = build_cdn_footprint(n_sites=10, seed=1)
    with pytest.raises(ValueError):
        build_cdn_fleet(footprint, servers_per_site=0)
