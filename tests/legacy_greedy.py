"""Frozen copies of the seed's object-based placement engine (regression oracle).

This module preserves, verbatim, two pieces of the pre-compilation pipeline so
the parity tests and the pipeline benchmark can compare the unified dense
kernel against exactly what the seed shipped:

* :func:`legacy_greedy_place` — the object-based greedy engine that used to
  live in ``repro.core.policies.greedy.greedy_place`` and backed the
  Latency-/Intensity-/Random baselines;
* :func:`legacy_build_problem` — the per-pair Python loop that used to be the
  body of ``PlacementProblem.build``.

It is test-only scaffolding, kept for one release while the dense kernel
soaks; the production tree has exactly one greedy engine
(``repro.solver.compile.greedy_fill``). Do not import this from ``src/``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.carbon.service import CarbonIntensityService
from repro.cluster.resources import ResourceVector
from repro.cluster.server import EdgeServer
from repro.core.filters import FeasibilityReport, filter_feasible_servers
from repro.core.problem import INFEASIBLE_LATENCY_MS, PlacementProblem
from repro.core.solution import PlacementSolution
from repro.network.latency import LatencyMatrix
from repro.workloads.application import Application


def legacy_greedy_place(
    problem: PlacementProblem,
    assign_cost: np.ndarray,
    activation_cost: np.ndarray,
    report: FeasibilityReport | None = None,
    tie_breaker: np.ndarray | None = None,
) -> PlacementSolution:
    """The seed's greedy engine: most-constrained first, lexicographic tie-break."""
    report = report or filter_feasible_servers(problem)
    tie = problem.latency_ms if tie_breaker is None else np.asarray(tie_breaker, dtype=float)

    remaining: list[ResourceVector] = [cap.copy() for cap in problem.capacities]
    power_on = problem.current_power.copy()
    placements: dict[str, int] = {}
    unplaced: list[str] = []

    order = sorted(
        range(problem.n_applications),
        key=lambda i: (int(report.mask[i].sum()), -float(problem.energy_j[i].max(initial=0.0))),
    )

    for i in order:
        app = problem.applications[i]
        candidates = report.candidates_for(i)
        best_j, best_key = -1, None
        for j in candidates:
            j = int(j)
            demand = problem.demands[i][j]
            if not demand.fits_within(remaining[j]):
                continue
            marginal = float(assign_cost[i, j])
            if power_on[j] < 0.5:
                marginal += float(activation_cost[j])
            key = (marginal, float(tie[i, j]))
            if best_key is None or key < best_key:
                best_key, best_j = key, j
        if best_j < 0:
            unplaced.append(app.app_id)
            continue
        placements[app.app_id] = best_j
        remaining[best_j] = remaining[best_j] - problem.demands[i][best_j]
        power_on[best_j] = 1.0

    return PlacementSolution(problem=problem, placements=placements, power_on=power_on,
                             unplaced=unplaced)


def legacy_build_problem(
    applications: Sequence[Application],
    servers: Sequence[EdgeServer],
    latency: LatencyMatrix,
    carbon: CarbonIntensityService,
    hour: int = 0,
    horizon_hours: float = 1.0,
    use_forecast: bool = True,
) -> PlacementProblem:
    """The seed's ``PlacementProblem.build``: one Python loop per candidate pair."""
    applications = list(applications)
    servers = list(servers)
    a, s = len(applications), len(servers)
    if a == 0:
        raise ValueError("cannot build a placement problem with no applications")
    if s == 0:
        raise ValueError("cannot build a placement problem with no servers")

    latency_ms = np.zeros((a, s))
    energy_j = np.zeros((a, s))
    supported = np.zeros((a, s), dtype=bool)
    demands: list[list[ResourceVector]] = []
    for i, app in enumerate(applications):
        row: list[ResourceVector] = []
        for j, server in enumerate(servers):
            latency_ms[i, j] = latency.one_way_ms(app.source_site, server.site)
            if app.supports_server(server):
                supported[i, j] = True
                scaled = Application(
                    app_id=app.app_id, workload=app.workload,
                    source_site=app.source_site, latency_slo_ms=app.latency_slo_ms,
                    request_rate_rps=app.request_rate_rps, duration_hours=horizon_hours)
                energy_j[i, j] = scaled.energy_on(server)
                row.append(app.resource_demand_on(server))
            else:
                latency_ms[i, j] = INFEASIBLE_LATENCY_MS
                energy_j[i, j] = 0.0
                row.append(ResourceVector())
        demands.append(row)

    if use_forecast:
        intensity = np.array([
            carbon.forecast_mean(srv.zone_id, hour, int(np.ceil(horizon_hours)))
            for srv in servers])
    else:
        intensity = np.array([carbon.current_intensity(srv.zone_id, hour)
                              for srv in servers])

    return PlacementProblem(
        applications=applications,
        servers=servers,
        latency_ms=latency_ms,
        energy_j=energy_j,
        demands=demands,
        intensity=intensity,
        capacities=[srv.available_capacity for srv in servers],
        base_power_w=np.array([srv.base_power_w for srv in servers]),
        current_power=np.array([1.0 if srv.is_on else 0.0 for srv in servers]),
        horizon_hours=horizon_hours,
        supported=supported,
    )
