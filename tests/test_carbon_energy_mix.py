"""Generation-mix model tests."""

import numpy as np
import pytest

from repro.carbon.energy_mix import (
    demand_profile,
    hourly_mix_profile,
    hydro_capacity_factor,
    solar_capacity_factor,
    wind_capacity_factor,
)
from repro.datasets.electricity_maps import default_zone_catalog
from repro.utils.rng import substream


def test_solar_zero_at_night_positive_at_noon():
    hours = np.arange(24)
    cf = solar_capacity_factor(hours, seasonality=0.5)
    assert cf[0] == 0.0 and cf[3] == 0.0
    assert cf[13] == cf.max() > 0.5


def test_solar_summer_stronger_than_winter():
    winter_noon = solar_capacity_factor(np.array([12]), seasonality=0.8)[0]
    summer_noon = solar_capacity_factor(np.array([172 * 24 + 12]), seasonality=0.8)[0]
    assert summer_noon > winter_noon


def test_solar_no_seasonality_flat_across_year():
    winter = solar_capacity_factor(np.array([12]), seasonality=0.0)[0]
    summer = solar_capacity_factor(np.array([172 * 24 + 12]), seasonality=0.0)[0]
    assert winter == pytest.approx(summer, rel=1e-6)


def test_wind_bounds_and_determinism():
    rng1 = substream(0, "w")
    rng2 = substream(0, "w")
    a = wind_capacity_factor(500, 0.25, rng1)
    b = wind_capacity_factor(500, 0.25, rng2)
    assert np.array_equal(a, b)
    assert a.min() >= 0.1 and a.max() <= 1.0


def test_wind_rejects_non_positive_length():
    with pytest.raises(ValueError):
        wind_capacity_factor(0, 0.25, substream(0, "w"))


def test_hydro_seasonal_band():
    cf = hydro_capacity_factor(np.arange(8760))
    assert cf.min() >= 0.69 and cf.max() <= 1.01


def test_demand_profile_mean_near_one():
    demand = demand_profile(np.arange(8760))
    assert demand.mean() == pytest.approx(1.0, abs=0.05)
    assert demand.min() > 0.5


def test_hourly_mix_shares_sum_to_one():
    spec = default_zone_catalog().get("US-CA")
    mix = hourly_mix_profile(spec, n_hours=336, seed=1)
    mix.validate()
    total = sum(mix.shares.values())
    assert np.allclose(total, 1.0, atol=1e-3)


def test_hourly_mix_annual_shares_near_spec():
    spec = default_zone_catalog().get("EU-PL")
    mix = hourly_mix_profile(spec, n_hours=8760, seed=1)
    mean_shares = mix.mean_shares()
    # Coal-heavy Poland should remain coal-dominated in the hourly expansion.
    assert mean_shares.get("coal", 0.0) > 0.3


def test_hourly_mix_solar_zero_at_night():
    spec = default_zone_catalog().get("US-CA")
    mix = hourly_mix_profile(spec, n_hours=48, seed=1)
    assert mix.shares["solar"][2] == pytest.approx(0.0, abs=1e-9)
    assert mix.shares["solar"][13] > 0.0


def test_hourly_mix_intensity_positive():
    spec = default_zone_catalog().get("EU-FR")
    mix = hourly_mix_profile(spec, n_hours=168, seed=1)
    intensity = mix.intensity()
    assert intensity.shape == (168,)
    assert np.all(intensity > 0)


def test_hourly_mix_rejects_bad_length():
    spec = default_zone_catalog().get("EU-FR")
    with pytest.raises(ValueError):
        hourly_mix_profile(spec, n_hours=0)


def test_zones_without_solar_have_no_solar_share():
    spec = default_zone_catalog().get("EU-NO")  # hydro/wind only
    mix = hourly_mix_profile(spec, n_hours=48, seed=1)
    assert "solar" not in mix.shares or np.allclose(mix.shares["solar"], 0.0)
