"""Emulated-testbed tests (the Figure 8-10 machinery)."""

import numpy as np
import pytest

from repro.cluster.server import EdgeServer
from repro.core.policies import CarbonEdgePolicy, LatencyAwarePolicy
from repro.datasets.regions import CENTRAL_EU, FLORIDA
from repro.testbed.emulation import build_testbed, run_testbed_experiment
from repro.testbed.measurement import EmulatedEnergyMeter


@pytest.fixture(scope="module")
def florida_testbed():
    return build_testbed(FLORIDA, seed=3, n_hours=72)


def test_build_testbed_structure(florida_testbed):
    assert florida_testbed.sites() == list(FLORIDA.city_names)
    assert len(florida_testbed.fleet.servers()) == 5
    assert set(florida_testbed.carbon.zones()) == set(FLORIDA.zone_ids())


def test_energy_meter_accounting():
    server = EdgeServer(server_id="s", site="Miami", zone_id="US-FL-MIA")
    server.power_on()
    meter = EmulatedEnergyMeter(server=server)
    meter.record_idle_interval(10.0)
    meter.record_request("a", 5.0)
    meter.record_request("a", 5.0)
    meter.record_request("b", 1.0)
    assert meter.base_energy_j == pytest.approx(server.base_power_w * 10.0)
    assert meter.dynamic_energy_j == pytest.approx(11.0)
    assert meter.app_energy_j("a") == pytest.approx(10.0)
    assert meter.request_count == 3
    meter.reset()
    assert meter.total_energy_j == 0.0
    with pytest.raises(ValueError):
        meter.record_request("a", -1.0)
    with pytest.raises(ValueError):
        meter.record_idle_interval(-1.0)


def test_energy_meter_off_server_no_base_energy():
    server = EdgeServer(server_id="s", site="Miami", zone_id="US-FL-MIA")
    meter = EmulatedEnergyMeter(server=server)
    meter.record_idle_interval(100.0)
    assert meter.base_energy_j == 0.0


def test_latency_aware_run_keeps_apps_local(florida_testbed):
    result = run_testbed_experiment(florida_testbed, LatencyAwarePolicy(), hours=12)
    for app_id, site in result.hosting_site.items():
        assert site in app_id.replace("_", " ")
    # Local hosting: response time is dominated by processing latency (~52 ms for Sci).
    assert 40.0 <= result.mean_response_ms() <= 70.0


def test_carbon_edge_run_consolidates_and_saves(florida_testbed):
    baseline = run_testbed_experiment(florida_testbed, LatencyAwarePolicy(), hours=12)
    carbon_edge = run_testbed_experiment(florida_testbed, CarbonEdgePolicy(), hours=12)
    assert carbon_edge.total_emissions_g < baseline.total_emissions_g
    assert len(set(carbon_edge.hosting_site.values())) < 5
    assert carbon_edge.mean_response_ms() >= baseline.mean_response_ms()


def test_emission_series_shape_and_positivity(florida_testbed):
    result = run_testbed_experiment(florida_testbed, CarbonEdgePolicy(), hours=12)
    assert set(result.hourly_emissions_g) == {f"Sci-{s.replace(' ', '_')}"
                                              for s in florida_testbed.sites()}
    for series in result.hourly_emissions_g.values():
        assert series.shape == (12,)
        assert np.all(series >= 0)
    assert result.total_energy_j > 0
    assert result.emissions_by_app().keys() == result.hourly_emissions_g.keys()


def test_gpu_workload_emits_less_than_cpu(florida_testbed):
    # The paper notes the GPU-based app emits ~55% less carbon than the CPU app
    # because of its lower per-request energy.
    cpu = run_testbed_experiment(florida_testbed, LatencyAwarePolicy(), workload="Sci", hours=6)
    gpu = run_testbed_experiment(florida_testbed, LatencyAwarePolicy(), workload="ResNet50",
                                 hours=6)
    assert gpu.total_emissions_g < cpu.total_emissions_g


def test_central_eu_savings_exceed_florida():
    florida = build_testbed(FLORIDA, seed=3, n_hours=48)
    central_eu = build_testbed(CENTRAL_EU, seed=3, n_hours=48)
    savings = {}
    for name, testbed in (("FL", florida), ("EU", central_eu)):
        base = run_testbed_experiment(testbed, LatencyAwarePolicy(), hours=24)
        ce = run_testbed_experiment(testbed, CarbonEdgePolicy(), hours=24)
        savings[name] = 1 - ce.total_emissions_g / base.total_emissions_g
    assert savings["EU"] > savings["FL"] > 0.0


def test_invalid_hours_rejected(florida_testbed):
    with pytest.raises(ValueError):
        run_testbed_experiment(florida_testbed, LatencyAwarePolicy(), hours=0)
