"""Validation-helper tests."""

import pytest

from repro.utils.validation import (
    require,
    require_in_range,
    require_non_negative,
    require_positive,
    require_probability,
    require_type,
)


def test_require_passes_and_fails():
    require(True, "never raised")
    with pytest.raises(ValueError, match="broken"):
        require(False, "broken")


def test_require_positive():
    assert require_positive(2, "x") == 2.0
    with pytest.raises(ValueError):
        require_positive(0, "x")
    with pytest.raises(ValueError):
        require_positive(-1, "x")


def test_require_non_negative():
    assert require_non_negative(0, "x") == 0.0
    with pytest.raises(ValueError):
        require_non_negative(-0.1, "x")


def test_require_in_range_inclusive():
    assert require_in_range(5, 5, 10, "x") == 5.0
    assert require_in_range(10, 5, 10, "x") == 10.0
    with pytest.raises(ValueError):
        require_in_range(10.01, 5, 10, "x")


def test_require_probability():
    assert require_probability(0.5, "p") == 0.5
    with pytest.raises(ValueError):
        require_probability(1.5, "p")


def test_require_type():
    assert require_type("abc", str, "s") == "abc"
    with pytest.raises(TypeError):
        require_type("abc", int, "s")
