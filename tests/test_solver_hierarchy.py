"""Tests of the cluster-then-refine hierarchical solver tier.

Covers the determinism contract (plans are pure functions of their inputs;
dispatch modes never change the answer), the degenerate single-region case
collapsing to the flat solve, spill accounting under overload, and the
dense-cell budget guard that points planetary users at this tier.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.objective import ObjectiveKind
from repro.experiments.planetary_sweep import build_planetary_substrate
from repro.solver.compile import ScenarioCompilation
from repro.solver.config import SolverConfig
from repro.solver.hierarchy import (
    HierarchicalResult,
    RegionPlan,
    build_region_plan,
    region_server_columns,
    solve_hierarchical,
)
from repro.solver.registry import solve as registry_solve
from repro.workloads.generator import ApplicationGenerator

HOUR = 4700


def _substrate(n_sites: int, n_apps: int, seed: int = 0,
               latency_slo_ms: float = 40.0):
    fleet, latency, carbon = build_planetary_substrate(n_sites, seed=seed)
    compilation = ScenarioCompilation(fleet.servers(), latency, carbon)
    generator = ApplicationGenerator(
        sites=fleet.sites(), latency_slo_ms=latency_slo_ms,
        mean_arrivals_per_batch=float(n_apps), duration_hours=1.0, seed=seed)
    apps = list(generator.generate_batch(0, HOUR, n_arrivals=n_apps).applications)
    return fleet, compilation, apps


# --------------------------------------------------------------------------
# Region plans
# --------------------------------------------------------------------------

def test_region_plan_is_deterministic():
    fleet, _, _ = _substrate(40, 1)
    names, coords = fleet.sites(), fleet.site_coordinates()
    a = build_region_plan(names, coords, 5, seed=3)
    b = build_region_plan(names, coords, 5, seed=3)
    assert a.method == "kmeans"
    assert np.array_equal(a.site_region, b.site_region)
    assert np.array_equal(a.centroids, b.centroids)
    assert np.array_equal(a.neighbor_order, b.neighbor_order)
    # A different seed re-draws the k-means initialisation.
    c = build_region_plan(names, coords, 5, seed=4)
    assert c.method == "kmeans"


def test_region_plan_covers_every_site_exactly_once():
    fleet, _, _ = _substrate(40, 1)
    plan = build_region_plan(fleet.sites(), fleet.site_coordinates(), 6, seed=0)
    assert plan.site_region.shape == (40,)
    assert plan.site_region.min() >= 0 and plan.site_region.max() < plan.n_regions
    assert int(plan.region_sizes().sum()) == 40
    cols = region_server_columns(plan, fleet.servers())
    seen = np.sort(np.concatenate([c for c in cols if len(c)]))
    assert np.array_equal(seen, np.arange(len(fleet.servers())))


def test_region_plan_grid_fallback_on_degenerate_coordinates():
    names = [f"s{i}" for i in range(6)]
    coords = np.zeros((6, 2))  # one distinct coordinate, 4 regions requested
    plan = build_region_plan(names, coords, 4, seed=0)
    assert plan.method == "grid"
    assert plan.site_region.shape == (6,)
    assert int(plan.region_sizes().sum()) == 6


def test_region_plan_clamps_regions_to_site_count():
    names = ["a", "b", "c"]
    coords = np.array([[0.0, 0.0], [10.0, 10.0], [20.0, 20.0]])
    plan = build_region_plan(names, coords, 8, seed=0)
    assert plan.n_regions == 3


def test_region_plan_rejects_bad_inputs():
    with pytest.raises(ValueError):
        build_region_plan(["a"], np.zeros((1, 2)), 0, seed=0)
    with pytest.raises(ValueError):
        build_region_plan(["a", "b"], np.zeros((3, 2)), 1, seed=0)


def test_neighbor_order_starts_at_self_and_permutes_regions():
    fleet, _, _ = _substrate(40, 1)
    plan = build_region_plan(fleet.sites(), fleet.site_coordinates(), 5, seed=0)
    for r in range(plan.n_regions):
        row = plan.neighbor_order[r]
        assert row[0] == r  # self is at distance zero
        assert sorted(row.tolist()) == list(range(plan.n_regions))


# --------------------------------------------------------------------------
# Hierarchical solve: determinism and degenerate cases
# --------------------------------------------------------------------------

def test_single_region_hierarchy_matches_flat_solve():
    """With one region the coarse pass is trivial and refinement IS the flat
    problem, so the hierarchy must reproduce the flat backend's answer."""
    fleet, compilation, apps = _substrate(24, 60)
    plan = build_region_plan(fleet.sites(), fleet.site_coordinates(), 1, seed=0)
    outcome = solve_hierarchical(
        compilation, apps, plan, hour=HOUR, objective=ObjectiveKind.CARBON,
        config=SolverConfig(hierarchy_regions=1), seed=0)

    problem = compilation.build_problem(apps, HOUR)
    flat = registry_solve(problem, backend="greedy",
                          objective=ObjectiveKind.CARBON)
    flat_assignment = np.full(len(apps), -1, dtype=int)
    for i, app in enumerate(apps):
        if app.app_id in flat.placements:
            flat_assignment[i] = flat.placements[app.app_id]
    assert np.array_equal(outcome.assignment, flat_assignment)
    assert outcome.n_spilled == 0


def test_hierarchy_is_identical_across_dispatch_modes():
    fleet, _, apps = _substrate(40, 120)
    plan = build_region_plan(fleet.sites(), fleet.site_coordinates(), 4, seed=0)
    outcomes = []
    for dispatch in ("serial", "pool"):
        compilation = ScenarioCompilation(
            fleet.servers(),
            *_fresh_latency_carbon(fleet))
        outcomes.append(solve_hierarchical(
            compilation, apps, plan, hour=HOUR,
            objective=ObjectiveKind.CARBON,
            config=SolverConfig(hierarchy_regions=4, dispatch=dispatch),
            seed=0))
    a, b = outcomes
    assert np.array_equal(a.assignment, b.assignment)
    assert a.coarse_objective == b.coarse_objective
    assert a.refined_objective == b.refined_objective
    assert a.n_spilled == b.n_spilled


def _fresh_latency_carbon(fleet):
    from repro.carbon.service import CarbonIntensityService
    from repro.carbon.synthetic import SyntheticTraceGenerator
    from repro.datasets.electricity_maps import default_zone_catalog
    from repro.network.latency import build_latency_matrix_fast

    latency = build_latency_matrix_fast(
        fleet.sites(), fleet.site_coordinates(),
        countries=[dc.zone_id for dc in fleet])
    zone_catalog = default_zone_catalog()
    traces = SyntheticTraceGenerator(seed=0).generate_set(
        zone_catalog.get(z) for z in fleet.zone_ids())
    return latency, CarbonIntensityService(traces=traces)


def test_hierarchy_accounts_for_every_application():
    fleet, compilation, apps = _substrate(32, 100)
    plan = build_region_plan(fleet.sites(), fleet.site_coordinates(), 4, seed=0)
    outcome = solve_hierarchical(
        compilation, apps, plan, hour=HOUR, objective=ObjectiveKind.CARBON,
        config=SolverConfig(hierarchy_regions=4), seed=0)
    assert isinstance(outcome, HierarchicalResult)
    assert outcome.assignment.shape == (len(apps),)
    assert outcome.n_placed + outcome.n_unplaced == len(apps)
    n_servers = len(fleet.servers())
    placed = outcome.assignment[outcome.assignment >= 0]
    assert placed.size == outcome.n_placed
    assert np.all(placed < n_servers)
    # Region accounting covers the fleet and the routed applications.
    assert int(np.sum(outcome.region_server_counts)) == n_servers
    assert int(np.sum(outcome.region_app_counts)) \
        == len(apps) - outcome.n_coarse_unrouted


def test_overloaded_region_spills_to_neighbors():
    """Far more applications than one region can hold: refinement overflows
    and the spill pass re-routes into neighbouring regions instead of
    silently dropping demand."""
    fleet, compilation, apps = _substrate(12, 600)
    plan = build_region_plan(fleet.sites(), fleet.site_coordinates(), 3, seed=0)
    outcome = solve_hierarchical(
        compilation, apps, plan, hour=HOUR, objective=ObjectiveKind.CARBON,
        config=SolverConfig(hierarchy_regions=3), seed=0)
    assert outcome.n_placed + outcome.n_unplaced == len(apps)
    # The instance is saturated: spill must have fired (or everything the
    # regions could not take is explicitly unplaced — never lost).
    assert outcome.n_spilled > 0 or outcome.n_unplaced > 0
    # Spill respects capacity: re-running the same inputs is stable.
    again = solve_hierarchical(
        ScenarioCompilation(fleet.servers(), *_fresh_latency_carbon(fleet)),
        apps, plan, hour=HOUR, objective=ObjectiveKind.CARBON,
        config=SolverConfig(hierarchy_regions=3), seed=0)
    assert np.array_equal(outcome.assignment, again.assignment)
    assert outcome.n_spilled == again.n_spilled


@pytest.mark.parametrize("objective", list(ObjectiveKind))
def test_hierarchy_supports_every_objective(objective):
    fleet, compilation, apps = _substrate(20, 40)
    plan = build_region_plan(fleet.sites(), fleet.site_coordinates(), 3, seed=0)
    outcome = solve_hierarchical(
        compilation, apps, plan, hour=HOUR, objective=objective, alpha=0.5,
        config=SolverConfig(hierarchy_regions=3), seed=0)
    assert outcome.n_placed > 0
    assert np.isfinite(outcome.refined_objective)


def test_recorded_gap_is_refined_minus_coarse():
    fleet, compilation, apps = _substrate(20, 60)
    plan = build_region_plan(fleet.sites(), fleet.site_coordinates(), 4, seed=0)
    outcome = solve_hierarchical(
        compilation, apps, plan, hour=HOUR, objective=ObjectiveKind.CARBON,
        config=SolverConfig(hierarchy_regions=4), seed=0)
    assert outcome.objective_gap == pytest.approx(
        outcome.refined_objective - outcome.coarse_objective)


# --------------------------------------------------------------------------
# Dense-cell budget guard
# --------------------------------------------------------------------------

def test_dense_cell_guard_names_the_hierarchy_knob(monkeypatch):
    monkeypatch.setenv("CARBON_EDGE_MAX_DENSE_CELLS", "100")
    fleet, compilation, apps = _substrate(20, 40)
    with pytest.raises(ValueError) as excinfo:
        compilation.build_problem(apps, HOUR)
    message = str(excinfo.value)
    assert "hierarchy_regions" in message
    assert "--hierarchy-regions" in message
    assert "CARBON_EDGE_MAX_DENSE_CELLS" in message


def test_dense_cell_guard_spares_the_hierarchical_path(monkeypatch):
    """The same instance that the flat path refuses solves hierarchically:
    no region sub-problem crosses the budget."""
    monkeypatch.setenv("CARBON_EDGE_MAX_DENSE_CELLS", "400")
    fleet, compilation, apps = _substrate(20, 40)
    with pytest.raises(ValueError):
        compilation.build_problem(apps, HOUR)
    plan = build_region_plan(fleet.sites(), fleet.site_coordinates(), 8, seed=0)
    outcome = solve_hierarchical(
        compilation, apps, plan, hour=HOUR, objective=ObjectiveKind.CARBON,
        config=SolverConfig(hierarchy_regions=8), seed=0)
    assert outcome.n_placed > 0


def test_region_slice_is_memoised_per_column_set():
    fleet, compilation, apps = _substrate(16, 10)
    cols = np.arange(4, dtype=np.intp)
    sub1 = compilation.region_slice(cols)
    sub2 = compilation.region_slice(np.arange(4, dtype=np.intp))
    assert sub1 is sub2
    assert len(sub1.servers) == 4
    assert [s.server_id for s in sub1.servers] \
        == [fleet.servers()[j].server_id for j in range(4)]
