"""MILP model-builder tests."""

import numpy as np
import pytest

from repro.solver.milp import MILPModel, Variable, VariableKind


def _knapsack_model():
    """max 3a + 4b s.t. 2a + 3b <= 4  (as a minimisation of the negated objective)."""
    model = MILPModel(name="knapsack")
    model.add_binary("a")
    model.add_binary("b")
    model.add_constraint("cap", {"a": 2.0, "b": 3.0}, rhs=4.0)
    model.set_objective({"a": -3.0, "b": -4.0})
    return model


def test_variable_bounds_validation():
    with pytest.raises(ValueError):
        Variable(name="x", lower=2.0, upper=1.0)
    with pytest.raises(ValueError):
        Variable(name="x", kind=VariableKind.BINARY, lower=-1.0, upper=1.0)


def test_duplicate_variable_rejected():
    model = MILPModel()
    model.add_variable("x")
    with pytest.raises(ValueError):
        model.add_variable("x")


def test_constraint_unknown_variable_rejected():
    model = MILPModel()
    model.add_variable("x")
    with pytest.raises(KeyError):
        model.add_constraint("c", {"y": 1.0}, rhs=1.0)
    with pytest.raises(ValueError):
        model.add_constraint("c", {}, rhs=1.0)


def test_objective_unknown_variable_rejected():
    model = MILPModel()
    with pytest.raises(KeyError):
        model.set_objective({"x": 1.0})
    with pytest.raises(KeyError):
        model.add_objective_term("x", 1.0)


def test_add_objective_term_accumulates():
    model = MILPModel()
    model.add_variable("x")
    model.add_objective_term("x", 1.5)
    model.add_objective_term("x", 0.5)
    assert model.objective["x"] == 2.0


def test_counts_and_binary_names():
    model = _knapsack_model()
    assert model.n_variables == 2
    assert model.n_constraints == 1
    assert model.binary_names() == ["a", "b"]


def test_to_dense_shapes():
    model = _knapsack_model()
    model.add_constraint("eq", {"a": 1.0, "b": 1.0}, rhs=1.0, equality=True)
    dense = model.to_dense()
    assert dense["c"].shape == (2,)
    assert dense["A_ub"].shape == (1, 2)
    assert dense["A_eq"].shape == (1, 2)
    assert dense["bounds"].shape == (2, 2)
    assert dense["names"] == ["a", "b"]


def test_to_dense_without_constraints():
    model = MILPModel()
    model.add_variable("x")
    model.set_objective({"x": 1.0})
    dense = model.to_dense()
    assert dense["A_ub"] is None and dense["A_eq"] is None


def test_objective_value_and_constant():
    model = _knapsack_model()
    model.objective_constant = 10.0
    assert model.objective_value({"a": 1.0, "b": 0.0}) == pytest.approx(7.0)


def test_feasibility_checking():
    model = _knapsack_model()
    assert model.is_feasible({"a": 1.0, "b": 0.0})
    assert not model.is_feasible({"a": 1.0, "b": 1.0})  # 2 + 3 > 4
    violations = model.constraint_violations({"a": 1.0, "b": 1.0})
    assert violations == ["cap"]


def test_bound_violations_reported():
    model = MILPModel()
    model.add_binary("x")
    violations = model.constraint_violations({"x": 2.0})
    assert violations == ["bound:x"]
