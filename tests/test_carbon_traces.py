"""Carbon-intensity trace container tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.carbon.traces import CarbonIntensityTrace, TraceSet


def _trace(zone="Z", n=48, base=100.0):
    return CarbonIntensityTrace(zone_id=zone, values=base + np.arange(n, dtype=float))


def test_trace_validation_rejects_negative():
    with pytest.raises(ValueError, match="negative"):
        CarbonIntensityTrace(zone_id="Z", values=np.array([1.0, -2.0]))


def test_trace_validation_rejects_nan():
    with pytest.raises(ValueError, match="non-finite"):
        CarbonIntensityTrace(zone_id="Z", values=np.array([1.0, np.nan]))


def test_trace_validation_rejects_empty_and_2d():
    with pytest.raises(ValueError):
        CarbonIntensityTrace(zone_id="Z", values=np.array([]))
    with pytest.raises(ValueError):
        CarbonIntensityTrace(zone_id="Z", values=np.ones((2, 2)))


def test_at_wraps_around():
    trace = _trace(n=24)
    assert trace.at(0) == trace.at(24) == trace.at(48)


def test_window_wraps_and_length():
    trace = _trace(n=24)
    window = trace.window(20, 8)
    assert len(window) == 8
    assert window[0] == trace.at(20)
    assert window[4] == trace.at(0)


def test_window_rejects_non_positive():
    with pytest.raises(ValueError):
        _trace().window(0, 0)


def test_summary_statistics():
    trace = _trace(n=10, base=0.0)
    assert trace.min() == 0.0
    assert trace.max() == 9.0
    assert trace.mean() == pytest.approx(4.5)


def test_monthly_mean_requires_full_year():
    with pytest.raises(ValueError):
        _trace(n=100).monthly_mean(1)


def test_monthly_mean_full_year():
    trace = CarbonIntensityTrace(zone_id="Z", values=np.ones(8760) * 42.0)
    assert trace.monthly_mean(6) == pytest.approx(42.0)


def test_daily_profile_shape_and_mean():
    trace = _trace(n=72)
    profile = trace.daily_profile()
    assert profile.shape == (24,)
    assert profile.mean() == pytest.approx(trace.values[:72].mean())


def test_rolling_mean_length_and_smoothing():
    trace = _trace(n=48)
    rolled = trace.rolling_mean(6)
    assert len(rolled) == 48
    assert rolled.std() <= trace.values.std()


@given(st.integers(min_value=1, max_value=200), st.integers(min_value=0, max_value=500))
def test_window_always_within_bounds_property(n_hours, start):
    trace = CarbonIntensityTrace(zone_id="Z", values=np.abs(np.arange(24, dtype=float)) + 1)
    window = trace.window(start, n_hours)
    assert len(window) == n_hours
    assert window.min() >= trace.min() and window.max() <= trace.max()


def test_traceset_shared_axis_enforced():
    ts = TraceSet()
    ts.add(_trace("A", n=24))
    with pytest.raises(ValueError):
        ts.add(_trace("B", n=48))


def test_traceset_lookup_and_matrix():
    ts = TraceSet.from_mapping({"B": np.ones(12), "A": np.full(12, 2.0)})
    assert ts.zone_ids() == ["A", "B"]
    matrix = ts.matrix()
    assert matrix.shape == (2, 12)
    assert np.all(matrix[0] == 2.0)
    assert ts.at(3).tolist() == [2.0, 1.0]


def test_traceset_subset_and_means():
    ts = TraceSet.from_mapping({"A": np.ones(12), "B": np.full(12, 3.0)})
    sub = ts.subset(["B"])
    assert sub.zone_ids() == ["B"]
    assert ts.means()["B"] == pytest.approx(3.0)


def test_traceset_unknown_zone():
    with pytest.raises(KeyError):
        TraceSet().get("missing")


def test_traceset_n_hours():
    assert TraceSet().n_hours == 0
    ts = TraceSet.from_mapping({"A": np.ones(7)})
    assert ts.n_hours == 7
