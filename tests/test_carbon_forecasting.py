"""Forecaster tests."""

import numpy as np
import pytest

from repro.carbon.forecasting import (
    MovingAverageForecaster,
    OracleForecaster,
    PersistenceForecaster,
    SeasonalNaiveForecaster,
)
from repro.carbon.traces import CarbonIntensityTrace


@pytest.fixture
def sawtooth_trace():
    # 0..23 repeated: perfectly 24h-periodic.
    return CarbonIntensityTrace(zone_id="Z", values=np.tile(np.arange(24, dtype=float), 4))


def test_oracle_returns_future(sawtooth_trace):
    forecast = OracleForecaster().forecast(sawtooth_trace, now_hour=10, horizon_hours=5)
    assert forecast.tolist() == [10, 11, 12, 13, 14]


def test_oracle_mean(sawtooth_trace):
    assert OracleForecaster().forecast_mean(sawtooth_trace, 0, 24) == pytest.approx(11.5)


def test_persistence_is_flat(sawtooth_trace):
    forecast = PersistenceForecaster().forecast(sawtooth_trace, now_hour=7, horizon_hours=6)
    assert np.all(forecast == 7.0)


def test_moving_average_uses_trailing_window(sawtooth_trace):
    forecaster = MovingAverageForecaster(window_hours=24)
    forecast = forecaster.forecast(sawtooth_trace, now_hour=23, horizon_hours=3)
    assert np.all(forecast == pytest.approx(11.5))


def test_moving_average_rejects_bad_window():
    with pytest.raises(ValueError):
        MovingAverageForecaster(window_hours=0)


def test_seasonal_naive_replays_previous_day(sawtooth_trace):
    forecaster = SeasonalNaiveForecaster(season_hours=24)
    forecast = forecaster.forecast(sawtooth_trace, now_hour=24, horizon_hours=24)
    # The previous day is identical for a periodic trace → perfect forecast.
    actual = sawtooth_trace.window(24, 24)
    assert np.allclose(forecast, actual)


def test_seasonal_naive_rejects_bad_season():
    with pytest.raises(ValueError):
        SeasonalNaiveForecaster(season_hours=-1)


def test_forecast_mean_rejects_bad_horizon(sawtooth_trace):
    with pytest.raises(ValueError):
        OracleForecaster().forecast_mean(sawtooth_trace, 0, 0)


def test_forecasters_return_requested_horizon(sawtooth_trace):
    for forecaster in (OracleForecaster(), PersistenceForecaster(),
                       MovingAverageForecaster(), SeasonalNaiveForecaster()):
        assert len(forecaster.forecast(sawtooth_trace, 5, 17)) == 17
