"""Tests for the pluggable solver-backend registry (repro.solver.registry)."""

import numpy as np
import pytest

from repro.cluster.resources import ResourceVector
from repro.core.objective import ObjectiveKind
from repro.core.policies.carbon_edge import CarbonEdgePolicy
from repro.core.problem import PlacementProblem
from repro.core.validation import validate_solution
from repro.solver import registry
from repro.solver.backend import SolveRequest, raw_objective_value
from repro.solver.backends.heuristic import GreedyLocalSearchBackend


# -- registry mechanics ---------------------------------------------------------

def test_registry_module_importable_first():
    # Importing the registry before anything else must not trip the
    # solver<->core import cycle (external backend packages do exactly this).
    import subprocess
    import sys
    result = subprocess.run(
        [sys.executable, "-c",
         "import repro.solver.registry as r; print(len(r.available_backends()))"],
        capture_output=True, text=True)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip() == "6"


def test_builtin_backends_are_registered():
    names = registry.available_backends()
    assert names == ("bnb", "cpsat", "greedy", "heuristic", "lp-round", "milp")
    for name in names:
        backend = registry.get_backend(name)
        assert backend.name == name


def test_aliases_resolve_to_canonical_backends():
    assert registry.get_backend("exact").name == "bnb"
    assert registry.get_backend("local-search").name == "heuristic"
    assert registry.get_backend("lp-rounding").name == "lp-round"
    assert "auto" in registry.backend_names()
    assert "auto" not in registry.available_backends()


def test_greedy_backend_is_construction_only():
    greedy = registry.get_backend("greedy")
    assert isinstance(greedy, GreedyLocalSearchBackend)
    assert greedy.local_search is False
    assert registry.get_backend("heuristic").local_search is True


def test_unknown_backend_raises_with_available_names():
    with pytest.raises(ValueError,
                       match="bnb, cpsat, greedy, heuristic, lp-round, milp"):
        registry.get_backend("quantum")
    with pytest.raises(ValueError):
        registry.get_backend("auto")  # a selection rule, not a backend


def test_register_backend_rejects_duplicates():
    with pytest.raises(ValueError):
        registry.register_backend("heuristic")(GreedyLocalSearchBackend)
    with pytest.raises(ValueError):
        registry.register_backend("fresh-name", aliases=("exact",))(GreedyLocalSearchBackend)
    assert "fresh-name" not in registry.available_backends()


def test_custom_backend_registration_and_cleanup(central_eu_problem):
    @registry.register_backend("nullsolver", aliases=("void",))
    class NullBackend:
        name = "nullsolver"

        def solve(self, request):
            return None  # always fails -> registry falls back to heuristic

    try:
        solution = registry.solve(central_eu_problem, backend="void")
        validate_solution(solution)
        assert solution.backend_name == "heuristic"  # graceful fallback
        assert solution.all_placed
    finally:
        del registry._BACKENDS["nullsolver"]
        del registry._ALIASES["void"]


# -- cross-backend agreement -----------------------------------------------------

def test_all_backends_feasible_and_within_tolerance(central_eu_problem):
    solutions = {}
    for backend in registry.available_backends():
        solution = registry.solve(central_eu_problem, backend=backend)
        validate_solution(solution)
        assert solution.all_placed
        solutions[backend] = solution
    exact_carbon = solutions["bnb"].total_carbon_g()
    for backend, solution in solutions.items():
        # Heuristics stay within 5% of the exact objective on small instances
        # and never beat it by more than numerical noise.
        assert solution.total_carbon_g() >= exact_carbon - 1e-6, backend
        assert solution.total_carbon_g() <= exact_carbon * 1.05 + 1e-9, backend


def test_backends_agree_on_energy_objective(central_eu_problem):
    values = {}
    for backend in registry.available_backends():
        solution = registry.solve(central_eu_problem, backend=backend,
                                  objective=ObjectiveKind.ENERGY)
        validate_solution(solution)
        values[backend] = solution.total_energy_j()
    assert values["heuristic"] <= values["bnb"] * 1.05 + 1e-9
    assert values["lp-round"] <= values["bnb"] * 1.05 + 1e-9


def test_auto_picks_exact_for_small_and_heuristic_under_tight_budget(central_eu_problem):
    small = registry.solve(central_eu_problem, backend="auto")
    assert small.backend_name == "bnb"
    tight = registry.solve(central_eu_problem, backend="auto", time_budget_s=0.01)
    assert tight.backend_name == "heuristic"
    validate_solution(tight)
    assert tight.all_placed


# -- heuristic backend specifics --------------------------------------------------

def _tight_problem(n_apps: int = 6, n_servers: int = 3) -> PlacementProblem:
    """A capacity-tight instance: each server fits exactly two unit apps."""
    from repro.workloads.application import Application

    apps = [Application(app_id=f"a{i}", workload="ResNet50", source_site="s0",
                        latency_slo_ms=100.0, request_rate_rps=1.0)
            for i in range(n_apps)]
    intensity = np.linspace(100.0, 300.0, n_servers)
    latency = np.zeros((n_apps, n_servers))
    energy = np.full((n_apps, n_servers), 3.6e6)  # 1 kWh per assignment
    demands = [[ResourceVector.of(cpu_cores=1.0) for _ in range(n_servers)]
               for _ in range(n_apps)]
    capacities = [ResourceVector.of(cpu_cores=2.0) for _ in range(n_servers)]
    servers = [_FakeServer(f"srv{j}") for j in range(n_servers)]
    return PlacementProblem(
        applications=apps, servers=servers, latency_ms=latency, energy_j=energy,
        demands=demands, intensity=intensity, capacities=capacities,
        base_power_w=np.full(n_servers, 100.0), current_power=np.zeros(n_servers),
        horizon_hours=1.0)


class _FakeServer:
    """Minimal stand-in exposing the attributes the solver layer reads."""

    def __init__(self, server_id: str):
        self.server_id = server_id
        self.site = "s0"
        self.zone_id = "Z"

    is_on = False


def test_heuristic_respects_capacity_on_tight_instance():
    problem = _tight_problem()
    solution = registry.solve(problem, backend="heuristic")
    validate_solution(solution)
    assert solution.all_placed
    counts = {}
    for j in solution.placements.values():
        counts[j] = counts.get(j, 0) + 1
    assert all(c <= 2 for c in counts.values())  # capacity 2 per server
    # 6 unit apps over capacity-2 servers require all 3 servers on.
    assert float(np.sum(solution.power_on)) == 3.0


def test_heuristic_prefers_green_servers_under_activation():
    # 2 apps fit on one server: the heuristic should consolidate on the
    # lowest-intensity server rather than activating several.
    problem = _tight_problem(n_apps=2, n_servers=3)
    solution = registry.solve(problem, backend="heuristic")
    validate_solution(solution)
    assert set(solution.placements.values()) == {0}  # intensity 100 server
    assert float(np.sum(solution.power_on)) == 1.0


def test_local_search_no_worse_than_pure_greedy(central_eu_problem):
    request = SolveRequest(problem=central_eu_problem)
    pure = GreedyLocalSearchBackend(local_search=False).solve(request)
    improved = GreedyLocalSearchBackend().solve(request)
    assert improved.n_placed >= pure.n_placed
    assert raw_objective_value(request, improved) <= raw_objective_value(request, pure) + 1e-9


def test_zero_time_budget_still_returns_valid_flagged_solution(central_eu_problem):
    # A zero budget can no longer guarantee completeness: the construction
    # path itself is deadline-bound now. The contract is a *valid* solution,
    # flagged construction_truncated whenever the budget cut the fill short.
    for backend in registry.available_backends():
        solution = registry.solve(central_eu_problem, backend=backend, time_budget_s=0.0)
        validate_solution(solution)
        assert solution.all_placed or solution.construction_truncated, backend


def test_negative_time_budget_rejected(central_eu_problem):
    with pytest.raises(ValueError):
        registry.solve(central_eu_problem, time_budget_s=-1.0)


# -- warm starts -------------------------------------------------------------------

def test_warm_start_is_respected_and_improved(central_eu_problem):
    cold = registry.solve(central_eu_problem, backend="heuristic")
    warm = registry.solve(central_eu_problem, backend="heuristic",
                          warm_start=dict(cold.placements))
    validate_solution(warm)
    assert warm.n_placed == cold.n_placed
    assert warm.total_carbon_g() <= cold.total_carbon_g() + 1e-9


def test_warm_start_ignores_stale_entries(central_eu_problem):
    warm_start = {"no-such-app": 0, "another": 99999}
    for app in central_eu_problem.applications[:2]:
        warm_start[app.app_id] = 10**6  # out-of-range server index
    solution = registry.solve(central_eu_problem, backend="heuristic",
                              warm_start=warm_start)
    validate_solution(solution)
    assert solution.all_placed


# -- policy integration ------------------------------------------------------------

def test_policy_accepts_any_registered_backend_name(central_eu_problem):
    for solver in ("heuristic", "bnb", "branch-and-bound", "rounding"):
        solution = CarbonEdgePolicy(solver=solver).place(central_eu_problem)
        validate_solution(solution)
        assert solution.all_placed


def test_policy_time_budget_flows_to_auto_selection(central_eu_problem):
    solution = CarbonEdgePolicy(time_limit_s=0.05).place(central_eu_problem)
    assert solution.backend_name == "heuristic"
    validate_solution(solution)
