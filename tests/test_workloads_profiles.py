"""Workload-profile tests (Figure 7 calibration)."""

import pytest

from repro.workloads.profiles import (
    CPU_APP_NAME,
    DEVICE_NAMES,
    MODEL_NAMES,
    PROFILE_TABLE,
    WorkloadProfile,
    energy_spread_across_devices,
    energy_spread_across_models,
    get_profile,
    profiles_for_model,
)


def test_table_covers_all_model_device_pairs():
    for model in MODEL_NAMES:
        for device in DEVICE_NAMES:
            assert (model, device) in PROFILE_TABLE


def test_cpu_app_profile_exists():
    profile = get_profile(CPU_APP_NAME, "Xeon E5-2660v3")
    assert profile.gpu_memory_mb == 0.0
    assert profile.cpu_cores >= 1.0


def test_unknown_lookup_raises():
    with pytest.raises(KeyError):
        get_profile("BERT", "NVIDIA A2")
    with pytest.raises(KeyError):
        profiles_for_model("BERT")


def test_energy_spread_across_models_near_45x():
    for device in DEVICE_NAMES:
        assert 20.0 <= energy_spread_across_models(device) <= 70.0


def test_energy_spread_across_devices_near_2x():
    for model in MODEL_NAMES:
        assert 1.5 <= energy_spread_across_devices(model) <= 4.0


def test_orin_nano_most_efficient_gtx_fastest():
    for model in MODEL_NAMES:
        profiles = profiles_for_model(model)
        assert min(profiles.values(), key=lambda p: p.energy_per_request_j).device == "Orin Nano"
        assert min(profiles.values(), key=lambda p: p.latency_ms).device == "GTX 1080"


def test_memory_grows_with_model_size():
    for device in DEVICE_NAMES:
        assert (get_profile("EfficientNetB0", device).gpu_memory_mb
                < get_profile("ResNet50", device).gpu_memory_mb
                < get_profile("YOLOv4", device).gpu_memory_mb)


def test_inference_times_in_figure7_band():
    for (model, device), profile in PROFILE_TABLE.items():
        if device == "Xeon E5-2660v3":
            continue
        assert 1.0 <= profile.latency_ms <= 40.0, (model, device)


def test_max_request_rate_and_hourly_energy():
    profile = get_profile("ResNet50", "NVIDIA A2")
    assert profile.max_request_rate() == pytest.approx(1000.0 / profile.latency_ms)
    assert profile.energy_per_hour_j(10.0) == pytest.approx(
        profile.energy_per_request_j * 36_000.0)
    with pytest.raises(ValueError):
        profile.energy_per_hour_j(-1.0)


def test_resource_demand_vector():
    demand = get_profile("YOLOv4", "GTX 1080").resource_demand
    assert demand["gpu_memory_mb"] > 0 and demand["cpu_cores"] > 0


def test_profile_validation():
    with pytest.raises(ValueError):
        WorkloadProfile(workload="x", device="y", energy_per_request_j=0.0,
                        latency_ms=1.0, gpu_memory_mb=0.0)
    with pytest.raises(ValueError):
        WorkloadProfile(workload="x", device="y", energy_per_request_j=1.0,
                        latency_ms=0.0, gpu_memory_mb=0.0)
