"""Regional edge deployment on the emulated testbed (the paper's Section 6.2).

Runs the CPU sensor-processing application and the ResNet50 serving application
for 24 hours on the Florida and Central-EU testbeds, comparing the Latency-aware
baseline against CarbonEdge: total emissions, savings, and response-time
increases — the data behind Figures 8–10.

Run with:  python examples/regional_deployment.py
"""

from repro.core import CarbonEdgePolicy, LatencyAwarePolicy
from repro.datasets import CENTRAL_EU, FLORIDA
from repro.testbed import build_testbed, run_testbed_experiment

START_HOUR = 4700  # a mid-July day


def main() -> None:
    for region in (FLORIDA, CENTRAL_EU):
        testbed = build_testbed(region, seed=7)
        print(f"\n=== {region.name} regional deployment ===")
        for workload in ("Sci", "ResNet50"):
            baseline = run_testbed_experiment(testbed, LatencyAwarePolicy(), workload=workload,
                                              hours=24, start_hour=START_HOUR)
            carbon_edge = run_testbed_experiment(testbed, CarbonEdgePolicy(), workload=workload,
                                                 hours=24, start_hour=START_HOUR)
            saving = (1 - carbon_edge.total_emissions_g / baseline.total_emissions_g) * 100
            rt_increase = carbon_edge.mean_response_ms() - baseline.mean_response_ms()
            hosting = sorted(set(carbon_edge.hosting_site.values()))
            print(f"{workload:10s}  emissions {baseline.total_emissions_g:8.1f} g -> "
                  f"{carbon_edge.total_emissions_g:8.1f} g  ({saving:5.1f}% savings)  "
                  f"response +{rt_increase:4.1f} ms   CarbonEdge hosts at {hosting}")


if __name__ == "__main__":
    main()
