"""Mesoscale carbon-intensity analysis (the paper's Section 3).

Reproduces the measurement study motivating CarbonEdge: spatial intensity
spreads inside four mesoscale regions, their persistence over the year, and —
across the full CDN footprint — how much greener the best neighbour within
200/500/1000 km is for every edge site.

Run with:  python examples/mesoscale_analysis.py
"""

from repro.experiments import fig02_snapshots, fig03_yearly, fig05_radius


def main() -> None:
    print(fig02_snapshots.report(fig02_snapshots.run(seed=7)))
    print()
    print(fig03_yearly.report(fig03_yearly.run(seed=7)))
    print()
    print(fig05_radius.report(fig05_radius.run(seed=7)))


if __name__ == "__main__":
    main()
