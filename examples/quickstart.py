"""Quickstart: carbon-aware placement across a mesoscale region in ~40 lines.

Builds the Central-EU edge deployment (five cities, one GPU server each),
generates a batch of inference applications, and compares where CarbonEdge
places them against the Latency-aware baseline.

Run with:  python examples/quickstart.py
"""

from repro.carbon import CarbonIntensityService, SyntheticTraceGenerator
from repro.cluster import build_regional_fleet
from repro.core import CarbonEdgePolicy, LatencyAwarePolicy, PlacementProblem
from repro.datasets import CENTRAL_EU, default_city_catalog, default_zone_catalog
from repro.network import build_latency_matrix
from repro.workloads import make_application


def main() -> None:
    # 1. The edge fleet: one data center per Central-EU city (Bern, Munich, Lyon, Graz, Milan).
    fleet = build_regional_fleet(CENTRAL_EU)

    # 2. The substrate the placement needs: pairwise latency and carbon intensity.
    cities = CENTRAL_EU.cities(default_city_catalog())
    latency = build_latency_matrix(
        [c.name for c in cities],
        default_city_catalog().coordinates_array([c.name for c in cities]),
        countries=[c.country for c in cities],
    )
    traces = SyntheticTraceGenerator(seed=7).generate_set(
        default_zone_catalog().get(z) for z in CENTRAL_EU.zone_ids())
    carbon = CarbonIntensityService(traces=traces)

    # 3. A batch of arriving applications: one ResNet50 serving app per city,
    #    each with a 20 ms round-trip latency SLO.
    apps = [make_application(f"resnet-{c.name}", "ResNet50", c.name,
                             latency_slo_ms=20.0, request_rate_rps=10.0)
            for c in cities]

    # 4. Build the placement problem (a mid-July afternoon) and place it.
    problem = PlacementProblem.build(apps, fleet.servers(), latency, carbon,
                                     hour=4700, horizon_hours=24.0)
    baseline = LatencyAwarePolicy().timed_place(problem)
    carbon_edge = CarbonEdgePolicy().timed_place(problem)

    # 5. Compare.
    saving = (1 - carbon_edge.total_carbon_g() / baseline.total_carbon_g()) * 100
    print("Latency-aware placement :", baseline.apps_per_site())
    print("CarbonEdge placement    :", carbon_edge.apps_per_site())
    print(f"Carbon: {baseline.total_carbon_g():.0f} g -> {carbon_edge.total_carbon_g():.0f} g "
          f"({saving:.1f}% savings)")
    print(f"Mean one-way latency increase: {carbon_edge.latency_increase_ms():.1f} ms")


if __name__ == "__main__":
    main()
