"""CDN-scale carbon-aware edge hosting (the paper's Section 6.3).

Simulates a year of application arrivals across the US and European CDN
footprints under four placement policies and prints the year-long carbon
savings, latency increases, and how load shifts toward low-carbon zones.

Run with:  python examples/cdn_carbon_aware_hosting.py
"""

import numpy as np

from repro.simulator import CDNScenario, run_cdn_simulation


def main() -> None:
    for continent in ("US", "EU"):
        scenario = CDNScenario(
            continent=continent,
            latency_limit_ms=20.0,      # the paper's default round-trip SLO
            n_epochs=12,                # monthly placement rounds over the year
            apps_per_site_per_epoch=2.0,
            seed=7,
        )
        result = run_cdn_simulation(scenario)
        print(f"\n=== CDN deployment, {continent} "
              f"({scenario.n_epochs} epochs, 20 ms RTT limit) ===")
        for policy in result.policies():
            savings = result.carbon_savings_pct(policy)
            latency = result.mean_latency_increase_rtt_ms(policy)
            p50 = float(np.median(result.hosting_intensity_distribution(policy)))
            print(f"  {policy:16s} carbon savings {savings:6.1f}%   "
                  f"RTT increase {latency:5.1f} ms   median hosting intensity {p50:6.0f} g/kWh")


if __name__ == "__main__":
    main()
