"""Navigating the carbon-energy trade-off (the paper's Section 6.4).

Sweeps the multi-objective weight alpha of Equation 8 from 0 (pure carbon
minimisation) to 1 (pure energy minimisation) on a heterogeneous European edge
deployment and prints the resulting carbon/energy frontier, highlighting the
"sweet spot" where most of the carbon savings survive at a fraction of the
energy cost.

Run with:  python examples/carbon_energy_tradeoff.py
"""

from repro.experiments import fig16_tradeoff


def main() -> None:
    result = fig16_tradeoff.run(seed=7)
    for utilization, data in result["scenarios"].items():
        print(f"\n=== {utilization} utilisation ===")
        print(f"{'alpha':>6} | {'carbon (kg)':>12} | {'energy (MJ)':>12}")
        for alpha, carbon, energy in zip(result["alphas"], data["carbon_g"], data["energy_j"]):
            print(f"{alpha:6.1f} | {carbon / 1e3:12.2f} | {energy / 1e6:12.2f}")
        base = data["baseline_carbon_g"]
        print(f"Latency-aware baseline carbon: {base / 1e3:.2f} kg "
              f"(CarbonEdge at alpha=0 saves {data['savings_at_alpha0_pct']:.1f}%)")
        print(f"Energy cost of carbon-only placement vs energy-only: "
              f"{data['energy_ratio_alpha0_vs_alpha1']:.2f}x")


if __name__ == "__main__":
    main()
