"""Telemetry substrate (the Prometheus / RAPL / DCGM stand-in).

The paper's telemetry service collects static attributes and real-time metrics
(power via RAPL and the DCGM exporter, carbon via the carbon-intensity service,
end-to-end latency) — Section 5.1. This package provides the same capabilities
in-process:

* :mod:`repro.telemetry.metrics` — a small metric registry (counters, gauges,
  histograms) with labels.
* :mod:`repro.telemetry.power_monitor` — per-server energy accounting from the
  power models.
* :mod:`repro.telemetry.carbon_monitor` — emission accounting combining energy
  with zone carbon intensity (base power + application energy).
* :mod:`repro.telemetry.latency_monitor` — end-to-end response-time recording.
"""

from repro.telemetry.metrics import MetricRegistry, Counter, Gauge, Histogram
from repro.telemetry.power_monitor import PowerMonitor, EnergySample
from repro.telemetry.carbon_monitor import CarbonMonitor, EmissionRecord
from repro.telemetry.latency_monitor import LatencyMonitor

__all__ = [
    "MetricRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "PowerMonitor",
    "EnergySample",
    "CarbonMonitor",
    "EmissionRecord",
    "LatencyMonitor",
]
