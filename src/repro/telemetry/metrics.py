"""A small labelled-metric registry (Prometheus stand-in).

Supports the three metric kinds the monitors need: counters (monotonically
increasing totals), gauges (set-to-current-value), and histograms (response
time distributions with percentile queries). Metrics are identified by a name
plus a frozen label mapping, mirroring the Prometheus data model closely
enough that the monitors read naturally.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

Labels = tuple[tuple[str, str], ...]


def _freeze(labels: dict[str, str] | None) -> Labels:
    return tuple(sorted((labels or {}).items()))


@dataclass
class Counter:
    """A monotonically increasing counter."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Increase the counter; negative increments are rejected."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: cannot decrease by {amount}")
        self.value += float(amount)


@dataclass
class Gauge:
    """A gauge holding the latest observed value."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self.value = float(value)

    def add(self, delta: float) -> None:
        """Add ``delta`` (may be negative) to the gauge."""
        self.value += float(delta)


@dataclass
class Histogram:
    """A histogram of observations with percentile queries."""

    name: str
    observations: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.observations.append(float(value))

    @property
    def count(self) -> int:
        """Number of observations."""
        return len(self.observations)

    def mean(self) -> float:
        """Mean of the observations (0 when empty)."""
        return float(np.mean(self.observations)) if self.observations else 0.0

    def percentile(self, q: float) -> float:
        """The q-th percentile (0 when empty)."""
        return float(np.percentile(self.observations, q)) if self.observations else 0.0

    def sum(self) -> float:
        """Sum of all observations."""
        return float(np.sum(self.observations)) if self.observations else 0.0


@dataclass
class MetricRegistry:
    """Registry of named, labelled metrics."""

    counters: dict[tuple[str, Labels], Counter] = field(default_factory=dict)
    gauges: dict[tuple[str, Labels], Gauge] = field(default_factory=dict)
    histograms: dict[tuple[str, Labels], Histogram] = field(default_factory=dict)

    def counter(self, name: str, labels: dict[str, str] | None = None) -> Counter:
        """Get or create a counter."""
        key = (name, _freeze(labels))
        if key not in self.counters:
            self.counters[key] = Counter(name=name)
        return self.counters[key]

    def gauge(self, name: str, labels: dict[str, str] | None = None) -> Gauge:
        """Get or create a gauge."""
        key = (name, _freeze(labels))
        if key not in self.gauges:
            self.gauges[key] = Gauge(name=name)
        return self.gauges[key]

    def histogram(self, name: str, labels: dict[str, str] | None = None) -> Histogram:
        """Get or create a histogram."""
        key = (name, _freeze(labels))
        if key not in self.histograms:
            self.histograms[key] = Histogram(name=name)
        return self.histograms[key]

    def collect(self) -> dict[str, float]:
        """Flat snapshot of scalar metric values keyed by ``name{label=value,...}``."""
        out: dict[str, float] = {}
        for (name, labels), counter in self.counters.items():
            out[_render(name, labels)] = counter.value
        for (name, labels), gauge in self.gauges.items():
            out[_render(name, labels)] = gauge.value
        for (name, labels), hist in self.histograms.items():
            out[_render(name + "_count", labels)] = float(hist.count)
            out[_render(name + "_sum", labels)] = hist.sum()
        return out

    def counters_matching(self, name: str) -> dict[Labels, Counter]:
        """All counters with the given metric name, keyed by their labels."""
        return {labels: c for (n, labels), c in self.counters.items() if n == name}


def _render(name: str, labels: Labels) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"
