"""Carbon accounting: energy samples × zone carbon intensity.

Mirrors the paper's carbon monitoring component: "we account for the base
power (if the server is turned on) and applications' energy usage"
(Section 5.1). Emission records keep the base/dynamic split so the testbed
experiments can attribute emissions per application and per site.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.carbon.service import CarbonIntensityService
from repro.telemetry.metrics import MetricRegistry
from repro.telemetry.power_monitor import EnergySample
from repro.utils.units import joules_to_kwh


@dataclass(frozen=True)
class EmissionRecord:
    """Emissions attributed to one energy sample."""

    server_id: str
    zone_id: str
    hour: int
    intensity_g_per_kwh: float
    base_carbon_g: float
    dynamic_carbon_g: float

    @property
    def total_carbon_g(self) -> float:
        """Base plus dynamic emissions of the sample, grams."""
        return self.base_carbon_g + self.dynamic_carbon_g


@dataclass
class CarbonMonitor:
    """Converts energy samples into emissions using the carbon-intensity service."""

    carbon: CarbonIntensityService
    registry: MetricRegistry = field(default_factory=MetricRegistry)
    records: list[EmissionRecord] = field(default_factory=list)

    def record(self, sample: EnergySample, zone_id: str, hour: int) -> EmissionRecord:
        """Attribute one energy sample's emissions at the given zone and hour."""
        intensity = self.carbon.current_intensity(zone_id, hour)
        record = EmissionRecord(
            server_id=sample.server_id,
            zone_id=zone_id,
            hour=hour,
            intensity_g_per_kwh=intensity,
            base_carbon_g=joules_to_kwh(sample.base_energy_j) * intensity,
            dynamic_carbon_g=joules_to_kwh(sample.dynamic_energy_j) * intensity,
        )
        self.records.append(record)
        labels = {"server": sample.server_id, "zone": zone_id}
        self.registry.counter("server_carbon_grams_total", labels).inc(record.total_carbon_g)
        return record

    def total_carbon_g(self, server_id: str | None = None, zone_id: str | None = None) -> float:
        """Total recorded emissions filtered by server and/or zone, grams."""
        return sum(r.total_carbon_g for r in self.records
                   if (server_id is None or r.server_id == server_id)
                   and (zone_id is None or r.zone_id == zone_id))

    def dynamic_carbon_g(self, server_id: str | None = None) -> float:
        """Total dynamic (application) emissions, grams."""
        return sum(r.dynamic_carbon_g for r in self.records
                   if server_id is None or r.server_id == server_id)

    def base_carbon_g(self, server_id: str | None = None) -> float:
        """Total base-power emissions, grams."""
        return sum(r.base_carbon_g for r in self.records
                   if server_id is None or r.server_id == server_id)

    def carbon_by_server(self) -> dict[str, float]:
        """Total emissions keyed by server id."""
        out: dict[str, float] = {}
        for r in self.records:
            out[r.server_id] = out.get(r.server_id, 0.0) + r.total_carbon_g
        return out
