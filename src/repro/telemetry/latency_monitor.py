"""End-to-end response-time recording.

The paper records end-to-end latency between users and their deployed
applications in addition to inter-site latency (Section 5.1). The monitor
keeps a histogram per (application, site) pair so the testbed experiments can
report per-site response-time distributions (Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.telemetry.metrics import MetricRegistry


@dataclass
class LatencyMonitor:
    """Records per-request end-to-end response times."""

    registry: MetricRegistry = field(default_factory=MetricRegistry)

    def record_response(self, app_id: str, site: str, response_time_ms: float) -> None:
        """Record one request's end-to-end response time."""
        if response_time_ms < 0:
            raise ValueError("response_time_ms must be non-negative")
        self.registry.histogram("response_time_ms",
                                {"app": app_id, "site": site}).observe(response_time_ms)

    def mean_response_ms(self, app_id: str | None = None, site: str | None = None) -> float:
        """Mean response time over all matching (app, site) histograms."""
        values: list[float] = []
        for (name, labels), hist in self.registry.histograms.items():
            if name != "response_time_ms":
                continue
            label_map = dict(labels)
            if app_id is not None and label_map.get("app") != app_id:
                continue
            if site is not None and label_map.get("site") != site:
                continue
            values.extend(hist.observations)
        if not values:
            return 0.0
        return float(sum(values) / len(values))

    def percentile_response_ms(self, q: float, app_id: str | None = None,
                               site: str | None = None) -> float:
        """Percentile of response times over all matching histograms."""
        import numpy as np
        values: list[float] = []
        for (name, labels), hist in self.registry.histograms.items():
            if name != "response_time_ms":
                continue
            label_map = dict(labels)
            if app_id is not None and label_map.get("app") != app_id:
                continue
            if site is not None and label_map.get("site") != site:
                continue
            values.extend(hist.observations)
        return float(np.percentile(values, q)) if values else 0.0

    def request_count(self, app_id: str | None = None) -> int:
        """Number of recorded requests (optionally for one application)."""
        count = 0
        for (name, labels), hist in self.registry.histograms.items():
            if name != "response_time_ms":
                continue
            if app_id is not None and dict(labels).get("app") != app_id:
                continue
            count += hist.count
        return count
