"""Per-server power and energy accounting (the RAPL / DCGM-exporter stand-in).

:class:`PowerMonitor` integrates each server's power model over time: callers
report utilisation intervals, and the monitor accumulates base and dynamic
energy separately (the split the carbon monitor needs for Equation 6 style
accounting).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.server import EdgeServer
from repro.telemetry.metrics import MetricRegistry


@dataclass(frozen=True)
class EnergySample:
    """One integrated interval of a server's energy consumption."""

    server_id: str
    start_s: float
    duration_s: float
    utilization: float
    base_energy_j: float
    dynamic_energy_j: float

    @property
    def total_energy_j(self) -> float:
        """Base plus dynamic energy of the interval."""
        return self.base_energy_j + self.dynamic_energy_j


@dataclass
class PowerMonitor:
    """Integrates server power over reported utilisation intervals."""

    registry: MetricRegistry = field(default_factory=MetricRegistry)
    samples: list[EnergySample] = field(default_factory=list)

    def record_interval(self, server: EdgeServer, start_s: float, duration_s: float,
                        utilization: float) -> EnergySample:
        """Record one interval of operation for a powered-on server."""
        if duration_s < 0:
            raise ValueError("duration_s must be non-negative")
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(f"utilization must be in [0, 1], got {utilization}")
        model = server.power_model()
        base_energy = model.idle_power_w * duration_s if server.is_on else 0.0
        dynamic_energy = model.dynamic_energy_j(utilization, duration_s) if server.is_on else 0.0
        sample = EnergySample(
            server_id=server.server_id,
            start_s=start_s,
            duration_s=duration_s,
            utilization=utilization,
            base_energy_j=base_energy,
            dynamic_energy_j=dynamic_energy,
        )
        self.samples.append(sample)
        labels = {"server": server.server_id, "site": server.site}
        self.registry.counter("server_energy_joules_total", labels).inc(sample.total_energy_j)
        self.registry.gauge("server_power_watts", labels).set(
            model.power_w(utilization) if server.is_on else 0.0)
        return sample

    def total_energy_j(self, server_id: str | None = None) -> float:
        """Total integrated energy (optionally for one server), joules."""
        return sum(s.total_energy_j for s in self.samples
                   if server_id is None or s.server_id == server_id)

    def dynamic_energy_j(self, server_id: str | None = None) -> float:
        """Total dynamic (above-idle) energy, joules."""
        return sum(s.dynamic_energy_j for s in self.samples
                   if server_id is None or s.server_id == server_id)

    def base_energy_j(self, server_id: str | None = None) -> float:
        """Total base (idle) energy, joules."""
        return sum(s.base_energy_j for s in self.samples
                   if server_id is None or s.server_id == server_id)
