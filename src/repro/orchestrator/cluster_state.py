"""The orchestrator's view of fleet state.

Algorithm 1 line 8 reads "server telemetry: available capacities, base power,
mean carbon intensity, current power states". :class:`ClusterState` provides
that snapshot from the fleet and the carbon-intensity service, which is also
what the experiments print when reporting utilisation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.carbon.service import CarbonIntensityService
from repro.cluster.fleet import EdgeFleet
from repro.cluster.resources import ResourceVector


@dataclass(frozen=True)
class ServerSnapshot:
    """Telemetry snapshot of one server."""

    server_id: str
    site: str
    zone_id: str
    powered_on: bool
    available_capacity: ResourceVector
    base_power_w: float
    utilization: float
    carbon_intensity: float


@dataclass
class ClusterState:
    """Snapshot provider over an edge fleet."""

    fleet: EdgeFleet
    carbon: CarbonIntensityService

    def snapshot(self, hour: int, horizon_hours: int = 24) -> list[ServerSnapshot]:
        """Per-server telemetry snapshot at the given hour."""
        out: list[ServerSnapshot] = []
        for server in self.fleet.servers():
            out.append(ServerSnapshot(
                server_id=server.server_id,
                site=server.site,
                zone_id=server.zone_id,
                powered_on=server.is_on,
                available_capacity=server.available_capacity,
                base_power_w=server.base_power_w,
                utilization=server.utilization(),
                carbon_intensity=self.carbon.forecast_mean(server.zone_id, hour, horizon_hours),
            ))
        return out

    def site_utilization(self) -> dict[str, float]:
        """Mean server utilisation per site."""
        out: dict[str, float] = {}
        for dc in self.fleet:
            if dc.servers:
                out[dc.site] = float(np.mean([s.utilization() for s in dc.servers]))
            else:
                out[dc.site] = 0.0
        return out

    def powered_on_count(self) -> int:
        """Number of powered-on servers in the fleet."""
        return sum(1 for s in self.fleet.servers() if s.is_on)

    def total_base_power_w(self) -> float:
        """Aggregate base power of powered-on servers, watts."""
        return sum(s.base_power_w for s in self.fleet.servers() if s.is_on)
