"""Deployment objects and their lifecycle."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.orchestrator.recipes import Recipe


class DeploymentState(Enum):
    """Lifecycle states of a deployment."""

    PENDING = "pending"
    DEPLOYING = "deploying"
    RUNNING = "running"
    TERMINATED = "terminated"
    FAILED = "failed"


#: Legal state transitions.
_TRANSITIONS: dict[DeploymentState, set[DeploymentState]] = {
    DeploymentState.PENDING: {DeploymentState.DEPLOYING, DeploymentState.FAILED},
    DeploymentState.DEPLOYING: {DeploymentState.RUNNING, DeploymentState.FAILED},
    DeploymentState.RUNNING: {DeploymentState.TERMINATED, DeploymentState.FAILED},
    DeploymentState.TERMINATED: set(),
    DeploymentState.FAILED: {DeploymentState.DEPLOYING},
}


@dataclass
class Deployment:
    """One application deployed (or deploying) on one server."""

    deployment_id: str
    recipe: Recipe
    server_id: str
    site: str
    state: DeploymentState = DeploymentState.PENDING
    created_at_s: float = 0.0
    started_at_s: float | None = None
    terminated_at_s: float | None = None
    history: list[DeploymentState] = field(default_factory=list)

    def transition(self, new_state: DeploymentState, at_s: float | None = None) -> None:
        """Move the deployment to ``new_state``, enforcing legal transitions."""
        allowed = _TRANSITIONS[self.state]
        if new_state not in allowed:
            raise ValueError(
                f"deployment {self.deployment_id}: illegal transition "
                f"{self.state.value} -> {new_state.value}")
        self.history.append(self.state)
        self.state = new_state
        if new_state is DeploymentState.RUNNING and at_s is not None:
            self.started_at_s = at_s
        if new_state is DeploymentState.TERMINATED and at_s is not None:
            self.terminated_at_s = at_s

    @property
    def is_active(self) -> bool:
        """Whether the deployment is pending, deploying, or running."""
        return self.state in (DeploymentState.PENDING, DeploymentState.DEPLOYING,
                              DeploymentState.RUNNING)

    @property
    def app_id(self) -> str:
        """Application this deployment serves."""
        return self.recipe.app_id
