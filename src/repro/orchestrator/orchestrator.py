"""The edge orchestrator: placement → deployment → client binding.

This is the component labelled "Edge Orchestrator" in the paper's Figure 6:
after the placement service decides where each application goes (step 2), the
orchestrator deploys the application's recipe to the destination server
(step 3) and informs the client of the destination's address (step 4). The
orchestrator also executes power-state transitions decided by the placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.incremental import IncrementalPlacer
from repro.core.solution import PlacementSolution
from repro.orchestrator.deployment import Deployment, DeploymentState
from repro.orchestrator.recipes import recipe_for_application
from repro.workloads.application import Application

#: Time the orchestrator charges for initiating one deployment (the paper
#: reports ~1.01 s to initiate an application deployment, Section 6.5).
DEPLOYMENT_INITIATION_S: float = 1.01


@dataclass(frozen=True)
class ClientBinding:
    """The address a client should use to reach its deployed application."""

    app_id: str
    site: str
    server_id: str
    endpoint: str


@dataclass
class EdgeOrchestrator:
    """Turns placement solutions into deployments and client bindings."""

    placer: IncrementalPlacer
    deployments: dict[str, Deployment] = field(default_factory=dict)
    bindings: dict[str, ClientBinding] = field(default_factory=dict)
    clock_s: float = 0.0

    def deploy_batch(self, applications: list[Application], hour: int) -> list[Deployment]:
        """Place a batch and roll out a deployment for every placed application."""
        solution = self.placer.place_batch(applications, hour=hour, commit=True)
        return self.rollout(solution)

    def rollout(self, solution: PlacementSolution) -> list[Deployment]:
        """Create and start deployments for a committed placement solution."""
        created: list[Deployment] = []
        for app_id, j in solution.placements.items():
            server = solution.problem.servers[j]
            app = solution.problem.applications[solution.problem.app_index(app_id)]
            recipe = recipe_for_application(app, server)
            deployment = Deployment(
                deployment_id=f"dep-{app_id}",
                recipe=recipe,
                server_id=server.server_id,
                site=server.site,
                created_at_s=self.clock_s,
            )
            self.clock_s += DEPLOYMENT_INITIATION_S
            deployment.transition(DeploymentState.DEPLOYING)
            deployment.transition(DeploymentState.RUNNING, at_s=self.clock_s)
            self.deployments[deployment.deployment_id] = deployment
            self.bindings[app_id] = ClientBinding(
                app_id=app_id,
                site=server.site,
                server_id=server.server_id,
                endpoint=f"http://{server.server_id}.{server.site.replace(' ', '-').lower()}"
                         f".edge.local:8080",
            )
            created.append(deployment)
        return created

    def binding_for(self, app_id: str) -> ClientBinding:
        """The client binding for an application (raises if it was never deployed)."""
        try:
            return self.bindings[app_id]
        except KeyError:
            raise KeyError(f"application {app_id!r} has no client binding") from None

    def terminate(self, app_id: str) -> None:
        """Terminate an application's deployment and release its server allocation."""
        deployment = self.deployments.get(f"dep-{app_id}")
        if deployment is None:
            raise KeyError(f"application {app_id!r} has no deployment")
        if deployment.state is DeploymentState.RUNNING:
            deployment.transition(DeploymentState.TERMINATED, at_s=self.clock_s)
        server = self.placer.fleet.server(deployment.server_id)
        if app_id in server.allocations:
            server.release(app_id)
        self.bindings.pop(app_id, None)

    def running_deployments(self) -> list[Deployment]:
        """All deployments currently in the RUNNING state."""
        return [d for d in self.deployments.values() if d.state is DeploymentState.RUNNING]

    def deployments_per_site(self) -> dict[str, int]:
        """Number of active deployments per site."""
        counts: dict[str, int] = {}
        for d in self.deployments.values():
            if d.is_active:
                counts[d.site] = counts.get(d.site, 0) + 1
        return counts
