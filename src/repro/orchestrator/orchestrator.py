"""The edge orchestrator: placement → deployment → client binding.

This is the component labelled "Edge Orchestrator" in the paper's Figure 6:
after the placement service decides where each application goes (step 2), the
orchestrator deploys the application's recipe to the destination server
(step 3) and informs the client of the destination's address (step 4). The
orchestrator also executes power-state transitions decided by the placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.incremental import IncrementalPlacer
from repro.core.solution import PlacementSolution
from repro.orchestrator.deployment import Deployment, DeploymentState
from repro.orchestrator.recipes import recipe_for_application
from repro.workloads.application import Application

#: Time the orchestrator charges for initiating one deployment (the paper
#: reports ~1.01 s to initiate an application deployment, Section 6.5).
DEPLOYMENT_INITIATION_S: float = 1.01


@dataclass(frozen=True)
class ClientBinding:
    """The address a client should use to reach its deployed application."""

    app_id: str
    site: str
    server_id: str
    endpoint: str


@dataclass
class EdgeOrchestrator:
    """Turns placement solutions into deployments and client bindings."""

    placer: IncrementalPlacer
    deployments: dict[str, Deployment] = field(default_factory=dict)
    bindings: dict[str, ClientBinding] = field(default_factory=dict)
    clock_s: float = 0.0

    def deploy_batch(self, applications: list[Application], hour: int) -> list[Deployment]:
        """Place a batch and roll out a deployment for every placed application."""
        solution = self.placer.place_batch(applications, hour=hour, commit=True)
        return self.rollout(solution)

    def rollout(self, solution: PlacementSolution) -> list[Deployment]:
        """Create and start deployments for a committed placement solution."""
        created: list[Deployment] = []
        for app_id, j in solution.placements.items():
            server = solution.problem.servers[j]
            app = solution.problem.applications[solution.problem.app_index(app_id)]
            created.append(self._deploy_one(app, server))
        return created

    def _deploy_one(self, app: Application, server) -> Deployment:
        """Create, start, and bind one deployment of ``app`` on ``server``."""
        deployment = Deployment(
            deployment_id=f"dep-{app.app_id}",
            recipe=recipe_for_application(app, server),
            server_id=server.server_id,
            site=server.site,
            created_at_s=self.clock_s,
        )
        self.clock_s += DEPLOYMENT_INITIATION_S
        deployment.transition(DeploymentState.DEPLOYING)
        deployment.transition(DeploymentState.RUNNING, at_s=self.clock_s)
        self.deployments[deployment.deployment_id] = deployment
        self.bindings[app.app_id] = ClientBinding(
            app_id=app.app_id,
            site=server.site,
            server_id=server.server_id,
            endpoint=f"http://{server.server_id}.{server.site.replace(' ', '-').lower()}"
                     f".edge.local:8080",
        )
        return deployment

    def reoptimize(self, hour: int) -> dict[str, str]:
        """Epoch re-solve: re-place running applications and migrate the movers.

        Calls :meth:`~repro.core.incremental.IncrementalPlacer.resolve_epoch`
        (which warm-starts the solver backend from the current placement),
        then terminates and re-deploys every application whose server changed
        and refreshes its client binding. An application the re-solve could
        not keep placed (its capacity was already released) has its
        deployment terminated and its binding removed, like
        :meth:`terminate`. Returns ``app_id -> new server_id`` for the
        applications that actually moved.
        """
        solution = self.placer.resolve_epoch(hour)
        if solution is None:
            return {}
        moved: dict[str, str] = {}
        for app_id, j in solution.placements.items():
            server = solution.problem.servers[j]
            binding = self.bindings.get(app_id)
            if binding is not None and binding.server_id == server.server_id:
                continue
            old = self.deployments.get(f"dep-{app_id}")
            if old is not None and old.state is DeploymentState.RUNNING:
                old.transition(DeploymentState.TERMINATED, at_s=self.clock_s)
            app = solution.problem.applications[solution.problem.app_index(app_id)]
            self._deploy_one(app, server)
            moved[app_id] = server.server_id
        # Evicted applications: no placement survived the re-solve, so tear
        # down their deployment and binding instead of leaving them pointing
        # at capacity they no longer hold.
        for app_id in solution.unplaced:
            deployment = self.deployments.get(f"dep-{app_id}")
            if deployment is not None and deployment.state is DeploymentState.RUNNING:
                deployment.transition(DeploymentState.TERMINATED, at_s=self.clock_s)
            self.bindings.pop(app_id, None)
        return moved

    def binding_for(self, app_id: str) -> ClientBinding:
        """The client binding for an application (raises if it was never deployed)."""
        try:
            return self.bindings[app_id]
        except KeyError:
            raise KeyError(f"application {app_id!r} has no client binding") from None

    def terminate(self, app_id: str) -> None:
        """Terminate an application's deployment and release its server allocation."""
        deployment = self.deployments.get(f"dep-{app_id}")
        if deployment is None:
            raise KeyError(f"application {app_id!r} has no deployment")
        if deployment.state is DeploymentState.RUNNING:
            deployment.transition(DeploymentState.TERMINATED, at_s=self.clock_s)
        server = self.placer.fleet.server(deployment.server_id)
        if app_id in server.allocations:
            server.release(app_id)
        self.bindings.pop(app_id, None)
        # Keep the placer's re-solve bookkeeping in sync: a terminated app
        # must not be re-placed by future epoch re-solves.
        self.placer.active_apps.pop(app_id, None)

    def running_deployments(self) -> list[Deployment]:
        """All deployments currently in the RUNNING state."""
        return [d for d in self.deployments.values() if d.state is DeploymentState.RUNNING]

    def deployments_per_site(self) -> dict[str, int]:
        """Number of active deployments per site."""
        counts: dict[str, int] = {}
        for d in self.deployments.values():
            if d.is_active:
                counts[d.site] = counts.get(d.site, 0) + 1
        return counts
