"""Orchestration substrate (the Sinfonia / Kubernetes stand-in).

The paper implements CarbonEdge on top of Sinfonia, a Kubernetes-based edge
orchestrator: placement decisions are turned into deployment "recipes" that the
orchestrator rolls out to the chosen edge data center, clients are told the
destination address, and telemetry feeds back into the next decision
(Section 5). This package provides an in-process equivalent:

* :mod:`repro.orchestrator.recipes` — deployment recipes (image, resources,
  replica count) analogous to Sinfonia RECIPEs / helm charts.
* :mod:`repro.orchestrator.deployment` — deployment objects with a lifecycle
  (pending → deploying → running → terminated).
* :mod:`repro.orchestrator.cluster_state` — the orchestrator's view of fleet
  state used by the placement service.
* :mod:`repro.orchestrator.orchestrator` — the edge orchestrator binding the
  placement service (IncrementalPlacer) to deployments and client bindings.
* :mod:`repro.orchestrator.profiling` — the profiling service that turns
  measured workload profiles into placement inputs.
"""

from repro.orchestrator.recipes import Recipe, recipe_for_application
from repro.orchestrator.deployment import Deployment, DeploymentState
from repro.orchestrator.cluster_state import ClusterState
from repro.orchestrator.profiling import ProfilingService
from repro.orchestrator.orchestrator import EdgeOrchestrator, ClientBinding

__all__ = [
    "Recipe",
    "recipe_for_application",
    "Deployment",
    "DeploymentState",
    "ClusterState",
    "ProfilingService",
    "EdgeOrchestrator",
    "ClientBinding",
]
