"""Profiling service.

The paper's profiling service "collects the application's performance metrics,
such as latency, power consumption, resource demands" to inform placement
(Section 5.1). Here the service wraps the static profile table and optionally
ingests measured samples (from the emulated testbed) to refine the stored
energy/latency values with an exponential moving average.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workloads.profiles import PROFILE_TABLE, WorkloadProfile, get_profile


@dataclass
class ProfilingService:
    """Serves (and refines) per-device workload profiles.

    Parameters
    ----------
    smoothing:
        Exponential-moving-average weight given to new measurements when
        refining a profile (0 disables refinement, 1 always takes the latest
        sample).
    """

    smoothing: float = 0.3
    overrides: dict[tuple[str, str], WorkloadProfile] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.smoothing <= 1.0:
            raise ValueError(f"smoothing must be in [0, 1], got {self.smoothing}")

    def profile(self, workload: str, device: str) -> WorkloadProfile:
        """Current profile for a (workload, device) pair."""
        return self.overrides.get((workload, device)) or get_profile(workload, device)

    def known_workloads(self) -> list[str]:
        """All workloads with at least one profile."""
        return sorted({w for (w, _), _p in {**PROFILE_TABLE, **self.overrides}.items()})

    def record_measurement(self, workload: str, device: str,
                           energy_per_request_j: float | None = None,
                           latency_ms: float | None = None) -> WorkloadProfile:
        """Fold a new measurement into the stored profile (EMA) and return it."""
        current = self.profile(workload, device)
        w = self.smoothing
        new_energy = current.energy_per_request_j
        new_latency = current.latency_ms
        if energy_per_request_j is not None:
            if energy_per_request_j <= 0:
                raise ValueError("energy_per_request_j must be positive")
            new_energy = (1 - w) * current.energy_per_request_j + w * energy_per_request_j
        if latency_ms is not None:
            if latency_ms <= 0:
                raise ValueError("latency_ms must be positive")
            new_latency = (1 - w) * current.latency_ms + w * latency_ms
        updated = WorkloadProfile(
            workload=current.workload, device=current.device,
            energy_per_request_j=new_energy, latency_ms=new_latency,
            gpu_memory_mb=current.gpu_memory_mb, cpu_cores=current.cpu_cores,
            memory_mb=current.memory_mb)
        self.overrides[(workload, device)] = updated
        return updated
