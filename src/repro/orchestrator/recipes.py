"""Deployment recipes (the Sinfonia RECIPE / helm-chart stand-in).

A recipe captures everything the orchestrator needs to deploy one application:
the container image, the resource request, the replica count, and the backend
device preference. Recipes are derived from an application's workload profile.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.resources import ResourceVector
from repro.cluster.server import EdgeServer
from repro.workloads.application import Application


@dataclass(frozen=True)
class Recipe:
    """A deployable description of one application."""

    recipe_id: str
    app_id: str
    image: str
    resources: ResourceVector
    replicas: int
    device: str
    env: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.replicas <= 0:
            raise ValueError(f"recipe {self.recipe_id}: replicas must be positive")

    def with_replicas(self, replicas: int) -> "Recipe":
        """A copy of this recipe with a different replica count."""
        return Recipe(recipe_id=self.recipe_id, app_id=self.app_id, image=self.image,
                      resources=self.resources, replicas=replicas, device=self.device,
                      env=self.env)

    @property
    def total_resources(self) -> ResourceVector:
        """Resources across all replicas."""
        return self.resources * float(self.replicas)


#: Container images per workload (informational; nothing is actually pulled).
WORKLOAD_IMAGES: dict[str, str] = {
    "EfficientNetB0": "registry.local/carbonedge/efficientnet-b0:tensorrt-10.2",
    "ResNet50": "registry.local/carbonedge/resnet50:tensorrt-10.2",
    "YOLOv4": "registry.local/carbonedge/yolov4:tensorrt-10.2",
    "Sci": "registry.local/carbonedge/sensor-pipeline:numpy-1.26",
}


def recipe_for_application(app: Application, server: EdgeServer) -> Recipe:
    """Build the recipe deploying ``app`` onto ``server``.

    The replica count is the number of model instances needed to sustain the
    application's request rate given the device's per-request latency.
    """
    profile = app.profile_on(server)
    replicas = max(1, int(-(-app.request_rate_rps // profile.max_request_rate())))
    image = WORKLOAD_IMAGES.get(app.workload, f"registry.local/carbonedge/{app.workload.lower()}:latest")
    return Recipe(
        recipe_id=f"recipe-{app.app_id}-{server.server_id}",
        app_id=app.app_id,
        image=image,
        resources=profile.resource_demand,
        replicas=replicas,
        device=profile.device,
        env=(("CARBON_ZONE", server.zone_id), ("EDGE_SITE", server.site)),
    )
