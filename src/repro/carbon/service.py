"""Carbon-intensity service.

:class:`CarbonIntensityService` is the component labelled "Carbon Intensity
Service" in the paper's Figure 6: it replays historical traces (our synthetic
Electricity-Maps stand-in), exposes the *current* intensity of every zone, and
produces per-zone forecast averages Ī_j that the placement service feeds into
the optimisation objective (Equation 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.carbon.forecasting import Forecaster, OracleForecaster
from repro.carbon.traces import CarbonIntensityTrace, TraceSet


@dataclass
class CarbonIntensityService:
    """Replays carbon-intensity traces and provides current values + forecasts.

    Parameters
    ----------
    traces:
        The per-zone hourly traces to replay.
    forecaster:
        Forecaster used for the horizon average Ī_j; defaults to the oracle
        (trace replay), matching the paper's evaluation setup.
    horizon_hours:
        Forecast horizon used when computing Ī_j (default 24 h).
    """

    traces: TraceSet
    forecaster: Forecaster = field(default_factory=OracleForecaster)
    horizon_hours: int = 24
    #: Memo of forecast means keyed by (zone, hour, horizon, forecaster id).
    #: Traces are replayed (never mutated) and forecasters are deterministic,
    #: so an epoch's integral over an hourly window is computed exactly once
    #: per zone — a year-long simulation re-reads it for every server in the
    #: zone, every policy, every build. Bounded by :attr:`_CACHE_LIMIT`.
    _forecast_cache: dict = field(default_factory=dict, repr=False, compare=False)

    _CACHE_LIMIT = 16384

    def __post_init__(self) -> None:
        if self.horizon_hours <= 0:
            raise ValueError(f"horizon_hours must be positive, got {self.horizon_hours}")
        if len(self.traces) == 0:
            raise ValueError("CarbonIntensityService requires at least one trace")

    def clear_forecast_cache(self) -> None:
        """Drop memoised forecast means (e.g. after swapping the forecaster)."""
        self._forecast_cache.clear()

    # -- queries -----------------------------------------------------------

    def zones(self) -> list[str]:
        """Zone ids known to the service."""
        return self.traces.zone_ids()

    def has_zone(self, zone_id: str) -> bool:
        """Whether the service has a trace for ``zone_id``."""
        return zone_id in self.traces

    def trace(self, zone_id: str) -> CarbonIntensityTrace:
        """The raw trace for a zone."""
        return self.traces.get(zone_id)

    def current_intensity(self, zone_id: str, hour: int) -> float:
        """Current (hour-of-year) carbon intensity of a zone, g CO2eq/kWh."""
        return self.traces.get(zone_id).at(hour)

    def current_intensities(self, zone_ids: list[str], hour: int) -> np.ndarray:
        """Vector of current intensities for several zones."""
        return np.array([self.current_intensity(z, hour) for z in zone_ids], dtype=float)

    def forecast_mean(self, zone_id: str, hour: int, horizon_hours: int | None = None) -> float:
        """Ī_j: mean forecast intensity of a zone over the placement horizon.

        Memoised per (zone, hour, horizon): a 12-epoch year integrates each
        hourly trace window once instead of once per server per policy. The
        forecaster's identity is part of the key, so assigning a new
        forecaster never serves stale means.
        """
        horizon = int(horizon_hours) if horizon_hours is not None else self.horizon_hours
        key = (zone_id, int(hour), horizon, id(self.forecaster))
        cached = self._forecast_cache.get(key)
        # The cached entry pins the forecaster object, so its id() can never
        # be recycled onto a different forecaster while the entry lives.
        if cached is None or cached[0] is not self.forecaster:
            if len(self._forecast_cache) >= self._CACHE_LIMIT:
                self._forecast_cache.clear()
            value = self.forecaster.forecast_mean(self.traces.get(zone_id), hour, horizon)
            cached = (self.forecaster, value)
            self._forecast_cache[key] = cached
        return cached[1]

    def forecast_means(self, zone_ids: list[str], hour: int,
                       horizon_hours: int | None = None) -> np.ndarray:
        """Vector of Ī_j for several zones."""
        return np.array(
            [self.forecast_mean(z, hour, horizon_hours) for z in zone_ids], dtype=float)

    def greenest_zone(self, zone_ids: list[str], hour: int) -> str:
        """Zone with the lowest current intensity among ``zone_ids``."""
        if not zone_ids:
            raise ValueError("zone_ids must not be empty")
        intensities = self.current_intensities(zone_ids, hour)
        return zone_ids[int(np.argmin(intensities))]

    def mean_intensity(self, zone_id: str) -> float:
        """Whole-trace mean intensity of a zone."""
        return self.traces.get(zone_id).mean()
