"""Carbon-intensity service.

:class:`CarbonIntensityService` is the component labelled "Carbon Intensity
Service" in the paper's Figure 6: it replays historical traces (our synthetic
Electricity-Maps stand-in), exposes the *current* intensity of every zone, and
produces per-zone forecast averages Ī_j that the placement service feeds into
the optimisation objective (Equation 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.carbon.forecasting import Forecaster, OracleForecaster
from repro.carbon.traces import CarbonIntensityTrace, TraceSet


@dataclass
class CarbonIntensityService:
    """Replays carbon-intensity traces and provides current values + forecasts.

    Parameters
    ----------
    traces:
        The per-zone hourly traces to replay.
    forecaster:
        Forecaster used for the horizon average Ī_j; defaults to the oracle
        (trace replay), matching the paper's evaluation setup.
    horizon_hours:
        Forecast horizon used when computing Ī_j (default 24 h).
    """

    traces: TraceSet
    forecaster: Forecaster = field(default_factory=OracleForecaster)
    horizon_hours: int = 24

    def __post_init__(self) -> None:
        if self.horizon_hours <= 0:
            raise ValueError(f"horizon_hours must be positive, got {self.horizon_hours}")
        if len(self.traces) == 0:
            raise ValueError("CarbonIntensityService requires at least one trace")

    # -- queries -----------------------------------------------------------

    def zones(self) -> list[str]:
        """Zone ids known to the service."""
        return self.traces.zone_ids()

    def has_zone(self, zone_id: str) -> bool:
        """Whether the service has a trace for ``zone_id``."""
        return zone_id in self.traces

    def trace(self, zone_id: str) -> CarbonIntensityTrace:
        """The raw trace for a zone."""
        return self.traces.get(zone_id)

    def current_intensity(self, zone_id: str, hour: int) -> float:
        """Current (hour-of-year) carbon intensity of a zone, g CO2eq/kWh."""
        return self.traces.get(zone_id).at(hour)

    def current_intensities(self, zone_ids: list[str], hour: int) -> np.ndarray:
        """Vector of current intensities for several zones."""
        return np.array([self.current_intensity(z, hour) for z in zone_ids], dtype=float)

    def forecast_mean(self, zone_id: str, hour: int, horizon_hours: int | None = None) -> float:
        """Ī_j: mean forecast intensity of a zone over the placement horizon."""
        horizon = int(horizon_hours) if horizon_hours is not None else self.horizon_hours
        return self.forecaster.forecast_mean(self.traces.get(zone_id), hour, horizon)

    def forecast_means(self, zone_ids: list[str], hour: int,
                       horizon_hours: int | None = None) -> np.ndarray:
        """Vector of Ī_j for several zones."""
        return np.array(
            [self.forecast_mean(z, hour, horizon_hours) for z in zone_ids], dtype=float)

    def greenest_zone(self, zone_ids: list[str], hour: int) -> str:
        """Zone with the lowest current intensity among ``zone_ids``."""
        if not zone_ids:
            raise ValueError("zone_ids must not be empty")
        intensities = self.current_intensities(zone_ids, hour)
        return zone_ids[int(np.argmin(intensities))]

    def mean_intensity(self, zone_id: str) -> float:
        """Whole-trace mean intensity of a zone."""
        return self.traces.get(zone_id).mean()
