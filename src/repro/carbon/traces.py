"""Hourly carbon-intensity time series.

A :class:`CarbonIntensityTrace` is an hour-indexed series of grid carbon
intensity values (g CO2eq/kWh) for one carbon zone, mirroring the Electricity
Maps export format the paper consumes. A :class:`TraceSet` is a keyed
collection of traces over the same hour axis, which is what the carbon
intensity service and the mesoscale analysis operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

import numpy as np

from repro.utils.timeutils import month_slice
from repro.utils.units import HOURS_PER_YEAR


@dataclass
class CarbonIntensityTrace:
    """Hourly carbon-intensity series for a single carbon zone.

    Parameters
    ----------
    zone_id:
        Identifier of the zone the series belongs to.
    values:
        1-D array of intensity values in g CO2eq/kWh; index ``h`` is
        hour-of-year ``h`` (hour 0 = Jan 1, 00:00).
    """

    zone_id: str
    values: np.ndarray

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=float)
        if self.values.ndim != 1:
            raise ValueError(f"trace values must be 1-D, got shape {self.values.shape}")
        if len(self.values) == 0:
            raise ValueError("trace must contain at least one hour")
        if np.any(~np.isfinite(self.values)):
            raise ValueError(f"trace for {self.zone_id} contains non-finite values")
        if np.any(self.values < 0):
            raise ValueError(f"trace for {self.zone_id} contains negative intensities")

    def __len__(self) -> int:
        return len(self.values)

    def at(self, hour: int) -> float:
        """Intensity at hour-of-year ``hour`` (wraps around the trace length)."""
        return float(self.values[int(hour) % len(self.values)])

    def window(self, start_hour: int, n_hours: int) -> np.ndarray:
        """Intensity values for ``n_hours`` starting at ``start_hour`` (wrapping)."""
        if n_hours <= 0:
            raise ValueError(f"n_hours must be positive, got {n_hours}")
        idx = (int(start_hour) + np.arange(int(n_hours))) % len(self.values)
        return self.values[idx]

    def mean(self) -> float:
        """Mean intensity over the whole trace."""
        return float(self.values.mean())

    def min(self) -> float:
        """Minimum intensity over the whole trace."""
        return float(self.values.min())

    def max(self) -> float:
        """Maximum intensity over the whole trace."""
        return float(self.values.max())

    def monthly_mean(self, month: int) -> float:
        """Mean intensity over the one-based month ``month``.

        Requires a full-year (8760 h) trace.
        """
        if len(self.values) < HOURS_PER_YEAR:
            raise ValueError("monthly_mean requires a full-year trace")
        return float(self.values[month_slice(month)].mean())

    def daily_profile(self) -> np.ndarray:
        """Average intensity per hour of day (length-24 array)."""
        n_full_days = len(self.values) // 24
        if n_full_days == 0:
            raise ValueError("daily_profile requires at least 24 hours of data")
        return self.values[: n_full_days * 24].reshape(n_full_days, 24).mean(axis=0)

    def rolling_mean(self, window_hours: int) -> np.ndarray:
        """Trailing rolling mean with the given window (same length as the trace)."""
        if window_hours <= 0:
            raise ValueError(f"window_hours must be positive, got {window_hours}")
        kernel = np.ones(window_hours) / window_hours
        padded = np.concatenate([np.full(window_hours - 1, self.values[0]), self.values])
        return np.convolve(padded, kernel, mode="valid")


@dataclass
class TraceSet:
    """A keyed collection of carbon-intensity traces sharing the same hour axis."""

    traces: dict[str, CarbonIntensityTrace] = field(default_factory=dict)

    def __post_init__(self) -> None:
        lengths = {len(t) for t in self.traces.values()}
        if len(lengths) > 1:
            raise ValueError(f"all traces in a TraceSet must share a length, got {lengths}")

    def __len__(self) -> int:
        return len(self.traces)

    def __iter__(self) -> Iterator[str]:
        return iter(self.traces)

    def __contains__(self, zone_id: str) -> bool:
        return zone_id in self.traces

    def get(self, zone_id: str) -> CarbonIntensityTrace:
        """Return the trace for ``zone_id`` or raise :class:`KeyError`."""
        try:
            return self.traces[zone_id]
        except KeyError:
            raise KeyError(f"no carbon trace for zone {zone_id!r}") from None

    def add(self, trace: CarbonIntensityTrace) -> None:
        """Add a trace, enforcing the shared hour axis."""
        if self.traces:
            expected = len(next(iter(self.traces.values())))
            if len(trace) != expected:
                raise ValueError(
                    f"trace length {len(trace)} does not match TraceSet length {expected}")
        self.traces[trace.zone_id] = trace

    def zone_ids(self) -> list[str]:
        """Sorted zone ids present in the set."""
        return sorted(self.traces)

    @property
    def n_hours(self) -> int:
        """Number of hours covered by every trace in the set (0 when empty)."""
        if not self.traces:
            return 0
        return len(next(iter(self.traces.values())))

    def matrix(self, zone_ids: list[str] | None = None) -> np.ndarray:
        """(Z, H) matrix of intensities for the given zones (all, sorted, by default)."""
        ids = zone_ids if zone_ids is not None else self.zone_ids()
        return np.vstack([self.get(z).values for z in ids])

    def at(self, hour: int, zone_ids: list[str] | None = None) -> np.ndarray:
        """Vector of intensities at a given hour for the selected zones."""
        ids = zone_ids if zone_ids is not None else self.zone_ids()
        return np.array([self.get(z).at(hour) for z in ids], dtype=float)

    def means(self, zone_ids: list[str] | None = None) -> dict[str, float]:
        """Mapping of zone id to mean intensity."""
        ids = zone_ids if zone_ids is not None else self.zone_ids()
        return {z: self.get(z).mean() for z in ids}

    def subset(self, zone_ids: list[str]) -> "TraceSet":
        """A new TraceSet restricted to ``zone_ids``."""
        return TraceSet(traces={z: self.get(z) for z in zone_ids})

    @classmethod
    def from_mapping(cls, values: Mapping[str, np.ndarray]) -> "TraceSet":
        """Build a TraceSet from a mapping of zone id to value arrays."""
        ts = cls()
        for zone_id, arr in values.items():
            ts.add(CarbonIntensityTrace(zone_id=zone_id, values=np.asarray(arr, dtype=float)))
        return ts
