"""Spatial and temporal carbon-intensity statistics.

These are the aggregate quantities reported in the paper's Section 3 analysis:
per-hour spatial spreads across a region's zones (Figure 2), yearly max/min
ratios (Figure 3: 2.7x in the West US, 10.8x in Central EU), temporal ranges
within a day or across months (Figure 4), and pairwise percentage savings used
for the radius analysis (Figure 5).
"""

from __future__ import annotations

import numpy as np

from repro.carbon.traces import TraceSet
from repro.utils.timeutils import MONTH_NAMES


def spatial_spread(traces: TraceSet, zone_ids: list[str], hour: int) -> dict[str, float]:
    """Spatial statistics of the zone intensities at one hour.

    Returns a dict with ``min``, ``max``, ``ratio`` (max/min), and ``range``.
    """
    values = traces.at(hour, zone_ids)
    lo, hi = float(values.min()), float(values.max())
    return {
        "min": lo,
        "max": hi,
        "ratio": hi / lo if lo > 0 else float("inf"),
        "range": hi - lo,
    }


def max_min_ratio(traces: TraceSet, zone_ids: list[str]) -> float:
    """Ratio of the highest to the lowest *yearly mean* intensity across zones.

    This is the statistic the paper reports as 2.7x (West US) and 10.8x
    (Central EU) in Figure 3.
    """
    means = np.array([traces.get(z).mean() for z in zone_ids])
    lo = float(means.min())
    return float(means.max()) / lo if lo > 0 else float("inf")


def pairwise_percentage_difference(traces: TraceSet, zone_a: str, zone_b: str) -> float:
    """Mean percentage reduction achievable by running in ``zone_b`` instead of ``zone_a``.

    Defined as ``(mean(a) - mean(b)) / mean(a) * 100``; positive when zone_b is
    greener than zone_a.
    """
    mean_a = traces.get(zone_a).mean()
    mean_b = traces.get(zone_b).mean()
    if mean_a <= 0:
        return 0.0
    return (mean_a - mean_b) / mean_a * 100.0


def temporal_range(traces: TraceSet, zone_id: str, start_hour: int, n_hours: int) -> float:
    """Max-minus-min intensity of one zone over a time window (Figure 4a statistic)."""
    window = traces.get(zone_id).window(start_hour, n_hours)
    return float(window.max() - window.min())


def monthly_means(traces: TraceSet, zone_id: str) -> dict[str, float]:
    """Mean intensity per calendar month for one zone (Figure 4b series)."""
    trace = traces.get(zone_id)
    return {MONTH_NAMES[m - 1]: trace.monthly_mean(m) for m in range(1, 13)}


def coefficient_of_variation(traces: TraceSet, zone_id: str) -> float:
    """Coefficient of variation (std/mean) of one zone's intensity series."""
    values = traces.get(zone_id).values
    mean = float(values.mean())
    return float(values.std()) / mean if mean > 0 else 0.0


def regional_summary(traces: TraceSet, zone_ids: list[str]) -> dict[str, dict[str, float]]:
    """Per-zone summary (mean/min/max/cv) for a region's zones."""
    out: dict[str, dict[str, float]] = {}
    for z in zone_ids:
        t = traces.get(z)
        out[z] = {
            "mean": t.mean(),
            "min": t.min(),
            "max": t.max(),
            "cv": coefficient_of_variation(traces, z),
        }
    return out
