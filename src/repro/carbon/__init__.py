"""Carbon-intensity substrate.

This package provides everything the placement policies need to reason about
grid carbon intensity:

* :mod:`repro.carbon.traces` — hourly carbon-intensity time series.
* :mod:`repro.carbon.energy_mix` — the time-varying generation-mix model that
  drives the synthetic traces (diurnal solar, seasonal hydro, stochastic wind).
* :mod:`repro.carbon.synthetic` — the synthetic trace generator (Electricity
  Maps stand-in).
* :mod:`repro.carbon.service` — the carbon-intensity service (current value,
  history, and forecasts) that CarbonEdge's placement service queries (Figure 6
  step 0).
* :mod:`repro.carbon.forecasting` — forecasters used by the service.
* :mod:`repro.carbon.statistics` — spatial/temporal variation statistics used
  by the Section-3 mesoscale analysis.
"""

from repro.carbon.traces import CarbonIntensityTrace, TraceSet
from repro.carbon.energy_mix import MixTimeSeries, hourly_mix_profile, solar_capacity_factor
from repro.carbon.synthetic import SyntheticTraceGenerator, generate_trace, generate_traces
from repro.carbon.service import CarbonIntensityService
from repro.carbon.forecasting import (
    Forecaster,
    PersistenceForecaster,
    MovingAverageForecaster,
    SeasonalNaiveForecaster,
    OracleForecaster,
)
from repro.carbon.statistics import (
    spatial_spread,
    max_min_ratio,
    pairwise_percentage_difference,
    temporal_range,
    monthly_means,
)

__all__ = [
    "CarbonIntensityTrace",
    "TraceSet",
    "MixTimeSeries",
    "hourly_mix_profile",
    "solar_capacity_factor",
    "SyntheticTraceGenerator",
    "generate_trace",
    "generate_traces",
    "CarbonIntensityService",
    "Forecaster",
    "PersistenceForecaster",
    "MovingAverageForecaster",
    "SeasonalNaiveForecaster",
    "OracleForecaster",
    "spatial_spread",
    "max_min_ratio",
    "pairwise_percentage_difference",
    "temporal_range",
    "monthly_means",
]
