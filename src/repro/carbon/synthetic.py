"""Synthetic carbon-intensity trace generation (Electricity Maps stand-in).

:class:`SyntheticTraceGenerator` turns :class:`~repro.datasets.electricity_maps.ZoneSpec`
objects into hourly :class:`~repro.carbon.traces.CarbonIntensityTrace` series by
expanding the annual generation mix into an hourly mix (see
:mod:`repro.carbon.energy_mix`), computing the mix-weighted intensity, and
adding a small amount of measurement noise. Generation is deterministic in the
(seed, zone id) pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.carbon.energy_mix import MixTimeSeries, hourly_mix_profile
from repro.carbon.traces import CarbonIntensityTrace, TraceSet
from repro.datasets.electricity_maps import ZoneCatalog, ZoneSpec, default_zone_catalog
from repro.utils.rng import substream
from repro.utils.units import HOURS_PER_YEAR


@dataclass
class SyntheticTraceGenerator:
    """Generates hourly carbon-intensity traces from zone specifications.

    Parameters
    ----------
    seed:
        Root seed; traces are deterministic in (seed, zone id).
    n_hours:
        Length of the generated traces (default: one full year).
    """

    seed: int = 0
    n_hours: int = HOURS_PER_YEAR

    def mix_profile(self, spec: ZoneSpec, start_hour: int = 0) -> MixTimeSeries:
        """Hourly generation-mix series for a zone."""
        return hourly_mix_profile(spec, n_hours=self.n_hours, seed=self.seed,
                                  start_hour=start_hour)

    def generate(self, spec: ZoneSpec, start_hour: int = 0) -> CarbonIntensityTrace:
        """Generate the hourly carbon-intensity trace for one zone."""
        mix = self.mix_profile(spec, start_hour=start_hour)
        intensity = mix.intensity()
        rng = substream(self.seed, "intensity-noise", spec.zone_id)
        noise = rng.normal(1.0, spec.noise_scale, size=self.n_hours)
        values = np.clip(intensity * noise, 1.0, None)
        return CarbonIntensityTrace(zone_id=spec.zone_id, values=values)

    def generate_set(self, specs: Iterable[ZoneSpec], start_hour: int = 0) -> TraceSet:
        """Generate traces for several zones into a :class:`TraceSet`."""
        ts = TraceSet()
        for spec in specs:
            ts.add(self.generate(spec, start_hour=start_hour))
        return ts

    def generate_catalog(self, catalog: ZoneCatalog | None = None,
                         zone_ids: list[str] | None = None) -> TraceSet:
        """Generate traces for (a subset of) a zone catalogue."""
        catalog = catalog or default_zone_catalog()
        if zone_ids is None:
            specs: list[ZoneSpec] = list(catalog)
        else:
            specs = [catalog.get(z) for z in zone_ids]
        return self.generate_set(specs)


def generate_trace(zone_id: str, seed: int = 0, n_hours: int = HOURS_PER_YEAR,
                   catalog: ZoneCatalog | None = None) -> CarbonIntensityTrace:
    """Convenience helper: generate the trace for a single catalogue zone."""
    catalog = catalog or default_zone_catalog()
    gen = SyntheticTraceGenerator(seed=seed, n_hours=n_hours)
    return gen.generate(catalog.get(zone_id))


def generate_traces(zone_ids: list[str], seed: int = 0, n_hours: int = HOURS_PER_YEAR,
                    catalog: ZoneCatalog | None = None) -> TraceSet:
    """Convenience helper: generate traces for several catalogue zones."""
    catalog = catalog or default_zone_catalog()
    gen = SyntheticTraceGenerator(seed=seed, n_hours=n_hours)
    return gen.generate_set(catalog.get(z) for z in zone_ids)
