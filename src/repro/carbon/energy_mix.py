"""Time-varying generation-mix model.

The synthetic carbon traces are driven by a physically-motivated model of how
a zone's generation mix changes over the year:

* **Solar** output follows a diurnal bell curve (zero at night, peaking around
  13:00 local) scaled by a seasonal envelope (longer/stronger summer days).
* **Wind** output follows a mean-reverting AR(1) process (multi-day weather
  systems) clipped to a physical range.
* **Hydro** has a mild seasonal swing (spring melt).
* **Demand** follows a diurnal + weekly shape; whatever renewables cannot
  cover is served by the zone's dispatchable sources (nuclear first, then the
  fossil sources in merit order), which is what produces the carbon-intensity
  "duck curve" shape visible in the paper's Figure 1b and Figure 4a.

Everything is vectorised over the hour axis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.electricity_maps import SOURCE_INTENSITY, ZoneSpec
from repro.utils.rng import substream
from repro.utils.timeutils import day_of_year, hour_of_day
from repro.utils.units import HOURS_PER_YEAR

#: Dispatch order of non-variable sources (greenest dispatched first).
DISPATCH_ORDER: tuple[str, ...] = ("nuclear", "geothermal", "biomass", "gas", "oil", "coal")


def solar_capacity_factor(hours: np.ndarray, seasonality: float) -> np.ndarray:
    """Normalized solar output (0–1) per hour of year.

    The diurnal component is a raised cosine centred at 13:00; the seasonal
    envelope scales between ``1 - seasonality`` (winter solstice) and ``1``
    (summer solstice).
    """
    hours = np.asarray(hours)
    hod = hour_of_day(hours).astype(float)
    doy = day_of_year(hours).astype(float)
    diurnal = np.clip(np.cos((hod - 13.0) / 7.0 * (np.pi / 2.0)), 0.0, None)
    # Seasonal envelope peaks at the summer solstice (day 172) and drops to
    # (1 - seasonality) at the winter solstice.
    seasonal = 1.0 - float(seasonality) * 0.5 * (1.0 - np.cos(2.0 * np.pi * (doy - 172.0) / 365.0))
    return diurnal * seasonal


def wind_capacity_factor(n_hours: int, volatility: float, rng: np.random.Generator) -> np.ndarray:
    """Normalized wind output (0.1–1) as a mean-reverting AR(1) process."""
    if n_hours <= 0:
        raise ValueError(f"n_hours must be positive, got {n_hours}")
    phi = 0.985  # ~3-day decorrelation time
    noise = rng.normal(0.0, float(volatility) * np.sqrt(1 - phi**2), size=n_hours)
    x = np.empty(n_hours)
    x[0] = rng.normal(0.0, float(volatility))
    for t in range(1, n_hours):
        x[t] = phi * x[t - 1] + noise[t]
    return np.clip(0.55 + x, 0.1, 1.0)


def hydro_capacity_factor(hours: np.ndarray) -> np.ndarray:
    """Normalized hydro output with a mild spring-melt seasonal swing."""
    doy = day_of_year(np.asarray(hours)).astype(float)
    return 0.85 + 0.15 * np.sin(2.0 * np.pi * (doy - 80.0) / 365.0)


def demand_profile(hours: np.ndarray) -> np.ndarray:
    """Normalized electricity demand per hour (diurnal + weekly shape), mean ~1."""
    hours = np.asarray(hours)
    hod = hour_of_day(hours).astype(float)
    dow = (day_of_year(hours) % 7).astype(float)
    diurnal = 1.0 + 0.18 * np.sin(2.0 * np.pi * (hod - 9.0) / 24.0) \
        + 0.07 * np.sin(4.0 * np.pi * (hod - 19.0) / 24.0)
    weekend = np.where(dow >= 5, 0.93, 1.0)
    return diurnal * weekend


@dataclass
class MixTimeSeries:
    """Hourly generation shares per source for one zone.

    ``shares`` maps each source name to an array of length ``n_hours``; at each
    hour the shares sum to 1.
    """

    zone_id: str
    shares: dict[str, np.ndarray]

    @property
    def n_hours(self) -> int:
        """Number of hours covered."""
        return len(next(iter(self.shares.values()))) if self.shares else 0

    def intensity(self) -> np.ndarray:
        """Hourly carbon intensity implied by the mix, g CO2eq/kWh."""
        total = np.zeros(self.n_hours)
        for source, share in self.shares.items():
            total += share * SOURCE_INTENSITY[source]
        return total

    def mean_shares(self) -> dict[str, float]:
        """Annual-average share per source."""
        return {source: float(arr.mean()) for source, arr in self.shares.items()}

    def validate(self, atol: float = 1e-6) -> None:
        """Check that the shares are non-negative and sum to ~1 at every hour."""
        total = np.zeros(self.n_hours)
        for source, arr in self.shares.items():
            if np.any(arr < -atol):
                raise ValueError(f"{self.zone_id}: negative share for {source}")
            total += arr
        if not np.allclose(total, 1.0, atol=1e-3):
            worst = float(np.abs(total - 1.0).max())
            raise ValueError(f"{self.zone_id}: hourly shares do not sum to 1 (max err {worst:.4f})")


def hourly_mix_profile(
    spec: ZoneSpec,
    n_hours: int = HOURS_PER_YEAR,
    seed: int = 0,
    start_hour: int = 0,
) -> MixTimeSeries:
    """Expand a zone's annual mix into an hourly generation-mix time series.

    The annual shares in ``spec.mix`` are treated as capacity-weighted targets:
    variable sources (solar, wind, hydro) produce according to their capacity
    factors, and dispatchable sources fill the residual demand in merit order.
    The resulting annual-average shares stay close to the spec's shares while
    exhibiting realistic diurnal/seasonal structure.
    """
    if n_hours <= 0:
        raise ValueError(f"n_hours must be positive, got {n_hours}")
    hours = (int(start_hour) + np.arange(int(n_hours))) % HOURS_PER_YEAR
    rng = substream(seed, "mix", spec.zone_id)
    mix = spec.normalized_mix

    demand = demand_profile(hours)

    # Variable generation in demand units. Capacities are scaled so the annual
    # mean production of each variable source matches its target share.
    production: dict[str, np.ndarray] = {}
    solar_cf = solar_capacity_factor(hours, spec.solar_seasonality)
    wind_cf = wind_capacity_factor(n_hours, spec.wind_volatility, rng)
    hydro_cf = hydro_capacity_factor(hours)
    for source, cf in (("solar", solar_cf), ("wind", wind_cf), ("hydro", hydro_cf)):
        target = mix.get(source, 0.0)
        if target <= 0.0:
            continue
        mean_cf = float(cf.mean())
        scale = target * float(demand.mean()) / mean_cf if mean_cf > 0 else 0.0
        production[source] = cf * scale

    variable_total = sum(production.values()) if production else np.zeros(n_hours)
    # Renewables never exceed 95% of instantaneous demand (grid stability floor
    # for dispatchable generation); excess is curtailed.
    cap = 0.95 * demand
    over = variable_total > cap
    if np.any(over) and production:
        scale_down = np.ones(n_hours)
        scale_down[over] = cap[over] / variable_total[over]
        for source in production:
            production[source] = production[source] * scale_down
        variable_total = sum(production.values())

    residual = np.clip(demand - variable_total, 0.0, None)

    # Dispatchable sources fill the residual in merit order, each limited by a
    # capacity slightly above its annual target share.
    dispatchable = {s: mix.get(s, 0.0) for s in DISPATCH_ORDER if mix.get(s, 0.0) > 0.0}
    total_dispatch_target = sum(dispatchable.values())
    remaining = residual.copy()
    for source in DISPATCH_ORDER:
        target = dispatchable.get(source, 0.0)
        if target <= 0.0:
            continue
        if total_dispatch_target > 0:
            capacity = target / total_dispatch_target * residual * 1.0
        else:
            capacity = np.zeros(n_hours)
        # Baseload sources (nuclear, geothermal) run flat at their target output.
        if source in ("nuclear", "geothermal"):
            flat = np.full(n_hours, target * float(demand.mean()))
            produced = np.minimum(flat, remaining)
        else:
            produced = np.minimum(capacity * 1.25, remaining)
        production[source] = production.get(source, np.zeros(n_hours)) + produced
        remaining = remaining - produced

    # Any leftover residual goes to the marginal fossil source (or gas).
    if np.any(remaining > 1e-9):
        marginal = "gas"
        for source in reversed(DISPATCH_ORDER):
            if mix.get(source, 0.0) > 0.0:
                marginal = source
                break
        production[marginal] = production.get(marginal, np.zeros(n_hours)) + remaining

    total = sum(production.values())
    shares = {source: prod / total for source, prod in production.items() if np.any(prod > 0)}
    series = MixTimeSeries(zone_id=spec.zone_id, shares=shares)
    series.validate()
    return series
