"""Carbon-intensity forecasters.

The paper's carbon-intensity service "periodically predicts the carbon
intensity of all data centers" (Figure 6, step 0) and the placement objective
uses the *average of the forecast* intensity values over the placement horizon
(Section 4.2, definition of Ī_j). The forecasters here provide that average:

* :class:`OracleForecaster` — perfect foresight (replays the trace), the
  default used by the evaluation since the paper replays historical traces.
* :class:`PersistenceForecaster` — tomorrow looks like right now.
* :class:`MovingAverageForecaster` — trailing-window average.
* :class:`SeasonalNaiveForecaster` — same hours yesterday (24 h seasonality).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.carbon.traces import CarbonIntensityTrace


class Forecaster(ABC):
    """Interface for horizon forecasts over one zone's intensity trace."""

    @abstractmethod
    def forecast(self, trace: CarbonIntensityTrace, now_hour: int, horizon_hours: int) -> np.ndarray:
        """Forecast the next ``horizon_hours`` hourly intensities starting at ``now_hour``."""

    def forecast_mean(self, trace: CarbonIntensityTrace, now_hour: int, horizon_hours: int) -> float:
        """Mean of the horizon forecast (the Ī_j the placement objective uses)."""
        if horizon_hours <= 0:
            raise ValueError(f"horizon_hours must be positive, got {horizon_hours}")
        return float(self.forecast(trace, now_hour, horizon_hours).mean())


@dataclass
class OracleForecaster(Forecaster):
    """Perfect-foresight forecaster: returns the actual future trace values."""

    def forecast(self, trace: CarbonIntensityTrace, now_hour: int, horizon_hours: int) -> np.ndarray:
        return trace.window(now_hour, horizon_hours)


@dataclass
class PersistenceForecaster(Forecaster):
    """Persistence forecast: every future hour equals the current intensity."""

    def forecast(self, trace: CarbonIntensityTrace, now_hour: int, horizon_hours: int) -> np.ndarray:
        return np.full(int(horizon_hours), trace.at(now_hour))


@dataclass
class MovingAverageForecaster(Forecaster):
    """Trailing moving-average forecast.

    Parameters
    ----------
    window_hours:
        Number of trailing hours averaged to produce the (flat) forecast.
    """

    window_hours: int = 24

    def __post_init__(self) -> None:
        if self.window_hours <= 0:
            raise ValueError(f"window_hours must be positive, got {self.window_hours}")

    def forecast(self, trace: CarbonIntensityTrace, now_hour: int, horizon_hours: int) -> np.ndarray:
        start = int(now_hour) - self.window_hours + 1
        history = trace.window(start, self.window_hours)
        return np.full(int(horizon_hours), float(history.mean()))


@dataclass
class SeasonalNaiveForecaster(Forecaster):
    """Seasonal-naive forecast: hour ``t`` tomorrow equals hour ``t`` today.

    Parameters
    ----------
    season_hours:
        Seasonal period; 24 replays the previous day, 168 the previous week.
    """

    season_hours: int = 24

    def __post_init__(self) -> None:
        if self.season_hours <= 0:
            raise ValueError(f"season_hours must be positive, got {self.season_hours}")

    def forecast(self, trace: CarbonIntensityTrace, now_hour: int, horizon_hours: int) -> np.ndarray:
        horizon = int(horizon_hours)
        offsets = np.arange(horizon)
        source_hours = int(now_hour) - self.season_hours + offsets % self.season_hours
        idx = source_hours % len(trace)
        return trace.values[idx]
