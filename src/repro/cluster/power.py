"""Server power models.

Carbon emissions in the placement objective (Equation 6) have two components:
application operation (dynamic energy × intensity) and server activation (base
power × intensity). The power models here provide both pieces: a server's base
(idle) power when on, and the dynamic power as a function of utilisation. They
also serve as the RAPL/DCGM stand-in for the emulated testbed's power
monitoring.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.utils.validation import require_in_range, require_non_negative


class PowerModel(ABC):
    """Interface mapping utilisation (0–1) to instantaneous power draw (watts)."""

    @property
    @abstractmethod
    def idle_power_w(self) -> float:
        """Power draw at zero utilisation while powered on."""

    @property
    @abstractmethod
    def max_power_w(self) -> float:
        """Power draw at full utilisation."""

    @abstractmethod
    def power_w(self, utilization: float) -> float:
        """Instantaneous power at the given utilisation in [0, 1]."""

    def energy_j(self, utilization: float, duration_s: float) -> float:
        """Energy over ``duration_s`` seconds at constant utilisation."""
        require_non_negative(duration_s, "duration_s")
        return self.power_w(utilization) * float(duration_s)

    def dynamic_energy_j(self, utilization: float, duration_s: float) -> float:
        """Energy above idle over ``duration_s`` seconds at constant utilisation."""
        require_non_negative(duration_s, "duration_s")
        return (self.power_w(utilization) - self.idle_power_w) * float(duration_s)


@dataclass(frozen=True)
class LinearPowerModel(PowerModel):
    """Power grows linearly from idle to max with utilisation (the common model)."""

    idle_w: float
    max_w: float

    def __post_init__(self) -> None:
        require_non_negative(self.idle_w, "idle_w")
        if self.max_w < self.idle_w:
            raise ValueError(f"max_w ({self.max_w}) must be >= idle_w ({self.idle_w})")

    @property
    def idle_power_w(self) -> float:
        return self.idle_w

    @property
    def max_power_w(self) -> float:
        return self.max_w

    def power_w(self, utilization: float) -> float:
        u = require_in_range(utilization, 0.0, 1.0, "utilization")
        return self.idle_w + (self.max_w - self.idle_w) * u


@dataclass(frozen=True)
class IdleProportionalPowerModel(PowerModel):
    """Power model with a non-linear (sub-linear) dynamic component.

    Real servers are not perfectly power-proportional: the marginal power per
    unit utilisation falls off at high load. This model raises utilisation to
    ``exponent`` (< 1) before the linear interpolation, which matches measured
    server curves better and is used in the ablation benchmarks.
    """

    idle_w: float
    max_w: float
    exponent: float = 0.8

    def __post_init__(self) -> None:
        require_non_negative(self.idle_w, "idle_w")
        if self.max_w < self.idle_w:
            raise ValueError(f"max_w ({self.max_w}) must be >= idle_w ({self.idle_w})")
        if not 0 < self.exponent <= 1:
            raise ValueError(f"exponent must be in (0, 1], got {self.exponent}")

    @property
    def idle_power_w(self) -> float:
        return self.idle_w

    @property
    def max_power_w(self) -> float:
        return self.max_w

    def power_w(self, utilization: float) -> float:
        u = require_in_range(utilization, 0.0, 1.0, "utilization")
        return self.idle_w + (self.max_w - self.idle_w) * (u ** self.exponent)
