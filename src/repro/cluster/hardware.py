"""Hardware catalogue for the paper's edge devices.

The testbed (Section 6.1.2) uses Dell PowerEdge R630 servers (40-core Xeon
E5-2660v3, 256 GB RAM) with NVIDIA A2 GPUs, while the heterogeneity study
(Section 6.3.5) adds the NVIDIA Jetson Orin Nano and the GTX 1080. Each device
spec carries its capacity vector and power envelope; per-workload energy and
latency come from :mod:`repro.workloads.profiles`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.resources import ResourceVector


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of an edge device (CPU host or accelerator).

    Parameters
    ----------
    name:
        Catalogue name, e.g. ``"NVIDIA A2"``.
    kind:
        ``"cpu"`` or ``"gpu"``.
    capacity:
        Resource capacity contributed by the device.
    idle_power_w:
        Power draw when powered on but idle (the base power B_j of Equation 6
        when the device is the server's main power consumer).
    max_power_w:
        Power draw at full utilisation.
    cuda_cores:
        Number of CUDA cores (0 for CPU hosts); informational.
    """

    name: str
    kind: str
    capacity: ResourceVector
    idle_power_w: float
    max_power_w: float
    cuda_cores: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("cpu", "gpu"):
            raise ValueError(f"device kind must be 'cpu' or 'gpu', got {self.kind!r}")
        if self.idle_power_w < 0 or self.max_power_w <= 0:
            raise ValueError(f"invalid power envelope for {self.name}")
        if self.idle_power_w > self.max_power_w:
            raise ValueError(
                f"{self.name}: idle power {self.idle_power_w} exceeds max {self.max_power_w}")

    @property
    def dynamic_power_range_w(self) -> float:
        """Power headroom between idle and full utilisation."""
        return self.max_power_w - self.idle_power_w


#: Dell PowerEdge R630 host CPU used by every testbed server.
XEON_E5_2660V3 = DeviceSpec(
    name="Xeon E5-2660v3",
    kind="cpu",
    capacity=ResourceVector.of(cpu_cores=40, memory_mb=256_000),
    idle_power_w=105.0,
    max_power_w=285.0,
)

#: NVIDIA A2 (testbed GPU): 1280 CUDA cores, 16 GB, 60 W.
NVIDIA_A2 = DeviceSpec(
    name="NVIDIA A2",
    kind="gpu",
    capacity=ResourceVector.of(gpu_memory_mb=16_000),
    idle_power_w=8.0,
    max_power_w=60.0,
    cuda_cores=1280,
)

#: NVIDIA Jetson Orin Nano: 1024 CUDA cores, 8 GB, 15 W.
ORIN_NANO = DeviceSpec(
    name="Orin Nano",
    kind="gpu",
    capacity=ResourceVector.of(gpu_memory_mb=8_000),
    idle_power_w=2.0,
    max_power_w=15.0,
    cuda_cores=1024,
)

#: NVIDIA GTX 1080: 2560 CUDA cores, 8 GB, 180 W.
GTX_1080 = DeviceSpec(
    name="GTX 1080",
    kind="gpu",
    capacity=ResourceVector.of(gpu_memory_mb=8_000),
    idle_power_w=10.0,
    max_power_w=180.0,
    cuda_cores=2560,
)

#: All devices the library knows about, keyed by name.
DEVICE_CATALOG: dict[str, DeviceSpec] = {
    spec.name: spec for spec in (XEON_E5_2660V3, NVIDIA_A2, ORIN_NANO, GTX_1080)
}


def device_by_name(name: str) -> DeviceSpec:
    """Look up a device spec by its catalogue name."""
    try:
        return DEVICE_CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; known devices: {sorted(DEVICE_CATALOG)}") from None
