"""Edge cluster substrate: resources, hardware, power models, servers, fleets.

This package models the physical side of the paper's edge deployments — the
heterogeneous accelerators of Section 6.1.2 (NVIDIA A2, Jetson Orin Nano,
GTX 1080 plus the Xeon CPU host), their base/dynamic power behaviour, and the
multi-dimensional resource capacities the placement constraints (Equation 1)
operate on.
"""

from repro.cluster.resources import ResourceVector
from repro.cluster.hardware import (
    DeviceSpec,
    DEVICE_CATALOG,
    device_by_name,
    XEON_E5_2660V3,
    NVIDIA_A2,
    ORIN_NANO,
    GTX_1080,
)
from repro.cluster.power import PowerModel, LinearPowerModel, IdleProportionalPowerModel
from repro.cluster.server import EdgeServer, PowerState
from repro.cluster.datacenter import EdgeDataCenter
from repro.cluster.fleet import EdgeFleet, build_regional_fleet, build_cdn_fleet

__all__ = [
    "ResourceVector",
    "DeviceSpec",
    "DEVICE_CATALOG",
    "device_by_name",
    "XEON_E5_2660V3",
    "NVIDIA_A2",
    "ORIN_NANO",
    "GTX_1080",
    "PowerModel",
    "LinearPowerModel",
    "IdleProportionalPowerModel",
    "EdgeServer",
    "PowerState",
    "EdgeDataCenter",
    "EdgeFleet",
    "build_regional_fleet",
    "build_cdn_fleet",
]
