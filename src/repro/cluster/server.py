"""Edge server model: capacity, accelerator, power state, and allocations.

An :class:`EdgeServer` is the unit the placement decision variables refer to:
``x_ij`` places application *i* on server *j*, and ``y_j`` decides whether the
server is powered on. The server tracks its available capacity as applications
are committed to it (the incremental placement algorithm updates server states
after every batch, Algorithm 1 line 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.cluster.hardware import DeviceSpec, NVIDIA_A2, XEON_E5_2660V3
from repro.cluster.power import LinearPowerModel, PowerModel
from repro.cluster.resources import ResourceVector


class PowerState(Enum):
    """Power state of a server."""

    OFF = "off"
    ON = "on"


@dataclass
class EdgeServer:
    """A single edge server hosted in an edge data center.

    Parameters
    ----------
    server_id:
        Unique identifier.
    site:
        Name of the edge data center (city) hosting the server.
    zone_id:
        Carbon zone supplying the server's electricity.
    cpu:
        Host CPU device spec.
    accelerator:
        Optional GPU device spec (``None`` for CPU-only servers).
    power_state:
        Initial power state.
    """

    server_id: str
    site: str
    zone_id: str
    cpu: DeviceSpec = XEON_E5_2660V3
    accelerator: DeviceSpec | None = NVIDIA_A2
    power_state: PowerState = PowerState.OFF
    allocations: dict[str, ResourceVector] = field(default_factory=dict)
    #: Running sum of ``allocations`` — maintained incrementally so the
    #: commit path (allocate → can_host → available_capacity) costs O(dims)
    #: per allocation instead of re-summing every allocation each time, which
    #: made committing a batch quadratic and dominated the serving loop's
    #: warm re-solve latency. ``None`` means "recompute on next read" (the
    #: exact sum), which also snaps away any incremental float residue
    #: whenever the server empties.
    _used_cache: ResourceVector | None = field(
        default=None, repr=False, compare=False)
    #: Memoised CPU+accelerator capacity (the hardware is immutable).
    _total_cache: ResourceVector | None = field(
        default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.cpu.kind != "cpu":
            raise ValueError(f"server {self.server_id}: cpu device must have kind 'cpu'")
        if self.accelerator is not None and self.accelerator.kind != "gpu":
            raise ValueError(f"server {self.server_id}: accelerator must have kind 'gpu'")

    # -- capacity ------------------------------------------------------------

    def _total_ref(self) -> ResourceVector:
        if self._total_cache is None:
            capacity = self.cpu.capacity.copy()
            if self.accelerator is not None:
                capacity = capacity + self.accelerator.capacity
            self._total_cache = capacity
        return self._total_cache

    def _used_ref(self) -> ResourceVector:
        if self._used_cache is None:
            used = ResourceVector.zeros(tuple(self._total_ref().keys()))
            for demand in self.allocations.values():
                used = used + demand
            self._used_cache = used
        return self._used_cache

    @property
    def total_capacity(self) -> ResourceVector:
        """Total capacity across the host CPU and the accelerator."""
        return self._total_ref().copy()

    @property
    def used_capacity(self) -> ResourceVector:
        """Sum of the resources currently allocated to applications."""
        return self._used_ref().copy()

    @property
    def available_capacity(self) -> ResourceVector:
        """Capacity still available for new applications (C^k_j in Equation 1)."""
        return self._total_ref() - self._used_ref()

    def utilization(self) -> float:
        """Tightest fractional utilisation across resource dimensions."""
        return self._used_ref().max_utilization_of(self._total_ref())

    def can_host(self, demand: ResourceVector) -> bool:
        """Whether the demand fits in the currently available capacity."""
        # Hot path of every commit: compare amounts directly (same semantics
        # as ``demand.fits_within(self.available_capacity)``) instead of
        # constructing intermediate vectors per check.
        total = self._total_ref().amounts
        used = self._used_ref().amounts
        return all(v <= total.get(k, 0.0) - used.get(k, 0.0) + 1e-9
                   for k, v in demand.amounts.items())

    # -- power ----------------------------------------------------------------

    @property
    def is_on(self) -> bool:
        """Whether the server is currently powered on."""
        return self.power_state is PowerState.ON

    @property
    def base_power_w(self) -> float:
        """Base (idle) power of the server when on: CPU idle + accelerator idle (B_j)."""
        base = self.cpu.idle_power_w
        if self.accelerator is not None:
            base += self.accelerator.idle_power_w
        return base

    @property
    def max_power_w(self) -> float:
        """Maximum power draw of the server at full utilisation."""
        power = self.cpu.max_power_w
        if self.accelerator is not None:
            power += self.accelerator.max_power_w
        return power

    def power_model(self) -> PowerModel:
        """Linear power model spanning the server's base-to-max envelope."""
        return LinearPowerModel(idle_w=self.base_power_w, max_w=self.max_power_w)

    def power_on(self) -> None:
        """Power the server on (idempotent)."""
        self.power_state = PowerState.ON

    def power_off(self) -> None:
        """Power the server off; refuses if applications are still allocated."""
        if self.allocations:
            raise RuntimeError(
                f"cannot power off server {self.server_id}: "
                f"{len(self.allocations)} applications still allocated")
        self.power_state = PowerState.OFF

    # -- allocation ------------------------------------------------------------

    def allocate(self, app_id: str, demand: ResourceVector) -> None:
        """Commit an application's resource demand to this server."""
        if app_id in self.allocations:
            raise ValueError(f"application {app_id!r} is already allocated on {self.server_id}")
        if not self.can_host(demand):
            raise ValueError(
                f"server {self.server_id} cannot host {app_id!r}: demand {demand} "
                f"exceeds available {self.available_capacity}")
        if not self.is_on:
            raise RuntimeError(
                f"cannot allocate {app_id!r} on powered-off server {self.server_id}")
        self.allocations[app_id] = demand.copy()
        # In-place cache update is safe: the cache only leaves this class as
        # a copy (``used_capacity``) or a fresh difference (``available_capacity``).
        used = self._used_ref().amounts
        for key, value in demand.amounts.items():
            used[key] = used.get(key, 0.0) + value

    def release(self, app_id: str) -> ResourceVector:
        """Release an application's allocation and return the freed demand."""
        try:
            freed = self.allocations.pop(app_id)
        except KeyError:
            raise KeyError(f"application {app_id!r} is not allocated on {self.server_id}") from None
        if not self.allocations:
            self._used_cache = None  # empty server: next read is the exact zero
        elif self._used_cache is not None:
            used = self._used_cache.amounts
            for key, value in freed.amounts.items():
                used[key] = max(used.get(key, 0.0) - value, 0.0)
        return freed

    def reset_allocations(self) -> None:
        """Drop every allocation (the fleet-wide pristine-baseline reset)."""
        self.allocations.clear()
        self._used_cache = None

    @property
    def device_name(self) -> str:
        """Name of the accelerator (or the CPU for CPU-only servers)."""
        return self.accelerator.name if self.accelerator is not None else self.cpu.name
