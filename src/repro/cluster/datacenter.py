"""Edge data center: a site-local group of edge servers.

Each mesoscale city in the paper hosts one edge data center (Section 3.1); in
the CDN-scale evaluation each Akamai site is a data center. A data center has a
location (city + coordinates), a carbon zone, and a set of servers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.cluster.resources import ResourceVector
from repro.cluster.server import EdgeServer


@dataclass
class EdgeDataCenter:
    """An edge data center at one site."""

    site: str
    zone_id: str
    lat: float
    lon: float
    servers: list[EdgeServer] = field(default_factory=list)

    def __post_init__(self) -> None:
        for server in self.servers:
            self._check_server(server)

    def _check_server(self, server: EdgeServer) -> None:
        if server.site != self.site:
            raise ValueError(
                f"server {server.server_id} has site {server.site!r}, expected {self.site!r}")
        if server.zone_id != self.zone_id:
            raise ValueError(
                f"server {server.server_id} has zone {server.zone_id!r}, expected {self.zone_id!r}")

    def __len__(self) -> int:
        return len(self.servers)

    def __iter__(self) -> Iterator[EdgeServer]:
        return iter(self.servers)

    def add_server(self, server: EdgeServer) -> None:
        """Add a server, validating its site/zone consistency."""
        self._check_server(server)
        if any(s.server_id == server.server_id for s in self.servers):
            raise ValueError(f"duplicate server id {server.server_id!r} in {self.site}")
        self.servers.append(server)

    def server(self, server_id: str) -> EdgeServer:
        """Look up a server by id."""
        for s in self.servers:
            if s.server_id == server_id:
                return s
        raise KeyError(f"no server {server_id!r} in data center {self.site!r}")

    @property
    def coordinates(self) -> tuple[float, float]:
        """(latitude, longitude) of the site."""
        return (self.lat, self.lon)

    def total_capacity(self) -> ResourceVector:
        """Aggregate capacity of all servers in the data center."""
        total = ResourceVector()
        for s in self.servers:
            total = total + s.total_capacity
        return total

    def available_capacity(self) -> ResourceVector:
        """Aggregate available capacity of all servers."""
        total = ResourceVector()
        for s in self.servers:
            total = total + s.available_capacity
        return total

    def powered_on_servers(self) -> list[EdgeServer]:
        """Servers that are currently powered on."""
        return [s for s in self.servers if s.is_on]

    def base_power_w(self) -> float:
        """Aggregate base power of powered-on servers."""
        return sum(s.base_power_w for s in self.powered_on_servers())
