"""Multi-dimensional resource vectors.

Edge servers are "computing, storage, and networking resource-limited and
diverse in capacity and resource types" (Section 4.2, constraint 1). A
:class:`ResourceVector` is a small immutable-ish mapping from resource-type
name (e.g. ``cpu_cores``, ``memory_mb``, ``gpu_memory_mb``) to a non-negative
amount, with element-wise arithmetic and comparison helpers used by the
capacity constraints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

#: Resource dimensions used by the default hardware catalogue.
STANDARD_RESOURCES: tuple[str, ...] = ("cpu_cores", "memory_mb", "gpu_memory_mb")


@dataclass
class ResourceVector:
    """A mapping of resource type to amount with element-wise operations."""

    amounts: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        clean: dict[str, float] = {}
        for key, value in self.amounts.items():
            v = float(value)
            if v < 0:
                raise ValueError(f"resource {key!r} must be non-negative, got {value}")
            clean[str(key)] = v
        self.amounts = clean

    # -- construction --------------------------------------------------------

    @classmethod
    def of(cls, **amounts: float) -> "ResourceVector":
        """Build a vector from keyword arguments: ``ResourceVector.of(cpu_cores=4)``."""
        return cls(amounts=dict(amounts))

    @classmethod
    def zeros(cls, keys: tuple[str, ...] = STANDARD_RESOURCES) -> "ResourceVector":
        """A zero vector over the given resource dimensions."""
        return cls(amounts={k: 0.0 for k in keys})

    def copy(self) -> "ResourceVector":
        """A deep copy of this vector."""
        return ResourceVector(amounts=dict(self.amounts))

    # -- mapping-style access -------------------------------------------------

    def __getitem__(self, key: str) -> float:
        return self.amounts.get(key, 0.0)

    def __contains__(self, key: str) -> bool:
        return key in self.amounts

    def __iter__(self) -> Iterator[str]:
        return iter(self.amounts)

    def keys(self) -> list[str]:
        """Resource-type names present in this vector."""
        return list(self.amounts)

    def get(self, key: str, default: float = 0.0) -> float:
        """Amount for ``key`` or ``default`` when absent."""
        return self.amounts.get(key, default)

    # -- arithmetic ------------------------------------------------------------

    def _merge_keys(self, other: "ResourceVector | Mapping[str, float]") -> set[str]:
        other_keys = other.keys() if hasattr(other, "keys") else []
        return set(self.amounts) | set(other_keys)

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        keys = self._merge_keys(other)
        return ResourceVector({k: self.get(k) + other.get(k) for k in keys})

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        keys = self._merge_keys(other)
        result = {k: self.get(k) - other.get(k) for k in keys}
        if any(v < -1e-9 for v in result.values()):
            negative = {k: v for k, v in result.items() if v < -1e-9}
            raise ValueError(f"resource subtraction would go negative: {negative}")
        return ResourceVector({k: max(v, 0.0) for k, v in result.items()})

    def __mul__(self, scale: float) -> "ResourceVector":
        s = float(scale)
        if s < 0:
            raise ValueError(f"cannot scale resources by a negative factor ({scale})")
        return ResourceVector({k: v * s for k, v in self.amounts.items()})

    __rmul__ = __mul__

    # -- comparisons -----------------------------------------------------------

    def fits_within(self, capacity: "ResourceVector", slack: float = 1e-9) -> bool:
        """True if every demand dimension fits within ``capacity`` (missing = 0)."""
        return all(self.get(k) <= capacity.get(k) + slack for k in self.amounts)

    def dominates(self, other: "ResourceVector") -> bool:
        """True if this vector is >= ``other`` in every dimension of either vector."""
        keys = self._merge_keys(other)
        return all(self.get(k) >= other.get(k) - 1e-9 for k in keys)

    def is_zero(self) -> bool:
        """True if every amount is (numerically) zero."""
        return all(abs(v) < 1e-12 for v in self.amounts.values())

    def utilization_of(self, capacity: "ResourceVector") -> dict[str, float]:
        """Fractional utilisation per dimension relative to ``capacity``."""
        out: dict[str, float] = {}
        for k in capacity.keys():
            cap = capacity.get(k)
            out[k] = self.get(k) / cap if cap > 0 else 0.0
        return out

    def max_utilization_of(self, capacity: "ResourceVector") -> float:
        """The tightest (largest) fractional utilisation across dimensions."""
        utils = self.utilization_of(capacity)
        return max(utils.values()) if utils else 0.0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResourceVector):
            return NotImplemented
        keys = self._merge_keys(other)
        return all(abs(self.get(k) - other.get(k)) < 1e-9 for k in keys)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self.amounts.items()))
        return f"ResourceVector({inner})"
