"""Edge fleets: collections of edge data centers plus builders for the paper's setups.

Two builders mirror the paper's two deployment scenarios:

* :func:`build_regional_fleet` — a five-city mesoscale deployment (one server
  per city, Dell R630 + NVIDIA A2), matching the testbed of Section 6.1.2.
* :func:`build_cdn_fleet` — a CDN-scale fleet with one data center per CDN
  site, used by the year-long simulations of Section 6.3. Capacity can be
  homogeneous or population-proportional (Section 6.3.4), and the accelerator
  type can be fixed or mixed (Section 6.3.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.cluster.hardware import DEVICE_CATALOG, DeviceSpec, NVIDIA_A2, XEON_E5_2660V3
from repro.cluster.datacenter import EdgeDataCenter
from repro.cluster.resources import ResourceVector
from repro.cluster.server import EdgeServer, PowerState
from repro.datasets.akamai import CDNFootprint
from repro.datasets.cities import CityCatalog, default_city_catalog
from repro.datasets.regions import MesoscaleRegion
from repro.utils.rng import substream


@dataclass
class EdgeFleet:
    """A named collection of edge data centers with server lookup helpers."""

    name: str
    datacenters: list[EdgeDataCenter] = field(default_factory=list)

    def __post_init__(self) -> None:
        sites = [dc.site for dc in self.datacenters]
        if len(set(sites)) != len(sites):
            dupes = sorted({s for s in sites if sites.count(s) > 1})
            raise ValueError(f"duplicate data-center sites in fleet {self.name!r}: {dupes}")

    def __len__(self) -> int:
        return len(self.datacenters)

    def __iter__(self) -> Iterator[EdgeDataCenter]:
        return iter(self.datacenters)

    def sites(self) -> list[str]:
        """Site names of all data centers."""
        return [dc.site for dc in self.datacenters]

    def datacenter(self, site: str) -> EdgeDataCenter:
        """Look up a data center by site name."""
        for dc in self.datacenters:
            if dc.site == site:
                return dc
        raise KeyError(f"no data center at site {site!r} in fleet {self.name!r}")

    def servers(self) -> list[EdgeServer]:
        """All servers across the fleet, in data-center order."""
        return [s for dc in self.datacenters for s in dc.servers]

    def server(self, server_id: str) -> EdgeServer:
        """Look up a server anywhere in the fleet by id."""
        for dc in self.datacenters:
            for s in dc.servers:
                if s.server_id == server_id:
                    return s
        raise KeyError(f"no server {server_id!r} in fleet {self.name!r}")

    def zone_ids(self) -> list[str]:
        """Sorted unique carbon zones covered by the fleet."""
        return sorted({dc.zone_id for dc in self.datacenters})

    def site_coordinates(self) -> np.ndarray:
        """(N, 2) array of [lat, lon] per data center, in fleet order."""
        return np.array([[dc.lat, dc.lon] for dc in self.datacenters], dtype=float)

    def total_capacity(self) -> ResourceVector:
        """Aggregate capacity across the fleet."""
        total = ResourceVector()
        for dc in self.datacenters:
            total = total + dc.total_capacity()
        return total

    def reset_allocations(self, power_state: PowerState = PowerState.OFF) -> None:
        """Clear all allocations and set every server to the given power state."""
        for server in self.servers():
            server.reset_allocations()
            server.power_state = power_state


def build_regional_fleet(
    region: MesoscaleRegion,
    servers_per_site: int = 1,
    accelerator: DeviceSpec | None = NVIDIA_A2,
    cpu: DeviceSpec = XEON_E5_2660V3,
    catalog: CityCatalog | None = None,
    powered_on: bool = True,
) -> EdgeFleet:
    """Build a mesoscale regional fleet with one data center per region city."""
    if servers_per_site <= 0:
        raise ValueError(f"servers_per_site must be positive, got {servers_per_site}")
    catalog = catalog or default_city_catalog()
    datacenters: list[EdgeDataCenter] = []
    for city in region.cities(catalog):
        dc = EdgeDataCenter(site=city.name, zone_id=city.zone_id, lat=city.lat, lon=city.lon)
        for k in range(servers_per_site):
            dc.add_server(EdgeServer(
                server_id=f"{city.name.replace(' ', '_')}-srv{k:02d}",
                site=city.name,
                zone_id=city.zone_id,
                cpu=cpu,
                accelerator=accelerator,
                power_state=PowerState.ON if powered_on else PowerState.OFF,
            ))
        datacenters.append(dc)
    return EdgeFleet(name=f"{region.name} regional fleet", datacenters=datacenters)


def build_cdn_fleet(
    footprint: CDNFootprint,
    servers_per_site: int = 1,
    accelerator: DeviceSpec | None = NVIDIA_A2,
    accelerator_mix: Sequence[str] | None = None,
    capacity_weights: dict[str, float] | None = None,
    max_servers_per_site: int = 8,
    cpu: DeviceSpec = XEON_E5_2660V3,
    powered_on: bool = True,
    seed: int = 0,
) -> EdgeFleet:
    """Build a CDN-scale fleet with one data center per (deduplicated) CDN site.

    Parameters
    ----------
    footprint:
        CDN footprint; multiple sites in the same city are collapsed into one
        data center (paper integration step 4).
    servers_per_site:
        Baseline number of servers per data center.
    accelerator:
        Accelerator installed in every server when ``accelerator_mix`` is None.
    accelerator_mix:
        Optional sequence of device names; each server draws its accelerator
        uniformly from this list (the "Hetero." configuration of Figure 15).
    capacity_weights:
        Optional per-city weights (e.g. population shares); the number of
        servers at a site is scaled by its weight relative to the mean weight,
        clamped to [1, max_servers_per_site] (Section 6.3.4 capacity scenario).
    max_servers_per_site:
        Upper bound on servers per site when capacity weights are used.
    """
    if servers_per_site <= 0:
        raise ValueError(f"servers_per_site must be positive, got {servers_per_site}")
    deduplicated = footprint.one_per_city()
    rng = substream(seed, "cdn-fleet-accelerators")
    mean_weight = None
    if capacity_weights:
        mean_weight = float(np.mean(list(capacity_weights.values())))
        if mean_weight <= 0:
            raise ValueError("capacity_weights must have a positive mean")

    datacenters: list[EdgeDataCenter] = []
    for site in deduplicated:
        n_servers = servers_per_site
        if capacity_weights is not None and mean_weight:
            weight = capacity_weights.get(site.city_name, mean_weight)
            n_servers = int(np.clip(round(servers_per_site * weight / mean_weight),
                                    1, max_servers_per_site))
        dc = EdgeDataCenter(site=site.city_name, zone_id=site.zone_id,
                            lat=site.lat, lon=site.lon)
        for k in range(n_servers):
            if accelerator_mix:
                device = DEVICE_CATALOG[str(accelerator_mix[int(rng.integers(len(accelerator_mix)))])]
            else:
                device = accelerator
            dc.add_server(EdgeServer(
                server_id=f"{site.city_name.replace(' ', '_')}-srv{k:02d}",
                site=site.city_name,
                zone_id=site.zone_id,
                cpu=cpu,
                accelerator=device,
                power_state=PowerState.ON if powered_on else PowerState.OFF,
            ))
        datacenters.append(dc)
    return EdgeFleet(name="CDN fleet", datacenters=datacenters)
