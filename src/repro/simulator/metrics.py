"""Per-epoch simulation records and their aggregation into paper metrics."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.savings import carbon_savings_pct


@dataclass
class EpochRecord:
    """Metrics of one policy over one placement epoch."""

    epoch: int
    start_hour: int
    policy: str
    carbon_g: float
    energy_j: float
    mean_one_way_latency_ms: float
    latency_increase_one_way_ms: float
    n_placed: int
    n_unplaced: int
    apps_per_site: dict[str, int] = field(default_factory=dict)
    #: Carbon intensity of the zone hosting each placed application (Ī at placement).
    hosting_intensities: list[float] = field(default_factory=list)
    solve_time_s: float = 0.0
    #: Applications in this epoch's batch with no feasible server at all
    #: (no latency-increase baseline exists for them; they also show up in
    #: ``n_unplaced``). The count is a property of the epoch's problem, so it
    #: is identical across the policies of one epoch.
    n_nearest_unreachable: int = 0
    #: Provably order-independent share of this epoch's greedy construction
    #: (``ShardPlan.parallel_fraction``) when intra-epoch sharding was
    #: requested; ``0.0`` marks a saturated epoch whose planner degraded to
    #: the serial kernel, ``None`` an unsharded run. Execution diagnostics,
    #: not science — the placements are bit-identical either way.
    shard_parallel_fraction: float | None = None
    #: Batched wave commits the reconciliation replay executed for this
    #: epoch's construction (``FillStats.waves``); ``None`` when the backend
    #: does not run the greedy kernel. Execution diagnostics like
    #: ``shard_parallel_fraction`` — varies with the reconcile mode, never
    #: with the placements.
    wave_count: int | None = None
    #: Fraction of replayed applications that took the exact per-application
    #: step instead of a batched wave commit (1.0 under the serial replay).
    revalidation_rate: float | None = None
    #: Full placement decision (app id -> hosting server id), populated only
    #: when the caller asks for it (``record_assignments``): the replay-parity
    #: harness byte-diffs these against the online serving loop's decisions.
    #: Empty by default so year-long simulations don't hold every epoch's
    #: assignment map in memory.
    assignments: dict[str, str] = field(default_factory=dict)


@dataclass
class SimulationResult:
    """All epoch records of one CDN simulation, keyed by policy."""

    scenario_name: str
    records: dict[str, list[EpochRecord]] = field(default_factory=dict)

    def policies(self) -> list[str]:
        """Policy names present in the result."""
        return list(self.records)

    def add(self, record: EpochRecord) -> None:
        """Append one epoch record."""
        self.records.setdefault(record.policy, []).append(record)

    def total_carbon_g(self, policy: str) -> float:
        """Total carbon of one policy across all epochs, grams."""
        return float(sum(r.carbon_g for r in self._of(policy)))

    def total_energy_j(self, policy: str) -> float:
        """Total energy of one policy across all epochs, joules."""
        return float(sum(r.energy_j for r in self._of(policy)))

    def carbon_savings_pct(self, policy: str, baseline: str = "Latency-aware") -> float:
        """Year-long carbon savings of ``policy`` relative to ``baseline``."""
        return carbon_savings_pct(self.total_carbon_g(baseline), self.total_carbon_g(policy))

    def mean_latency_increase_rtt_ms(self, policy: str) -> float:
        """Mean round-trip latency increase of a policy (placed-app weighted)."""
        records = self._of(policy)
        # Unreachable apps are never placed, so n_placed is exactly the
        # number of applications contributing to each epoch's mean.
        weights = np.array([r.n_placed for r in records], dtype=float)
        increases = np.array([r.latency_increase_one_way_ms for r in records])
        if weights.sum() == 0:
            return 0.0
        return float(2.0 * np.average(increases, weights=weights))

    def monthly_savings_pct(self, policy: str, baseline: str = "Latency-aware") -> list[float]:
        """Per-epoch carbon savings of a policy (the Figure 13a series)."""
        base = self._of(baseline)
        pol = self._of(policy)
        if len(base) != len(pol):
            raise ValueError("baseline and policy must cover the same epochs")
        return [carbon_savings_pct(b.carbon_g, p.carbon_g) for b, p in zip(base, pol)]

    def monthly_latency_increase_rtt_ms(self, policy: str) -> list[float]:
        """Per-epoch round-trip latency increase (the Figure 13b series)."""
        return [2.0 * r.latency_increase_one_way_ms for r in self._of(policy)]

    def hosting_intensity_distribution(self, policy: str) -> np.ndarray:
        """Carbon intensities at which applications executed (Figure 11c CDF data)."""
        values: list[float] = []
        for r in self._of(policy):
            values.extend(r.hosting_intensities)
        return np.asarray(values, dtype=float)

    def placements_per_site(self, policy: str) -> dict[str, list[int]]:
        """Per-site series of placed-application counts across epochs (Figure 13d)."""
        records = self._of(policy)
        sites: set[str] = set()
        for r in records:
            sites.update(r.apps_per_site)
        return {site: [r.apps_per_site.get(site, 0) for r in records] for site in sorted(sites)}

    def total_unplaced(self, policy: str) -> int:
        """Total applications the policy could not place."""
        return int(sum(r.n_unplaced for r in self._of(policy)))

    def total_nearest_unreachable(self, policy: str) -> int:
        """Applications without any feasible server, summed over epochs."""
        return int(sum(r.n_nearest_unreachable for r in self._of(policy)))

    def mean_shard_parallel_fraction(self, policy: str) -> float | None:
        """Mean per-epoch shard parallel fraction of one policy.

        ``None`` when the run never requested intra-epoch sharding; values
        near ``0.0`` flag saturated epochs whose construction degraded to the
        serial kernel (see ``EpochRecord.shard_parallel_fraction``).
        """
        values = [r.shard_parallel_fraction for r in self._of(policy)
                  if r.shard_parallel_fraction is not None]
        if not values:
            return None
        return float(np.mean(values))

    def mean_revalidation_rate(self, policy: str) -> float | None:
        """Mean per-epoch reconciliation revalidation rate of one policy.

        ``None`` when no epoch reported replay telemetry; values near 1.0
        mean the epochs replayed per application (serial reconcile mode, or
        conflict-dense instances past the wave budget), values near 0.0 mean
        the wave replay settled almost everything in batched commits (see
        ``EpochRecord.revalidation_rate``).
        """
        values = [r.revalidation_rate for r in self._of(policy)
                  if r.revalidation_rate is not None]
        if not values:
            return None
        return float(np.mean(values))

    def _of(self, policy: str) -> list[EpochRecord]:
        if policy not in self.records:
            raise KeyError(f"no records for policy {policy!r}; have {list(self.records)}")
        return self.records[policy]
