"""CDN-scale trace-driven simulation (Section 6.3).

The simulator builds a continental CDN fleet from the synthetic Akamai
footprint, generates application arrivals per placement epoch (optionally
population-weighted), and runs every policy under test on identical problem
instances per epoch — the fair comparison the paper's evaluation relies on.
Carbon accounting uses the epoch-mean carbon intensity of the hosting zone,
which (for constant-rate applications) equals integrating the hourly trace
over the epoch.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.carbon.service import CarbonIntensityService
from repro.carbon.synthetic import SyntheticTraceGenerator
from repro.cluster.fleet import EdgeFleet, build_cdn_fleet
from repro.cluster.hardware import DEVICE_CATALOG
from repro.core.policies.base import PlacementPolicy
from repro.core.policies.carbon_edge import CarbonEdgePolicy
from repro.core.policies.energy_aware import EnergyAwarePolicy
from repro.core.policies.intensity_aware import IntensityAwarePolicy
from repro.core.policies.latency_aware import LatencyAwarePolicy
from repro.core.problem import PlacementProblem
from repro.core.validation import validate_solution
from repro.datasets.akamai import CDNFootprint, build_cdn_footprint
from repro.datasets.cities import default_city_catalog
from repro.datasets.electricity_maps import default_zone_catalog
from repro.network.latency import LatencyMatrix, build_latency_matrix
from repro.simulator.metrics import EpochRecord, SimulationResult
from repro.simulator.scenario import CDNScenario
from repro.solver.compile import (
    ScenarioCompilation,
    compile_placement,
    compile_scenario,
    scenario_tier_enabled,
)
from repro.workloads.demand import capacity_weights_from_population, population_weights
from repro.workloads.generator import ApplicationGenerator


def default_policies(solver: str = "greedy",
                     epoch_shards: int = 1,
                     hierarchy_regions: int = 1,
                     refine_backend: str = "greedy") -> list[PlacementPolicy]:
    """The four policies the paper compares (Section 6.1.3).

    ``epoch_shards`` is the per-epoch shard dispatch width: every policy's
    greedy construction partitions the compiled epoch tensors along the
    application axis and solves shards on a worker pool, bit-identically to
    the serial kernel (so sharding never changes a policy comparison).
    ``hierarchy_regions > 1`` routes every policy through the cluster-then-
    refine hierarchy instead (:mod:`repro.solver.hierarchy`) — a different
    solver tier that changes placements (the comparison stays fair because
    all policies go through the same tier).
    """
    knobs = dict(epoch_shards=epoch_shards, hierarchy_regions=hierarchy_regions,
                 refine_backend=refine_backend)
    return [
        LatencyAwarePolicy(**knobs),
        EnergyAwarePolicy(solver=solver, **knobs),
        IntensityAwarePolicy(**knobs),
        CarbonEdgePolicy(solver=solver, **knobs),
    ]


def _build_substrate(scenario: CDNScenario, footprint: CDNFootprint | None
                     ) -> tuple[EdgeFleet, LatencyMatrix, CarbonIntensityService]:
    """Fleet, latency matrix, and carbon service of one scenario's footprint."""
    catalog = default_city_catalog()
    zone_catalog = default_zone_catalog()
    footprint = footprint or build_cdn_footprint(seed=scenario.seed)
    sites = [s for s in footprint.one_per_city() if s.continent == scenario.continent]
    if scenario.max_sites is not None and len(sites) > scenario.max_sites:
        # Keep the most populous cities so demand weighting stays meaningful.
        sites = sorted(sites, key=lambda s: -s.population_k)[: scenario.max_sites]
    if len(sites) < 2:
        raise ValueError("CDN scenario needs at least two sites")
    restricted = CDNFootprint(sites=tuple(sites))

    capacity_weights = None
    if scenario.capacity == "population":
        capacity_weights = capacity_weights_from_population(
            [s.city_name for s in sites], catalog)
    accelerator = DEVICE_CATALOG[scenario.accelerator]
    fleet = build_cdn_fleet(
        restricted,
        servers_per_site=scenario.servers_per_site,
        accelerator=accelerator,
        accelerator_mix=list(scenario.accelerator_mix) if scenario.accelerator_mix else None,
        capacity_weights=capacity_weights,
        seed=scenario.seed,
    )

    site_names = fleet.sites()
    cities = [catalog.get(name) for name in site_names]
    latency = build_latency_matrix(
        site_names, catalog.coordinates_array(site_names),
        countries=[c.state or c.country for c in cities])

    zone_ids = sorted({dc.zone_id for dc in fleet})
    traces = SyntheticTraceGenerator(seed=scenario.seed).generate_set(
        zone_catalog.get(z) for z in zone_ids)
    carbon = CarbonIntensityService(traces=traces)
    return fleet, latency, carbon


#: Scenario-substrate cache: scenario variants that share a footprint (same
#: continent/sites/capacity/hardware/seed, e.g. a latency-limit sweep) reuse
#: one fleet + latency matrix + year of traces instead of rebuilding them per
#: variant. Keyed on exactly the scenario fields the substrate depends on;
#: bounded LRU so long sweep sessions keep bounded memory.
_SUBSTRATE_CACHE: OrderedDict[tuple, tuple[EdgeFleet, LatencyMatrix,
                                           CarbonIntensityService]] = OrderedDict()
_SUBSTRATE_CACHE_MAX: int = 8


def _substrate_key(scenario: CDNScenario) -> tuple:
    return (
        scenario.continent,
        scenario.max_sites,
        scenario.capacity,
        scenario.servers_per_site,
        scenario.accelerator,
        tuple(scenario.accelerator_mix) if scenario.accelerator_mix else None,
        scenario.seed,
    )


def scenario_substrate(scenario: CDNScenario, footprint: CDNFootprint | None = None
                       ) -> tuple[EdgeFleet, LatencyMatrix, CarbonIntensityService]:
    """The (possibly cached) substrate shared by scenario variants.

    Safe to share across sequential simulations: :meth:`CDNSimulator.epoch_problem`
    resets all fleet allocation/power state before every problem build, so the
    substrate carries no simulation history between runs. An explicitly
    supplied footprint bypasses the cache (its identity is not part of the key).
    """
    if footprint is not None:
        return _build_substrate(scenario, footprint)
    key = _substrate_key(scenario)
    if key in _SUBSTRATE_CACHE:
        _SUBSTRATE_CACHE.move_to_end(key)
        return _SUBSTRATE_CACHE[key]
    value = _build_substrate(scenario, None)
    _SUBSTRATE_CACHE[key] = value
    while len(_SUBSTRATE_CACHE) > _SUBSTRATE_CACHE_MAX:
        _SUBSTRATE_CACHE.popitem(last=False)
    return value


def clear_substrate_cache() -> None:
    """Drop every cached scenario substrate (and the scenario compilations
    keyed by them — the compilation tier pins its substrate objects, so both
    caches must drop together for the memory to actually be released)."""
    _SUBSTRATE_CACHE.clear()
    from repro.solver.compile import clear_scenario_compilations
    clear_scenario_compilations()


def build_epoch_record(problem: PlacementProblem, compilation, solution,
                       epoch: int, start_hour: int,
                       record_assignments: bool = False) -> EpochRecord:
    """Assemble one policy's :class:`EpochRecord` from a solved epoch.

    This is the single definition of what an epoch decision *is* — shared by
    the batch loop (:meth:`CDNSimulator.run`) and the online placement
    service (:mod:`repro.serving.service`), so the replay-parity contract
    byte-diffs two runs of the same record builder rather than two
    hand-maintained copies of it.
    """
    if solution.placements:
        j_arr = np.fromiter(solution.placements.values(), dtype=np.intp,
                            count=len(solution.placements))
        hosting_intensities = problem.intensity[j_arr].tolist()
    else:
        hosting_intensities = []
    assignments: dict[str, str] = {}
    if record_assignments:
        assignments = {app_id: problem.servers[j].server_id
                       for app_id, j in solution.placements.items()}
    return EpochRecord(
        epoch=epoch,
        start_hour=start_hour,
        policy=solution.policy_name,
        carbon_g=solution.total_carbon_g(),
        energy_j=solution.total_energy_j(),
        mean_one_way_latency_ms=solution.mean_latency_ms(),
        latency_increase_one_way_ms=solution.latency_increase_ms(),
        n_placed=solution.n_placed,
        n_unplaced=len(solution.unplaced),
        apps_per_site=solution.apps_per_site(),
        hosting_intensities=hosting_intensities,
        solve_time_s=solution.solve_time_s,
        n_nearest_unreachable=compilation.n_nearest_unreachable,
        shard_parallel_fraction=solution.shard_parallel_fraction,
        wave_count=solution.wave_count,
        revalidation_rate=solution.revalidation_rate,
        assignments=assignments,
    )


@dataclass
class CDNSimulator:
    """Year-long CDN simulation for one scenario."""

    scenario: CDNScenario
    footprint: CDNFootprint | None = None
    fleet: EdgeFleet = field(init=False)
    latency: LatencyMatrix = field(init=False)
    carbon: CarbonIntensityService = field(init=False)
    generator: ApplicationGenerator = field(init=False)

    def __post_init__(self) -> None:
        scenario = self.scenario
        catalog = default_city_catalog()
        self.fleet, self.latency, self.carbon = scenario_substrate(
            scenario, self.footprint)
        # The substrate may be shared with a previous simulator of the same
        # key; restore the freshly-built fleet baseline (no allocations, all
        # servers on) so the constructor contract is cache-independent.
        self.fleet.reset_allocations()
        for server in self.fleet.servers():
            server.power_on()
        site_names = self.fleet.sites()

        site_weights = None
        if scenario.demand == "population":
            weights = population_weights(site_names, catalog)
            site_weights = [weights[name] for name in site_names]
        self.generator = ApplicationGenerator(
            sites=site_names,
            site_weights=site_weights,
            workload_mix=dict(scenario.workload_mix),
            mean_arrivals_per_batch=scenario.apps_per_site_per_epoch * len(site_names),
            latency_slo_ms=scenario.latency_limit_ms,
            request_rate_rps=scenario.request_rate_rps,
            duration_hours=float(scenario.hours_per_epoch),
            seed=scenario.seed,
        )

    # -- simulation -------------------------------------------------------------

    def scenario_compilation(self) -> ScenarioCompilation | None:
        """The scenario-lifetime compilation tier backing every epoch's build.

        Built once per substrate (and shared — through
        :func:`repro.solver.compile.compile_scenario`'s substrate-keyed cache
        — with every other simulator over the same fleet/latency/carbon
        objects, e.g. the variants of a latency-limit sweep). Returns ``None``
        when the tier is force-disabled
        (:func:`repro.solver.compile.scenario_tier_enabled`), which sends
        :meth:`epoch_problem` down the cold per-epoch rebuild path the tier
        is contractually bit-identical to.
        """
        if not scenario_tier_enabled():
            return None
        return compile_scenario(self.fleet.servers(), self.latency, self.carbon)

    def epoch_problem(self, epoch: int) -> PlacementProblem:
        """Build the placement problem for one epoch (fresh fleet state)."""
        scenario = self.scenario
        start_hour = scenario.epoch_start_hour(epoch)
        batch = self.generator.generate_batch(epoch, start_hour)
        if len(batch) == 0:
            raise ValueError(f"epoch {epoch} generated no applications")
        self.fleet.reset_allocations()
        for server in self.fleet.servers():
            server.power_on()
        # The batch goes through columnar: the substrate consumes its class
        # table directly (per-object view stays unmaterialised unless the
        # CARBON_EDGE_DISABLE_COLUMNAR kill-switch or a cold rebuild needs it).
        return PlacementProblem.build(
            applications=batch,
            servers=self.fleet.servers(),
            latency=self.latency,
            carbon=self.carbon,
            hour=start_hour,
            horizon_hours=float(scenario.hours_per_epoch),
            substrate=self.scenario_compilation(),
        )

    def run(self, policies: list[PlacementPolicy] | None = None,
            validate: bool = True, record_assignments: bool = False) -> SimulationResult:
        """Run the full scenario for every policy and collect epoch records.

        Each epoch's problem is assembled from the scenario-lifetime
        compilation (:meth:`scenario_compilation` — static substrate tensors
        built once, per-epoch deltas gathered from class rows) and compiled
        exactly once (:func:`repro.solver.compile.compile_placement`); the
        feasibility report, objective coefficient matrices, dense cost
        tensors, and nearest-feasible-server latencies are then shared
        read-only by all policies under test and by the metrics collection
        below — the fair comparison the paper's evaluation relies on, without
        each policy paying for its own copy of the same precomputation.
        """
        policies = policies if policies is not None else default_policies(
            self.scenario.solver, self.scenario.epoch_shards,
            self.scenario.hierarchy_regions, self.scenario.refine_backend)
        result = SimulationResult(scenario_name=f"CDN-{self.scenario.continent}")
        plan = None
        if any(p.solver_config().hierarchy_regions > 1 for p in policies):
            from repro.solver.hierarchy import build_region_plan

            plan = build_region_plan(
                self.fleet.sites(), self.fleet.site_coordinates(),
                max(p.solver_config().hierarchy_regions for p in policies),
                seed=self.scenario.seed)
        for epoch in range(self.scenario.n_epochs):
            problem = self.epoch_problem(epoch)
            # Apps with no feasible server at all: no policy can place them
            # and they have no nearest-feasible latency baseline. Reported
            # per epoch (the count is a property of the problem, so it is the
            # same for every policy) instead of silently skewing the
            # latency-increase mean as the seed's fallback did.
            compilation = compile_placement(problem)
            for policy in policies:
                if plan is not None and policy.solver_config().hierarchy_regions > 1:
                    solution = self._hierarchical_place(policy, problem, plan, epoch)
                else:
                    solution = policy.timed_place(problem)
                if validate:
                    validate_solution(solution, strict=True)
                result.add(build_epoch_record(
                    problem, compilation, solution, epoch,
                    self.scenario.epoch_start_hour(epoch),
                    record_assignments=record_assignments))
        return result

    def _hierarchical_place(self, policy: PlacementPolicy,
                            problem: PlacementProblem, plan, epoch: int):
        """Route one policy's epoch through the cluster-then-refine tier.

        The hierarchy solves against the scenario compilation (it never
        materialises the flat apps×servers tensors), then the assignment
        vector is decoded against the already-built epoch problem so the
        record/validation path is identical to the flat branch.
        """
        import time

        from repro.solver.compile import assignment_to_solution
        from repro.solver.hierarchy import solve_hierarchical
        from repro.workloads.generator import LazyApplications

        substrate = compile_scenario(self.fleet.servers(), self.latency, self.carbon)
        manage_power = getattr(policy, "manage_power", True)
        # A problem assembled from a columnar batch hands the batch itself to
        # the hierarchy (class table intact); object-built problems pass the
        # application list as before.
        apps = problem.applications
        apps = apps.batch if isinstance(apps, LazyApplications) else list(apps)
        start = time.monotonic()
        outcome = solve_hierarchical(
            substrate, apps, plan,
            hour=self.scenario.epoch_start_hour(epoch),
            horizon_hours=float(self.scenario.hours_per_epoch),
            objective=policy.objective_kind,
            alpha=getattr(policy, "alpha", 0.0),
            manage_power=manage_power,
            config=policy.solver_config(),
            seed=self.scenario.seed)
        solution = assignment_to_solution(problem, outcome.assignment,
                                          manage_power=manage_power)
        solution.solve_time_s = time.monotonic() - start
        solution.policy_name = policy.name
        return solution


def run_cdn_simulation(scenario: CDNScenario,
                       policies: list[PlacementPolicy] | None = None,
                       footprint: CDNFootprint | None = None,
                       validate: bool = True) -> SimulationResult:
    """Convenience wrapper: build a :class:`CDNSimulator` and run it."""
    simulator = CDNSimulator(scenario=scenario, footprint=footprint)
    return simulator.run(policies=policies, validate=validate)
