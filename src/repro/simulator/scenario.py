"""CDN simulation scenario configuration."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CDNScenario:
    """Configuration of one CDN-scale, trace-driven simulation.

    Parameters
    ----------
    continent:
        ``"US"`` or ``"EU"`` — which side of the CDN footprint to simulate.
    latency_limit_ms:
        Round-trip latency SLO given to every application (paper default 20 ms,
        roughly a 500 km radius).
    n_epochs:
        Number of placement epochs covering the year (12 = monthly, 52 = weekly).
    apps_per_site_per_epoch:
        Mean number of applications arriving per site per epoch.
    workload_mix:
        Arrival probability per workload name.
    demand:
        ``"homogeneous"`` (equal per site) or ``"population"`` (Section 6.3.4
        demand scenario).
    capacity:
        ``"homogeneous"`` or ``"population"`` (Section 6.3.4 capacity scenario).
    servers_per_site:
        Baseline number of servers per CDN site.
    accelerator:
        Accelerator name installed everywhere (ignored when ``accelerator_mix``
        is set).
    accelerator_mix:
        Optional list of accelerator names to mix across servers (Figure 15's
        "Hetero." configuration).
    request_rate_rps:
        Request rate per application.
    max_sites:
        Optional cap on the number of CDN cities simulated (keeps tests fast).
    solver:
        Solver strategy handed to the optimisation-based policies.
    epoch_shards:
        Intra-epoch shard count for the dense greedy kernel: each epoch's
        compiled tensors are partitioned along the application axis and
        solved on a worker pool. Solutions — and therefore every simulation
        artifact — are bit-identical for any value (see
        :mod:`repro.solver.compile`); ``1`` keeps the serial kernel.
    hierarchy_regions:
        Number of geographic regions for the cluster-then-refine solver tier
        (:mod:`repro.solver.hierarchy`). ``1`` keeps the flat solve; higher
        values cluster the fleet, solve a coarse apps×regions pass, and
        refine per region. Unlike ``epoch_shards`` this knob *changes the
        answer* (the coarse/refine gap is recorded, never hidden), but for a
        fixed value the artifacts stay byte-stable across worker counts and
        dispatch modes.
    refine_backend:
        Registry backend used for each region's refinement sub-solve when
        ``hierarchy_regions > 1``.
    seed:
        Root seed for arrivals and trace generation.
    """

    continent: str = "US"
    latency_limit_ms: float = 20.0
    n_epochs: int = 12
    apps_per_site_per_epoch: float = 2.0
    workload_mix: dict[str, float] = field(default_factory=lambda: {"ResNet50": 1.0})
    demand: str = "homogeneous"
    capacity: str = "homogeneous"
    servers_per_site: int = 1
    accelerator: str = "NVIDIA A2"
    accelerator_mix: tuple[str, ...] | None = None
    request_rate_rps: float = 10.0
    max_sites: int | None = None
    solver: str = "greedy"
    epoch_shards: int = 1
    hierarchy_regions: int = 1
    refine_backend: str = "greedy"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.continent not in ("US", "EU"):
            raise ValueError(f"continent must be 'US' or 'EU', got {self.continent!r}")
        if self.latency_limit_ms <= 0:
            raise ValueError("latency_limit_ms must be positive")
        if self.n_epochs <= 0 or self.n_epochs > 8760:
            raise ValueError("n_epochs must be in 1..8760")
        if self.apps_per_site_per_epoch <= 0:
            raise ValueError("apps_per_site_per_epoch must be positive")
        if self.demand not in ("homogeneous", "population"):
            raise ValueError("demand must be 'homogeneous' or 'population'")
        if self.capacity not in ("homogeneous", "population"):
            raise ValueError("capacity must be 'homogeneous' or 'population'")
        if self.servers_per_site <= 0:
            raise ValueError("servers_per_site must be positive")
        if self.max_sites is not None and self.max_sites <= 1:
            raise ValueError("max_sites must be at least 2")
        if self.epoch_shards < 1:
            raise ValueError(f"epoch_shards must be >= 1, got {self.epoch_shards}")
        if self.hierarchy_regions < 1:
            raise ValueError(
                f"hierarchy_regions must be >= 1, got {self.hierarchy_regions}")
        if not self.refine_backend or not isinstance(self.refine_backend, str):
            raise ValueError(
                f"refine_backend must be a non-empty backend name, "
                f"got {self.refine_backend!r}")

    @property
    def hours_per_epoch(self) -> int:
        """Length of one placement epoch in hours (the year divided evenly)."""
        return max(1, 8760 // self.n_epochs)

    def epoch_start_hour(self, epoch: int) -> int:
        """Hour-of-year at which the given epoch starts."""
        if not 0 <= epoch < self.n_epochs:
            raise ValueError(f"epoch must be in 0..{self.n_epochs - 1}")
        return epoch * self.hours_per_epoch
