"""A small discrete-event simulation engine.

The engine advances a :class:`~repro.utils.timeutils.SimClock` through an
:class:`~repro.simulator.events.EventQueue`, dispatching each event to its
handler (or to a handler registered for its kind). It is intentionally simple —
the CDN simulation is epoch-driven and mostly vectorised, but request-level
replays (and tests of orchestration behaviour) use the engine directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.simulator.events import Event, EventQueue
from repro.utils.timeutils import SimClock


@dataclass
class SimulationEngine:
    """Dispatches events in time order until the queue is empty or a limit hits."""

    clock: SimClock = field(default_factory=SimClock)
    queue: EventQueue = field(default_factory=EventQueue)
    handlers: dict[str, Callable[[Event], None]] = field(default_factory=dict)
    events_processed: int = 0

    def register_handler(self, kind: str, handler: Callable[[Event], None]) -> None:
        """Register a handler for events of the given kind."""
        self.handlers[kind] = handler

    def schedule(self, delay_s: float, kind: str = "event", payload: object = None,
                 handler: Callable[[Event], None] | None = None, priority: int = 0) -> Event:
        """Schedule an event ``delay_s`` seconds after the current time."""
        if not math.isfinite(delay_s):
            raise ValueError(f"delay_s must be finite, got {delay_s}")
        if delay_s < 0:
            raise ValueError("delay_s must be non-negative")
        return self.queue.schedule(self.clock.now_seconds + delay_s, kind=kind,
                                   payload=payload, handler=handler, priority=priority)

    def schedule_at(self, time_s: float, kind: str = "event", payload: object = None,
                    handler: Callable[[Event], None] | None = None, priority: int = 0) -> Event:
        """Schedule an event at an absolute simulation time."""
        if not math.isfinite(time_s):
            raise ValueError(f"time_s must be finite, got {time_s}")
        if time_s < self.clock.now_seconds:
            raise ValueError(
                f"cannot schedule in the past (now={self.clock.now_seconds}, at={time_s})")
        return self.queue.schedule(time_s, kind=kind, payload=payload, handler=handler,
                                   priority=priority)

    def step(self) -> Event:
        """Process the next event and return it."""
        event = self.queue.pop()
        self.clock.advance_to(event.time_s)
        handler = event.handler or self.handlers.get(event.kind)
        if handler is not None:
            handler(event)
        self.events_processed += 1
        return event

    def run(self, until_s: float | None = None, max_events: int | None = None) -> int:
        """Run until the queue drains, ``until_s`` is reached, or ``max_events`` processed.

        Returns the number of events processed by this call.
        """
        processed = 0
        while not self.queue.empty:
            if until_s is not None and self.queue.peek().time_s > until_s:
                break
            if max_events is not None and processed >= max_events:
                break
            self.step()
            processed += 1
        if until_s is not None and self.clock.now_seconds < until_s and (
                max_events is None or processed < max_events):
            self.clock.advance_to(until_s)
        return processed
