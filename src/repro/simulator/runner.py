"""Sharded parallel scenario runner for the experiment registry.

The runner turns declarative :class:`~repro.experiments.registry.ExperimentSpec`
entries into **work units** — one per cell of the spec's sweep grid — and
executes them either inline or across a ``ProcessPoolExecutor``. Three
properties the rest of the tree relies on:

* **Determinism regardless of worker count.** Units are expanded in grid
  order, executed via an order-preserving map, and merged in expansion order;
  each unit's artifact is a pure function of its parameters. ``--workers 4``
  therefore produces byte-identical artifacts to ``--workers 1`` for every
  deterministic spec.
* **Per-process substrate reuse.** Worker processes keep the experiment-level
  caches (:mod:`repro.experiments.common`), the CDN scenario-substrate cache
  (:func:`repro.simulator.cdn.scenario_substrate`), and the scenario-lifetime
  compilation tier keyed by it
  (:func:`repro.solver.compile.compile_scenario`) warm across the units they
  execute: each worker builds the scenario tier once per work unit's
  substrate and reuses it across every epoch of the unit — and across later
  units sharing the substrate, so scenario variants that share a footprint —
  a latency-limit sweep over one continent, the demand/capacity scenarios of
  Figure 14 — pay for the fleet, the latency matrix, the year of carbon
  traces, *and* the static placement tensors once. When a worker crosses
  from one experiment to another it calls
  :func:`repro.experiments.common.clear_caches` (which drops the substrate
  and compilation caches together), bounding resident memory over a
  ``run --all`` session.
* **Unified results.** Every spec yields one versioned
  :class:`~repro.experiments.results.ExperimentResult` whose artifact is the
  schema-validated merge of its units' JSON projections.
"""

from __future__ import annotations

import itertools
import json
import shutil
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.experiments import common
from repro.experiments import registry as experiment_registry
from repro.experiments.registry import ExperimentSpec, RunContext
from repro.experiments.results import ExperimentResult, jsonable

__all__ = [
    "WorkUnit",
    "ScenarioRunner",
    "expand_units",
    "merge_artifacts",
    "merge_artifact_parts",
    "run_experiments",
]

#: Recognised artifact-merge modes: ``memory`` holds every unit fragment and
#: folds them in one pass; ``stream`` spools each fragment to a part file as
#: it is produced and folds parts one at a time, so peak memory is one
#: fragment plus the accumulator. Byte-identical by construction
#: (:func:`jsonable` output round-trips JSON losslessly).
MERGE_MODES: tuple[str, ...] = ("memory", "stream")


@dataclass(frozen=True)
class WorkUnit:
    """One independently executable slice of an experiment's sweep grid."""

    spec_name: str
    index: int
    n_units: int
    smoke: bool
    params: Mapping[str, object]


def expand_units(spec: ExperimentSpec, smoke: bool = False,
                 overrides: Mapping[str, object] | None = None) -> list[WorkUnit]:
    """Expand a spec's sweep grid into work units, in grid order.

    Each declared axis parameter is narrowed to a single-element tuple per
    unit; the cartesian product is taken with the first declared axis
    outermost, matching the experiment's own loop nesting so the merged
    artifact equals a sequential run's.
    """
    params = spec.resolved_params(smoke=smoke, overrides=overrides)
    axes: list[tuple[str, tuple[object, ...]]] = []
    for axis in spec.sweep:
        raw = params[axis.param]
        # An override may narrow a sweep axis to a single scalar (e.g.
        # --hierarchy-regions N against a spec that sweeps the region count).
        values = tuple(raw) if isinstance(raw, (list, tuple)) else (raw,)
        if not values:
            raise ValueError(
                f"experiment {spec.name!r}: sweep axis {axis.param!r} is empty")
        axes.append((axis.param, values))
    combos = list(itertools.product(*[values for _, values in axes])) or [()]
    units = []
    for index, combo in enumerate(combos):
        unit_params = dict(params)
        for (param, _), value in zip(axes, combo):
            unit_params[param] = (value,)
        units.append(WorkUnit(spec_name=spec.name, index=index,
                              n_units=len(combos), smoke=smoke,
                              params=unit_params))
    return units


def _merge(a: object, b: object, path: str = "$") -> object:
    """Merge two JSON fragments produced by adjacent work units.

    Mappings merge recursively (sweep results keyed by continent / region /
    pool); differing lists concatenate (per-unit row slices); equal values —
    sweep-invariant data recomputed identically by every unit — collapse to
    one copy. Anything else is a conflict, which means the spec sharded a
    quantity that is not actually per-unit (fix the spec's sweep or
    drop_keys).
    """
    if isinstance(a, dict) and isinstance(b, dict):
        out = dict(a)
        for key, value in b.items():
            out[key] = _merge(a[key], value, f"{path}.{key}") if key in a else value
        return out
    if isinstance(a, list) and isinstance(b, list):
        return a if a == b else a + b
    if a == b:
        return a
    raise ValueError(
        f"cannot merge sharded artifacts at {path}: {a!r} != {b!r} — the value "
        f"is neither per-unit nor sweep-invariant")


def merge_artifacts(parts: Sequence[Mapping[str, object]]) -> dict[str, object]:
    """Merge per-unit artifacts (already JSON-safe) in unit order."""
    if not parts:
        raise ValueError("no unit artifacts to merge")
    merged: object = parts[0]
    for part in parts[1:]:
        merged = _merge(merged, part)
    return dict(merged)


def merge_artifact_parts(paths: Sequence[Path]) -> dict[str, object]:
    """Merge spooled part files in unit order, loading one part at a time.

    The streaming counterpart of :func:`merge_artifacts`: the same left fold
    over the same fragments, so the result is identical; only the peak
    residency differs (accumulator + one fragment instead of all fragments).
    """
    if not paths:
        raise ValueError("no unit artifacts to merge")
    merged: object = None
    for i, path in enumerate(paths):
        with open(path, encoding="utf-8") as fh:
            part = json.load(fh)
        merged = part if i == 0 else _merge(merged, part)
    return dict(merged)


#: Name of the experiment the *current process* last executed a unit for.
#: Crossing experiments drops the substrate caches (see module docstring).
_LAST_SPEC: str | None = None


def _execute_unit(unit: WorkUnit) -> dict[str, object]:
    """Run one work unit and return its JSON-projected artifact fragment.

    Runs in a worker process (or inline for ``workers=1``); everything it
    touches beyond the unit itself is process-local module state.
    """
    global _LAST_SPEC
    if _LAST_SPEC is not None and _LAST_SPEC != unit.spec_name:
        common.clear_caches()
    _LAST_SPEC = unit.spec_name
    spec = experiment_registry.get(unit.spec_name)
    ctx = RunContext(params=dict(unit.params), smoke=unit.smoke,
                     unit_index=unit.index, n_units=unit.n_units)
    raw = spec.compute(spec, ctx)
    projected = {k: v for k, v in raw.items() if k not in spec.drop_keys}
    return jsonable(projected)


def _execute_unit_to_path(unit: WorkUnit, path: str) -> str:
    """Run one unit and spool its fragment to a part file (streaming merge).

    Only the path crosses the process boundary, so the parent never holds
    more than one fragment at a time during the merge.
    """
    fragment = _execute_unit(unit)
    target = Path(path)
    tmp = target.with_suffix(".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(fragment, fh)
    tmp.replace(target)
    return str(target)


@dataclass
class ScenarioRunner:
    """Executes registered experiments, optionally sharded across processes.

    Parameters
    ----------
    workers:
        Number of worker processes. ``1`` executes inline (same code path as
        the pool workers, so results are identical by construction).
    smoke:
        Apply every spec's reduced-scale smoke overrides.
    seed:
        Optional seed broadcast to every selected spec that takes one.
    overrides:
        Extra parameter overrides broadcast the same way (unknown keys are
        ignored per spec).
    epoch_shards:
        Intra-unit shard count broadcast to every selected spec that takes an
        ``epoch_shards`` parameter: inside each work unit, every placement
        epoch's compiled tensors are partitioned along the application axis
        and solved on a worker pool (:mod:`repro.solver.compile`). Unlike
        ``workers`` — which only scales *across* sweep-grid units — this
        scales within one big unit. Left at ``1``, surplus workers are turned
        into intra-unit shards automatically (``workers > number of units``).
        Sharding is bit-identical by construction, so artifacts do not depend
        on it; it is an execution knob, not an experiment parameter, and the
        recorded artifact params always show the spec's own default.
    merge:
        ``"memory"`` keeps every unit fragment resident and merges at the
        end; ``"stream"`` spools each fragment to a part file in a temporary
        spill directory as it is produced and folds the parts in grid order,
        one at a time — byte-identical artifacts (the fold and the fragments
        are the same), peak memory bounded by one fragment plus the
        accumulator. Another execution-only knob.
    """

    workers: int = 1
    smoke: bool = False
    seed: int | None = None
    overrides: Mapping[str, object] | None = None
    epoch_shards: int = 1
    merge: str = "memory"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.epoch_shards < 1:
            raise ValueError(f"epoch_shards must be >= 1, got {self.epoch_shards}")
        if self.merge not in MERGE_MODES:
            raise ValueError(
                f"merge must be one of {MERGE_MODES}, got {self.merge!r}")

    def _overrides(self) -> dict[str, object]:
        overrides = dict(self.overrides or {})
        if self.seed is not None:
            overrides["seed"] = self.seed
        return overrides

    def _effective_epoch_shards(self, n_units: int) -> int:
        """Explicit ``epoch_shards``, or surplus workers folded into big units."""
        if self.epoch_shards > 1:
            return self.epoch_shards
        if n_units and self.workers > n_units:
            return self.workers // n_units
        return 1

    def run(self, names: Iterable[str]) -> dict[str, ExperimentResult]:
        """Run the named experiments; returns results keyed by name, in order."""
        specs = [experiment_registry.get(name) for name in names]
        if not specs:
            raise ValueError("no experiments selected")
        overrides = self._overrides()

        units: list[WorkUnit] = []
        spans: list[tuple[ExperimentSpec, int, int]] = []  # (spec, start, stop)
        for spec in specs:
            expanded = expand_units(spec, smoke=self.smoke, overrides=overrides)
            spans.append((spec, len(units), len(units) + len(expanded)))
            units.extend(expanded)

        # Intra-unit sharding is an execution-only override (the determinism
        # contract of the sharded kernel keeps artifacts byte-identical), so
        # it is applied to the executed units but never to the recorded
        # params below. It does not change the unit grid, so re-expansion is
        # shape-preserving.
        epoch_shards = self._effective_epoch_shards(len(units))
        if epoch_shards > 1:
            exec_overrides = dict(overrides, epoch_shards=epoch_shards)
            units = []
            for spec, _, _ in spans:
                units.extend(expand_units(spec, smoke=self.smoke,
                                          overrides=exec_overrides))

        start = time.perf_counter()
        spill_dir: Path | None = None
        try:
            if self.merge == "stream":
                spill_dir = Path(tempfile.mkdtemp(prefix="carbon-edge-parts-"))
                paths = [str(spill_dir / f"part-{i:05d}.json")
                         for i in range(len(units))]
                if self.workers == 1 or len(units) == 1:
                    part_paths = [_execute_unit_to_path(unit, path)
                                  for unit, path in zip(units, paths)]
                else:
                    with ProcessPoolExecutor(
                            max_workers=min(self.workers, len(units))) as pool:
                        part_paths = list(pool.map(_execute_unit_to_path,
                                                   units, paths))
                fragments = None
            elif self.workers == 1 or len(units) == 1:
                fragments = [_execute_unit(unit) for unit in units]
            else:
                # Keep units in submission order (grid order, grouped by
                # spec): Executor.map preserves result order regardless of
                # completion order, and grouping gives workers runs of
                # same-substrate units.
                with ProcessPoolExecutor(
                        max_workers=min(self.workers, len(units))) as pool:
                    fragments = list(pool.map(_execute_unit, units))
            elapsed = time.perf_counter() - start

            results: dict[str, ExperimentResult] = {}
            for spec, lo, hi in spans:
                if fragments is None:
                    artifact = merge_artifact_parts(
                        [Path(p) for p in part_paths[lo:hi]])
                else:
                    artifact = merge_artifacts(fragments[lo:hi])
                result = ExperimentResult(
                    name=spec.name,
                    kind=spec.kind,
                    params=jsonable(spec.resolved_params(smoke=self.smoke,
                                                         overrides=overrides)),
                    artifact=artifact,
                    smoke=self.smoke,
                    n_units=hi - lo,
                    elapsed_s=elapsed if len(specs) == 1 else None,
                )
                result.validate(spec.schema)
                results[spec.name] = result
            return results
        finally:
            if spill_dir is not None:
                shutil.rmtree(spill_dir, ignore_errors=True)

    def run_one(self, name: str) -> ExperimentResult:
        """Run a single experiment and return its result."""
        return self.run([name])[name]


def run_experiments(names: Iterable[str], workers: int = 1, smoke: bool = False,
                    seed: int | None = None, epoch_shards: int = 1,
                    merge: str = "memory") -> dict[str, ExperimentResult]:
    """Convenience wrapper: build a :class:`ScenarioRunner` and run it."""
    runner = ScenarioRunner(workers=workers, smoke=smoke, seed=seed,
                            epoch_shards=epoch_shards, merge=merge)
    return runner.run(names)
