"""Discrete-event primitives: timestamped events and a priority queue."""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class Event:
    """A timestamped simulation event.

    Events order by (time, priority, sequence); the payload and handler are not
    part of the ordering.
    """

    time_s: float
    priority: int = 0
    sequence: int = field(default=0)
    kind: str = field(default="event", compare=False)
    payload: Any = field(default=None, compare=False)
    handler: Callable[["Event"], None] | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        # ``NaN < 0`` is False, so a plain non-negativity check would let NaN
        # through — and a NaN time makes heap comparisons inconsistent,
        # silently corrupting the queue's ordering. Reject all non-finite
        # times (NaN, +inf, -inf) up front.
        if not math.isfinite(self.time_s):
            raise ValueError(f"event time must be finite, got {self.time_s}")
        if self.time_s < 0:
            raise ValueError(f"event time must be non-negative, got {self.time_s}")


class EventQueue:
    """A stable priority queue of events."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def empty(self) -> bool:
        """Whether the queue has no pending events."""
        return not self._heap

    def push(self, event: Event) -> Event:
        """Insert an event (its sequence number is assigned here)."""
        event.sequence = next(self._counter)
        heapq.heappush(self._heap, event)
        return event

    def schedule(self, time_s: float, kind: str = "event", payload: Any = None,
                 handler: Callable[[Event], None] | None = None, priority: int = 0) -> Event:
        """Convenience: build and push an event."""
        return self.push(Event(time_s=time_s, priority=priority, kind=kind,
                               payload=payload, handler=handler))

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from an empty EventQueue")
        return heapq.heappop(self._heap)

    def peek(self) -> Event:
        """Return (without removing) the earliest event."""
        if not self._heap:
            raise IndexError("peek on an empty EventQueue")
        return self._heap[0]
