"""Trace-driven CDN-scale simulator (the paper's ~2k-SLOC simulator analogue).

* :mod:`repro.simulator.events` / :mod:`repro.simulator.engine` — a small
  discrete-event simulation core used for request-level replay.
* :mod:`repro.simulator.scenario` — CDN scenario configuration (continent,
  latency limit, epochs, demand/capacity distributions, accelerator mix).
* :mod:`repro.simulator.cdn` — the year-long CDN simulation driving the
  placement policies epoch by epoch over the carbon traces.
* :mod:`repro.simulator.metrics` — per-epoch records and aggregation into the
  quantities Figures 11–15 report.
* :mod:`repro.simulator.runner` — the sharded parallel runner executing
  registered experiments (work-unit expansion, process pool, deterministic
  merge).
"""

from repro.simulator.events import Event, EventQueue
from repro.simulator.engine import SimulationEngine
from repro.simulator.scenario import CDNScenario
from repro.simulator.metrics import EpochRecord, SimulationResult
from repro.simulator.cdn import CDNSimulator, run_cdn_simulation

__all__ = [
    "Event",
    "EventQueue",
    "SimulationEngine",
    "CDNScenario",
    "EpochRecord",
    "SimulationResult",
    "CDNSimulator",
    "run_cdn_simulation",
    "ScenarioRunner",
    "run_experiments",
]


def __getattr__(name):
    # runner imports the experiments package (which imports this package);
    # resolve lazily to keep the import graph acyclic.
    if name in ("ScenarioRunner", "run_experiments", "runner"):
        from repro.simulator import runner
        return getattr(runner, name) if name != "runner" else runner
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
