"""Console entry points: the ``carbon-edge`` command and the quickstart demo.

``carbon-edge`` (see ``setup.py``; also ``python -m repro``) is the umbrella
command. Its ``experiments`` subcommand drives the declarative experiment
registry through the sharded scenario runner::

    carbon-edge experiments list
    carbon-edge experiments run fig11 fig17 --workers 8
    carbon-edge experiments run --all --smoke --workers 2 --output-dir artifacts

Its ``serve`` subcommand runs the online placement service
(:mod:`repro.serving`) — a bounded soak with a seeded load stream, or the
replay-parity check that byte-diffs the service's decisions against the
batch simulator::

    carbon-edge serve --smoke --metrics-out artifacts/serving_metrics.json
    carbon-edge serve --replay-parity --epoch-shards 2
    carbon-edge serve --shape diurnal --rps 0.05 --duration-s 43200

``carbon-edge quickstart`` (and the original ``carbon-edge-quickstart``
alias) builds the Central-EU edge deployment, generates a batch of inference
applications, and compares where CarbonEdge places them against the
Latency-aware baseline — the same scenario as ``examples/quickstart.py`` —
with the solver backend, placement hour, and energy weight exposed as flags::

    carbon-edge-quickstart
    carbon-edge-quickstart --backend heuristic --time-budget-s 0.05
    carbon-edge-quickstart --alpha 0.5 --hour 300
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.carbon import CarbonIntensityService, SyntheticTraceGenerator
from repro.cluster import build_regional_fleet
from repro.core import CarbonEdgePolicy, LatencyAwarePolicy, PlacementProblem
from repro.datasets import CENTRAL_EU, default_city_catalog, default_zone_catalog
from repro.network import build_latency_matrix
from repro.solver import registry
from repro.workloads import make_application


def _add_quickstart_args(parser: argparse.ArgumentParser) -> None:
    """Attach the quickstart flags to a parser (shared by both entry points)."""
    parser.add_argument("--backend", default="auto", choices=registry.backend_names(),
                        help="solver backend for the CarbonEdge policy (default: auto)")
    parser.add_argument("--hour", type=int, default=4700,
                        help="hour-of-year of the placement (default: 4700, mid-July)")
    parser.add_argument("--alpha", type=float, default=0.0,
                        help="energy weight of the multi-objective extension (default: 0)")
    parser.add_argument("--slo-ms", type=float, default=20.0,
                        help="round-trip latency SLO per application, ms (default: 20)")
    parser.add_argument("--time-budget-s", type=float, default=None,
                        help="solver wall-clock budget in seconds (default: the policy's "
                             "30 s limit; values < 1 make 'auto' pick the heuristic)")
    parser.add_argument("--seed", type=int, default=7,
                        help="seed for the synthetic carbon traces (default: 7)")


def build_parser() -> argparse.ArgumentParser:
    """The quickstart command-line interface."""
    parser = argparse.ArgumentParser(
        prog="carbon-edge-quickstart",
        description="Carbon-aware edge placement demo (CarbonEdge reproduction).")
    _add_quickstart_args(parser)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Run the quickstart comparison and print the placement summary."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _run_quickstart(args, parser)


def _run_quickstart(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    if not 0.0 <= args.alpha <= 1.0:
        parser.error(f"--alpha must be in [0, 1], got {args.alpha}")
    if args.time_budget_s is not None and args.time_budget_s < 0:
        parser.error(f"--time-budget-s must be non-negative, got {args.time_budget_s}")

    # 1. The edge fleet: one data center per Central-EU city.
    fleet = build_regional_fleet(CENTRAL_EU)

    # 2. The substrate the placement needs: pairwise latency and carbon intensity.
    cities = CENTRAL_EU.cities(default_city_catalog())
    latency = build_latency_matrix(
        [c.name for c in cities],
        default_city_catalog().coordinates_array([c.name for c in cities]),
        countries=[c.country for c in cities],
    )
    traces = SyntheticTraceGenerator(seed=args.seed).generate_set(
        default_zone_catalog().get(z) for z in CENTRAL_EU.zone_ids())
    carbon = CarbonIntensityService(traces=traces)

    # 3. One ResNet50 serving application per city.
    apps = [make_application(f"resnet-{c.name}", "ResNet50", c.name,
                             latency_slo_ms=args.slo_ms, request_rate_rps=10.0)
            for c in cities]

    # 4. Build the problem and place it with both policies.
    problem = PlacementProblem.build(apps, fleet.servers(), latency, carbon,
                                     hour=args.hour, horizon_hours=24.0)
    baseline = LatencyAwarePolicy().timed_place(problem)
    policy = CarbonEdgePolicy(alpha=args.alpha, solver=args.backend)
    if args.time_budget_s is not None:
        policy.time_limit_s = args.time_budget_s
    carbon_edge = policy.timed_place(problem)

    # 5. Compare.
    saving = (1 - carbon_edge.total_carbon_g() / baseline.total_carbon_g()) * 100
    print(f"Solver backend          : {carbon_edge.backend_name or policy.solver} "
          f"({carbon_edge.solve_time_s * 1000:.1f} ms)")
    print("Latency-aware placement :", baseline.apps_per_site())
    print("CarbonEdge placement    :", carbon_edge.apps_per_site())
    print(f"Carbon: {baseline.total_carbon_g():.0f} g -> {carbon_edge.total_carbon_g():.0f} g "
          f"({saving:.1f}% savings)")
    print(f"Mean one-way latency increase: {carbon_edge.latency_increase_ms():.1f} ms")
    return 0


# -- the carbon-edge umbrella command -----------------------------------------


def build_carbon_edge_parser() -> argparse.ArgumentParser:
    """The ``carbon-edge`` command-line interface."""
    parser = argparse.ArgumentParser(
        prog="carbon-edge",
        description="CarbonEdge reproduction: carbon-aware placement across "
                    "edge data centers.")
    commands = parser.add_subparsers(dest="command", required=True)

    quickstart = commands.add_parser(
        "quickstart", help="run the Central-EU placement demo")
    _add_quickstart_args(quickstart)

    experiments = commands.add_parser(
        "experiments", help="list or run the registered paper experiments")
    actions = experiments.add_subparsers(dest="action", required=True)

    actions.add_parser("list", help="list every registered experiment spec")

    run_cmd = actions.add_parser(
        "run", help="run experiments through the sharded scenario runner")
    run_cmd.add_argument("names", nargs="*", metavar="NAME",
                         help="experiment names (e.g. fig11 table1); "
                              "see 'experiments list'")
    run_cmd.add_argument("--all", action="store_true", dest="run_all",
                         help="run every registered experiment")
    run_cmd.add_argument("--smoke", action="store_true",
                         help="reduced-scale smoke parameters (CI scale)")
    run_cmd.add_argument("--workers", type=int, default=1, metavar="N",
                         help="worker processes; results are identical for any "
                              "worker count (default: 1)")
    run_cmd.add_argument("--epoch-shards", type=int, default=1, metavar="N",
                         help="intra-unit shards for the dense placement kernel "
                              "(experiments that take an epoch_shards parameter "
                              "solve each epoch on N-way worker pools; artifacts "
                              "are bit-identical for any value, epochs below the "
                              "shard-size threshold fall back to serial; "
                              "default: 1)")
    run_cmd.add_argument("--hierarchy-regions", type=int, default=None, metavar="N",
                         help="route placement through the cluster-then-refine "
                              "hierarchy with N geographic regions in every "
                              "experiment that takes a hierarchy_regions "
                              "parameter; unlike --epoch-shards this is a "
                              "recorded experiment parameter (it changes "
                              "placements; the coarse/refine gap is recorded)")
    run_cmd.add_argument("--backend", default=None, metavar="NAME",
                         help="pin the solver backend (canonical name or "
                              "alias, e.g. heuristic, bnb, cpsat, milp) in "
                              "every experiment that takes a backend/backends "
                              "parameter; a recorded experiment parameter "
                              "(default: each spec's own choice)")
    run_cmd.add_argument("--num-search-workers", type=int, default=None,
                         metavar="N",
                         help="parallel search workers for the OR-Tools exact "
                              "backends in every experiment that takes a "
                              "num_search_workers parameter; a recorded, "
                              "documented determinism carve-out under finite "
                              "budgets (default: 1)")
    run_cmd.add_argument("--merge", default="memory", choices=("memory", "stream"),
                         help="artifact merge strategy: 'memory' holds every "
                              "unit fragment, 'stream' spools fragments to a "
                              "spill directory and folds them one at a time; "
                              "artifacts are byte-identical (default: memory)")
    run_cmd.add_argument("--seed", type=int, default=None,
                         help="override the seed of every experiment that takes one")
    run_cmd.add_argument("--output-dir", default="artifacts", metavar="DIR",
                         help="directory for the JSON artifacts (default: artifacts/)")
    run_cmd.add_argument("--no-write", action="store_true",
                         help="skip writing artifacts (print the summary only)")

    serve = commands.add_parser(
        "serve", help="run the online placement service (bounded soak or "
                      "replay-parity check)")
    serve.add_argument("--continent", default="EU", choices=("US", "EU"),
                       help="CDN footprint side (default: EU)")
    serve.add_argument("--max-sites", type=int, default=10, metavar="N",
                       help="cap on the number of CDN cities (default: 10)")
    serve.add_argument("--n-epochs", type=int, default=1, metavar="N",
                       help="scenario epochs; in parity mode these become the "
                            "replayed events (default: 1)")
    serve.add_argument("--epoch-shards", type=int, default=1, metavar="N",
                       help="intra-epoch shard count; decisions are "
                            "bit-identical for any value (default: 1)")
    serve.add_argument("--seed", type=int, default=None,
                       help="scenario and load-stream seed (default: the "
                            "experiment seed)")
    serve.add_argument("--rps", type=float, default=0.02, metavar="R",
                       help="mean deployment-request arrival rate, req/s "
                            "(default: 0.02)")
    serve.add_argument("--shape", default="poisson",
                       choices=("poisson", "diurnal", "burst"),
                       help="traffic shape of the load stream (default: poisson)")
    serve.add_argument("--mean-lifetime-s", type=float, default=5400.0,
                       metavar="S", help="mean application lifetime, seconds "
                                         "(default: 5400)")
    serve.add_argument("--duration-s", type=float, default=6 * 3600.0,
                       metavar="S", help="simulated soak duration, seconds "
                                         "(default: 21600 = 6 h)")
    serve.add_argument("--max-events", type=int, default=None, metavar="N",
                       help="hard cap on processed events (CI bound)")
    serve.add_argument("--batch-interval-s", type=float, default=300.0,
                       metavar="S", help="micro-batching window (default: 300)")
    serve.add_argument("--resolve-interval-s", type=float, default=3600.0,
                       metavar="S", help="rolling-horizon re-solve period "
                                         "(default: 3600)")
    serve.add_argument("--apps-per-site-per-epoch", type=float, default=6.0,
                       metavar="A", help="parity-scenario arrival density "
                                         "(default: 6.0)")
    serve.add_argument("--smoke", action="store_true",
                       help="reduced CI scale (fewer sites, shorter soak)")
    serve.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write the versioned serving-metrics JSON artifact")
    serve.add_argument("--replay-parity", action="store_true",
                       help="byte-diff the service's replayed decisions "
                            "against the batch simulator and exit non-zero "
                            "on mismatch")
    return parser


def _experiments_list() -> int:
    from repro.experiments import registry as experiment_registry
    from repro.simulator.runner import expand_units

    rows = []
    for spec in experiment_registry.all_specs():
        n_units = len(expand_units(spec))
        axes = ",".join(axis.param for axis in spec.sweep) or "-"
        rows.append((spec.name, spec.kind, str(n_units), axes, spec.title))
    widths = [max(len(row[i]) for row in rows + [("name", "kind", "units", "sweep", "title")])
              for i in range(5)]
    header = ("name", "kind", "units", "sweep", "title")
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return 0


def _experiments_run(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.experiments import registry as experiment_registry
    from repro.simulator.runner import ScenarioRunner

    known = experiment_registry.names()
    if args.run_all and args.names:
        parser.error("pass experiment names or --all, not both")
    names = known if args.run_all else args.names
    if not names:
        parser.error("no experiments selected; pass names or --all "
                     f"(registered: {', '.join(known)})")
    unknown = [n for n in names if n not in known]
    if unknown:
        parser.error(f"unknown experiment(s) {', '.join(unknown)}; "
                     f"registered: {', '.join(known)}")
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if args.epoch_shards < 1:
        parser.error(f"--epoch-shards must be >= 1, got {args.epoch_shards}")
    if args.hierarchy_regions is not None and args.hierarchy_regions < 1:
        parser.error(f"--hierarchy-regions must be >= 1, got {args.hierarchy_regions}")
    if args.num_search_workers is not None and args.num_search_workers < 1:
        parser.error(f"--num-search-workers must be >= 1, got {args.num_search_workers}")
    if args.backend is not None:
        from repro.solver import registry as solver_registry

        if args.backend not in solver_registry.backend_names():
            parser.error(f"unknown solver backend {args.backend!r}; known: "
                         f"{', '.join(solver_registry.backend_names())}")

    # Recorded overrides, not execution knobs: they change placements (or the
    # search that produces them), so they must appear in the artifact params.
    # Specs that do not take the parameter ignore it.
    overrides = {}
    if args.hierarchy_regions is not None:
        overrides["hierarchy_regions"] = args.hierarchy_regions
    if args.backend is not None:
        # Single-backend specs take `backend`; sweep specs (the backend
        # tournament) take a `backends` tuple — pin both spellings.
        overrides["backend"] = args.backend
        overrides["backends"] = (args.backend,)
    if args.num_search_workers is not None:
        overrides["num_search_workers"] = args.num_search_workers
    overrides = overrides or None
    runner = ScenarioRunner(workers=args.workers, smoke=args.smoke, seed=args.seed,
                            overrides=overrides, epoch_shards=args.epoch_shards,
                            merge=args.merge)
    start = time.perf_counter()
    results = runner.run(names)
    elapsed = time.perf_counter() - start
    for name, result in results.items():
        line = f"{name}: {result.n_units} unit(s)"
        if not args.no_write:
            path = result.write(args.output_dir)
            line += f" -> {path}"
        print(line)
    scale = "smoke" if args.smoke else "full"
    print(f"ran {len(results)} experiment(s) at {scale} scale with "
          f"{args.workers} worker(s) in {elapsed:.1f} s")
    return 0


def _run_serve(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.experiments.common import EXPERIMENT_SEED
    from repro.serving.loadgen import LoadGenerator
    from repro.serving.parity import check_replay_parity
    from repro.serving.service import PlacementService, ServingConfig
    from repro.simulator.scenario import CDNScenario

    if args.epoch_shards < 1:
        parser.error(f"--epoch-shards must be >= 1, got {args.epoch_shards}")
    if args.max_sites < 2:
        parser.error(f"--max-sites must be >= 2, got {args.max_sites}")
    if args.duration_s <= 0:
        parser.error(f"--duration-s must be positive, got {args.duration_s}")
    seed = args.seed if args.seed is not None else EXPERIMENT_SEED
    max_sites, duration_s, rate = args.max_sites, args.duration_s, args.rps
    if args.smoke:
        max_sites = min(max_sites, 6)
        duration_s = min(duration_s, 2 * 3600.0)
        rate = min(rate, 0.01)
    scenario = CDNScenario(
        continent=args.continent,
        n_epochs=args.n_epochs,
        apps_per_site_per_epoch=args.apps_per_site_per_epoch,
        max_sites=max_sites,
        epoch_shards=args.epoch_shards,
        seed=seed,
    )

    if args.replay_parity:
        report = check_replay_parity(scenario)
        print(f"replay parity over {scenario.n_epochs} epoch(s), "
              f"{args.continent}, epoch_shards={args.epoch_shards}:")
        print(report.summary())
        return 0 if report.ok else 1

    config = ServingConfig(batch_interval_s=args.batch_interval_s,
                           resolve_interval_s=args.resolve_interval_s,
                           horizon_hours=float(scenario.hours_per_epoch))
    service = PlacementService.from_scenario(scenario, config=config)
    load = LoadGenerator(sites=service.simulator.fleet.sites(),
                         rate_per_s=rate, shape=args.shape,
                         mean_lifetime_s=args.mean_lifetime_s, seed=seed)
    report = service.run_live(load, duration_s=duration_s,
                              max_events=args.max_events)
    metrics = report.metrics
    print(f"served {metrics.n_events} events "
          f"({metrics.n_arrivals} arrivals, {metrics.n_departures} departures) "
          f"over {duration_s:.0f} simulated seconds")
    print(f"solves: {metrics.n_batch_solves} batch, "
          f"{metrics.n_warm_resolves} warm re-solves")
    print(f"decision latency: p50 {metrics.latency_percentile_ms(50.0):.2f} ms, "
          f"p99 {metrics.latency_percentile_ms(99.0):.2f} ms")
    print(f"throughput: {metrics.placements_per_s():.1f} placements/s "
          f"({metrics.total_placed()} placed in {metrics.wall_elapsed_s:.2f} s "
          f"wall)")
    print(f"carbon: {metrics.total_carbon_g():.0f} g total, "
          f"{metrics.carbon_per_request_g() * 1000.0:.3f} mg/request")
    print(f"feed: samples {metrics.feed_samples or {'live': 0}}, "
          f"events {metrics.feed_events or 'none'}, "
          f"stale={metrics.feed_stale}")
    if args.metrics_out:
        path = metrics.write(args.metrics_out)
        print(f"metrics artifact -> {path}")
    return 0


def carbon_edge_main(argv: list[str] | None = None) -> int:
    """Entry point of the ``carbon-edge`` command (and ``python -m repro``)."""
    parser = build_carbon_edge_parser()
    args = parser.parse_args(argv)
    if args.command == "quickstart":
        return _run_quickstart(args, parser)
    if args.command == "serve":
        return _run_serve(args, parser)
    if args.action == "list":
        return _experiments_list()
    return _experiments_run(args, parser)


if __name__ == "__main__":
    raise SystemExit(carbon_edge_main(sys.argv[1:]))
