"""Console entry point: the quickstart demo as an installed command.

Installed as ``carbon-edge-quickstart`` (see ``setup.py``). Builds the
Central-EU edge deployment, generates a batch of inference applications, and
compares where CarbonEdge places them against the Latency-aware baseline —
the same scenario as ``examples/quickstart.py``, with the solver backend,
placement hour, and energy weight exposed as flags::

    carbon-edge-quickstart
    carbon-edge-quickstart --backend heuristic --time-budget-s 0.05
    carbon-edge-quickstart --alpha 0.5 --hour 300
"""

from __future__ import annotations

import argparse

from repro.carbon import CarbonIntensityService, SyntheticTraceGenerator
from repro.cluster import build_regional_fleet
from repro.core import CarbonEdgePolicy, LatencyAwarePolicy, PlacementProblem
from repro.datasets import CENTRAL_EU, default_city_catalog, default_zone_catalog
from repro.network import build_latency_matrix
from repro.solver import registry
from repro.workloads import make_application


def build_parser() -> argparse.ArgumentParser:
    """The quickstart command-line interface."""
    parser = argparse.ArgumentParser(
        prog="carbon-edge-quickstart",
        description="Carbon-aware edge placement demo (CarbonEdge reproduction).")
    parser.add_argument("--backend", default="auto", choices=registry.backend_names(),
                        help="solver backend for the CarbonEdge policy (default: auto)")
    parser.add_argument("--hour", type=int, default=4700,
                        help="hour-of-year of the placement (default: 4700, mid-July)")
    parser.add_argument("--alpha", type=float, default=0.0,
                        help="energy weight of the multi-objective extension (default: 0)")
    parser.add_argument("--slo-ms", type=float, default=20.0,
                        help="round-trip latency SLO per application, ms (default: 20)")
    parser.add_argument("--time-budget-s", type=float, default=None,
                        help="solver wall-clock budget in seconds (default: the policy's "
                             "30 s limit; values < 1 make 'auto' pick the heuristic)")
    parser.add_argument("--seed", type=int, default=7,
                        help="seed for the synthetic carbon traces (default: 7)")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Run the quickstart comparison and print the placement summary."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if not 0.0 <= args.alpha <= 1.0:
        parser.error(f"--alpha must be in [0, 1], got {args.alpha}")
    if args.time_budget_s is not None and args.time_budget_s < 0:
        parser.error(f"--time-budget-s must be non-negative, got {args.time_budget_s}")

    # 1. The edge fleet: one data center per Central-EU city.
    fleet = build_regional_fleet(CENTRAL_EU)

    # 2. The substrate the placement needs: pairwise latency and carbon intensity.
    cities = CENTRAL_EU.cities(default_city_catalog())
    latency = build_latency_matrix(
        [c.name for c in cities],
        default_city_catalog().coordinates_array([c.name for c in cities]),
        countries=[c.country for c in cities],
    )
    traces = SyntheticTraceGenerator(seed=args.seed).generate_set(
        default_zone_catalog().get(z) for z in CENTRAL_EU.zone_ids())
    carbon = CarbonIntensityService(traces=traces)

    # 3. One ResNet50 serving application per city.
    apps = [make_application(f"resnet-{c.name}", "ResNet50", c.name,
                             latency_slo_ms=args.slo_ms, request_rate_rps=10.0)
            for c in cities]

    # 4. Build the problem and place it with both policies.
    problem = PlacementProblem.build(apps, fleet.servers(), latency, carbon,
                                     hour=args.hour, horizon_hours=24.0)
    baseline = LatencyAwarePolicy().timed_place(problem)
    policy = CarbonEdgePolicy(alpha=args.alpha, solver=args.backend)
    if args.time_budget_s is not None:
        policy.time_limit_s = args.time_budget_s
    carbon_edge = policy.timed_place(problem)

    # 5. Compare.
    saving = (1 - carbon_edge.total_carbon_g() / baseline.total_carbon_g()) * 100
    print(f"Solver backend          : {carbon_edge.backend_name or policy.solver} "
          f"({carbon_edge.solve_time_s * 1000:.1f} ms)")
    print("Latency-aware placement :", baseline.apps_per_site())
    print("CarbonEdge placement    :", carbon_edge.apps_per_site())
    print(f"Carbon: {baseline.total_carbon_g():.0f} g -> {carbon_edge.total_carbon_g():.0f} g "
          f"({saving:.1f}% savings)")
    print(f"Mean one-way latency increase: {carbon_edge.latency_increase_ms():.1f} ms")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
