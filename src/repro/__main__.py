"""``python -m repro`` — the ``carbon-edge`` command without installation."""

from repro.cli import carbon_edge_main

if __name__ == "__main__":
    raise SystemExit(carbon_edge_main())
