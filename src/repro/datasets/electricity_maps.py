"""Synthetic Electricity-Maps-like zone catalogue (148 carbon zones).

The paper uses hourly 2023 carbon-intensity traces for 148 zones (54 US, 45
Europe, 49 elsewhere). We cannot redistribute that data, so each zone here is
described by a :class:`ZoneSpec` — an annual generation-mix plus variability
parameters — from which :mod:`repro.carbon.synthetic` generates a full hourly
year. The mixes of the zones that appear in the paper's figures are hand-
calibrated so that the paper's reported spreads hold (see DESIGN.md §2):

* Central-EU region: ~10.8x spread between the yearly-greenest (Lyon, nuclear
  hydro) and the dirtiest (Munich, fossil-heavy) zone (Figure 3b).
* West-US region: ~2.7x spread (Figure 3a), with Kingman showing a strong
  solar seasonal swing (Figure 4b) and Flagstaff a large diurnal swing.
* Figure-1 zones: Ontario (nuclear+hydro, very low), California (solar with a
  pronounced duck curve), New York (mixed), Poland (coal-heavy, very high).

The remaining zones are generated procedurally with plausible mixes so the
catalogue reaches the paper's 148-zone scale for the Section-3 analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.utils.rng import substream

#: Lifecycle carbon-intensity factors per generation source, g CO2eq/kWh
#: (IPCC median values, as used by Electricity Maps).
SOURCE_INTENSITY: dict[str, float] = {
    "hydro": 24.0,
    "solar": 45.0,
    "wind": 11.0,
    "nuclear": 12.0,
    "geothermal": 38.0,
    "biomass": 230.0,
    "gas": 490.0,
    "oil": 650.0,
    "coal": 820.0,
}

#: Sources considered "fossil" for mix summaries (Figure 1a groups these).
FOSSIL_SOURCES: tuple[str, ...] = ("gas", "oil", "coal")

#: Sources with intermittent output (their hourly share is modulated).
VARIABLE_SOURCES: tuple[str, ...] = ("solar", "wind", "hydro")


@dataclass(frozen=True)
class ZoneSpec:
    """Static description of a carbon zone.

    Parameters
    ----------
    zone_id:
        Electricity-Maps-style identifier, e.g. ``"US-FL-MIA"`` or ``"EU-PL"``.
    name:
        Human-readable name.
    continent:
        ``"US"``, ``"EU"``, or ``"OTHER"``.
    mix:
        Annual-average generation shares per source; must sum to ~1.
    solar_seasonality:
        0–1 multiplier describing how much the solar resource varies between
        winter and summer (0 = flat, 1 = strong seasonal swing).
    wind_volatility:
        Standard deviation of the AR(1) process modulating wind output.
    noise_scale:
        Relative white-noise level added to the final intensity series.
    area_km2:
        Approximate area of the zone (used only for reporting; the paper notes
        zones can be as small as ~124 km² for Tallahassee).
    """

    zone_id: str
    name: str
    continent: str
    mix: dict[str, float]
    solar_seasonality: float = 0.5
    wind_volatility: float = 0.25
    noise_scale: float = 0.03
    area_km2: float = 10_000.0

    def __post_init__(self) -> None:
        unknown = set(self.mix) - set(SOURCE_INTENSITY)
        if unknown:
            raise ValueError(f"zone {self.zone_id}: unknown sources {sorted(unknown)}")
        total = sum(self.mix.values())
        if not 0.98 <= total <= 1.02:
            raise ValueError(
                f"zone {self.zone_id}: generation mix must sum to 1 (got {total:.3f})"
            )

    @property
    def normalized_mix(self) -> dict[str, float]:
        """Generation mix re-normalised to sum exactly to 1."""
        total = sum(self.mix.values())
        return {src: share / total for src, share in self.mix.items()}

    @property
    def annual_mean_intensity(self) -> float:
        """Mix-weighted annual-average carbon intensity, g CO2eq/kWh."""
        return sum(share * SOURCE_INTENSITY[src] for src, share in self.normalized_mix.items())

    @property
    def fossil_share(self) -> float:
        """Fraction of generation coming from fossil sources."""
        mix = self.normalized_mix
        return sum(mix.get(src, 0.0) for src in FOSSIL_SOURCES)

    def grouped_mix(self) -> dict[str, float]:
        """Mix grouped into the five categories plotted in Figure 1a."""
        mix = self.normalized_mix
        return {
            "hydro": mix.get("hydro", 0.0),
            "solar": mix.get("solar", 0.0),
            "wind": mix.get("wind", 0.0),
            "nuclear": mix.get("nuclear", 0.0),
            "fossil fuels": sum(mix.get(s, 0.0) for s in FOSSIL_SOURCES)
            + mix.get("biomass", 0.0)
            + mix.get("geothermal", 0.0),
        }


def _zone(zone_id: str, name: str, continent: str, area_km2: float = 10_000.0,
          solar_seasonality: float = 0.5, wind_volatility: float = 0.25,
          noise_scale: float = 0.03, **mix: float) -> ZoneSpec:
    return ZoneSpec(zone_id=zone_id, name=name, continent=continent, mix=mix,
                    solar_seasonality=solar_seasonality,
                    wind_volatility=wind_volatility, noise_scale=noise_scale,
                    area_km2=area_km2)


# ---------------------------------------------------------------------------
# Hand-calibrated zones (everything that appears in a paper figure or table).
# ---------------------------------------------------------------------------

_EXPLICIT_ZONES: tuple[ZoneSpec, ...] = (
    # --- Figure 1 reference zones -----------------------------------------
    _zone("CA-ON", "Ontario", "OTHER", area_km2=917_741.0,
          nuclear=0.55, hydro=0.25, wind=0.08, solar=0.02, gas=0.09, biomass=0.01),
    _zone("US-CA", "California ISO", "US", area_km2=423_970.0, solar_seasonality=0.7,
          solar=0.27, wind=0.08, hydro=0.10, nuclear=0.08, geothermal=0.05,
          gas=0.40, coal=0.0, biomass=0.02),
    _zone("US-NY", "New York ISO", "US", area_km2=141_297.0,
          hydro=0.22, nuclear=0.21, wind=0.05, solar=0.03, gas=0.46, oil=0.02, biomass=0.01),
    _zone("EU-PL", "Poland", "EU", area_km2=312_696.0,
          coal=0.61, gas=0.10, wind=0.13, solar=0.07, hydro=0.02, biomass=0.05, oil=0.02),
    # --- Florida mesoscale region ------------------------------------------
    _zone("US-FL-JAX", "Jacksonville (JEA)", "US", area_km2=2_265.0,
          gas=0.61, coal=0.12, solar=0.06, nuclear=0.16, oil=0.02, biomass=0.03),
    _zone("US-FL-MIA", "Miami (FPL South)", "US", area_km2=5_040.0,
          nuclear=0.34, solar=0.17, gas=0.46, hydro=0.0, oil=0.01, biomass=0.02),
    _zone("US-FL-TPA", "Tampa (TECO)", "US", area_km2=5_200.0,
          gas=0.69, coal=0.13, solar=0.14, oil=0.01, biomass=0.03),
    _zone("US-FL-ORL", "Orlando (OUC/Duke)", "US", area_km2=9_600.0,
          gas=0.63, coal=0.17, solar=0.11, nuclear=0.05, oil=0.01, biomass=0.03),
    _zone("US-FL-TAL", "Tallahassee", "US", area_km2=123.73,
          gas=0.80, solar=0.09, hydro=0.03, coal=0.05, oil=0.01, biomass=0.02),
    # --- West-US mesoscale region -------------------------------------------
    _zone("US-NV-LAS", "Las Vegas (NV Energy)", "US", area_km2=20_800.0, solar_seasonality=0.65,
          solar=0.24, gas=0.58, hydro=0.05, coal=0.06, wind=0.01, geothermal=0.06),
    _zone("US-AZ-KNG", "Kingman (UniSource)", "US", area_km2=34_500.0, solar_seasonality=0.85,
          solar=0.32, gas=0.44, wind=0.08, hydro=0.09, coal=0.07),
    _zone("US-CA-SAN", "San Diego (SDG&E)", "US", area_km2=10_700.0, solar_seasonality=0.7,
          solar=0.38, gas=0.33, wind=0.08, nuclear=0.09, hydro=0.05, geothermal=0.07),
    _zone("US-AZ-PHX", "Phoenix (SRP/APS)", "US", area_km2=37_700.0, solar_seasonality=0.6,
          nuclear=0.22, solar=0.13, gas=0.37, coal=0.24, hydro=0.03, wind=0.01),
    _zone("US-AZ-FLG", "Flagstaff (APS North)", "US", area_km2=48_300.0, solar_seasonality=0.55,
          coal=0.48, gas=0.30, solar=0.12, wind=0.06, hydro=0.04),
    # --- Italy mesoscale region ----------------------------------------------
    _zone("EU-IT-MIL", "Milan (North Italy)", "EU", area_km2=23_900.0,
          gas=0.52, hydro=0.22, solar=0.11, wind=0.02, coal=0.04, oil=0.02,
          biomass=0.05, geothermal=0.02),
    _zone("EU-IT-ROM", "Rome (Central Italy)", "EU", area_km2=17_200.0,
          gas=0.48, hydro=0.10, solar=0.15, wind=0.06, geothermal=0.12, biomass=0.05, oil=0.04),
    _zone("EU-IT-CAG", "Cagliari (Sardinia)", "EU", area_km2=24_100.0,
          coal=0.28, gas=0.23, oil=0.09, solar=0.18, wind=0.18, hydro=0.02, biomass=0.02),
    _zone("EU-IT-PAL", "Palermo (Sicily)", "EU", area_km2=25_700.0,
          gas=0.55, oil=0.08, solar=0.17, wind=0.16, hydro=0.02, biomass=0.02),
    _zone("EU-IT-ARE", "Arezzo (Tuscany)", "EU", area_km2=3_230.0,
          gas=0.38, geothermal=0.28, solar=0.13, hydro=0.09, wind=0.05, biomass=0.07),
    # --- Central-EU mesoscale region -----------------------------------------
    _zone("EU-CH-BRN", "Bern (Switzerland)", "EU", area_km2=5_960.0,
          hydro=0.58, nuclear=0.32, solar=0.06, wind=0.01, gas=0.02, biomass=0.01),
    _zone("EU-DE-MUC", "Munich (Bavaria)", "EU", area_km2=70_550.0,
          coal=0.28, gas=0.28, solar=0.15, wind=0.10, hydro=0.06, nuclear=0.0,
          biomass=0.11, oil=0.02),
    _zone("EU-FR-LYS", "Lyon (Auvergne-Rhone-Alpes)", "EU", area_km2=69_700.0,
          nuclear=0.70, hydro=0.23, solar=0.03, wind=0.03, gas=0.01),
    _zone("EU-AT-GRZ", "Graz (Styria)", "EU", area_km2=16_400.0,
          hydro=0.48, gas=0.18, wind=0.09, solar=0.08, coal=0.05, biomass=0.11, oil=0.01),
    # --- Other US state-level zones ------------------------------------------
    _zone("US-NY2", "New York Upstate", "US", hydro=0.30, nuclear=0.30, gas=0.32,
          wind=0.05, solar=0.03),
    _zone("US-FL", "Florida (FRCC)", "US", gas=0.70, nuclear=0.12, solar=0.09,
          coal=0.06, oil=0.01, biomass=0.02),
    _zone("US-TX", "Texas (ERCOT)", "US", gas=0.43, wind=0.24, coal=0.14, solar=0.09,
          nuclear=0.09, hydro=0.01),
    _zone("US-WA", "Washington", "US", hydro=0.65, gas=0.12, wind=0.08, nuclear=0.08,
          solar=0.02, coal=0.04, biomass=0.01),
    _zone("US-OR", "Oregon", "US", hydro=0.52, gas=0.22, wind=0.14, solar=0.05, coal=0.06,
          biomass=0.01),
    _zone("US-UT", "Utah", "US", coal=0.53, gas=0.27, solar=0.11, wind=0.04, hydro=0.03,
          geothermal=0.02),
    _zone("US-CO", "Colorado", "US", coal=0.33, gas=0.26, wind=0.28, solar=0.09, hydro=0.04),
    _zone("US-NM", "New Mexico", "US", coal=0.26, gas=0.25, wind=0.36, solar=0.10, nuclear=0.0,
          hydro=0.03),
    _zone("US-NV", "Nevada", "US", gas=0.56, solar=0.25, geothermal=0.09, hydro=0.05,
          coal=0.04, wind=0.01),
    _zone("US-AZ", "Arizona", "US", nuclear=0.28, gas=0.33, coal=0.22, solar=0.12,
          hydro=0.04, wind=0.01),
    _zone("US-CA2", "California North", "US", solar=0.25, hydro=0.15, gas=0.38, wind=0.09,
          nuclear=0.08, geothermal=0.05),
    _zone("US-IL", "Illinois", "US", nuclear=0.53, coal=0.17, gas=0.13, wind=0.14, solar=0.03),
    _zone("US-PA", "Pennsylvania", "US", gas=0.53, nuclear=0.32, coal=0.10, wind=0.03,
          hydro=0.01, solar=0.01),
    _zone("US-OH", "Ohio", "US", gas=0.52, coal=0.33, nuclear=0.11, wind=0.03, solar=0.01),
    _zone("US-MI", "Michigan", "US", gas=0.33, coal=0.26, nuclear=0.29, wind=0.09, solar=0.02,
          hydro=0.01),
    _zone("US-GA", "Georgia", "US", gas=0.45, nuclear=0.27, coal=0.15, solar=0.07, hydro=0.03,
          biomass=0.03),
    _zone("US-NC", "North Carolina", "US", gas=0.35, nuclear=0.33, coal=0.15, solar=0.10,
          hydro=0.05, biomass=0.02),
    _zone("US-TN", "Tennessee", "US", nuclear=0.44, gas=0.20, coal=0.20, hydro=0.13,
          solar=0.02, wind=0.01),
    _zone("US-MA", "Massachusetts", "US", gas=0.68, solar=0.14, nuclear=0.0, hydro=0.05,
          wind=0.05, oil=0.03, biomass=0.05),
    _zone("US-MN", "Minnesota", "US", wind=0.25, coal=0.24, nuclear=0.24, gas=0.18,
          solar=0.05, hydro=0.02, biomass=0.02),
    _zone("US-WI", "Wisconsin", "US", gas=0.36, coal=0.34, nuclear=0.15, wind=0.08,
          solar=0.04, hydro=0.03),
    _zone("US-MO", "Missouri", "US", coal=0.61, gas=0.12, nuclear=0.12, wind=0.11,
          solar=0.02, hydro=0.02),
    _zone("US-LA", "Louisiana", "US", gas=0.67, nuclear=0.16, coal=0.09, biomass=0.03,
          solar=0.02, hydro=0.01, oil=0.02),
    _zone("US-OK", "Oklahoma", "US", gas=0.42, wind=0.43, coal=0.09, hydro=0.04, solar=0.02),
    _zone("US-NE", "Nebraska", "US", coal=0.47, wind=0.30, nuclear=0.14, gas=0.05, hydro=0.03,
          solar=0.01),
    _zone("US-IA", "Iowa", "US", wind=0.59, coal=0.23, gas=0.11, nuclear=0.04, solar=0.02,
          hydro=0.01),
    _zone("US-ID", "Idaho", "US", hydro=0.51, gas=0.21, wind=0.15, solar=0.07, geothermal=0.03,
          biomass=0.03),
    _zone("US-VA", "Virginia", "US", gas=0.56, nuclear=0.29, solar=0.06, coal=0.04,
          biomass=0.03, hydro=0.02),
    _zone("US-MD", "Maryland", "US", nuclear=0.40, gas=0.38, coal=0.11, solar=0.05,
          hydro=0.04, wind=0.02),
    _zone("US-DC", "District of Columbia", "US", gas=0.74, solar=0.10, oil=0.04, coal=0.06,
          biomass=0.06),
    _zone("US-IN", "Indiana", "US", coal=0.47, gas=0.34, wind=0.10, solar=0.05, hydro=0.02,
          biomass=0.02),
    _zone("US-KY", "Kentucky", "US", coal=0.68, gas=0.24, hydro=0.06, solar=0.01, wind=0.01),
    _zone("US-SC", "South Carolina", "US", nuclear=0.54, gas=0.24, coal=0.13, solar=0.04,
          hydro=0.03, biomass=0.02),
    _zone("US-AL", "Alabama", "US", nuclear=0.32, gas=0.35, coal=0.19, hydro=0.09,
          solar=0.02, biomass=0.03),
    _zone("US-CT", "Connecticut", "US", nuclear=0.38, gas=0.54, solar=0.04, hydro=0.01,
          oil=0.01, biomass=0.02),
    _zone("US-RI", "Rhode Island", "US", gas=0.89, solar=0.06, wind=0.04, hydro=0.01),
    _zone("US-AK", "Alaska", "US", gas=0.44, hydro=0.27, oil=0.14, coal=0.10, wind=0.05),
    _zone("US-HI", "Hawaii", "US", oil=0.66, solar=0.17, wind=0.08, coal=0.0, hydro=0.01,
          geothermal=0.03, biomass=0.05),
    # --- Other EU country-level zones ----------------------------------------
    _zone("EU-DE", "Germany", "EU", coal=0.26, gas=0.16, wind=0.27, solar=0.12, hydro=0.04,
          biomass=0.09, nuclear=0.01, oil=0.05),
    _zone("EU-FR", "France", "EU", nuclear=0.65, hydro=0.12, wind=0.09, solar=0.05, gas=0.07,
          biomass=0.02),
    _zone("EU-GB", "Great Britain", "EU", gas=0.34, wind=0.29, nuclear=0.14, solar=0.05,
          biomass=0.09, hydro=0.02, coal=0.01, oil=0.06),
    _zone("EU-ES", "Spain", "EU", wind=0.24, nuclear=0.20, solar=0.17, gas=0.21, hydro=0.12,
          coal=0.02, biomass=0.04),
    _zone("EU-PT", "Portugal", "EU", wind=0.27, hydro=0.26, solar=0.13, gas=0.24, coal=0.0,
          biomass=0.10),
    _zone("EU-IT", "Italy", "EU", gas=0.46, hydro=0.16, solar=0.12, wind=0.08, coal=0.05,
          geothermal=0.05, biomass=0.06, oil=0.02),
    _zone("EU-AT", "Austria", "EU", hydro=0.60, wind=0.11, gas=0.13, solar=0.07, biomass=0.07,
          coal=0.01, oil=0.01),
    _zone("EU-CH", "Switzerland", "EU", hydro=0.57, nuclear=0.36, solar=0.05, wind=0.01,
          gas=0.01),
    _zone("EU-BE", "Belgium", "EU", nuclear=0.46, gas=0.26, wind=0.15, solar=0.08, hydro=0.01,
          biomass=0.04),
    _zone("EU-NL", "Netherlands", "EU", gas=0.38, wind=0.27, solar=0.17, coal=0.09, nuclear=0.03,
          biomass=0.06),
    _zone("EU-NO", "Norway", "EU", hydro=0.89, wind=0.09, gas=0.02),
    _zone("EU-SE", "Sweden", "EU", hydro=0.41, nuclear=0.29, wind=0.21, solar=0.02, biomass=0.07),
    _zone("EU-DK", "Denmark", "EU", wind=0.54, biomass=0.21, solar=0.10, coal=0.09, gas=0.06),
    _zone("EU-FI", "Finland", "EU", nuclear=0.35, hydro=0.19, wind=0.18, biomass=0.17, coal=0.04,
          gas=0.03, solar=0.01, oil=0.03),
    _zone("EU-IE", "Ireland", "EU", gas=0.46, wind=0.34, coal=0.05, solar=0.03, hydro=0.03,
          biomass=0.03, oil=0.06),
    _zone("EU-CZ", "Czechia", "EU", coal=0.40, nuclear=0.37, gas=0.08, solar=0.04, hydro=0.04,
          biomass=0.05, wind=0.02),
    _zone("EU-SK", "Slovakia", "EU", nuclear=0.61, hydro=0.15, gas=0.10, solar=0.03, coal=0.06,
          biomass=0.05),
    _zone("EU-SI", "Slovenia", "EU", nuclear=0.37, hydro=0.31, coal=0.21, solar=0.05, gas=0.04,
          biomass=0.02),
    _zone("EU-HR", "Croatia", "EU", hydro=0.41, gas=0.22, wind=0.15, coal=0.09, solar=0.04,
          biomass=0.06, oil=0.03),
    _zone("EU-HU", "Hungary", "EU", nuclear=0.44, gas=0.25, solar=0.13, coal=0.08, wind=0.02,
          biomass=0.06, oil=0.02),
    _zone("EU-RO", "Romania", "EU", hydro=0.28, nuclear=0.20, gas=0.17, coal=0.15, wind=0.12,
          solar=0.06, biomass=0.02),
    _zone("EU-BG", "Bulgaria", "EU", coal=0.37, nuclear=0.38, hydro=0.10, solar=0.08, wind=0.04,
          gas=0.02, biomass=0.01),
    _zone("EU-GR", "Greece", "EU", gas=0.37, wind=0.21, solar=0.18, hydro=0.10, coal=0.10,
          oil=0.04),
    _zone("EU-EE", "Estonia", "EU", oil=0.42, wind=0.21, solar=0.10, biomass=0.20, hydro=0.01,
          gas=0.06),
    _zone("EU-LV", "Latvia", "EU", hydro=0.52, gas=0.29, wind=0.07, biomass=0.10, solar=0.02),
    _zone("EU-LT", "Lithuania", "EU", wind=0.42, hydro=0.12, solar=0.12, gas=0.19, biomass=0.13,
          oil=0.02),
    _zone("EU-LU", "Luxembourg", "EU", gas=0.25, wind=0.26, solar=0.21, hydro=0.10, biomass=0.18),
)


# ---------------------------------------------------------------------------
# Procedural fill zones so the catalogue reaches the paper's 148-zone scale.
# ---------------------------------------------------------------------------

#: Target zone counts from Section 6.1.1: 54 US + 45 Europe + 49 elsewhere.
TARGET_COUNTS: dict[str, int] = {"US": 54, "EU": 45, "OTHER": 49}

#: Archetype mixes used to procedurally generate filler zones.
_ARCHETYPES: tuple[dict[str, float], ...] = (
    {"hydro": 0.70, "gas": 0.15, "wind": 0.10, "solar": 0.05},
    {"nuclear": 0.55, "hydro": 0.20, "gas": 0.15, "wind": 0.05, "solar": 0.05},
    {"coal": 0.55, "gas": 0.25, "wind": 0.10, "solar": 0.10},
    {"gas": 0.60, "solar": 0.20, "wind": 0.10, "hydro": 0.10},
    {"wind": 0.40, "gas": 0.30, "solar": 0.15, "hydro": 0.15},
    {"gas": 0.45, "coal": 0.25, "nuclear": 0.15, "wind": 0.10, "solar": 0.05},
    {"oil": 0.45, "gas": 0.30, "solar": 0.15, "wind": 0.10},
    {"solar": 0.30, "gas": 0.40, "wind": 0.15, "hydro": 0.15},
)


def _procedural_zones(continent: str, count: int, seed: int) -> list[ZoneSpec]:
    """Generate ``count`` filler zones for ``continent`` with plausible mixes."""
    rng = substream(seed, "filler-zones", continent)
    zones: list[ZoneSpec] = []
    for i in range(count):
        archetype = _ARCHETYPES[int(rng.integers(len(_ARCHETYPES)))]
        # Perturb the archetype shares with Dirichlet noise and renormalise.
        sources = list(archetype)
        base = np.array([archetype[s] for s in sources])
        shares = rng.dirichlet(base * 25.0)
        mix = {s: float(v) for s, v in zip(sources, shares)}
        zones.append(ZoneSpec(
            zone_id=f"{continent}-Z{i:03d}",
            name=f"{continent} filler zone {i}",
            continent=continent,
            mix=mix,
            solar_seasonality=float(rng.uniform(0.3, 0.8)),
            wind_volatility=float(rng.uniform(0.15, 0.35)),
            noise_scale=float(rng.uniform(0.02, 0.05)),
            area_km2=float(rng.uniform(500.0, 100_000.0)),
        ))
    return zones


@dataclass
class ZoneCatalog:
    """Catalogue of carbon zones, indexable by zone id."""

    zones: tuple[ZoneSpec, ...]

    def __post_init__(self) -> None:
        self._by_id = {z.zone_id: z for z in self.zones}
        if len(self._by_id) != len(self.zones):
            ids = [z.zone_id for z in self.zones]
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise ValueError(f"duplicate zone ids: {dupes}")

    def __len__(self) -> int:
        return len(self.zones)

    def __iter__(self) -> Iterator[ZoneSpec]:
        return iter(self.zones)

    def __contains__(self, zone_id: str) -> bool:
        return zone_id in self._by_id

    def get(self, zone_id: str) -> ZoneSpec:
        """Return the zone spec for ``zone_id`` or raise :class:`KeyError`."""
        try:
            return self._by_id[zone_id]
        except KeyError:
            raise KeyError(f"unknown carbon zone {zone_id!r}") from None

    def ids(self) -> list[str]:
        """All zone ids, in catalogue order."""
        return [z.zone_id for z in self.zones]

    def by_continent(self, continent: str) -> list[ZoneSpec]:
        """All zones on the given continent."""
        return [z for z in self.zones if z.continent == continent]

    def counts_by_continent(self) -> dict[str, int]:
        """Number of zones per continent label."""
        counts: dict[str, int] = {}
        for z in self.zones:
            counts[z.continent] = counts.get(z.continent, 0) + 1
        return counts


def build_zone_catalog(seed: int = 0) -> ZoneCatalog:
    """Build the full 148-zone catalogue (explicit zones + procedural fillers)."""
    zones = list(_EXPLICIT_ZONES)
    counts: dict[str, int] = {}
    for z in zones:
        counts[z.continent] = counts.get(z.continent, 0) + 1
    for continent, target in TARGET_COUNTS.items():
        deficit = target - counts.get(continent, 0)
        if deficit > 0:
            zones.extend(_procedural_zones(continent, deficit, seed))
    return ZoneCatalog(zones=tuple(zones))


_DEFAULT_CATALOG: ZoneCatalog | None = None


def default_zone_catalog() -> ZoneCatalog:
    """Return the module-level default :class:`ZoneCatalog` (cached, seed 0)."""
    global _DEFAULT_CATALOG
    if _DEFAULT_CATALOG is None:
        _DEFAULT_CATALOG = build_zone_catalog()
    return _DEFAULT_CATALOG
