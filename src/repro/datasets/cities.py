"""City catalogue: coordinates, populations, and carbon-zone assignments.

This is the synthetic stand-in for the WonderNetwork city list used by the
paper for latency, and for the population data used as a demand/capacity proxy
in Section 6.3.4. Coordinates are approximate city-centre values; populations
are metro-area estimates in thousands (used only for *relative* weighting).

Zone assignment rules
---------------------
* Cities belonging to one of the paper's mesoscale study regions get their own
  city-level carbon zone (e.g. ``US-FL-MIA``), mirroring how Electricity Maps
  models municipal utilities such as Tallahassee.
* All other US cities map to a state-level zone (``US-<STATE>``), and European
  cities map to a country-level zone (``EU-<CC>``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

#: Cities that get a dedicated city-level carbon zone (paper study regions).
CITY_LEVEL_ZONES: dict[str, str] = {
    # Florida mesoscale region
    "Jacksonville": "US-FL-JAX",
    "Miami": "US-FL-MIA",
    "Tampa": "US-FL-TPA",
    "Orlando": "US-FL-ORL",
    "Tallahassee": "US-FL-TAL",
    # West-US mesoscale region
    "Las Vegas": "US-NV-LAS",
    "Kingman": "US-AZ-KNG",
    "San Diego": "US-CA-SAN",
    "Phoenix": "US-AZ-PHX",
    "Flagstaff": "US-AZ-FLG",
    # Italy mesoscale region
    "Milan": "EU-IT-MIL",
    "Rome": "EU-IT-ROM",
    "Cagliari": "EU-IT-CAG",
    "Palermo": "EU-IT-PAL",
    "Arezzo": "EU-IT-ARE",
    # Central-EU mesoscale region (Milan shared with Italy region)
    "Bern": "EU-CH-BRN",
    "Munich": "EU-DE-MUC",
    "Lyon": "EU-FR-LYS",
    "Graz": "EU-AT-GRZ",
}


@dataclass(frozen=True)
class City:
    """A city with coordinates, population, and its carbon-zone assignment."""

    name: str
    country: str
    continent: str  # "US" or "EU"
    lat: float
    lon: float
    population_k: float  # metro population, thousands
    state: str = ""  # two-letter state for US cities, "" for EU

    @property
    def zone_id(self) -> str:
        """Carbon zone this city draws electricity from."""
        if self.name in CITY_LEVEL_ZONES:
            return CITY_LEVEL_ZONES[self.name]
        if self.continent == "US":
            return f"US-{self.state}"
        return f"EU-{self.country}"

    @property
    def coordinates(self) -> tuple[float, float]:
        """(latitude, longitude) tuple in degrees."""
        return (self.lat, self.lon)


def _us(name: str, state: str, lat: float, lon: float, pop_k: float) -> City:
    return City(name=name, country="US", continent="US", lat=lat, lon=lon,
                population_k=pop_k, state=state)


def _eu(name: str, country: str, lat: float, lon: float, pop_k: float) -> City:
    return City(name=name, country=country, continent="EU", lat=lat, lon=lon,
                population_k=pop_k)


#: US cities (64 entries, mirroring the WonderNetwork US coverage).
US_CITIES: tuple[City, ...] = (
    _us("New York", "NY", 40.71, -74.01, 19500),
    _us("Los Angeles", "CA", 34.05, -118.24, 13200),
    _us("Chicago", "IL", 41.88, -87.63, 9500),
    _us("Houston", "TX", 29.76, -95.37, 7100),
    _us("Phoenix", "AZ", 33.45, -112.07, 4900),
    _us("Philadelphia", "PA", 39.95, -75.17, 6100),
    _us("San Antonio", "TX", 29.42, -98.49, 2600),
    _us("San Diego", "CA", 32.72, -117.16, 3300),
    _us("Dallas", "TX", 32.78, -96.80, 7600),
    _us("San Jose", "CA", 37.34, -121.89, 2000),
    _us("Austin", "TX", 30.27, -97.74, 2300),
    _us("Jacksonville", "FL", 30.33, -81.66, 1600),
    _us("Fort Worth", "TX", 32.76, -97.33, 950),
    _us("Columbus", "OH", 39.96, -82.99, 2100),
    _us("Charlotte", "NC", 35.23, -80.84, 2700),
    _us("San Francisco", "CA", 37.77, -122.42, 4700),
    _us("Indianapolis", "IN", 39.77, -86.16, 2100),
    _us("Seattle", "WA", 47.61, -122.33, 4000),
    _us("Denver", "CO", 39.74, -104.99, 2900),
    _us("Washington", "DC", 38.91, -77.04, 6300),
    _us("Boston", "MA", 42.36, -71.06, 4900),
    _us("El Paso", "TX", 31.76, -106.49, 870),
    _us("Nashville", "TN", 36.16, -86.78, 2000),
    _us("Detroit", "MI", 42.33, -83.05, 4300),
    _us("Oklahoma City", "OK", 35.47, -97.52, 1400),
    _us("Portland", "OR", 45.52, -122.68, 2500),
    _us("Las Vegas", "NV", 36.17, -115.14, 2300),
    _us("Memphis", "TN", 35.15, -90.05, 1300),
    _us("Louisville", "KY", 38.25, -85.76, 1300),
    _us("Baltimore", "MD", 39.29, -76.61, 2800),
    _us("Milwaukee", "WI", 43.04, -87.91, 1600),
    _us("Albuquerque", "NM", 35.08, -106.65, 920),
    _us("Tucson", "AZ", 32.22, -110.97, 1050),
    _us("Fresno", "CA", 36.74, -119.78, 1000),
    _us("Sacramento", "CA", 38.58, -121.49, 2400),
    _us("Kansas City", "MO", 39.10, -94.58, 2200),
    _us("Atlanta", "GA", 33.75, -84.39, 6100),
    _us("Miami", "FL", 25.76, -80.19, 6100),
    _us("Raleigh", "NC", 35.78, -78.64, 1400),
    _us("Omaha", "NE", 41.26, -95.94, 970),
    _us("Minneapolis", "MN", 44.98, -93.27, 3700),
    _us("Tampa", "FL", 27.95, -82.46, 3200),
    _us("Orlando", "FL", 28.54, -81.38, 2700),
    _us("Tallahassee", "FL", 30.44, -84.28, 390),
    _us("Pittsburgh", "PA", 40.44, -79.99, 2300),
    _us("Cincinnati", "OH", 39.10, -84.51, 2300),
    _us("St. Louis", "MO", 38.63, -90.20, 2800),
    _us("Cleveland", "OH", 41.50, -81.69, 2100),
    _us("Salt Lake City", "UT", 40.76, -111.89, 1300),
    _us("Flagstaff", "AZ", 35.20, -111.65, 77),
    _us("Kingman", "AZ", 35.19, -114.05, 34),
    _us("Boise", "ID", 43.62, -116.21, 770),
    _us("Richmond", "VA", 37.54, -77.44, 1300),
    _us("New Orleans", "LA", 29.95, -90.07, 1270),
    _us("Buffalo", "NY", 42.89, -78.88, 1160),
    _us("Hartford", "CT", 41.77, -72.67, 1200),
    _us("Providence", "RI", 41.82, -71.41, 1670),
    _us("Charleston", "SC", 32.78, -79.93, 800),
    _us("Birmingham", "AL", 33.52, -86.80, 1100),
    _us("Des Moines", "IA", 41.59, -93.62, 700),
    _us("Spokane", "WA", 47.66, -117.43, 590),
    _us("Reno", "NV", 39.53, -119.81, 490),
    _us("Anchorage", "AK", 61.22, -149.90, 400),
    _us("Honolulu", "HI", 21.31, -157.86, 1000),
)

#: European cities (64 entries, mirroring the WonderNetwork EU coverage).
EU_CITIES: tuple[City, ...] = (
    _eu("London", "GB", 51.51, -0.13, 14300),
    _eu("Paris", "FR", 48.86, 2.35, 12200),
    _eu("Berlin", "DE", 52.52, 13.41, 6100),
    _eu("Madrid", "ES", 40.42, -3.70, 6700),
    _eu("Rome", "IT", 41.90, 12.50, 4300),
    _eu("Bucharest", "RO", 44.43, 26.10, 2300),
    _eu("Vienna", "AT", 48.21, 16.37, 2900),
    _eu("Hamburg", "DE", 53.55, 9.99, 3200),
    _eu("Warsaw", "PL", 52.23, 21.01, 3100),
    _eu("Budapest", "HU", 47.50, 19.04, 3000),
    _eu("Barcelona", "ES", 41.39, 2.17, 5600),
    _eu("Munich", "DE", 48.14, 11.58, 2900),
    _eu("Milan", "IT", 45.46, 9.19, 4300),
    _eu("Prague", "CZ", 50.08, 14.44, 2700),
    _eu("Sofia", "BG", 42.70, 23.32, 1700),
    _eu("Brussels", "BE", 50.85, 4.35, 2100),
    _eu("Amsterdam", "NL", 52.37, 4.90, 2500),
    _eu("Stockholm", "SE", 59.33, 18.07, 2400),
    _eu("Marseille", "FR", 43.30, 5.37, 1900),
    _eu("Copenhagen", "DK", 55.68, 12.57, 2100),
    _eu("Helsinki", "FI", 60.17, 24.94, 1500),
    _eu("Lisbon", "PT", 38.72, -9.14, 2900),
    _eu("Athens", "GR", 37.98, 23.73, 3600),
    _eu("Dublin", "IE", 53.35, -6.26, 2100),
    _eu("Oslo", "NO", 59.91, 10.75, 1600),
    _eu("Zurich", "CH", 47.37, 8.54, 1400),
    _eu("Lyon", "FR", 45.76, 4.84, 2300),
    _eu("Frankfurt", "DE", 50.11, 8.68, 2700),
    _eu("Krakow", "PL", 50.06, 19.94, 1800),
    _eu("Naples", "IT", 40.85, 14.27, 3100),
    _eu("Turin", "IT", 45.07, 7.69, 1800),
    _eu("Valencia", "ES", 39.47, -0.38, 1700),
    _eu("Seville", "ES", 37.39, -5.99, 1500),
    _eu("Zagreb", "HR", 45.81, 15.98, 1100),
    _eu("Rotterdam", "NL", 51.92, 4.48, 1000),
    _eu("Geneva", "CH", 46.20, 6.14, 1000),
    _eu("Bern", "CH", 46.95, 7.45, 430),
    _eu("Graz", "AT", 47.07, 15.44, 450),
    _eu("Stuttgart", "DE", 48.78, 9.18, 2800),
    _eu("Dusseldorf", "DE", 51.23, 6.78, 1600),
    _eu("Cologne", "DE", 50.94, 6.96, 2100),
    _eu("Leipzig", "DE", 51.34, 12.37, 1000),
    _eu("Dresden", "DE", 51.05, 13.74, 790),
    _eu("Nuremberg", "DE", 49.45, 11.08, 1400),
    _eu("Gothenburg", "SE", 57.71, 11.97, 1000),
    _eu("Malmo", "SE", 55.60, 13.00, 740),
    _eu("Bergen", "NO", 60.39, 5.32, 420),
    _eu("Tallinn", "EE", 59.44, 24.75, 620),
    _eu("Riga", "LV", 56.95, 24.11, 980),
    _eu("Vilnius", "LT", 54.69, 25.28, 810),
    _eu("Bratislava", "SK", 48.15, 17.11, 720),
    _eu("Ljubljana", "SI", 46.06, 14.51, 540),
    _eu("Porto", "PT", 41.15, -8.61, 1700),
    _eu("Bilbao", "ES", 43.26, -2.93, 1000),
    _eu("Bordeaux", "FR", 44.84, -0.58, 1300),
    _eu("Toulouse", "FR", 43.60, 1.44, 1400),
    _eu("Nice", "FR", 43.70, 7.27, 1000),
    _eu("Strasbourg", "FR", 48.57, 7.75, 790),
    _eu("Antwerp", "BE", 51.22, 4.40, 1050),
    _eu("Luxembourg", "LU", 49.61, 6.13, 650),
    _eu("Edinburgh", "GB", 55.95, -3.19, 900),
    _eu("Manchester", "GB", 53.48, -2.24, 2800),
    _eu("Birmingham UK", "GB", 52.49, -1.89, 2900),
    _eu("Cagliari", "IT", 39.22, 9.12, 430),
    _eu("Palermo", "IT", 38.12, 13.36, 1200),
    _eu("Arezzo", "IT", 43.46, 11.88, 100),
)


@dataclass
class CityCatalog:
    """Lookup structure over the city dataset."""

    cities: tuple[City, ...] = field(default_factory=lambda: US_CITIES + EU_CITIES)

    def __post_init__(self) -> None:
        self._by_name = {c.name: c for c in self.cities}
        if len(self._by_name) != len(self.cities):
            names = [c.name for c in self.cities]
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate city names in catalogue: {dupes}")

    def __len__(self) -> int:
        return len(self.cities)

    def __iter__(self) -> Iterator[City]:
        return iter(self.cities)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def get(self, name: str) -> City:
        """Return the city named ``name`` or raise :class:`KeyError`."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown city {name!r}") from None

    def by_continent(self, continent: str) -> list[City]:
        """All cities on the given continent ("US" or "EU")."""
        return [c for c in self.cities if c.continent == continent]

    def names(self) -> list[str]:
        """All city names, in catalogue order."""
        return [c.name for c in self.cities]

    def zone_ids(self) -> list[str]:
        """Sorted unique zone ids referenced by the catalogue."""
        return sorted({c.zone_id for c in self.cities})

    def coordinates_array(self, names: list[str] | None = None) -> np.ndarray:
        """(N, 2) array of [lat, lon] for the named cities (all cities by default)."""
        selected = [self.get(n) for n in names] if names is not None else list(self.cities)
        return np.array([[c.lat, c.lon] for c in selected], dtype=float)

    def populations(self, names: list[str] | None = None) -> np.ndarray:
        """(N,) array of metro populations (thousands) for the named cities."""
        selected = [self.get(n) for n in names] if names is not None else list(self.cities)
        return np.array([c.population_k for c in selected], dtype=float)


_DEFAULT_CATALOG: CityCatalog | None = None


def default_city_catalog() -> CityCatalog:
    """Return the module-level default :class:`CityCatalog` (cached)."""
    global _DEFAULT_CATALOG
    if _DEFAULT_CATALOG is None:
        _DEFAULT_CATALOG = CityCatalog()
    return _DEFAULT_CATALOG
