"""Mesoscale study regions used throughout the paper's figures.

A *mesoscale region* is a group of five nearby cities, each assumed to host an
edge data center (Section 3.1, Figure 2). The paper studies four such regions —
Florida, the West US, Italy, and Central Europe — plus four large reference
zones used in Figure 1 (Ontario, California, New York, Poland).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.cities import CityCatalog, default_city_catalog


@dataclass(frozen=True)
class MesoscaleRegion:
    """A named group of cities forming a mesoscale edge deployment."""

    name: str
    city_names: tuple[str, ...]
    continent: str  # "US" or "EU"

    def cities(self, catalog: CityCatalog | None = None) -> list:
        """Resolve the member :class:`~repro.datasets.cities.City` objects."""
        catalog = catalog or default_city_catalog()
        return [catalog.get(n) for n in self.city_names]

    def zone_ids(self, catalog: CityCatalog | None = None) -> list[str]:
        """Carbon zone ids of the member cities, in region order."""
        return [c.zone_id for c in self.cities(catalog)]

    def __len__(self) -> int:
        return len(self.city_names)


#: Florida region (Figure 2a, Figures 8–10): five Florida cities.
FLORIDA = MesoscaleRegion(
    name="Florida",
    city_names=("Jacksonville", "Miami", "Tampa", "Orlando", "Tallahassee"),
    continent="US",
)

#: West-US region (Figure 2b, Figures 3a/4): Nevada/Arizona/California cities.
WEST_US = MesoscaleRegion(
    name="West US",
    city_names=("Las Vegas", "Kingman", "San Diego", "Phoenix", "Flagstaff"),
    continent="US",
)

#: Italy region (Figure 2c): five Italian cities.
ITALY = MesoscaleRegion(
    name="Italy",
    city_names=("Milan", "Rome", "Cagliari", "Palermo", "Arezzo"),
    continent="EU",
)

#: Central-EU region (Figure 2d, Figures 3b/10): cities in CH/DE/FR/AT/IT.
CENTRAL_EU = MesoscaleRegion(
    name="Central EU",
    city_names=("Bern", "Munich", "Lyon", "Graz", "Milan"),
    continent="EU",
)

#: The four large reference zones plotted in Figure 1.
FIGURE1_ZONES: tuple[str, ...] = ("CA-ON", "US-CA", "US-NY", "EU-PL")

#: All four mesoscale regions in paper order.
ALL_REGIONS: tuple[MesoscaleRegion, ...] = (FLORIDA, WEST_US, ITALY, CENTRAL_EU)


def region_by_name(name: str) -> MesoscaleRegion:
    """Look up a mesoscale region by (case-insensitive) name."""
    for region in ALL_REGIONS:
        if region.name.lower() == name.lower():
            return region
    raise KeyError(f"unknown mesoscale region {name!r}; "
                   f"known regions: {[r.name for r in ALL_REGIONS]}")
