"""Synthetic datasets standing in for the paper's proprietary traces.

The paper combines four data sources (Section 6.1.1): Electricity Maps hourly
carbon-intensity traces for 148 zones, WonderNetwork ping traces between 246
cities, Akamai CDN edge data-center locations, and per-device ML workload
profiles. None of these are redistributable, so this package provides
deterministic synthetic equivalents:

* :mod:`repro.datasets.cities` — a catalogue of US and European cities with
  coordinates and populations (the latency and demand substrate).
* :mod:`repro.datasets.regions` — the mesoscale regions used throughout the
  paper's figures (Florida, West US, Italy, Central EU, and the four Figure-1
  reference zones).
* :mod:`repro.datasets.electricity_maps` — 148 carbon zones with generation-mix
  specifications calibrated to the paper's reported spreads.
* :mod:`repro.datasets.akamai` — a synthetic CDN footprint of ~496 US/EU edge
  sites, population-weighted around the city catalogue.
"""

from repro.datasets.cities import City, CityCatalog, default_city_catalog
from repro.datasets.regions import (
    MesoscaleRegion,
    FLORIDA,
    WEST_US,
    ITALY,
    CENTRAL_EU,
    FIGURE1_ZONES,
    ALL_REGIONS,
    region_by_name,
)
from repro.datasets.electricity_maps import ZoneSpec, ZoneCatalog, default_zone_catalog
from repro.datasets.akamai import CDNSite, CDNFootprint, default_cdn_footprint

__all__ = [
    "City",
    "CityCatalog",
    "default_city_catalog",
    "MesoscaleRegion",
    "FLORIDA",
    "WEST_US",
    "ITALY",
    "CENTRAL_EU",
    "FIGURE1_ZONES",
    "ALL_REGIONS",
    "region_by_name",
    "ZoneSpec",
    "ZoneCatalog",
    "default_zone_catalog",
    "CDNSite",
    "CDNFootprint",
    "default_cdn_footprint",
]
