"""Synthetic CDN edge footprint (the Akamai-trace stand-in).

The paper uses Akamai CDN traces with the locations of 496 edge data centers in
the US and Europe (Section 3.2 / 6.1.1). We generate a synthetic footprint of
the same scale by placing sites around the city catalogue with population-
weighted density: large metros get several nearby sites, small cities at least
one. Sites inherit the carbon zone of their anchor city, matching the paper's
integration step of mapping each data center to its carbon zone and nearest
city (and collapsing multiple data centers in the same city into one for the
placement experiments).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.datasets.cities import City, CityCatalog, default_city_catalog
from repro.utils.rng import substream

#: Default number of CDN edge sites (paper: 496 across the US and Europe).
DEFAULT_SITE_COUNT: int = 496


@dataclass(frozen=True)
class CDNSite:
    """A CDN edge data center location."""

    site_id: str
    city_name: str
    continent: str
    lat: float
    lon: float
    zone_id: str
    population_k: float

    @property
    def coordinates(self) -> tuple[float, float]:
        """(latitude, longitude) in degrees."""
        return (self.lat, self.lon)


@dataclass
class CDNFootprint:
    """A collection of CDN edge sites with lookup helpers."""

    sites: tuple[CDNSite, ...]

    def __post_init__(self) -> None:
        self._by_id = {s.site_id: s for s in self.sites}
        if len(self._by_id) != len(self.sites):
            raise ValueError("duplicate CDN site ids")

    def __len__(self) -> int:
        return len(self.sites)

    def __iter__(self) -> Iterator[CDNSite]:
        return iter(self.sites)

    def get(self, site_id: str) -> CDNSite:
        """Return the site with the given id or raise :class:`KeyError`."""
        try:
            return self._by_id[site_id]
        except KeyError:
            raise KeyError(f"unknown CDN site {site_id!r}") from None

    def by_continent(self, continent: str) -> list[CDNSite]:
        """All sites on the given continent ("US" or "EU")."""
        return [s for s in self.sites if s.continent == continent]

    def zone_ids(self) -> list[str]:
        """Sorted unique carbon-zone ids covered by the footprint."""
        return sorted({s.zone_id for s in self.sites})

    def city_names(self) -> list[str]:
        """Sorted unique anchor-city names."""
        return sorted({s.city_name for s in self.sites})

    def coordinates_array(self) -> np.ndarray:
        """(N, 2) array of [lat, lon] per site, in footprint order."""
        return np.array([[s.lat, s.lon] for s in self.sites], dtype=float)

    def one_per_city(self) -> "CDNFootprint":
        """Collapse multiple sites in the same city into one (paper integration step 4)."""
        seen: dict[str, CDNSite] = {}
        for s in self.sites:
            seen.setdefault(s.city_name, s)
        return CDNFootprint(sites=tuple(seen.values()))


def build_cdn_footprint(
    n_sites: int = DEFAULT_SITE_COUNT,
    catalog: CityCatalog | None = None,
    seed: int = 0,
    max_offset_km: float = 40.0,
) -> CDNFootprint:
    """Build a synthetic CDN footprint of ``n_sites`` US/EU edge locations.

    Sites are allocated to cities proportionally to metro population (with at
    least one site per city), then jittered by up to ``max_offset_km`` from the
    city centre to emulate suburban data-center placement.
    """
    if n_sites <= 0:
        raise ValueError(f"n_sites must be positive, got {n_sites}")
    catalog = catalog or default_city_catalog()
    cities: list[City] = list(catalog)
    if n_sites < len(cities):
        # Keep the largest cities when asked for fewer sites than cities.
        cities = sorted(cities, key=lambda c: -c.population_k)[:n_sites]

    populations = np.array([c.population_k for c in cities], dtype=float)
    weights = populations / populations.sum()
    extra = n_sites - len(cities)
    # Every city gets one site; the remainder is distributed by population.
    counts = np.ones(len(cities), dtype=int)
    if extra > 0:
        fractional = weights * extra
        counts += np.floor(fractional).astype(int)
        remainder = n_sites - int(counts.sum())
        if remainder > 0:
            order = np.argsort(-(fractional - np.floor(fractional)))
            counts[order[:remainder]] += 1

    rng = substream(seed, "akamai-footprint", n_sites)
    sites: list[CDNSite] = []
    deg_per_km = 1.0 / 111.0  # approximate degrees of latitude per km
    for city, count in zip(cities, counts):
        for k in range(int(count)):
            if k == 0:
                lat, lon = city.lat, city.lon
            else:
                dlat = float(rng.uniform(-max_offset_km, max_offset_km)) * deg_per_km
                dlon = float(rng.uniform(-max_offset_km, max_offset_km)) * deg_per_km / max(
                    np.cos(np.radians(city.lat)), 0.2)
                lat, lon = city.lat + dlat, city.lon + dlon
            sites.append(CDNSite(
                site_id=f"{city.name.replace(' ', '_')}-{k:02d}",
                city_name=city.name,
                continent=city.continent,
                lat=lat,
                lon=lon,
                zone_id=city.zone_id,
                population_k=city.population_k,
            ))
    return CDNFootprint(sites=tuple(sites))


_DEFAULT_FOOTPRINT: CDNFootprint | None = None


def default_cdn_footprint() -> CDNFootprint:
    """Return the cached default 496-site footprint."""
    global _DEFAULT_FOOTPRINT
    if _DEFAULT_FOOTPRINT is None:
        _DEFAULT_FOOTPRINT = build_cdn_footprint()
    return _DEFAULT_FOOTPRINT
