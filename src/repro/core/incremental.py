"""Incremental placement (Algorithm 1).

:class:`IncrementalPlacer` is the paper's placement service loop: applications
arrive in batches (the prototype batches deployment requests every few
minutes); for every batch it

1. computes the application–server latency matrix (line 1–6),
2. filters servers violating latency constraints (line 7 — done inside the
   policies via the feasibility mask),
3. reads server telemetry — available capacity, base power, current power
   state — and the forecast mean carbon intensity (line 8),
4. solves the placement optimisation (line 9),
5. commits the resource allocation and power-state transitions so the next
   batch sees the updated state (line 10).

The placer owns no policy logic; it wires fleet state, the carbon-intensity
service, and the latency matrix into :class:`~repro.core.problem.PlacementProblem`
instances and applies the returned solutions to the fleet.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.carbon.service import CarbonIntensityService
from repro.cluster.fleet import EdgeFleet
from repro.core.policies.base import PlacementPolicy
from repro.core.problem import PlacementProblem
from repro.core.solution import PlacementSolution
from repro.core.validation import validate_solution
from repro.network.latency import LatencyMatrix
from repro.workloads.application import Application


@dataclass
class PlacementRound:
    """Record of one incremental placement round."""

    hour: int
    solution: PlacementSolution
    committed: bool


@dataclass
class IncrementalPlacer:
    """Drives a placement policy over batches of arriving applications.

    Parameters
    ----------
    fleet:
        The edge fleet whose servers receive the applications; its allocation
        and power state is mutated as batches commit.
    latency:
        One-way latency matrix covering all fleet sites and application source
        sites.
    carbon:
        Carbon-intensity service for Ī_j.
    policy:
        The placement policy to run each round.
    horizon_hours:
        Placement horizon handed to the problem builder.
    validate:
        Validate every solution against the constraints before committing.
    """

    fleet: EdgeFleet
    latency: LatencyMatrix
    carbon: CarbonIntensityService
    policy: PlacementPolicy
    horizon_hours: float = 1.0
    validate: bool = True
    use_forecast: bool = True
    history: list[PlacementRound] = field(default_factory=list)

    def build_problem(self, applications: list[Application], hour: int) -> PlacementProblem:
        """Assemble the placement problem for one batch from current fleet state."""
        return PlacementProblem.build(
            applications=applications,
            servers=self.fleet.servers(),
            latency=self.latency,
            carbon=self.carbon,
            hour=hour,
            horizon_hours=self.horizon_hours,
            use_forecast=self.use_forecast,
        )

    def place_batch(self, applications: list[Application], hour: int,
                    commit: bool = True) -> PlacementSolution:
        """Place one batch of applications and (optionally) commit it to the fleet."""
        if not applications:
            raise ValueError("place_batch requires at least one application")
        problem = self.build_problem(applications, hour)
        solution = self.policy.timed_place(problem)
        if self.validate:
            validate_solution(solution, strict=True)
        if commit:
            self.commit(solution)
        self.history.append(PlacementRound(hour=hour, solution=solution, committed=commit))
        return solution

    def commit(self, solution: PlacementSolution) -> None:
        """Apply a solution's power and allocation decisions to the fleet."""
        problem = solution.problem
        # Power transitions first so allocation on newly-on servers succeeds.
        for j, server in enumerate(problem.servers):
            if solution.power_on[j] > 0.5 and not server.is_on:
                server.power_on()
        for app_id, j in solution.placements.items():
            i = problem.app_index(app_id)
            problem.servers[j].allocate(app_id, problem.demands[i][j])

    def release_all(self) -> None:
        """Release every allocation committed through this placer (keeps power states)."""
        for server in self.fleet.servers():
            for app_id in list(server.allocations):
                server.release(app_id)

    def total_placed(self) -> int:
        """Number of applications placed across all committed rounds."""
        return sum(r.solution.n_placed for r in self.history if r.committed)

    def total_carbon_g(self) -> float:
        """Total Equation-6 carbon across all committed rounds, grams."""
        return sum(r.solution.total_carbon_g() for r in self.history if r.committed)
