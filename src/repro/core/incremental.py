"""Incremental placement (Algorithm 1).

:class:`IncrementalPlacer` is the paper's placement service loop: applications
arrive in batches (the prototype batches deployment requests every few
minutes); for every batch it

1. computes the application–server latency matrix (line 1–6),
2. filters servers violating latency constraints (line 7 — done inside the
   policies via the feasibility mask),
3. reads server telemetry — available capacity, base power, current power
   state — and the forecast mean carbon intensity (line 8),
4. solves the placement optimisation (line 9),
5. commits the resource allocation and power-state transitions so the next
   batch sees the updated state (line 10).

The placer owns no policy logic; it wires fleet state, the carbon-intensity
service, and the latency matrix into :class:`~repro.core.problem.PlacementProblem`
instances and applies the returned solutions to the fleet.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

from repro.carbon.service import CarbonIntensityService
from repro.cluster.fleet import EdgeFleet
from repro.cluster.resources import ResourceVector
from repro.core.policies.base import PlacementPolicy
from repro.core.problem import PlacementProblem
from repro.core.solution import PlacementSolution
from typing import TYPE_CHECKING

from repro.core.validation import validate_solution
from repro.network.latency import LatencyMatrix
from repro.workloads.application import Application

if TYPE_CHECKING:  # imported lazily at runtime to avoid a core<->solver cycle
    from repro.solver.compile import EpochCompilation, ScenarioCompilation
    from repro.workloads.generator import ApplicationBatch

logger = logging.getLogger(__name__)

#: Failure types an epoch re-solve is *expected* to raise (problem assembly
#: and solution validation report through these); anything else is logged as
#: unexpected before the fleet state is restored and the error re-raised.
EXPECTED_RESOLVE_ERRORS: tuple[type[BaseException], ...] = (ValueError, KeyError)


@dataclass
class PlacementRound:
    """Record of one incremental placement round."""

    hour: int
    solution: PlacementSolution
    committed: bool
    #: "batch" for a new-arrivals round, "resolve" for an epoch re-solve of
    #: already-running applications.
    kind: str = "batch"


@dataclass
class IncrementalPlacer:
    """Drives a placement policy over batches of arriving applications.

    Parameters
    ----------
    fleet:
        The edge fleet whose servers receive the applications; its allocation
        and power state is mutated as batches commit.
    latency:
        One-way latency matrix covering all fleet sites and application source
        sites.
    carbon:
        Carbon-intensity service for Ī_j.
    policy:
        The placement policy to run each round.
    horizon_hours:
        Placement horizon handed to the problem builder.
    validate:
        Validate every solution against the constraints before committing.
    """

    fleet: EdgeFleet
    latency: LatencyMatrix
    carbon: CarbonIntensityService
    policy: PlacementPolicy
    horizon_hours: float = 1.0
    validate: bool = True
    use_forecast: bool = True
    history: list[PlacementRound] = field(default_factory=list)
    #: Applications committed through this placer, by id (the epoch re-solve
    #: needs the full Application objects to rebuild the problem).
    active_apps: dict[str, Application] = field(default_factory=dict)
    #: The most recent epoch's compilation; the next re-solve's compilation
    #: warm-starts from it (reusing e.g. the nearest-feasible-latency vector
    #: when the application/server geometry is unchanged between epochs).
    last_compilation: "EpochCompilation | None" = field(default=None, repr=False)

    def scenario_compilation(self) -> "ScenarioCompilation | None":
        """The scenario-lifetime compilation tier over this placer's substrate.

        The fleet/latency/carbon substrate is fixed for the placer's lifetime,
        so the static tensors (latency geometry, device-class energy/demand
        blocks, SLO-feasibility rows) are compiled once and every batch and
        epoch re-solve assembles only its delta — including the warm-start
        allocation state, which the delta reads live from the fleet because
        committed batches leave the fleet anything but pristine. ``None``
        (cold rebuilds) when the tier is force-disabled.
        """
        from repro.solver.compile import compile_scenario, scenario_tier_enabled

        if not scenario_tier_enabled():
            return None
        return compile_scenario(self.fleet.servers(), self.latency, self.carbon)

    def build_problem(self, applications: "list[Application] | ApplicationBatch",
                      hour: int) -> PlacementProblem:
        """Assemble the placement problem for one batch from current fleet state.

        Accepts either a list of applications or a columnar
        :class:`~repro.workloads.generator.ApplicationBatch`; a batch flows
        through to the substrate's class-table fast path untouched.
        """
        return PlacementProblem.build(
            applications=applications,
            servers=self.fleet.servers(),
            latency=self.latency,
            carbon=self.carbon,
            hour=hour,
            horizon_hours=self.horizon_hours,
            use_forecast=self.use_forecast,
            substrate=self.scenario_compilation(),
        )

    def place_batch(self, applications: "list[Application] | ApplicationBatch",
                    hour: int, commit: bool = True) -> PlacementSolution:
        """Place one batch of applications and (optionally) commit it to the fleet."""
        if len(applications) == 0:
            raise ValueError("place_batch requires at least one application")
        from repro.solver.compile import compile_placement

        problem = self.build_problem(applications, hour)
        self.last_compilation = compile_placement(problem, previous=self.last_compilation)
        solution = self.policy.timed_place(problem)
        if self.validate:
            validate_solution(solution, strict=True)
        if commit:
            self.commit(solution)
        self.history.append(PlacementRound(hour=hour, solution=solution, committed=commit))
        return solution

    def resolve_epoch(self, hour: int) -> PlacementSolution | None:
        """Re-solve the placement of every currently running application.

        This is the epoch re-solve path: carbon intensities move between
        epochs, so a placement that was optimal an hour ago may no longer be.
        The placer rebuilds one problem over all applications currently
        allocated on the fleet, *warm-starts* the policy's solver backend from
        their current servers (so the heuristic backend only has to improve
        incrementally), releases the old allocations, and commits the new
        placement. Returns ``None`` when nothing is running.
        """
        current: dict[str, str] = {}  # app_id -> hosting server_id
        for server in self.fleet.servers():
            for app_id in server.allocations:
                if app_id in self.active_apps:
                    current[app_id] = server.server_id
        if not current:
            return None
        apps = [self.active_apps[app_id] for app_id in current]
        # Free the capacity the running applications hold so the re-solve can
        # move them; the commit below re-allocates at the chosen servers. The
        # freed vectors are kept so a failed re-solve restores the fleet
        # bit-for-bit.
        freed: dict[str, ResourceVector] = {}
        for server in self.fleet.servers():
            for app_id in list(server.allocations):
                if app_id in current:
                    freed[app_id] = server.release(app_id)
        from repro.solver.compile import compile_placement

        try:
            problem = self.build_problem(apps, hour)
            # Compile once up front, warm-started from the previous epoch's
            # compilation; the policy's solver backends then share this
            # instance instead of compiling their own.
            self.last_compilation = compile_placement(problem,
                                                      previous=self.last_compilation)
            server_index = {s.server_id: j for j, s in enumerate(problem.servers)}
            warm_start = {app_id: server_index[server_id]
                          for app_id, server_id in current.items()}
            solution = self.policy.timed_place(problem, warm_start=warm_start)
            if self.validate:
                validate_solution(solution, strict=True)
        except BaseException as exc:
            # Expected failures (infeasible problems, validation errors)
            # surface as-is; anything else is logged first so an unexpected
            # solver bug is never silently indistinguishable from a routine
            # validation failure. Either way the released allocations are
            # restored so a failed re-solve leaves the fleet exactly as it
            # was (matching deployments and bindings), and the error always
            # propagates to the caller.
            if not isinstance(exc, EXPECTED_RESOLVE_ERRORS):
                logger.exception(
                    "unexpected %s during epoch re-solve at hour %d "
                    "(policy %s, %d applications); fleet state restored",
                    type(exc).__name__, hour, self.policy.name, len(apps))
            for app_id, server_id in current.items():
                self.fleet.server(server_id).allocate(app_id, freed[app_id])
            raise
        self.commit(solution)
        # An app the re-solve could not keep placed no longer holds capacity;
        # drop it from the active set (the orchestrator tears down its
        # deployment and binding in reoptimize()).
        for app_id in solution.unplaced:
            self.active_apps.pop(app_id, None)
        self.history.append(PlacementRound(hour=hour, solution=solution,
                                           committed=True, kind="resolve"))
        return solution

    def commit(self, solution: PlacementSolution) -> None:
        """Apply a solution's power and allocation decisions to the fleet."""
        problem = solution.problem
        # Power transitions first so allocation on newly-on servers succeeds.
        for j, server in enumerate(problem.servers):
            if solution.power_on[j] > 0.5 and not server.is_on:
                server.power_on()
        for app_id, j in solution.placements.items():
            i = problem.app_index(app_id)
            problem.servers[j].allocate(app_id, problem.demands[i][j])
            self.active_apps[app_id] = problem.applications[i]

    def release_all(self) -> None:
        """Release every allocation committed through this placer (keeps power states)."""
        for server in self.fleet.servers():
            for app_id in list(server.allocations):
                server.release(app_id)
        self.active_apps.clear()

    def live_solution(self) -> PlacementSolution | None:
        """The most recently committed solution (``None`` before any commit).

        After an epoch re-solve this covers *every* running application, so
        its metrics describe the placement currently live on the fleet —
        the number to read when quantifying what :meth:`resolve_epoch` saved.
        """
        for placement_round in reversed(self.history):
            if placement_round.committed:
                return placement_round.solution
        return None

    def total_placed(self) -> int:
        """Number of applications placed across all committed arrival batches.

        Epoch re-solves re-place applications that were already counted, so
        they are excluded here.
        """
        return sum(r.solution.n_placed for r in self.history
                   if r.committed and r.kind == "batch")

    def total_carbon_g(self) -> float:
        """Total Equation-6 carbon across all committed arrival batches, grams.

        This is *arrival accounting*: each batch's carbon as it was placed,
        summed over batches (and excluding re-solve rounds, which re-place
        applications already counted). It intentionally does not reflect
        later epoch re-solves — for the current live footprint use
        :meth:`live_solution` after a re-solve.
        """
        return sum(r.solution.total_carbon_g() for r in self.history
                   if r.committed and r.kind == "batch")
