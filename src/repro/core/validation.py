"""Solution validation against the placement constraints (Equations 1–5).

Every experiment validates the solutions it reports, so a policy or solver bug
cannot silently produce infeasible placements that look like savings.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.resources import ResourceVector
from repro.core.problem import PlacementProblem
from repro.core.solution import PlacementSolution


class ValidationError(AssertionError):
    """Raised when a placement solution violates a constraint."""


def validate_solution(solution: PlacementSolution, strict: bool = True) -> list[str]:
    """Check a solution against its problem's constraints.

    Parameters
    ----------
    solution:
        The solution to validate.
    strict:
        Raise :class:`ValidationError` on the first set of violations instead
        of returning them.

    Returns
    -------
    list[str]
        Human-readable violation descriptions (empty when valid).
    """
    problem: PlacementProblem = solution.problem
    violations: list[str] = []
    feasible = problem.feasible_mask()

    # Equation 3: each application placed at most once, and every application is
    # either placed or listed as unplaced.
    placed_ids = set(solution.placements)
    unplaced_ids = set(solution.unplaced)
    all_ids = {app.app_id for app in problem.applications}
    if placed_ids & unplaced_ids:
        violations.append(f"applications both placed and unplaced: {placed_ids & unplaced_ids}")
    missing = all_ids - placed_ids - unplaced_ids
    if missing:
        violations.append(f"applications neither placed nor marked unplaced: {sorted(missing)}")
    unknown = placed_ids - all_ids
    if unknown:
        violations.append(f"placements for unknown applications: {sorted(unknown)}")

    # Known placements as index arrays so Equations 1 and 2 check in bulk.
    known = [(app_id, j) for app_id, j in solution.placements.items() if app_id in all_ids]
    if known:
        i_arr = problem.app_indices([app_id for app_id, _ in known])
        j_arr = np.fromiter((j for _, j in known), dtype=np.intp, count=len(known))
    else:
        i_arr = j_arr = np.zeros(0, dtype=np.intp)

    # Equation 2 (latency / support feasibility of every chosen pair).
    for pos in np.flatnonzero(~feasible[i_arr, j_arr]):
        app_id, j = known[int(pos)]
        i = int(i_arr[pos])
        violations.append(
            f"{app_id} placed on {problem.servers[j].server_id} violating its latency SLO "
            f"({2 * problem.latency_ms[i, j]:.2f} ms RTT > {problem.applications[i].latency_slo_ms} ms)")

    # Equation 1: per-server capacity across every resource dimension, summed
    # over the dense (A, S, K) demand tensor.
    if known:
        demand_dense = problem.demand_dense()
        capacity_dense = problem.capacity_dense()
        totals = np.zeros_like(capacity_dense)
        np.add.at(totals, j_arr, demand_dense[i_arr, j_arr])
        over = np.flatnonzero(np.any(totals > capacity_dense + 1e-9, axis=-1))
        for j in over:
            j = int(j)
            demand_total = ResourceVector(
                dict(zip(problem.resource_keys(), totals[j].tolist())))
            violations.append(
                f"server {problem.servers[j].server_id} over capacity: demand {demand_total} "
                f"> available {problem.capacities[j]}")

    # Equation 5: assignments require powered-on servers.
    used_servers = set(solution.placements.values())
    for j in used_servers:
        if solution.power_on[j] < 0.5:
            violations.append(
                f"server {problem.servers[j].server_id} hosts applications but is powered off")

    # Equation 4: power-state consistency (no active server switched off).
    switched_off = np.flatnonzero((problem.current_power > 0.5) & (solution.power_on < 0.5))
    for j in switched_off:
        violations.append(
            f"server {problem.servers[int(j)].server_id} was on before placement "
            "but the solution powers it off")

    if violations and strict:
        raise ValidationError("; ".join(violations))
    return violations
