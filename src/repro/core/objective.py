"""Objective construction for the placement MILP.

Three objectives are supported, matching the paper:

* **carbon** (Equation 6): operational emissions of every assignment plus the
  activation emissions of newly powered-on servers;
* **energy**: the same structure with energy instead of emissions (the
  Energy-aware baseline of Section 6.1.3);
* **multi-objective** (Equation 8): ``α·p + (1-α)·f`` over min-max normalised
  energy (p) and carbon (f) coefficients, which is how the paper explores the
  carbon-energy trade-off in Section 6.4.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.core.problem import PlacementProblem


class ObjectiveKind(Enum):
    """Which objective the placement model minimises."""

    CARBON = "carbon"
    ENERGY = "energy"
    MULTI = "multi"
    LATENCY = "latency"
    INTENSITY = "intensity"


def carbon_objective_coefficients(problem: PlacementProblem) -> tuple[np.ndarray, np.ndarray]:
    """(A,S) assignment coefficients and (S,) activation coefficients, in grams CO2eq."""
    return problem.operational_carbon_g(), problem.activation_carbon_g()


def energy_objective_coefficients(problem: PlacementProblem) -> tuple[np.ndarray, np.ndarray]:
    """(A,S) assignment coefficients and (S,) activation coefficients, in joules."""
    return problem.energy_j.copy(), problem.activation_energy_j()


def latency_objective_coefficients(problem: PlacementProblem) -> tuple[np.ndarray, np.ndarray]:
    """(A,S) assignment coefficients (one-way ms) and zero activation coefficients."""
    return problem.latency_ms.copy(), np.zeros(problem.n_servers)


def intensity_objective_coefficients(problem: PlacementProblem) -> tuple[np.ndarray, np.ndarray]:
    """(A,S) coefficients equal to the hosting zone's intensity Ī_j (Section 6.1.3).

    The Intensity-aware baseline's objective: chase the greenest zone,
    ignoring how much energy the application actually consumes there.
    """
    assignment = np.broadcast_to(problem.intensity[None, :],
                                 (problem.n_applications, problem.n_servers)).copy()
    return assignment, np.zeros(problem.n_servers)


def _minmax_normalize(assignment: np.ndarray, activation: np.ndarray,
                      feasible: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Min-max normalise coefficients jointly over the feasible entries to [0, 1]."""
    pool = assignment[feasible] if feasible.any() else assignment.ravel()
    pool = np.concatenate([pool.ravel(), activation.ravel()])
    lo, hi = float(pool.min()), float(pool.max())
    span = hi - lo
    if span <= 0:
        return np.zeros_like(assignment), np.zeros_like(activation)
    return (assignment - lo) / span, (activation - lo) / span


def multi_objective_coefficients(problem: PlacementProblem, alpha: float
                                 ) -> tuple[np.ndarray, np.ndarray]:
    """Equation 8 coefficients: ``α·p̂ + (1-α)·f̂`` with min-max normalised p and f.

    ``alpha = 0`` is the vanilla CarbonEdge (carbon-only) objective; ``alpha = 1``
    is the Energy-aware objective.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    feasible = problem.feasible_mask()
    carbon_a, carbon_s = carbon_objective_coefficients(problem)
    energy_a, energy_s = energy_objective_coefficients(problem)
    carbon_a, carbon_s = _minmax_normalize(carbon_a, carbon_s, feasible)
    energy_a, energy_s = _minmax_normalize(energy_a, energy_s, feasible)
    assignment = alpha * energy_a + (1.0 - alpha) * carbon_a
    activation = alpha * energy_s + (1.0 - alpha) * carbon_s
    return assignment, activation


def tie_break_matrix(problem: PlacementProblem, kind: ObjectiveKind) -> np.ndarray:
    """(A,S) documented default tie-break matrix for an objective.

    One-way latency for every objective except the latency objective itself
    (greener-but-equidistant choices prefer proximity); the latency objective
    tie-breaks by operational carbon so equal-latency choices stay stable
    and prefer the greener server. The single source of this rule — the MILP
    builder and the dense backends both consume it, so every backend
    minimises the same augmented objective.
    """
    if kind is ObjectiveKind.LATENCY:
        return problem.operational_carbon_g()
    return problem.latency_ms


def apply_tie_break(assign: np.ndarray, mask: np.ndarray,
                    tie: np.ndarray) -> np.ndarray:
    """``assign`` plus an epsilon perturbation of ``tie`` over the mask.

    The epsilon is scaled so the perturbation never exceeds ``1e-5`` of the
    largest feasible assignment cost — enough to order objective-equal
    candidates deterministically, negligible against the real objective.
    """
    feasible_vals = assign[mask] if mask.any() else assign
    scale = float(np.abs(feasible_vals).max()) if feasible_vals.size else 1.0
    tie_scale = float(tie[mask].max()) if mask.any() else 1.0
    if scale > 0 and tie_scale > 0:
        epsilon = 1e-5 * scale / tie_scale
        return assign + epsilon * np.where(mask, tie, 0.0)
    return assign


def objective_coefficients(problem: PlacementProblem, kind: ObjectiveKind,
                           alpha: float = 0.0) -> tuple[np.ndarray, np.ndarray]:
    """Dispatch to the requested objective's coefficient builder."""
    if kind is ObjectiveKind.CARBON:
        return carbon_objective_coefficients(problem)
    if kind is ObjectiveKind.ENERGY:
        return energy_objective_coefficients(problem)
    if kind is ObjectiveKind.LATENCY:
        return latency_objective_coefficients(problem)
    if kind is ObjectiveKind.INTENSITY:
        return intensity_objective_coefficients(problem)
    if kind is ObjectiveKind.MULTI:
        return multi_objective_coefficients(problem, alpha)
    raise ValueError(f"unknown objective kind {kind!r}")
