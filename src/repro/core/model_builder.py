"""Translation of a placement problem into the MILP of Equations 1–7.

Variables
---------
* ``x[i,j]`` — binary, application *i* placed on server *j*; only created for
  pairs that survive the feasibility filter (latency constraint, Equation 2,
  is therefore enforced structurally).
* ``y[j]`` — binary, server *j* powered on; its lower bound is the current
  power state (power-state consistency, Equation 4).

Constraints
-----------
* Equation 1: per-server, per-resource capacity with the ``y_j`` coupling.
* Equation 3: each (placeable) application assigned to exactly one server.
* Equation 5: ``x_ij <= y_j``.

Objective
---------
Equation 6 (or the energy / multi-objective variants): assignment coefficients
on the ``x`` variables and activation coefficients ``(y_j - y^curr_j)`` on the
``y`` variables; the constant ``-Σ y^curr_j·coeff`` is folded into the model's
objective constant so reported objective values equal the solution metrics.
"""

from __future__ import annotations

import numpy as np

from repro.core.filters import FeasibilityReport
from repro.core.objective import (
    ObjectiveKind,
    apply_tie_break,
    objective_coefficients,
    tie_break_matrix,
)
from repro.core.problem import PlacementProblem
from repro.solver.milp import MILPModel


def x_name(i: int, j: int) -> str:
    """Canonical name of the placement variable x_ij."""
    return f"x[{i},{j}]"


def y_name(j: int) -> str:
    """Canonical name of the power variable y_j."""
    return f"y[{j}]"


def build_placement_model(
    problem: PlacementProblem,
    objective: ObjectiveKind = ObjectiveKind.CARBON,
    alpha: float = 0.0,
    report: FeasibilityReport | None = None,
    manage_power: bool = True,
) -> tuple[MILPModel, FeasibilityReport]:
    """Build the placement MILP for a problem.

    Parameters
    ----------
    problem:
        The placement problem instance.
    objective:
        Which objective to minimise (carbon by default).
    alpha:
        Energy weight for the multi-objective variant (Equation 8).
    report:
        Pre-computed feasibility report. When omitted it is read from the
        problem's memoised epoch compilation
        (:func:`repro.solver.compile.compile_placement`) — scenario-tier
        builds arrive with the report pre-assembled from cached class rows,
        and every consumer of the same problem shares one report either way.
    manage_power:
        When False, every server is treated as already on and no activation
        term is added — the ablation benchmark uses this to quantify the value
        of power-state management.

    Returns
    -------
    (model, report):
        The MILP model and the feasibility report used to build it.
        Applications listed in ``report.unplaceable`` have no variables and no
        assignment constraint; callers must handle them.
    """
    if report is None:
        # Share the problem's memoised compilation (and therefore its report)
        # with the policies and backends instead of re-running the filter.
        from repro.solver.compile import compile_placement

        report = compile_placement(problem).report
    model = MILPModel(name="carbon-edge-placement")
    assign_coeff, activation_coeff = objective_coefficients(problem, objective, alpha)

    # Deterministic tie-break shared with the dense backends (the rule and
    # epsilon live in repro.core.objective), so every backend minimises the
    # identical augmented objective.
    assign_coeff = apply_tie_break(assign_coeff, report.mask,
                                   tie_break_matrix(problem, objective))

    # Variables -------------------------------------------------------------
    for j in range(problem.n_servers):
        current = float(problem.current_power[j])
        lower = 1.0 if (not manage_power or current >= 0.5) else 0.0
        model.add_binary(y_name(j), lower=lower, upper=1.0)
    for i in range(problem.n_applications):
        for j in report.candidates_for(i):
            model.add_binary(x_name(i, int(j)))

    # Objective ---------------------------------------------------------------
    objective_terms: dict[str, float] = {}
    constant = 0.0
    for i in range(problem.n_applications):
        for j in report.candidates_for(i):
            objective_terms[x_name(i, int(j))] = float(assign_coeff[i, int(j)])
    if manage_power:
        for j in range(problem.n_servers):
            coeff = float(activation_coeff[j])
            if coeff != 0.0:
                objective_terms[y_name(j)] = objective_terms.get(y_name(j), 0.0) + coeff
                constant -= coeff * float(problem.current_power[j])
    model.set_objective(objective_terms, constant=constant)

    # Equation 3: exactly-one assignment per placeable application -------------
    for i in range(problem.n_applications):
        candidates = report.candidates_for(i)
        if len(candidates) == 0:
            continue
        model.add_constraint(
            f"assign[{i}]",
            {x_name(i, int(j)): 1.0 for j in candidates},
            rhs=1.0,
            equality=True,
        )

    # Equation 1: capacity per server and resource dimension -------------------
    for j in range(problem.n_servers):
        apps_here = [i for i in range(problem.n_applications) if report.mask[i, j]]
        if not apps_here:
            continue
        resource_keys = set(problem.capacities[j].keys())
        for i in apps_here:
            resource_keys.update(problem.demands[i][j].keys())
        for key in sorted(resource_keys):
            capacity = problem.capacities[j].get(key)
            coeffs: dict[str, float] = {}
            for i in apps_here:
                demand = problem.demands[i][j].get(key)
                if demand > 0:
                    coeffs[x_name(i, j)] = demand
            if not coeffs:
                continue
            coeffs[y_name(j)] = -capacity
            model.add_constraint(f"capacity[{j},{key}]", coeffs, rhs=0.0)

    # Equation 5: assignments require an active server --------------------------
    for i in range(problem.n_applications):
        for j in report.candidates_for(i):
            model.add_constraint(
                f"active[{i},{int(j)}]",
                {x_name(i, int(j)): 1.0, y_name(int(j)): -1.0},
                rhs=0.0,
            )

    return model, report


def assignment_groups(problem: PlacementProblem, report: FeasibilityReport) -> list[list[str]]:
    """Exactly-one variable groups (per application) for the rounding heuristic."""
    groups: list[list[str]] = []
    for i in range(problem.n_applications):
        candidates = report.candidates_for(i)
        if len(candidates) > 0:
            groups.append([x_name(i, int(j)) for j in candidates])
    return groups


def solution_from_values(problem: PlacementProblem, report: FeasibilityReport,
                         values: dict[str, float]) -> tuple[dict[str, int], np.ndarray]:
    """Decode solver variable values into (placements, power_on) arrays."""
    placements: dict[str, int] = {}
    for i, app in enumerate(problem.applications):
        for j in report.candidates_for(i):
            if values.get(x_name(i, int(j)), 0.0) > 0.5:
                placements[app.app_id] = int(j)
                break
    power_on = problem.current_power.copy()
    for j in range(problem.n_servers):
        if values.get(y_name(j), 0.0) > 0.5:
            power_on[j] = 1.0
    # Any server hosting an application must be on regardless of solver output.
    for j in set(placements.values()):
        power_on[j] = 1.0
    return placements, power_on
