"""Feasible-server filtering (Algorithm 1, line 7).

Before solving the optimisation, CarbonEdge prunes servers that cannot host an
application: pairs violating the latency SLO, pairs without a workload profile
for the server's device, and (optionally) pairs whose demand exceeds the
server's available capacity on its own. The filter also reports applications
with an empty candidate set, which the policies record as unplaceable rather
than failing the whole batch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.problem import PlacementProblem


@dataclass
class FeasibilityReport:
    """Outcome of feasible-server filtering for one problem."""

    #: (A, S) mask of pairs that remain candidates.
    mask: np.ndarray
    #: Indices of applications with no candidate server at all.
    unplaceable: list[int]
    #: Indices of servers that are a candidate for at least one application.
    useful_servers: list[int]

    @property
    def n_candidate_pairs(self) -> int:
        """Number of (application, server) pairs that survived the filter."""
        return int(self.mask.sum())

    def candidates_for(self, app_index: int) -> np.ndarray:
        """Server indices that are candidates for one application."""
        return np.flatnonzero(self.mask[app_index])


def filter_feasible_servers(problem: PlacementProblem,
                            check_capacity: bool = True) -> FeasibilityReport:
    """Apply latency, profile-support, and (optional) standalone capacity filters.

    Parameters
    ----------
    problem:
        The placement problem.
    check_capacity:
        Also drop pairs whose single-application demand already exceeds the
        server's available capacity. (Aggregate capacity is still enforced by
        the optimisation; this filter just shrinks the search space.)
    """
    mask = problem.feasible_mask().copy()
    if check_capacity:
        # Vectorised equivalent of demand.fits_within(capacity) per candidate
        # pair: compare the dense (A, S, K) demand tensor against capacity with
        # the same per-dimension slack. Pairs outside the mask have zero
        # demand rows, so restricting afterwards gives identical results.
        demand = problem.demand_dense()
        capacity = problem.capacity_dense()
        if demand.shape[-1]:
            fits = np.all(demand <= capacity[None, :, :] + 1e-9, axis=-1)
            mask &= fits
    unplaceable = [i for i in range(problem.n_applications) if not mask[i].any()]
    useful = sorted(set(np.flatnonzero(mask.any(axis=0)).tolist()))
    return FeasibilityReport(mask=mask, unplaceable=unplaceable, useful_servers=useful)
