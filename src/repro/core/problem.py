"""The carbon-aware placement problem instance.

A :class:`PlacementProblem` bundles everything Table 2 of the paper lists as
inputs: the applications to place, the candidate servers with their available
capacities C^k_j, base powers B_j and current power states y^curr_j, the
per-pair latencies L_ij, the per-pair resource demands R^k_ij and energies
E_ij, and the (forecast-averaged) carbon intensities Ī_j. All pairwise
quantities are pre-computed into dense NumPy arrays so the policies and the
MILP builder never re-derive them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.carbon.service import CarbonIntensityService
from repro.cluster.resources import ResourceVector
from repro.cluster.server import EdgeServer
from repro.network.latency import LatencyMatrix
from repro.utils.units import joules_to_kwh
from repro.workloads.application import Application

#: Large latency assigned to (application, server) pairs with no usable profile.
INFEASIBLE_LATENCY_MS: float = 1e9


@dataclass
class PlacementProblem:
    """One batch-placement instance.

    Use :meth:`build` to construct instances from library objects; the raw
    constructor expects pre-computed arrays (mostly useful in tests).
    """

    applications: list[Application]
    servers: list[EdgeServer]
    #: (A, S) one-way latency between each application's source and each server.
    latency_ms: np.ndarray
    #: (A, S) dynamic energy E_ij in joules over the placement horizon.
    energy_j: np.ndarray
    #: (A, S) list-of-lists of per-pair resource demands R^k_ij.
    demands: list[list[ResourceVector]]
    #: (S,) forecast-average carbon intensity Ī_j, g CO2eq/kWh.
    intensity: np.ndarray
    #: (S,) available capacity C^k_j per server.
    capacities: list[ResourceVector] = field(default_factory=list)
    #: (S,) base power B_j in watts.
    base_power_w: np.ndarray = field(default_factory=lambda: np.array([]))
    #: (S,) current power state y^curr_j (1 = on).
    current_power: np.ndarray = field(default_factory=lambda: np.array([]))
    #: Placement horizon in hours (used for activation energy).
    horizon_hours: float = 1.0
    #: (A, S) support mask: True where the workload has a profile on the server.
    supported: np.ndarray | None = None

    def __post_init__(self) -> None:
        a, s = len(self.applications), len(self.servers)
        self.latency_ms = np.asarray(self.latency_ms, dtype=float)
        self.energy_j = np.asarray(self.energy_j, dtype=float)
        self.intensity = np.asarray(self.intensity, dtype=float)
        self.base_power_w = np.asarray(self.base_power_w, dtype=float)
        self.current_power = np.asarray(self.current_power, dtype=float)
        if self.supported is None:
            self.supported = np.ones((a, s), dtype=bool)
        else:
            self.supported = np.asarray(self.supported, dtype=bool)
        expected_2d = {(a, s)}
        for name, arr in (("latency_ms", self.latency_ms), ("energy_j", self.energy_j),
                          ("supported", self.supported)):
            if arr.shape not in expected_2d:
                raise ValueError(f"{name} must have shape ({a}, {s}), got {arr.shape}")
        for name, arr in (("intensity", self.intensity), ("base_power_w", self.base_power_w),
                          ("current_power", self.current_power)):
            if arr.shape != (s,):
                raise ValueError(f"{name} must have shape ({s},), got {arr.shape}")
        if len(self.demands) != a or any(len(row) != s for row in self.demands):
            raise ValueError(f"demands must be an {a}x{s} nested list")
        if len(self.capacities) != s:
            raise ValueError(f"capacities must have {s} entries, got {len(self.capacities)}")
        if self.horizon_hours <= 0:
            raise ValueError("horizon_hours must be positive")
        if np.any(self.intensity < 0):
            raise ValueError("carbon intensities must be non-negative")

    # -- sizes ------------------------------------------------------------------

    @property
    def n_applications(self) -> int:
        """Number of applications in the batch."""
        return len(self.applications)

    @property
    def n_servers(self) -> int:
        """Number of candidate servers."""
        return len(self.servers)

    # -- derived matrices ---------------------------------------------------------

    def feasible_mask(self) -> np.ndarray:
        """(A, S) mask of pairs satisfying the latency constraint and profile support.

        The latency constraint compares the *round-trip* network latency
        (2 × one-way) against each application's SLO, matching the paper's use
        of round-trip limits in the evaluation.
        """
        slos = np.array([app.latency_slo_ms for app in self.applications])[:, None]
        return (2.0 * self.latency_ms <= slos + 1e-9) & self.supported

    def operational_carbon_g(self) -> np.ndarray:
        """(A, S) operational emissions x_ij would incur: E_ij (kWh) × Ī_j, grams."""
        return joules_to_kwh(self.energy_j) * self.intensity[None, :]

    def activation_carbon_g(self) -> np.ndarray:
        """(S,) emissions of newly activating each server: B_j × horizon × Ī_j, grams."""
        activation_kwh = self.base_power_w * self.horizon_hours / 1000.0
        return activation_kwh * self.intensity

    def activation_energy_j(self) -> np.ndarray:
        """(S,) energy of keeping each server on for the horizon, joules."""
        return self.base_power_w * self.horizon_hours * 3600.0

    def app_index(self, app_id: str) -> int:
        """Index of an application by id."""
        for i, app in enumerate(self.applications):
            if app.app_id == app_id:
                return i
        raise KeyError(f"unknown application {app_id!r}")

    def server_index(self, server_id: str) -> int:
        """Index of a server by id."""
        for j, server in enumerate(self.servers):
            if server.server_id == server_id:
                return j
        raise KeyError(f"unknown server {server_id!r}")

    # -- construction ---------------------------------------------------------------

    @classmethod
    def build(
        cls,
        applications: Sequence[Application],
        servers: Sequence[EdgeServer],
        latency: LatencyMatrix,
        carbon: CarbonIntensityService,
        hour: int = 0,
        horizon_hours: float = 1.0,
        use_forecast: bool = True,
    ) -> "PlacementProblem":
        """Assemble a problem from library objects.

        Parameters
        ----------
        applications:
            Batch of applications to place.
        servers:
            Candidate servers (their available capacity and power state are read
            at call time).
        latency:
            One-way latency matrix over sites; application source sites and
            server sites must both be present.
        carbon:
            Carbon-intensity service providing Ī_j (forecast mean over the
            horizon) or the instantaneous intensity.
        hour:
            Hour-of-year at which the placement happens.
        horizon_hours:
            Placement horizon (applications are assumed to run this long).
        use_forecast:
            Use the forecast mean (paper behaviour) instead of the
            instantaneous intensity; the ablation benchmark flips this.
        """
        applications = list(applications)
        servers = list(servers)
        a, s = len(applications), len(servers)
        if a == 0:
            raise ValueError("cannot build a placement problem with no applications")
        if s == 0:
            raise ValueError("cannot build a placement problem with no servers")

        latency_ms = np.zeros((a, s))
        energy_j = np.zeros((a, s))
        supported = np.zeros((a, s), dtype=bool)
        demands: list[list[ResourceVector]] = []
        for i, app in enumerate(applications):
            row: list[ResourceVector] = []
            for j, server in enumerate(servers):
                latency_ms[i, j] = latency.one_way_ms(app.source_site, server.site)
                if app.supports_server(server):
                    supported[i, j] = True
                    scaled = Application(
                        app_id=app.app_id, workload=app.workload,
                        source_site=app.source_site, latency_slo_ms=app.latency_slo_ms,
                        request_rate_rps=app.request_rate_rps, duration_hours=horizon_hours)
                    energy_j[i, j] = scaled.energy_on(server)
                    row.append(app.resource_demand_on(server))
                else:
                    latency_ms[i, j] = INFEASIBLE_LATENCY_MS
                    energy_j[i, j] = 0.0
                    row.append(ResourceVector())
            demands.append(row)

        if use_forecast:
            intensity = np.array([
                carbon.forecast_mean(srv.zone_id, hour, int(np.ceil(horizon_hours)))
                for srv in servers])
        else:
            intensity = np.array([carbon.current_intensity(srv.zone_id, hour)
                                  for srv in servers])

        return cls(
            applications=applications,
            servers=servers,
            latency_ms=latency_ms,
            energy_j=energy_j,
            demands=demands,
            intensity=intensity,
            capacities=[srv.available_capacity for srv in servers],
            base_power_w=np.array([srv.base_power_w for srv in servers]),
            current_power=np.array([1.0 if srv.is_on else 0.0 for srv in servers]),
            horizon_hours=horizon_hours,
            supported=supported,
        )
