"""The carbon-aware placement problem instance.

A :class:`PlacementProblem` bundles everything Table 2 of the paper lists as
inputs: the applications to place, the candidate servers with their available
capacities C^k_j, base powers B_j and current power states y^curr_j, the
per-pair latencies L_ij, the per-pair resource demands R^k_ij and energies
E_ij, and the (forecast-averaged) carbon intensities Ī_j. All pairwise
quantities are pre-computed into dense NumPy arrays so the policies and the
MILP builder never re-derive them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.carbon.service import CarbonIntensityService
from repro.cluster.resources import ResourceVector
from repro.cluster.server import EdgeServer
from repro.network.latency import LatencyMatrix
from repro.utils.units import joules_to_kwh
from repro.workloads.application import Application
from repro.workloads.profiles import get_profile

#: Large latency assigned to (application, server) pairs with no usable profile.
INFEASIBLE_LATENCY_MS: float = 1e9

#: Default budget on flat ``n_applications × n_servers`` dense cells. Every
#: flat build materialises several float64 tensors of that shape (latency,
#: energy, demand×K, …), so 1.5e8 cells ≈ a few GiB resident — beyond it the
#: flat path is refused and the hierarchical tier is the supported route.
#: Override with ``CARBON_EDGE_MAX_DENSE_CELLS``.
DEFAULT_MAX_DENSE_CELLS: int = 150_000_000


def max_dense_cells() -> int:
    """Configured budget on flat dense cells (``CARBON_EDGE_MAX_DENSE_CELLS``)."""
    raw = os.environ.get("CARBON_EDGE_MAX_DENSE_CELLS", "")
    return int(raw) if raw else DEFAULT_MAX_DENSE_CELLS


def ensure_dense_cell_budget(n_applications: int, n_servers: int,
                             context: str = "flat placement build") -> None:
    """Refuse flat dense-tensor builds past the configured cell budget.

    The refusal names the escape hatches: the hierarchical solver tier
    (``SolverConfig(hierarchy_regions=...)`` / ``--hierarchy-regions``), which
    keeps peak tensors bounded by the largest region, or raising the budget
    via ``CARBON_EDGE_MAX_DENSE_CELLS`` on a box with the memory to match.
    """
    budget = max_dense_cells()
    cells = int(n_applications) * int(n_servers)
    if cells > budget:
        raise ValueError(
            f"{context}: {n_applications} applications x {n_servers} servers = "
            f"{cells} dense cells exceeds the CARBON_EDGE_MAX_DENSE_CELLS budget "
            f"of {budget}. Use the hierarchical solver tier instead — "
            f"SolverConfig(hierarchy_regions=N) / carbon-edge experiments run "
            f"--hierarchy-regions N — or raise CARBON_EDGE_MAX_DENSE_CELLS if "
            f"this box really has the memory for flat tensors at this scale.")

#: Shared empty demand for (application, server) pairs without a profile.
_EMPTY_DEMAND = ResourceVector()

#: Cross-epoch cache: (workload, accelerator name, cpu name) -> profile or None.
#: Profiles are a fixed catalogue, so entries never go stale; the cache lets a
#: year-long simulation resolve each (workload, device-class) pair exactly once.
_PROFILE_CACHE: dict[tuple[str, str | None, str], object] = {}

#: Cross-epoch cache: (workload, device key, request rate) -> shared demand
#: vector (profile demand x replicas). ResourceVectors are treated as
#: immutable throughout the solver stack, so sharing one instance per distinct
#: demand is safe and avoids rebuilding ~A x S vectors every epoch.
_DEMAND_CACHE: dict[tuple[str, str | None, str, float], ResourceVector] = {}

#: Cap on either cache: the key space is tiny for catalogue workloads, but the
#: request rate is an arbitrary float, so a long-running service fed
#: continuously varying rates must not grow without bound. On overflow the
#: cache is dropped wholesale (recomputation is cheap; this is a memo, not
#: state).
_CACHE_LIMIT: int = 16384


def _resolve_profile(workload: str, accelerator_name: str | None, cpu_name: str):
    """Profile for a workload on a device class (accelerator first, CPU fallback)."""
    key = (workload, accelerator_name, cpu_name)
    if key not in _PROFILE_CACHE:
        profile = None
        for device in ([accelerator_name] if accelerator_name else []) + [cpu_name]:
            try:
                profile = get_profile(workload, device)
                break
            except KeyError:
                continue
        if len(_PROFILE_CACHE) >= _CACHE_LIMIT:
            _PROFILE_CACHE.clear()
        _PROFILE_CACHE[key] = profile
    return _PROFILE_CACHE[key]


def _demand_for(workload: str, accelerator_name: str | None, cpu_name: str,
                rate: float, profile) -> ResourceVector:
    """Shared demand vector for a (workload, device class, request rate) triple."""
    key = (workload, accelerator_name, cpu_name, rate)
    vec = _DEMAND_CACHE.get(key)
    if vec is None:
        replicas = max(1, int(-(-rate // profile.max_request_rate())))
        vec = profile.resource_demand * float(replicas)
        if len(_DEMAND_CACHE) >= _CACHE_LIMIT:
            _DEMAND_CACHE.clear()
        _DEMAND_CACHE[key] = vec
    return vec


@dataclass
class PlacementProblem:
    """One batch-placement instance.

    Use :meth:`build` to construct instances from library objects; the raw
    constructor expects pre-computed arrays (mostly useful in tests).
    """

    applications: list[Application]
    servers: list[EdgeServer]
    #: (A, S) one-way latency between each application's source and each server.
    latency_ms: np.ndarray
    #: (A, S) dynamic energy E_ij in joules over the placement horizon.
    energy_j: np.ndarray
    #: (A, S) list-of-lists of per-pair resource demands R^k_ij.
    demands: list[list[ResourceVector]]
    #: (S,) forecast-average carbon intensity Ī_j, g CO2eq/kWh.
    intensity: np.ndarray
    #: (S,) available capacity C^k_j per server.
    capacities: list[ResourceVector] = field(default_factory=list)
    #: (S,) base power B_j in watts.
    base_power_w: np.ndarray = field(default_factory=lambda: np.array([]))
    #: (S,) current power state y^curr_j (1 = on).
    current_power: np.ndarray = field(default_factory=lambda: np.array([]))
    #: Placement horizon in hours (used for activation energy).
    horizon_hours: float = 1.0
    #: (A, S) support mask: True where the workload has a profile on the server.
    supported: np.ndarray | None = None
    # -- lazily built caches (the problem is immutable once constructed) --------
    _app_index_map: dict[str, int] | None = field(default=None, init=False,
                                                  repr=False, compare=False)
    _server_index_map: dict[str, int] | None = field(default=None, init=False,
                                                     repr=False, compare=False)
    _feasible_mask: np.ndarray | None = field(default=None, init=False,
                                              repr=False, compare=False)
    _nearest_feasible: np.ndarray | None = field(default=None, init=False,
                                                 repr=False, compare=False)
    #: (keys, capacity (S,K), demand (A,S,K)) dense resource tensors.
    _dense_resources: tuple | None = field(default=None, init=False,
                                           repr=False, compare=False)
    #: Per-problem :class:`repro.solver.compile.EpochCompilation` memo.
    _compilation: object | None = field(default=None, init=False,
                                        repr=False, compare=False)

    def __post_init__(self) -> None:
        a, s = len(self.applications), len(self.servers)
        self.latency_ms = np.asarray(self.latency_ms, dtype=float)
        self.energy_j = np.asarray(self.energy_j, dtype=float)
        self.intensity = np.asarray(self.intensity, dtype=float)
        self.base_power_w = np.asarray(self.base_power_w, dtype=float)
        self.current_power = np.asarray(self.current_power, dtype=float)
        if self.supported is None:
            self.supported = np.ones((a, s), dtype=bool)
        else:
            self.supported = np.asarray(self.supported, dtype=bool)
        expected_2d = {(a, s)}
        for name, arr in (("latency_ms", self.latency_ms), ("energy_j", self.energy_j),
                          ("supported", self.supported)):
            if arr.shape not in expected_2d:
                raise ValueError(f"{name} must have shape ({a}, {s}), got {arr.shape}")
        for name, arr in (("intensity", self.intensity), ("base_power_w", self.base_power_w),
                          ("current_power", self.current_power)):
            if arr.shape != (s,):
                raise ValueError(f"{name} must have shape ({s},), got {arr.shape}")
        if len(self.demands) != a or any(len(row) != s for row in self.demands):
            raise ValueError(f"demands must be an {a}x{s} nested list")
        if len(self.capacities) != s:
            raise ValueError(f"capacities must have {s} entries, got {len(self.capacities)}")
        if self.horizon_hours <= 0:
            raise ValueError("horizon_hours must be positive")
        if np.any(self.intensity < 0):
            raise ValueError("carbon intensities must be non-negative")

    # -- sizes ------------------------------------------------------------------

    @property
    def n_applications(self) -> int:
        """Number of applications in the batch."""
        return len(self.applications)

    @property
    def n_servers(self) -> int:
        """Number of candidate servers."""
        return len(self.servers)

    # -- derived matrices ---------------------------------------------------------

    def feasible_mask(self) -> np.ndarray:
        """(A, S) mask of pairs satisfying the latency constraint and profile support.

        The latency constraint compares the *round-trip* network latency
        (2 × one-way) against each application's SLO, matching the paper's use
        of round-trip limits in the evaluation. The mask is computed once and
        cached (problems are immutable once built); callers that want to edit
        it must copy first, as :func:`repro.core.filters.filter_feasible_servers`
        does.
        """
        if self._feasible_mask is None:
            slos = np.array([app.latency_slo_ms for app in self.applications])[:, None]
            self._feasible_mask = (2.0 * self.latency_ms <= slos + 1e-9) & self.supported
        return self._feasible_mask

    def nearest_feasible_ms(self) -> np.ndarray:
        """(A,) one-way latency to each application's nearest feasible server.

        Feasibility is the latency-SLO + support mask (not the capacity
        filter), matching the Latency-aware baseline's candidate set — this
        is the baseline of the paper's "increased latency" metric.
        Applications with no feasible server get ``+inf``; consumers must
        count those out explicitly rather than folding them into means.
        Computed once and cached.
        """
        if self._nearest_feasible is None:
            self._nearest_feasible = np.where(self.feasible_mask(),
                                              self.latency_ms, np.inf).min(axis=1)
        return self._nearest_feasible

    def operational_carbon_g(self) -> np.ndarray:
        """(A, S) operational emissions x_ij would incur: E_ij (kWh) × Ī_j, grams."""
        return joules_to_kwh(self.energy_j) * self.intensity[None, :]

    def activation_carbon_g(self) -> np.ndarray:
        """(S,) emissions of newly activating each server: B_j × horizon × Ī_j, grams."""
        activation_kwh = self.base_power_w * self.horizon_hours / 1000.0
        return activation_kwh * self.intensity

    def activation_energy_j(self) -> np.ndarray:
        """(S,) energy of keeping each server on for the horizon, joules."""
        return self.base_power_w * self.horizon_hours * 3600.0

    def app_index(self, app_id: str) -> int:
        """Index of an application by id (O(1) via a lazily built map)."""
        if self._app_index_map is None:
            self._app_index_map = {app.app_id: i for i, app in enumerate(self.applications)}
        try:
            return self._app_index_map[app_id]
        except KeyError:
            raise KeyError(f"unknown application {app_id!r}") from None

    def app_indices(self, app_ids: Sequence[str]) -> np.ndarray:
        """(len(app_ids),) int array of application indices (vectorised lookup)."""
        if self._app_index_map is None:
            self._app_index_map = {app.app_id: i for i, app in enumerate(self.applications)}
        index = self._app_index_map
        try:
            return np.fromiter((index[a] for a in app_ids), dtype=np.intp,
                               count=len(app_ids))
        except KeyError as exc:
            raise KeyError(f"unknown application {exc.args[0]!r}") from None

    def server_index(self, server_id: str) -> int:
        """Index of a server by id (O(1) via a lazily built map)."""
        if self._server_index_map is None:
            self._server_index_map = {s.server_id: j for j, s in enumerate(self.servers)}
        try:
            return self._server_index_map[server_id]
        except KeyError:
            raise KeyError(f"unknown server {server_id!r}") from None

    # -- dense resource tensors ----------------------------------------------------

    def resource_keys(self) -> tuple[str, ...]:
        """Sorted resource dimensions spanning capacities and supported demands."""
        return self._dense()[0]

    def capacity_dense(self) -> np.ndarray:
        """(S, K) available capacity per server over :meth:`resource_keys`."""
        return self._dense()[1]

    def demand_dense(self) -> np.ndarray:
        """(A, S, K) per-pair resource demands over :meth:`resource_keys`.

        Zero outside the support mask. Built once (vectorised construction
        pre-fills it; problems assembled through the raw constructor fall back
        to a loop deduplicated by demand-vector identity) and shared read-only
        by the feasibility filter, the solver backends, and validation.
        """
        return self._dense()[2]

    def _dense_frame(self, demand_key_sets) -> tuple[tuple[str, ...], np.ndarray]:
        """(keys, (S, K) capacity array) spanning capacities + the given demand keys.

        Shared by the block-wise pre-fill and the lazy fallback builder so
        both always agree on the K axis.
        """
        key_set: set[str] = set()
        for cap in self.capacities:
            key_set.update(cap.keys())
        for keys in demand_key_sets:
            key_set.update(keys)
        keys = tuple(sorted(key_set))
        capacity = np.array([[cap.get(key) for key in keys] for cap in self.capacities],
                            dtype=float).reshape(self.n_servers, len(keys))
        return keys, capacity

    def _dense(self) -> tuple[tuple[str, ...], np.ndarray, np.ndarray]:
        if self._dense_resources is None:
            a, s = self.n_applications, self.n_servers
            unique: dict[int, ResourceVector] = {}
            for row in self.demands:
                for vec in row:
                    unique.setdefault(id(vec), vec)
            keys, capacity = self._dense_frame(
                vec.keys() for vec in unique.values())
            as_array = {vid: np.array([vec.get(key) for key in keys], dtype=float)
                        for vid, vec in unique.items()}
            demand = np.zeros((a, s, len(keys)))
            for i, row in enumerate(self.demands):
                for j, vec in enumerate(row):
                    arr = as_array[id(vec)]
                    if arr.any():
                        demand[i, j] = arr
            self._dense_resources = (keys, capacity, demand)
        return self._dense_resources

    # -- construction ---------------------------------------------------------------

    @classmethod
    def build(
        cls,
        applications: Sequence[Application],
        servers: Sequence[EdgeServer],
        latency: LatencyMatrix,
        carbon: CarbonIntensityService,
        hour: int = 0,
        horizon_hours: float = 1.0,
        use_forecast: bool = True,
        substrate: "object | None" = None,
    ) -> "PlacementProblem":
        """Assemble a problem from library objects.

        Parameters
        ----------
        applications:
            Batch of applications to place.
        servers:
            Candidate servers (their available capacity and power state are read
            at call time).
        latency:
            One-way latency matrix over sites; application source sites and
            server sites must both be present.
        carbon:
            Carbon-intensity service providing Ī_j (forecast mean over the
            horizon) or the instantaneous intensity.
        hour:
            Hour-of-year at which the placement happens.
        horizon_hours:
            Placement horizon (applications are assumed to run this long).
        use_forecast:
            Use the forecast mean (paper behaviour) instead of the
            instantaneous intensity; the ablation benchmark flips this.
        substrate:
            Optional scenario-lifetime compilation
            (:class:`repro.solver.compile.ScenarioCompilation`) of exactly
            these servers / latency matrix / carbon service. When it matches,
            the problem is assembled from the substrate's static class rows —
            bit-identical tensors, a fraction of the cost — and comes back
            with its epoch compilation pre-seeded. A non-matching substrate
            falls back to the cold build below.
        """
        from repro.workloads.generator import ApplicationBatch

        # Columnar batches pass through to the substrate untouched (class
        # table intact, object view unmaterialised); only the cold fallback
        # below needs the per-object list.
        batch = applications if isinstance(applications, ApplicationBatch) else None
        if batch is None:
            applications = list(applications)
        servers = list(servers)
        a, s = len(applications), len(servers)
        if a == 0:
            raise ValueError("cannot build a placement problem with no applications")
        if s == 0:
            raise ValueError("cannot build a placement problem with no servers")
        if substrate is not None and substrate.matches(servers, latency, carbon):
            return substrate.build_problem(applications, hour=hour,
                                           horizon_hours=horizon_hours,
                                           use_forecast=use_forecast)
        if batch is not None:
            applications = list(batch.applications)
        ensure_dense_cell_budget(a, s, context="PlacementProblem.build")

        # Latency: one site-index gather instead of A x S matrix lookups.
        app_rows = [latency.index_of(app.source_site) for app in applications]
        server_cols = [latency.index_of(srv.site) for srv in servers]
        latency_ms = latency.matrix_ms[np.ix_(app_rows, server_cols)].astype(float)

        # Every per-pair quantity depends only on (workload, request rate) x
        # (accelerator, CPU) — group both axes and fill whole blocks at once.
        app_groups: dict[tuple[str, float], list[int]] = {}
        for i, app in enumerate(applications):
            app_groups.setdefault((app.workload, app.request_rate_rps), []).append(i)
        server_classes: dict[tuple[str | None, str], list[int]] = {}
        for j, server in enumerate(servers):
            accel = server.accelerator.name if server.accelerator is not None else None
            server_classes.setdefault((accel, server.cpu.name), []).append(j)

        energy_j = np.zeros((a, s))
        supported = np.zeros((a, s), dtype=bool)
        demand_rows: list[list[ResourceVector | None]] = [[None] * s for _ in range(a)]
        blocks: list[tuple[list[int], list[int], ResourceVector]] = []
        for (workload, rate), rows in app_groups.items():
            rows_arr = np.asarray(rows, dtype=np.intp)
            rates = np.full(len(rows), rate)
            for (accel, cpu), cols in server_classes.items():
                profile = _resolve_profile(workload, accel, cpu)
                if profile is None:
                    continue
                cols_arr = np.asarray(cols, dtype=np.intp)
                supported[np.ix_(rows_arr, cols_arr)] = True
                # Same association order as the seed's scalar path
                # (((energy/request x rate) x 3600) x horizon), so the values
                # are bit-identical.
                per_app = profile.energy_per_request_j * rates * 3600.0 * horizon_hours
                energy_j[np.ix_(rows_arr, cols_arr)] = per_app[:, None]
                vec = _demand_for(workload, accel, cpu, rate, profile)
                blocks.append((rows, cols, vec))
                for i in rows:
                    row = demand_rows[i]
                    for j in cols:
                        row[j] = vec
        demands: list[list[ResourceVector]] = [
            [vec if vec is not None else _EMPTY_DEMAND for vec in row]
            for row in demand_rows]
        latency_ms[~supported] = INFEASIBLE_LATENCY_MS

        if use_forecast:
            intensity = np.array([
                carbon.forecast_mean(srv.zone_id, hour, int(np.ceil(horizon_hours)))
                for srv in servers])
        else:
            intensity = np.array([carbon.current_intensity(srv.zone_id, hour)
                                  for srv in servers])

        problem = cls(
            applications=applications,
            servers=servers,
            latency_ms=latency_ms,
            energy_j=energy_j,
            demands=demands,
            intensity=intensity,
            capacities=[srv.available_capacity for srv in servers],
            base_power_w=np.array([srv.base_power_w for srv in servers]),
            current_power=np.array([1.0 if srv.is_on else 0.0 for srv in servers]),
            horizon_hours=horizon_hours,
            supported=supported,
        )
        problem._prefill_dense(blocks)
        return problem

    def _prefill_dense(self,
                       blocks: list[tuple[list[int], list[int], ResourceVector]]) -> None:
        """Fill the dense demand tensor from build()'s (rows, cols, demand) blocks.

        The blocks are exactly the ones that populated ``demands``, so the
        tensor and the nested list can never diverge.
        """
        keys, capacity = self._dense_frame(vec.keys() for _, _, vec in blocks)
        demand = np.zeros((self.n_applications, self.n_servers, len(keys)))
        for rows, cols, vec in blocks:
            demand[np.ix_(rows, cols)] = np.array([vec.get(key) for key in keys])
        self._dense_resources = (keys, capacity, demand)
