"""CarbonEdge core: the carbon-aware placement problem, policies, and algorithm.

This package is the paper's primary contribution (Section 4):

* :mod:`repro.core.problem` — the placement problem instance (applications,
  servers, latency/energy/intensity matrices; Table 2 inputs).
* :mod:`repro.core.solution` — placement/power decisions plus their carbon,
  energy, and latency accounting (Equation 6).
* :mod:`repro.core.objective` — carbon, energy, and multi-objective (Equation 8)
  objective builders.
* :mod:`repro.core.model_builder` — translation of a problem into the MILP of
  Equations 1–7.
* :mod:`repro.core.filters` — feasible-server filtering (Algorithm 1, line 7).
* :mod:`repro.core.policies` — CarbonEdge and the paper's baselines
  (Latency-aware, Energy-aware, Intensity-aware).
* :mod:`repro.core.incremental` — the incremental placement loop (Algorithm 1).
* :mod:`repro.core.validation` — solution validation against the constraints.
"""

from repro.core.problem import PlacementProblem
from repro.core.solution import PlacementSolution, Assignment
from repro.core.objective import (
    ObjectiveKind,
    carbon_objective_coefficients,
    energy_objective_coefficients,
    multi_objective_coefficients,
)
from repro.core.model_builder import build_placement_model
from repro.core.filters import filter_feasible_servers, FeasibilityReport
from repro.core.validation import validate_solution, ValidationError
from repro.core.incremental import IncrementalPlacer, PlacementRound
from repro.core.policies import (
    PlacementPolicy,
    CarbonEdgePolicy,
    LatencyAwarePolicy,
    EnergyAwarePolicy,
    IntensityAwarePolicy,
    GreedyCarbonPolicy,
    RandomPolicy,
)

__all__ = [
    "PlacementProblem",
    "PlacementSolution",
    "Assignment",
    "ObjectiveKind",
    "carbon_objective_coefficients",
    "energy_objective_coefficients",
    "multi_objective_coefficients",
    "build_placement_model",
    "filter_feasible_servers",
    "FeasibilityReport",
    "validate_solution",
    "ValidationError",
    "IncrementalPlacer",
    "PlacementRound",
    "PlacementPolicy",
    "CarbonEdgePolicy",
    "LatencyAwarePolicy",
    "EnergyAwarePolicy",
    "IntensityAwarePolicy",
    "GreedyCarbonPolicy",
    "RandomPolicy",
]
