"""Intensity-aware baseline: greedily chase the greenest zone.

Section 6.1.3, baseline 3: "greedily assigns workloads to the greenest edge
data centers with the lowest carbon intensity values while respecting the
latency and resource constraints". Unlike CarbonEdge it ignores how much energy
the application actually consumes on each server — which is exactly the
behaviour the heterogeneity experiment (Figure 15) punishes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.filters import filter_feasible_servers
from repro.core.policies.base import PlacementPolicy
from repro.core.policies.greedy import greedy_place
from repro.core.problem import PlacementProblem
from repro.core.solution import PlacementSolution


@dataclass
class IntensityAwarePolicy(PlacementPolicy):
    """Assign each application to the feasible server with the lowest carbon intensity."""

    name: str = "Intensity-aware"

    def place(self, problem: PlacementProblem,
              warm_start: dict[str, int] | None = None) -> PlacementSolution:
        report = filter_feasible_servers(problem)
        # Cost of an assignment is just the hosting zone's intensity.
        assign_cost = np.broadcast_to(problem.intensity[None, :],
                                      (problem.n_applications, problem.n_servers)).copy()
        activation_cost = np.zeros(problem.n_servers)
        return greedy_place(problem, assign_cost, activation_cost, report=report)
