"""Intensity-aware baseline: greedily chase the greenest zone.

Section 6.1.3, baseline 3: "greedily assigns workloads to the greenest edge
data centers with the lowest carbon intensity values while respecting the
latency and resource constraints". Unlike CarbonEdge it ignores how much energy
the application actually consumes on each server — which is exactly the
behaviour the heterogeneity experiment (Figure 15) punishes.

Routed through the shared dense greedy kernel with the intensity objective;
equal-intensity choices tie-break by one-way latency (the kernel default).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.objective import ObjectiveKind
from repro.core.policies.base import PlacementPolicy
from repro.core.problem import PlacementProblem
from repro.core.solution import PlacementSolution
from repro.solver import registry


@dataclass
class IntensityAwarePolicy(PlacementPolicy):
    """Assign each application to the feasible server with the lowest carbon intensity."""

    epoch_shards: int = 1
    hierarchy_regions: int = 1
    refine_backend: str = "greedy"
    num_search_workers: int = 1
    name: str = "Intensity-aware"

    @property
    def objective_kind(self) -> ObjectiveKind:
        return ObjectiveKind.INTENSITY

    def place(self, problem: PlacementProblem,
              warm_start: dict[str, int] | None = None) -> PlacementSolution:
        return registry.solve(problem, backend="greedy",
                              objective=ObjectiveKind.INTENSITY, warm_start=warm_start,
                              config=self.solver_config())
