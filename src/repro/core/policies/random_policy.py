"""Random placement: a sanity-check baseline (not in the paper).

Assigns every application to a uniformly random feasible server with remaining
capacity. Useful in tests and ablations as a lower bound on how much structure
the other policies actually exploit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.filters import filter_feasible_servers
from repro.core.policies.base import PlacementPolicy
from repro.core.policies.greedy import greedy_place
from repro.core.problem import PlacementProblem
from repro.core.solution import PlacementSolution
from repro.utils.rng import substream


@dataclass
class RandomPolicy(PlacementPolicy):
    """Uniformly random feasible placement."""

    seed: int = 0
    name: str = "Random"

    def place(self, problem: PlacementProblem,
              warm_start: dict[str, int] | None = None) -> PlacementSolution:
        report = filter_feasible_servers(problem)
        rng = substream(self.seed, "random-policy", problem.n_applications,
                        problem.n_servers)
        # Random assignment = greedy over random per-pair costs.
        assign_cost = rng.uniform(0.0, 1.0, size=(problem.n_applications, problem.n_servers))
        activation_cost = np.zeros(problem.n_servers)
        return greedy_place(problem, assign_cost, activation_cost, report=report,
                            tie_breaker=assign_cost)
