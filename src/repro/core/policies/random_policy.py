"""Random placement: a sanity-check baseline (not in the paper).

Assigns every application to a uniformly random feasible server with remaining
capacity. Useful in tests and ablations as a lower bound on how much structure
the other policies actually exploit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.policies.base import PlacementPolicy
from repro.core.problem import PlacementProblem
from repro.core.solution import PlacementSolution
from repro.utils.rng import substream


@dataclass
class RandomPolicy(PlacementPolicy):
    """Uniformly random feasible placement."""

    seed: int = 0
    name: str = "Random"

    def place(self, problem: PlacementProblem,
              warm_start: dict[str, int] | None = None) -> PlacementSolution:
        # Imported lazily to avoid a core<->solver cycle on first import.
        from repro.solver.compile import dense_greedy_solution

        rng = substream(self.seed, "random-policy", problem.n_applications,
                        problem.n_servers)
        # Random assignment = the dense greedy kernel over random per-pair
        # costs (no tie-break perturbation: the costs are already unique).
        assign_cost = rng.uniform(0.0, 1.0, size=(problem.n_applications, problem.n_servers))
        return dense_greedy_solution(problem, assign_cost)
