"""Placement-policy interface.

Every policy maps a :class:`~repro.core.problem.PlacementProblem` to a
:class:`~repro.core.solution.PlacementSolution`. Policies are stateless across
calls — all state (server capacities, power) lives in the problem instance,
which the incremental placer rebuilds from the fleet before every batch.

Policies optionally accept a *warm start* (a previous placement of the same
applications), which the optimisation-based policies forward to the solver
backends for incremental epoch re-solves; policies that cannot use it simply
ignore the argument.
"""

from __future__ import annotations

import inspect
import time
from abc import ABC, abstractmethod

from repro.core.objective import ObjectiveKind
from repro.core.problem import PlacementProblem
from repro.core.solution import PlacementSolution
from repro.solver.config import SolverConfig


class PlacementPolicy(ABC):
    """Abstract base class for placement policies."""

    #: Human-readable policy name (used in experiment tables).
    name: str = "policy"

    def solver_config(self) -> SolverConfig:
        """Execution configuration forwarded to the solver registry.

        Reads the policy's ``epoch_shards`` / ``hierarchy_regions`` /
        ``refine_backend`` / ``num_search_workers`` fields when it declares
        them (:class:`SolverConfig` validates them), so every solver-backed
        policy shares one plumbing path for execution knobs. The hierarchy
        knobs select the cluster-then-refine tier
        (:mod:`repro.solver.hierarchy`) and ``num_search_workers`` widens the
        anytime exact backends' parallel search — see the carve-outs on
        :class:`SolverConfig`: unlike the other knobs those can change which
        answer comes back.
        """
        return SolverConfig(
            epoch_shards=getattr(self, "epoch_shards", 1),
            hierarchy_regions=getattr(self, "hierarchy_regions", 1),
            refine_backend=getattr(self, "refine_backend", "greedy"),
            num_search_workers=getattr(self, "num_search_workers", 1),
        )

    @property
    def objective_kind(self) -> ObjectiveKind:
        """Objective this policy minimises (drives the hierarchical tier)."""
        return ObjectiveKind.CARBON

    @abstractmethod
    def place(self, problem: PlacementProblem,
              warm_start: dict[str, int] | None = None) -> PlacementSolution:
        """Place the problem's applications and return the resulting solution."""

    def timed_place(self, problem: PlacementProblem,
                    warm_start: dict[str, int] | None = None) -> PlacementSolution:
        """Run :meth:`place` and record its wall-clock time on the solution."""
        start = time.monotonic()
        # Only forward the warm start to policies whose place() accepts it, so
        # subclasses written against the original single-argument signature
        # keep working everywhere — including the epoch re-solve path, which
        # always supplies one.
        if warm_start is None or not self._accepts_warm_start():
            solution = self.place(problem)
        else:
            solution = self.place(problem, warm_start=warm_start)
        solution.solve_time_s = time.monotonic() - start
        solution.policy_name = self.name
        return solution

    def _accepts_warm_start(self) -> bool:
        """Whether this policy's ``place`` accepts the ``warm_start`` keyword."""
        parameters = inspect.signature(self.place).parameters
        return "warm_start" in parameters or any(
            p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values())

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
