"""Placement-policy interface.

Every policy maps a :class:`~repro.core.problem.PlacementProblem` to a
:class:`~repro.core.solution.PlacementSolution`. Policies are stateless across
calls — all state (server capacities, power) lives in the problem instance,
which the incremental placer rebuilds from the fleet before every batch.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod

from repro.core.problem import PlacementProblem
from repro.core.solution import PlacementSolution


class PlacementPolicy(ABC):
    """Abstract base class for placement policies."""

    #: Human-readable policy name (used in experiment tables).
    name: str = "policy"

    @abstractmethod
    def place(self, problem: PlacementProblem) -> PlacementSolution:
        """Place the problem's applications and return the resulting solution."""

    def timed_place(self, problem: PlacementProblem) -> PlacementSolution:
        """Run :meth:`place` and record its wall-clock time on the solution."""
        start = time.monotonic()
        solution = self.place(problem)
        solution.solve_time_s = time.monotonic() - start
        solution.policy_name = self.name
        return solution

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
