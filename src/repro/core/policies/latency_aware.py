"""Latency-aware baseline: place every application at its nearest feasible server.

This is the strategy "commonly employed in edge computing" that the paper
compares against (Section 6.1.3, baseline 1): it minimises network latency with
no regard for carbon or energy. It is also the reference against which carbon
savings and latency increases are reported.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.filters import filter_feasible_servers
from repro.core.policies.base import PlacementPolicy
from repro.core.policies.greedy import greedy_place
from repro.core.problem import PlacementProblem
from repro.core.solution import PlacementSolution


@dataclass
class LatencyAwarePolicy(PlacementPolicy):
    """Assign each application to the lowest-latency server with capacity."""

    name: str = "Latency-aware"

    def place(self, problem: PlacementProblem,
              warm_start: dict[str, int] | None = None) -> PlacementSolution:
        report = filter_feasible_servers(problem)
        assign_cost = problem.latency_ms.copy()
        activation_cost = np.zeros(problem.n_servers)
        # Tie-break equal-latency choices by carbon so comparisons are stable.
        tie = problem.operational_carbon_g()
        return greedy_place(problem, assign_cost, activation_cost, report=report,
                            tie_breaker=tie)
