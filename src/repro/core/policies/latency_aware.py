"""Latency-aware baseline: place every application at its nearest feasible server.

This is the strategy "commonly employed in edge computing" that the paper
compares against (Section 6.1.3, baseline 1): it minimises network latency with
no regard for carbon or energy. It is also the reference against which carbon
savings and latency increases are reported.

Routed through the shared dense greedy kernel with the latency objective;
equal-latency choices tie-break by operational carbon (see
:meth:`repro.solver.compile.EpochCompilation.tie_break_for`) so comparisons
stay stable across runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.objective import ObjectiveKind
from repro.core.policies.base import PlacementPolicy
from repro.core.problem import PlacementProblem
from repro.core.solution import PlacementSolution
from repro.solver import registry


@dataclass
class LatencyAwarePolicy(PlacementPolicy):
    """Assign each application to the lowest-latency server with capacity."""

    epoch_shards: int = 1
    hierarchy_regions: int = 1
    refine_backend: str = "greedy"
    num_search_workers: int = 1
    name: str = "Latency-aware"

    @property
    def objective_kind(self) -> ObjectiveKind:
        return ObjectiveKind.LATENCY

    def place(self, problem: PlacementProblem,
              warm_start: dict[str, int] | None = None) -> PlacementSolution:
        return registry.solve(problem, backend="greedy",
                              objective=ObjectiveKind.LATENCY, warm_start=warm_start,
                              config=self.solver_config())
