"""Placement policies: CarbonEdge and the paper's baselines (Section 6.1.3)."""

from repro.core.policies.base import PlacementPolicy
from repro.core.policies.greedy import GreedyCarbonPolicy
from repro.core.policies.carbon_edge import CarbonEdgePolicy
from repro.core.policies.latency_aware import LatencyAwarePolicy
from repro.core.policies.energy_aware import EnergyAwarePolicy
from repro.core.policies.intensity_aware import IntensityAwarePolicy
from repro.core.policies.random_policy import RandomPolicy

__all__ = [
    "PlacementPolicy",
    "GreedyCarbonPolicy",
    "CarbonEdgePolicy",
    "LatencyAwarePolicy",
    "EnergyAwarePolicy",
    "IntensityAwarePolicy",
    "RandomPolicy",
]
