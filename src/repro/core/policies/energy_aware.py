"""Energy-aware baseline: minimise energy usage under latency/resource constraints.

Section 6.1.3, baseline 2: "distributes workloads to energy-efficient edge data
centers to decrease energy consumption". Implemented as the same optimisation
as CarbonEdge but with the energy objective (dynamic energy of every assignment
plus the base-power energy of newly activated servers).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.filters import filter_feasible_servers
from repro.core.model_builder import (
    assignment_groups,
    build_placement_model,
    solution_from_values,
)
from repro.core.objective import ObjectiveKind, objective_coefficients
from repro.core.policies.base import PlacementPolicy
from repro.core.policies.carbon_edge import AUTO_EXACT_VARIABLE_LIMIT, SOLVER_STRATEGIES
from repro.core.policies.greedy import greedy_place
from repro.core.problem import PlacementProblem
from repro.core.solution import PlacementSolution
from repro.solver.branch_and_bound import BranchAndBoundSolver


@dataclass
class EnergyAwarePolicy(PlacementPolicy):
    """Minimise total energy consumption subject to the placement constraints."""

    solver: str = "auto"
    max_nodes: int = 100
    time_limit_s: float = 15.0
    name: str = "Energy-aware"

    def __post_init__(self) -> None:
        if self.solver not in SOLVER_STRATEGIES:
            raise ValueError(
                f"unknown solver {self.solver!r}; expected one of {SOLVER_STRATEGIES}")

    def place(self, problem: PlacementProblem) -> PlacementSolution:
        report = filter_feasible_servers(problem)
        assign, activation = objective_coefficients(problem, ObjectiveKind.ENERGY)
        greedy_solution = greedy_place(problem, assign, activation, report=report)

        strategy = self.solver
        if strategy == "auto":
            strategy = "exact" if report.n_candidate_pairs <= AUTO_EXACT_VARIABLE_LIMIT else "greedy"
        if strategy in ("greedy", "lp-round"):
            # The LP-round path adds little for the energy objective (it is
            # dominated by per-device efficiency); use the greedy engine.
            return greedy_solution

        model, report = build_placement_model(problem, objective=ObjectiveKind.ENERGY,
                                              report=report)
        solver = BranchAndBoundSolver(max_nodes=self.max_nodes, time_limit_s=self.time_limit_s,
                                      rounding_groups=assignment_groups(problem, report))
        result = solver.solve(model)
        if not result.has_solution:
            return greedy_solution
        placements, power_on = solution_from_values(problem, report, result.values)
        unplaced = [problem.applications[i].app_id for i in report.unplaceable]
        for app in problem.applications:
            if app.app_id not in placements and app.app_id not in unplaced:
                if app.app_id in greedy_solution.placements:
                    placements[app.app_id] = greedy_solution.placements[app.app_id]
                    power_on[greedy_solution.placements[app.app_id]] = 1.0
                else:
                    unplaced.append(app.app_id)
        solution = PlacementSolution(problem=problem, placements=placements,
                                     power_on=power_on, unplaced=unplaced,
                                     solver_gap=result.gap)
        if greedy_solution.n_placed == solution.n_placed and \
                greedy_solution.total_energy_j() < solution.total_energy_j() - 1e-9:
            return greedy_solution
        return solution
