"""Energy-aware baseline: minimise energy usage under latency/resource constraints.

Section 6.1.3, baseline 2: "distributes workloads to energy-efficient edge data
centers to decrease energy consumption". Implemented as the same optimisation
as CarbonEdge but with the energy objective (dynamic energy of every assignment
plus the base-power energy of newly activated servers), solved through the same
pluggable backend registry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.objective import ObjectiveKind
from repro.core.policies.base import PlacementPolicy
from repro.core.policies.carbon_edge import validate_solver_name
from repro.core.problem import PlacementProblem
from repro.core.solution import PlacementSolution
from repro.solver import registry


@dataclass
class EnergyAwarePolicy(PlacementPolicy):
    """Minimise total energy consumption subject to the placement constraints."""

    solver: str = "auto"
    max_nodes: int = 100
    time_limit_s: float = 15.0
    epoch_shards: int = 1
    hierarchy_regions: int = 1
    refine_backend: str = "greedy"
    num_search_workers: int = 1
    name: str = "Energy-aware"

    def __post_init__(self) -> None:
        validate_solver_name(self.solver)

    @property
    def objective_kind(self) -> ObjectiveKind:
        return ObjectiveKind.ENERGY

    def place(self, problem: PlacementProblem,
              warm_start: dict[str, int] | None = None) -> PlacementSolution:
        return registry.solve(
            problem,
            backend=self.solver,
            objective=ObjectiveKind.ENERGY,
            time_budget_s=self.time_limit_s,
            warm_start=warm_start,
            max_nodes=self.max_nodes,
            config=self.solver_config(),
        )
