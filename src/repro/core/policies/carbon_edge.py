"""The CarbonEdge placement policy (the paper's contribution).

CarbonEdge minimises the Equation-6 carbon footprint of the batch — operational
emissions of every assignment plus activation emissions of newly powered-on
servers — subject to the capacity, latency, assignment, and power-state
constraints (Equations 1–5). The actual optimisation is delegated to the
pluggable solver-backend registry (:mod:`repro.solver.registry`):

* ``"exact"`` / ``"bnb"`` — branch & bound over the MILP (HiGHS LP
  relaxations), the OR-Tools analogue used for the testbed-scale experiments;
* ``"lp-round"`` — one LP relaxation followed by randomized rounding;
* ``"greedy"`` / ``"heuristic"`` — the vectorised greedy + local-search
  backend, used at CDN scale and under tight time budgets;
* ``"auto"`` (default) — exact for small models with enough budget, the
  heuristic beyond the size cutoff.

Any other backend registered with the registry is accepted by name, so new
backends (e.g. a real OR-Tools binding) plug in without touching this policy.

The multi-objective extension (Equation 8) is exposed through ``alpha``:
``alpha = 0`` is vanilla CarbonEdge, ``alpha = 1`` reduces to the Energy-aware
objective, intermediate values trade carbon for energy (Section 6.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.objective import ObjectiveKind
from repro.core.policies.base import PlacementPolicy
from repro.core.problem import PlacementProblem
from repro.core.solution import PlacementSolution
from repro.solver import registry
from repro.solver.config import AUTO_EXACT_PAIR_LIMIT

#: Historical solver strategy names (all remain valid; the registry accepts
#: any registered backend name or alias on top of these).
SOLVER_STRATEGIES: tuple[str, ...] = ("auto", "exact", "lp-round", "greedy")

#: Back-compat re-export: "auto" switches from exact to the heuristic backend
#: above this number of candidate (application, server) pairs.
AUTO_EXACT_VARIABLE_LIMIT: int = AUTO_EXACT_PAIR_LIMIT


def validate_solver_name(solver: str) -> None:
    """Raise ``ValueError`` unless ``solver`` names a registered backend or auto."""
    if solver not in registry.backend_names(include_auto=True):
        raise ValueError(
            f"unknown solver {solver!r}; expected one of {registry.backend_names()}")


@dataclass
class CarbonEdgePolicy(PlacementPolicy):
    """Carbon-aware placement with latency constraints (Equation 7 / 8).

    Parameters
    ----------
    alpha:
        Energy weight of the multi-objective extension (Equation 8); 0 keeps
        the pure carbon objective.
    solver:
        Backend name, alias, or ``"auto"`` (see :func:`repro.solver.registry.solve`).
    manage_power:
        Include the server-activation term and power decisions; disabling it
        reproduces the "no power management" ablation.
    max_nodes / time_limit_s:
        Node and wall-clock budget forwarded to the solver backends (the node
        budget only applies to branch and bound).
    epoch_shards:
        Intra-epoch shards for the dense greedy kernel (bit-identical
        solutions for every value; see :mod:`repro.solver.compile`).
    hierarchy_regions / refine_backend:
        Cluster-then-refine hierarchy knobs (:mod:`repro.solver.hierarchy`);
        ``hierarchy_regions=1`` keeps the flat solve. Unlike ``epoch_shards``
        these change which answer comes back (see the
        :class:`~repro.solver.config.SolverConfig` carve-out).
    num_search_workers:
        Parallel search workers for the anytime exact backends
        (``cpsat``/``milp``); ignored by the heuristic family. Under a finite
        time budget this can change which incumbent is returned (see the
        :class:`~repro.solver.config.SolverConfig` carve-out).
    """

    alpha: float = 0.0
    solver: str = "auto"
    manage_power: bool = True
    max_nodes: int = 200
    time_limit_s: float = 30.0
    epoch_shards: int = 1
    hierarchy_regions: int = 1
    refine_backend: str = "greedy"
    num_search_workers: int = 1
    name: str = "CarbonEdge"

    def __post_init__(self) -> None:
        validate_solver_name(self.solver)
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.alpha > 0:
            self.name = f"CarbonEdge(alpha={self.alpha:g})"

    @property
    def objective_kind(self) -> ObjectiveKind:
        """Objective minimised by this policy instance."""
        return ObjectiveKind.MULTI if self.alpha > 0 else ObjectiveKind.CARBON

    def place(self, problem: PlacementProblem,
              warm_start: dict[str, int] | None = None) -> PlacementSolution:
        return registry.solve(
            problem,
            backend=self.solver,
            objective=self.objective_kind,
            alpha=self.alpha,
            manage_power=self.manage_power,
            time_budget_s=self.time_limit_s,
            warm_start=warm_start,
            max_nodes=self.max_nodes,
            config=self.solver_config(),
        )
