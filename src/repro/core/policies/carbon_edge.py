"""The CarbonEdge placement policy (the paper's contribution).

CarbonEdge minimises the Equation-6 carbon footprint of the batch — operational
emissions of every assignment plus activation emissions of newly powered-on
servers — subject to the capacity, latency, assignment, and power-state
constraints (Equations 1–5). Three solver strategies are available:

* ``"exact"`` — branch & bound over the MILP (HiGHS LP relaxations), the
  OR-Tools analogue used for the testbed-scale experiments;
* ``"lp-round"`` — one LP relaxation followed by rounding & repair;
* ``"greedy"`` — the marginal-carbon greedy engine, used at CDN scale;
* ``"auto"`` (default) — exact for small models, greedy beyond a size cutoff.

The multi-objective extension (Equation 8) is exposed through ``alpha``:
``alpha = 0`` is vanilla CarbonEdge, ``alpha = 1`` reduces to the Energy-aware
objective, intermediate values trade carbon for energy (Section 6.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.filters import filter_feasible_servers
from repro.core.model_builder import (
    assignment_groups,
    build_placement_model,
    solution_from_values,
)
from repro.core.objective import ObjectiveKind, objective_coefficients
from repro.core.policies.base import PlacementPolicy
from repro.core.policies.greedy import greedy_place
from repro.core.problem import PlacementProblem
from repro.core.solution import PlacementSolution
from repro.solver.branch_and_bound import BranchAndBoundSolver
from repro.solver.lp_relaxation import solve_lp_relaxation
from repro.solver.rounding import round_and_repair

#: Solver strategies accepted by the optimisation-based policies.
SOLVER_STRATEGIES: tuple[str, ...] = ("auto", "exact", "lp-round", "greedy")

#: "auto" switches from exact to greedy above this number of x-variables.
AUTO_EXACT_VARIABLE_LIMIT: int = 4000


@dataclass
class CarbonEdgePolicy(PlacementPolicy):
    """Carbon-aware placement with latency constraints (Equation 7 / 8).

    Parameters
    ----------
    alpha:
        Energy weight of the multi-objective extension (Equation 8); 0 keeps
        the pure carbon objective.
    solver:
        One of :data:`SOLVER_STRATEGIES`.
    manage_power:
        Include the server-activation term and power decisions; disabling it
        reproduces the "no power management" ablation.
    max_nodes / time_limit_s:
        Budget of the exact branch-and-bound solver.
    """

    alpha: float = 0.0
    solver: str = "auto"
    manage_power: bool = True
    max_nodes: int = 200
    time_limit_s: float = 30.0
    name: str = "CarbonEdge"

    def __post_init__(self) -> None:
        if self.solver not in SOLVER_STRATEGIES:
            raise ValueError(
                f"unknown solver {self.solver!r}; expected one of {SOLVER_STRATEGIES}")
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.alpha > 0:
            self.name = f"CarbonEdge(alpha={self.alpha:g})"

    @property
    def objective_kind(self) -> ObjectiveKind:
        """Objective minimised by this policy instance."""
        return ObjectiveKind.MULTI if self.alpha > 0 else ObjectiveKind.CARBON

    def place(self, problem: PlacementProblem) -> PlacementSolution:
        report = filter_feasible_servers(problem)
        strategy = self.solver
        if strategy == "auto":
            strategy = "exact" if report.n_candidate_pairs <= AUTO_EXACT_VARIABLE_LIMIT else "greedy"

        assign, activation = objective_coefficients(problem, self.objective_kind, self.alpha)
        greedy_solution = greedy_place(problem, assign, activation, report=report)
        if strategy == "greedy":
            return greedy_solution

        model, report = build_placement_model(
            problem, objective=self.objective_kind, alpha=self.alpha,
            report=report, manage_power=self.manage_power)
        groups = assignment_groups(problem, report)

        if strategy == "lp-round":
            relaxed = solve_lp_relaxation(model)
            if not relaxed.has_solution:
                return greedy_solution
            if relaxed.is_integral(model.binary_names()):
                result = relaxed
            else:
                result = round_and_repair(model, relaxed.values, groups=groups)
                if not result.has_solution:
                    return greedy_solution
        else:  # exact
            solver = BranchAndBoundSolver(max_nodes=self.max_nodes,
                                          time_limit_s=self.time_limit_s,
                                          rounding_groups=groups)
            result = solver.solve(model)
            if not result.has_solution:
                return greedy_solution

        placements, power_on = solution_from_values(problem, report, result.values)
        unplaced = [problem.applications[i].app_id for i in report.unplaceable]
        # Applications with candidates but no assignment in the solver output
        # (should not happen for feasible models) fall back to greedy choices.
        for app in problem.applications:
            if app.app_id not in placements and app.app_id not in unplaced:
                if app.app_id in greedy_solution.placements:
                    placements[app.app_id] = greedy_solution.placements[app.app_id]
                    power_on[greedy_solution.placements[app.app_id]] = 1.0
                else:
                    unplaced.append(app.app_id)
        solution = PlacementSolution(problem=problem, placements=placements,
                                     power_on=power_on, unplaced=unplaced,
                                     solver_gap=result.gap)
        # Keep whichever of (optimised, greedy) actually achieves lower carbon;
        # with an exhausted node budget the greedy answer can win.
        if greedy_solution.all_placed and not solution.all_placed:
            return greedy_solution
        if (greedy_solution.n_placed == solution.n_placed
                and greedy_solution.total_carbon_g() < solution.total_carbon_g() - 1e-9
                and self.objective_kind is ObjectiveKind.CARBON):
            return greedy_solution
        return solution
