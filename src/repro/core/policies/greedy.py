"""The greedy carbon-aware policy (CarbonEdge's scalable solver backend).

The actual greedy engine lives in :func:`repro.solver.compile.greedy_fill` —
the one dense placement kernel shared by every policy and solver backend.
This module keeps the policy face: minimise the marginal Equation-6 carbon of
every assignment, one application at a time, most-constrained first. Used
directly for CDN-scale problems and as the warm start / fallback of the exact
CarbonEdge policy.

The seed's object-based ``greedy_place`` engine that used to live here was
consolidated into the dense kernel (a frozen copy served as a parity oracle
for one release and has since been retired).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.objective import ObjectiveKind
from repro.core.policies.base import PlacementPolicy
from repro.core.problem import PlacementProblem
from repro.core.solution import PlacementSolution
from repro.solver import registry


@dataclass
class GreedyCarbonPolicy(PlacementPolicy):
    """Greedy carbon-aware placement through the dense kernel."""

    name: str = "GreedyCarbon"

    def place(self, problem: PlacementProblem,
              warm_start: dict[str, int] | None = None) -> PlacementSolution:
        return registry.solve(problem, backend="greedy",
                              objective=ObjectiveKind.CARBON, warm_start=warm_start)
