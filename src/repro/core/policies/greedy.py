"""Greedy placement engine and the greedy carbon-aware policy.

The greedy engine assigns applications one at a time — most-constrained (fewest
candidate servers) first — to the candidate server with the lowest *marginal*
cost, where the marginal cost is the assignment coefficient plus the server's
activation coefficient if the assignment would switch the server on. Capacity
is tracked as assignments commit, so the result always satisfies Equations 1,
3, 4, and 5 (Equation 2 is structural via the candidate mask).

The engine is objective-agnostic: CarbonEdge uses it with carbon coefficients
as its scalable solver backend (and as a warm start for the exact solver), the
Energy-aware baseline with energy coefficients, and the Latency-aware baseline
with latency coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.resources import ResourceVector
from repro.core.filters import FeasibilityReport, filter_feasible_servers
from repro.core.objective import ObjectiveKind, objective_coefficients
from repro.core.policies.base import PlacementPolicy
from repro.core.problem import PlacementProblem
from repro.core.solution import PlacementSolution


def greedy_place(
    problem: PlacementProblem,
    assign_cost: np.ndarray,
    activation_cost: np.ndarray,
    report: FeasibilityReport | None = None,
    tie_breaker: np.ndarray | None = None,
) -> PlacementSolution:
    """Greedily place applications minimising marginal cost.

    Parameters
    ----------
    problem:
        The placement problem.
    assign_cost:
        (A, S) cost of assigning application i to server j.
    activation_cost:
        (S,) extra cost incurred the first time a currently-off server is used.
    report:
        Optional pre-computed feasibility report.
    tie_breaker:
        Optional (A, S) secondary cost used to break ties (defaults to the
        one-way latency, so greener-but-equidistant choices prefer proximity).
    """
    report = report or filter_feasible_servers(problem)
    tie = problem.latency_ms if tie_breaker is None else np.asarray(tie_breaker, dtype=float)

    remaining: list[ResourceVector] = [cap.copy() for cap in problem.capacities]
    power_on = problem.current_power.copy()
    placements: dict[str, int] = {}
    unplaced: list[str] = []

    # Most-constrained applications first; larger energy first among equals so
    # heavy applications grab green capacity before it fills up.
    order = sorted(
        range(problem.n_applications),
        key=lambda i: (int(report.mask[i].sum()), -float(problem.energy_j[i].max(initial=0.0))),
    )

    for i in order:
        app = problem.applications[i]
        candidates = report.candidates_for(i)
        best_j, best_key = -1, None
        for j in candidates:
            j = int(j)
            demand = problem.demands[i][j]
            if not demand.fits_within(remaining[j]):
                continue
            marginal = float(assign_cost[i, j])
            if power_on[j] < 0.5:
                marginal += float(activation_cost[j])
            key = (marginal, float(tie[i, j]))
            if best_key is None or key < best_key:
                best_key, best_j = key, j
        if best_j < 0:
            unplaced.append(app.app_id)
            continue
        placements[app.app_id] = best_j
        remaining[best_j] = remaining[best_j] - problem.demands[i][best_j]
        power_on[best_j] = 1.0

    return PlacementSolution(problem=problem, placements=placements, power_on=power_on,
                             unplaced=unplaced)


@dataclass
class GreedyCarbonPolicy(PlacementPolicy):
    """Greedy carbon-aware placement (CarbonEdge's scalable solver backend).

    Minimises the marginal Equation-6 carbon of every assignment. Used directly
    for CDN-scale problems and as the warm start / fallback of the exact
    CarbonEdge policy.
    """

    name: str = "GreedyCarbon"

    def place(self, problem: PlacementProblem,
              warm_start: dict[str, int] | None = None) -> PlacementSolution:
        report = filter_feasible_servers(problem)
        assign, activation = objective_coefficients(problem, ObjectiveKind.CARBON)
        return greedy_place(problem, assign, activation, report=report)
