"""Placement solutions and their carbon / energy / latency accounting.

A :class:`PlacementSolution` holds the committed decisions (which server each
application goes to, which servers are powered on) and evaluates the paper's
three metrics (Section 6.1.4) against the problem it solves:

* carbon emissions (Equation 6: operational + newly-activated base power),
* energy consumption (dynamic + newly-activated base power),
* latency (per-application one-way latency to the chosen server, plus the
  increase relative to placing at the nearest feasible server).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.problem import PlacementProblem


@dataclass(frozen=True)
class Assignment:
    """One application-to-server assignment with its per-assignment metrics."""

    app_id: str
    server_id: str
    site: str
    zone_id: str
    one_way_latency_ms: float
    operational_carbon_g: float
    energy_j: float


@dataclass
class PlacementSolution:
    """The outcome of placing one batch of applications."""

    problem: PlacementProblem
    #: app_id -> server index (only placed applications appear).
    placements: dict[str, int] = field(default_factory=dict)
    #: (S,) final power decision y_j (1 = on).
    power_on: np.ndarray = field(default_factory=lambda: np.array([]))
    #: Application ids that could not be placed (no feasible server).
    unplaced: list[str] = field(default_factory=list)
    #: Wall-clock seconds the policy spent producing this solution.
    solve_time_s: float = 0.0
    #: Name of the policy that produced the solution.
    policy_name: str = ""
    #: Optimality gap reported by the solver (0 when exact, NaN when unknown).
    solver_gap: float = float("nan")
    #: Canonical name of the solver backend that produced the solution
    #: (empty when the solution did not come through the backend registry).
    backend_name: str = ""
    #: Provably order-independent share of the greedy construction when
    #: intra-epoch sharding was requested
    #: (:attr:`repro.solver.compile.ShardPlan.parallel_fraction` of the drawn
    #: plan — executed by shard dispatch in component mode, or by the serial
    #: kernel's equivalent speculative schedule; ``0.0`` when the planner
    #: refused outright). ``None`` when sharding was not requested or the
    #: backend does not shard — kept on the solution so saturated-epoch
    #: degradation is observable in simulation artifacts instead of silent.
    shard_parallel_fraction: float | None = None
    #: Number of batched wave commits the reconciliation replay executed
    #: (:class:`repro.solver.compile.FillStats`). Execution diagnostics only:
    #: the value varies with the reconcile mode while placements stay
    #: bit-identical. ``None`` when the backend does not run the greedy
    #: kernel.
    wave_count: int | None = None
    #: Fraction of replayed applications that took the exact per-application
    #: step instead of a batched wave commit (1.0 under the serial replay,
    #: near 0.0 when the wave replay settles almost everything). ``None``
    #: when the backend does not run the greedy kernel.
    revalidation_rate: float | None = None
    #: Best proven objective bound reported by the solver (the anytime exact
    #: tier's certificate; NaN when the backend proves none).
    solver_bound: float = float("nan")
    #: Exact solver parameters of the run that produced this solution (time
    #: limit, worker count, seed, scaling, status) — recorded so every exact-
    #: tier artifact states how its incumbent was obtained. Empty for
    #: backends without tunable solver parameters.
    solver_params: dict = field(default_factory=dict)
    #: Number of malformed warm-start hints (departed applications, unknown
    #: server indices) the request sanitization dropped before solving.
    warm_hints_dropped: int = 0
    #: True when the construction phase hit the request's ``time_budget_s``
    #: deadline and returned early — the solution is valid but may leave
    #: placeable applications unplaced.
    construction_truncated: bool = False

    def __post_init__(self) -> None:
        if len(self.power_on) == 0:
            self.power_on = self.problem.current_power.copy()
        self.power_on = np.asarray(self.power_on, dtype=float)
        if self.power_on.shape != (self.problem.n_servers,):
            raise ValueError("power_on must have one entry per server")

    # -- structure ---------------------------------------------------------------

    @property
    def n_placed(self) -> int:
        """Number of successfully placed applications."""
        return len(self.placements)

    @property
    def all_placed(self) -> bool:
        """Whether every application in the batch was placed."""
        return not self.unplaced and self.n_placed == self.problem.n_applications

    def server_of(self, app_id: str) -> str:
        """Server id hosting the given application."""
        if app_id not in self.placements:
            raise KeyError(f"application {app_id!r} was not placed")
        return self.problem.servers[self.placements[app_id]].server_id

    def assignments(self) -> list[Assignment]:
        """Per-application assignment records."""
        out: list[Assignment] = []
        op_carbon = self.problem.operational_carbon_g()
        for app_id, j in self.placements.items():
            i = self.problem.app_index(app_id)
            server = self.problem.servers[j]
            out.append(Assignment(
                app_id=app_id,
                server_id=server.server_id,
                site=server.site,
                zone_id=server.zone_id,
                one_way_latency_ms=float(self.problem.latency_ms[i, j]),
                operational_carbon_g=float(op_carbon[i, j]),
                energy_j=float(self.problem.energy_j[i, j]),
            ))
        return out

    def apps_per_server(self) -> dict[str, int]:
        """Number of applications placed on each server (by server id)."""
        counts: dict[str, int] = {s.server_id: 0 for s in self.problem.servers}
        for j in self.placements.values():
            counts[self.problem.servers[j].server_id] += 1
        return counts

    def apps_per_site(self) -> dict[str, int]:
        """Number of applications placed at each site."""
        counts: dict[str, int] = {}
        for j in self.placements.values():
            site = self.problem.servers[j].site
            counts[site] = counts.get(site, 0) + 1
        return counts

    # -- metrics -------------------------------------------------------------------

    def _placement_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """(P,) application and server index arrays over the placed applications.

        Recomputed per call (the registry may extend ``placements`` after
        construction); each lookup is O(1) through the problem's index map.
        """
        if not self.placements:
            empty = np.zeros(0, dtype=np.intp)
            return empty, empty
        i_arr = self.problem.app_indices(list(self.placements))
        j_arr = np.fromiter(self.placements.values(), dtype=np.intp,
                            count=len(self.placements))
        return i_arr, j_arr

    def newly_activated(self) -> np.ndarray:
        """(S,) indicator of servers switched on by this placement (y_j - y^curr_j)."""
        return np.clip(self.power_on - self.problem.current_power, 0.0, 1.0)

    def operational_carbon_g(self) -> float:
        """Total operational emissions of the placed applications, grams."""
        op = self.problem.operational_carbon_g()
        i_arr, j_arr = self._placement_arrays()
        return float(sum(op[i_arr, j_arr].tolist()))

    def activation_carbon_g(self) -> float:
        """Emissions from newly activated servers' base power, grams."""
        return float(np.dot(self.newly_activated(), self.problem.activation_carbon_g()))

    def total_carbon_g(self) -> float:
        """Equation 6: operational + activation emissions, grams."""
        return self.operational_carbon_g() + self.activation_carbon_g()

    def dynamic_energy_j(self) -> float:
        """Dynamic energy of the placed applications, joules."""
        i_arr, j_arr = self._placement_arrays()
        return float(sum(self.problem.energy_j[i_arr, j_arr].tolist()))

    def activation_energy_j(self) -> float:
        """Base-power energy of newly activated servers over the horizon, joules."""
        return float(np.dot(self.newly_activated(), self.problem.activation_energy_j()))

    def total_energy_j(self) -> float:
        """Dynamic + activation energy, joules."""
        return self.dynamic_energy_j() + self.activation_energy_j()

    def mean_latency_ms(self) -> float:
        """Mean one-way latency of the placed applications."""
        if not self.placements:
            return 0.0
        i_arr, j_arr = self._placement_arrays()
        return float(np.mean(self.problem.latency_ms[i_arr, j_arr]))

    def max_latency_ms(self) -> float:
        """Worst-case one-way latency of the placed applications."""
        if not self.placements:
            return 0.0
        i_arr, j_arr = self._placement_arrays()
        return float(np.max(self.problem.latency_ms[i_arr, j_arr]))

    def latency_increase_ms(self) -> float:
        """Mean one-way latency increase vs. each application's nearest feasible server.

        This is the "Increased Latency" metric the paper reports (relative to
        the Latency-aware baseline, which always picks the nearest feasible
        server). An application with no feasible server at all cannot be
        placed by the validated pipeline, so every placed application
        normally has a finite nearest-server latency; should one appear
        anyway, it is excluded from the mean (the same rule the CDN
        simulator's metrics loop applies) rather than contributing its raw
        latency.
        """
        if not self.placements:
            return 0.0
        problem = self.problem
        nearest = problem.nearest_feasible_ms()
        i_arr, j_arr = self._placement_arrays()
        reachable = np.isfinite(nearest[i_arr])
        increases = (problem.latency_ms[i_arr, j_arr] - nearest[i_arr])[reachable]
        return float(np.mean(increases)) if increases.size else 0.0

    def summary(self) -> dict[str, float]:
        """Compact metric summary used by the experiment reports."""
        return {
            "placed": float(self.n_placed),
            "unplaced": float(len(self.unplaced)),
            "carbon_g": self.total_carbon_g(),
            "operational_carbon_g": self.operational_carbon_g(),
            "activation_carbon_g": self.activation_carbon_g(),
            "energy_j": self.total_energy_j(),
            "mean_latency_ms": self.mean_latency_ms(),
            "latency_increase_ms": self.latency_increase_ms(),
            "solve_time_s": self.solve_time_s,
        }
