"""The online placement service: an event-driven loop over the epoch substrate.

:class:`PlacementService` turns the batch epoch replay into a long-running
placement loop on :class:`~repro.simulator.engine.SimulationEngine`. Four
event kinds drive it:

* ``"arrival"`` — a deployment request (payload: one
  :class:`~repro.workloads.application.Application`) joins the pending batch;
* ``"batch"`` — a batching tick closes the pending batch and places it through
  :class:`~repro.core.incremental.IncrementalPlacer.place_batch` (a full solve
  for the new applications, compiled through the scenario tier);
* ``"departure"`` — a running application's lifetime ends; its allocation is
  released so capacity returns to the pool;
* ``"intensity"`` — the rolling-horizon tick: the resilient carbon feed
  refreshes every zone (recording fallbacks/staleness), then
  :meth:`~repro.core.incremental.IncrementalPlacer.resolve_epoch` re-solves
  everything running as a *warm delta re-solve* — warm-started solver, warm
  compilation threading, scenario-tier row gathers — never a cold build.

**Replay-parity contract.** :meth:`run_replay` drives the same loop with
events derived from a :class:`~repro.simulator.scenario.CDNScenario` (one
``"epoch"`` event per placement epoch) and must produce *byte-identical*
placement decisions to :meth:`repro.simulator.cdn.CDNSimulator.run` — the
extension of the determinism contract that already governs intra-epoch
sharding and the scenario-compilation tier. :mod:`repro.serving.parity`
packages the byte-diff; CI runs it across ``--epoch-shards {1,2}`` and the
scenario-tier kill-switch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.incremental import IncrementalPlacer
from repro.core.policies.base import PlacementPolicy
from repro.core.policies.carbon_edge import CarbonEdgePolicy
from repro.core.validation import validate_solution
from repro.serving.feed import CarbonFeed, ResilientCarbonFeed, TraceFeed
from repro.serving.loadgen import LoadGenerator
from repro.serving.metrics import ServingMetrics
from repro.simulator.cdn import CDNSimulator, build_epoch_record
from repro.simulator.engine import SimulationEngine
from repro.simulator.events import Event
from repro.simulator.metrics import SimulationResult
from repro.simulator.scenario import CDNScenario
from repro.solver.compile import compile_placement
from repro.workloads.application import Application
from repro.workloads.generator import ApplicationBatch, columnar_enabled


@dataclass(frozen=True)
class ServingConfig:
    """Execution knobs of the serving loop.

    ``batch_interval_s`` is the micro-batching window (the paper's prototype
    batches deployment requests every few minutes); ``resolve_interval_s``
    is the rolling-horizon period — each tick refreshes the carbon feed and
    warm re-solves the live placement. ``start_hour`` anchors simulated time
    to an hour-of-year so carbon traces line up.
    """

    batch_interval_s: float = 300.0
    resolve_interval_s: float = 3600.0
    start_hour: int = 0
    horizon_hours: float = 24.0
    validate: bool = True

    def __post_init__(self) -> None:
        if self.batch_interval_s <= 0:
            raise ValueError("batch_interval_s must be positive")
        if self.resolve_interval_s <= 0:
            raise ValueError("resolve_interval_s must be positive")
        if not 0 <= self.start_hour < 8760:
            raise ValueError("start_hour must be in 0..8759")
        if self.horizon_hours <= 0:
            raise ValueError("horizon_hours must be positive")


@dataclass
class ServingReport:
    """What one service run produced."""

    metrics: ServingMetrics
    #: Replay mode only: the epoch records, same shape as the batch loop's.
    result: SimulationResult | None = None


@dataclass
class PlacementService:
    """Event-driven placement service over one scenario's substrate.

    Build it with :meth:`from_scenario`; then either :meth:`run_live` (a
    load-generator-driven soak with arrivals, departures, and rolling-horizon
    re-solves) or :meth:`run_replay` (scenario-derived epoch events under the
    replay-parity contract).
    """

    simulator: CDNSimulator
    policy: PlacementPolicy
    feed: ResilientCarbonFeed
    config: ServingConfig = field(default_factory=ServingConfig)

    @classmethod
    def from_scenario(cls, scenario: CDNScenario,
                      policy: PlacementPolicy | None = None,
                      adapter: CarbonFeed | None = None,
                      feed: ResilientCarbonFeed | None = None,
                      config: ServingConfig | None = None) -> "PlacementService":
        """Service over a scenario's (cached) substrate.

        ``adapter`` overrides the primary live-feed adapter (default: the
        deterministic :class:`~repro.serving.feed.TraceFeed`); a fully built
        ``feed`` overrides the resilient wrapper wholesale.
        """
        simulator = CDNSimulator(scenario=scenario)
        if policy is None:
            policy = CarbonEdgePolicy(solver=scenario.solver,
                                      epoch_shards=scenario.epoch_shards)
        if feed is None:
            feed = ResilientCarbonFeed(
                adapter=adapter or TraceFeed(simulator.carbon),
                service=simulator.carbon)
        if config is None:
            config = ServingConfig(horizon_hours=float(scenario.hours_per_epoch))
        return cls(simulator=simulator, policy=policy, feed=feed, config=config)

    # -- shared plumbing -------------------------------------------------------

    def _hour_at(self, time_s: float) -> int:
        """Hour-of-year of a simulation timestamp."""
        return (self.config.start_hour + int(time_s // 3600.0)) % 8760

    def _reset_fleet(self) -> None:
        """Pristine fleet baseline (no allocations, all servers on)."""
        fleet = self.simulator.fleet
        fleet.reset_allocations()
        for server in fleet.servers():
            server.power_on()

    # -- live mode -------------------------------------------------------------

    def run_live(self, load: LoadGenerator, duration_s: float,
                 max_events: int | None = None) -> ServingReport:
        """Run the live serving loop over a synthesized request stream.

        The loop is bounded by simulated ``duration_s`` and (optionally) by
        ``max_events`` — the soak knobs ``carbon-edge serve`` exposes for CI.
        The decision sequence is a pure function of the load generator's
        stream and the scenario substrate (wall-clock latencies are telemetry,
        not decisions), which the serving property suite asserts.
        """
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        self._reset_fleet()
        engine = SimulationEngine()
        placer = IncrementalPlacer(
            fleet=self.simulator.fleet,
            latency=self.simulator.latency,
            carbon=self.simulator.carbon,
            policy=self.policy,
            horizon_hours=self.config.horizon_hours,
            validate=self.config.validate,
        )
        metrics = ServingMetrics()
        zones = self.simulator.carbon.zones()
        pending: list[Application] = []
        hosting: dict[str, str] = {}

        def on_arrival(event: Event) -> None:
            metrics.n_arrivals += 1
            pending.append(event.payload)

        def on_departure(event: Event) -> None:
            metrics.n_departures += 1
            app_id = event.payload
            # Arrived but departed before its batch closed: never placed.
            for i, app in enumerate(pending):
                if app.app_id == app_id:
                    del pending[i]
                    return
            server_id = hosting.pop(app_id, None)
            if server_id is not None:
                self.simulator.fleet.server(server_id).release(app_id)
                placer.active_apps.pop(app_id, None)

        def on_batch(event: Event) -> None:
            if not pending:
                return
            batch, pending[:] = list(pending), []
            if columnar_enabled():
                # Columnar ingestion: the batch flows to the substrate's
                # class-table fast path; from_applications keeps the original
                # objects so the metrics lookups below see identical instances.
                batch = ApplicationBatch.from_applications(tuple(batch))
            hour = self._hour_at(event.time_s)
            started = time.perf_counter()
            solution = placer.place_batch(batch, hour)
            latency_s = time.perf_counter() - started
            metrics.record_decision("batch", event.time_s, hour, solution,
                                    latency_s)
            problem = solution.problem
            for app_id, j in solution.placements.items():
                hosting[app_id] = problem.servers[j].server_id
                app = problem.applications[problem.app_index(app_id)]
                metrics.total_requests += \
                    app.request_rate_rps * app.duration_hours * 3600.0
            # Unplaced arrivals are rejected (no queueing): their departure
            # events find no hosting entry and fall through harmlessly.

        def on_intensity(event: Event) -> None:
            hour = self._hour_at(event.time_s)
            samples = self.feed.refresh(zones, hour, now_s=event.time_s)
            metrics.record_feed_samples(samples)
            started = time.perf_counter()
            solution = placer.resolve_epoch(hour)
            latency_s = time.perf_counter() - started
            if solution is None:
                return
            metrics.record_decision("resolve", event.time_s, hour, solution,
                                    latency_s)
            problem = solution.problem
            hosting.clear()
            for app_id, j in solution.placements.items():
                hosting[app_id] = problem.servers[j].server_id

        engine.register_handler("arrival", on_arrival)
        engine.register_handler("departure", on_departure)
        engine.register_handler("batch", on_batch)
        engine.register_handler("intensity", on_intensity)

        for event in load.events(duration_s):
            engine.queue.push(event)
        # Ticks carry priority 1 so same-timestamp arrivals/departures settle
        # before the batch closes or the horizon rolls — deterministically.
        n_batches = int(duration_s // self.config.batch_interval_s)
        for k in range(1, n_batches + 1):
            engine.queue.schedule(k * self.config.batch_interval_s,
                                  kind="batch", priority=1)
        n_resolves = int(duration_s // self.config.resolve_interval_s)
        for k in range(1, n_resolves + 1):
            engine.queue.schedule(k * self.config.resolve_interval_s,
                                  kind="intensity", priority=2)

        metrics.n_events = engine.run(until_s=duration_s, max_events=max_events)
        metrics.record_feed(self.feed)
        metrics.finish()
        return ServingReport(metrics=metrics)

    # -- replay mode -----------------------------------------------------------

    def run_replay(self) -> ServingReport:
        """Drive the scenario's epochs through the event loop (parity mode).

        One ``"epoch"`` event per placement epoch of the scenario; each
        decision compiles through the scenario tier with warm compilation
        threading (the previous epoch's compilation seeds the next) and must
        be byte-identical to the batch loop's — see
        :func:`repro.serving.parity.check_replay_parity`.
        """
        scenario = self.simulator.scenario
        engine = SimulationEngine()
        metrics = ServingMetrics()
        result = SimulationResult(scenario_name=f"CDN-{scenario.continent}")
        last_compilation: list = [None]  # closed-over mutable slot

        def on_epoch(event: Event) -> None:
            epoch = event.payload
            start_hour = scenario.epoch_start_hour(epoch)
            problem = self.simulator.epoch_problem(epoch)
            compilation = compile_placement(problem, previous=last_compilation[0])
            last_compilation[0] = compilation
            started = time.perf_counter()
            solution = self.policy.timed_place(problem)
            latency_s = time.perf_counter() - started
            if self.config.validate:
                validate_solution(solution, strict=True)
            result.add(build_epoch_record(problem, compilation, solution,
                                          epoch, start_hour,
                                          record_assignments=True))
            metrics.record_decision("epoch", event.time_s, start_hour,
                                    solution, latency_s)

        engine.register_handler("epoch", on_epoch)
        for epoch in range(scenario.n_epochs):
            engine.queue.schedule(
                float(epoch * scenario.hours_per_epoch) * 3600.0,
                kind="epoch", payload=epoch)
        metrics.n_events = engine.run()
        metrics.finish()
        return ServingReport(metrics=metrics, result=result)
