"""Online serving mode: the live placement service and its harness.

The batch simulator replays epochs; this package serves them — an
event-driven placement loop (:mod:`repro.serving.service`) fed by a seeded
load generator (:mod:`repro.serving.loadgen`) and a fault-tolerant carbon
feed (:mod:`repro.serving.feed`), instrumented by
:mod:`repro.serving.metrics` and anchored to the batch loop by the
replay-parity harness (:mod:`repro.serving.parity`).
"""

from repro.serving.feed import (
    CarbonFeed,
    ElectricityMapsFeed,
    FeedError,
    FeedEvent,
    FeedSample,
    ResilientCarbonFeed,
    RetryPolicy,
    TraceFeed,
)
from repro.serving.loadgen import SHAPES, LoadGenerator
from repro.serving.metrics import (
    SERVING_METRICS_VERSION,
    DecisionRecord,
    ServingMetrics,
)
from repro.serving.parity import (
    ParityCheck,
    ParityReport,
    canonical_records,
    check_replay_parity,
)
from repro.serving.service import PlacementService, ServingConfig, ServingReport

__all__ = [
    "SERVING_METRICS_VERSION",
    "SHAPES",
    "CarbonFeed",
    "DecisionRecord",
    "ElectricityMapsFeed",
    "FeedError",
    "FeedEvent",
    "FeedSample",
    "LoadGenerator",
    "ParityCheck",
    "ParityReport",
    "PlacementService",
    "ResilientCarbonFeed",
    "RetryPolicy",
    "ServingConfig",
    "ServingMetrics",
    "ServingReport",
    "TraceFeed",
    "canonical_records",
    "check_replay_parity",
]
