"""Live carbon-intensity feeds with fault-tolerant degradation.

The online placement service (:mod:`repro.serving.service`) consumes carbon
intensity through a :class:`CarbonFeed` — a narrow "give me the intensity of
one zone right now" protocol with two production-shaped implementations:

* :class:`TraceFeed` replays the deterministic synthetic traces through the
  existing :class:`~repro.carbon.service.CarbonIntensityService`. It is the
  replay-parity adapter: a service run fed by it sees exactly the intensities
  the batch simulator saw.
* :class:`ElectricityMapsFeed` is the live adapter: an ElectricityMaps-style
  HTTP client (``/v3/carbon-intensity/latest`` per zone) with an injectable
  transport so tests — and the offline CI environment — never touch the
  network. Any transport failure surfaces as :class:`FeedError`.

:class:`ResilientCarbonFeed` wraps either adapter with the fault-tolerance
state machine the serving loop relies on::

    live ──(errors, retry w/ exponential backoff)──▶ cached last-good
         ◀──(first success: "recovered")──          │ (age > staleness limit)
                                                    ▼
                                       synthetic forecast fallback

Every retry, fallback, and recovery is recorded as a :class:`FeedEvent` so
:class:`~repro.serving.metrics.ServingMetrics` can report feed health, and the
forecast fallback deliberately returns the *same* synthetic-forecast values
the placement objective already optimises against — so degraded feeds change
feed telemetry, never placement decisions (asserted by the fault-injection
tests).
"""

from __future__ import annotations

import json
import math
import urllib.error
import urllib.parse
import urllib.request
from dataclasses import dataclass, field
from typing import Callable, Protocol, runtime_checkable

from repro.carbon.service import CarbonIntensityService


class FeedError(RuntimeError):
    """A carbon-feed adapter failed to produce a sample (timeout, HTTP, parse)."""


@runtime_checkable
class CarbonFeed(Protocol):
    """Minimal live-feed protocol: current intensity of one zone.

    ``hour`` is the hour-of-year of the request — trace-backed adapters index
    their replay with it; real HTTP adapters may ignore it (the upstream API
    serves "latest").
    """

    def fetch(self, zone_id: str, hour: int) -> float:
        """Return the zone's current carbon intensity in g CO2eq/kWh."""
        ...


@dataclass
class TraceFeed:
    """Deterministic replay adapter over the synthetic trace service."""

    service: CarbonIntensityService

    def fetch(self, zone_id: str, hour: int) -> float:
        if not self.service.has_zone(zone_id):
            raise FeedError(f"no trace for zone {zone_id!r}")
        return float(self.service.current_intensity(zone_id, hour))


#: Transport signature of :class:`ElectricityMapsFeed`: ``(url, headers,
#: timeout_s) -> response body (str)``. Injectable so tests run offline.
Transport = Callable[[str, dict, float], str]


def _urllib_transport(url: str, headers: dict, timeout_s: float) -> str:
    """Default transport: stdlib urllib (no third-party HTTP dependency)."""
    request = urllib.request.Request(url, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=timeout_s) as response:
            return response.read().decode("utf-8")
    except (urllib.error.URLError, OSError, ValueError) as exc:
        raise FeedError(f"electricity-maps request failed: {exc}") from exc


@dataclass
class ElectricityMapsFeed:
    """ElectricityMaps-style live adapter (``/v3/carbon-intensity/latest``).

    Parameters
    ----------
    api_key:
        Auth token sent as the ``auth-token`` header; an empty key fails fast
        with :class:`FeedError` instead of burning a request.
    base_url / timeout_s:
        Endpoint root and per-request timeout.
    transport:
        Injectable ``(url, headers, timeout_s) -> body`` callable; defaults to
        a stdlib urllib client. Tests and offline runs replace it.
    """

    api_key: str = ""
    base_url: str = "https://api.electricitymap.org/v3"
    timeout_s: float = 5.0
    transport: Transport = field(default=_urllib_transport, repr=False)

    def fetch(self, zone_id: str, hour: int) -> float:
        if not self.api_key:
            raise FeedError("electricity-maps API key not configured")
        query = urllib.parse.urlencode({"zone": zone_id})
        url = f"{self.base_url}/carbon-intensity/latest?{query}"
        body = self.transport(url, {"auth-token": self.api_key}, self.timeout_s)
        try:
            payload = json.loads(body)
        except (TypeError, json.JSONDecodeError) as exc:
            raise FeedError(f"electricity-maps returned invalid JSON: {exc}") from exc
        value = payload.get("carbonIntensity") if isinstance(payload, dict) else None
        if not isinstance(value, (int, float)) or not math.isfinite(float(value)):
            raise FeedError(
                f"electricity-maps payload for {zone_id!r} has no finite "
                f"carbonIntensity: {payload!r}")
        return float(value)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff schedule for live-feed retries.

    ``max_attempts`` counts the initial try; ``delays()`` is the backoff slept
    between consecutive attempts (``max_attempts - 1`` entries), growing by
    ``factor`` from ``base_delay_s`` and capped at ``max_delay_s``.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.5
    factor: float = 2.0
    max_delay_s: float = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")

    def delays(self) -> list[float]:
        """Backoff delays between attempts, in seconds."""
        return [min(self.base_delay_s * self.factor ** k, self.max_delay_s)
                for k in range(self.max_attempts - 1)]


@dataclass(frozen=True)
class FeedSample:
    """One resolved intensity sample with its provenance.

    ``source`` is ``"live"`` (adapter succeeded), ``"cache"`` (adapter down,
    last-good value still fresh), or ``"forecast"`` (adapter down and cache
    stale/absent — degraded to the synthetic forecast).
    """

    zone_id: str
    hour: int
    intensity: float
    source: str
    stale: bool = False


@dataclass(frozen=True)
class FeedEvent:
    """One fault-tolerance transition (retry, fallback, recovery) of the feed."""

    kind: str  # "retry" | "fallback-cache" | "fallback-forecast" | "recovered"
    zone_id: str
    time_s: float
    delay_s: float = 0.0


@dataclass
class _ZoneState:
    last_good: float | None = None
    last_good_at_s: float = -math.inf
    failing: bool = False


@dataclass
class ResilientCarbonFeed:
    """Retry / cache / forecast-degradation wrapper around a live adapter.

    Parameters
    ----------
    adapter:
        The primary :class:`CarbonFeed`.
    service:
        The synthetic-trace service used for the graceful-degradation
        forecast values (and by the placement objective itself, which is what
        keeps placement decisions identical under fallback).
    retry:
        Exponential-backoff schedule applied per :meth:`fetch`.
    staleness_limit_s:
        Maximum age of a cached last-good sample before the feed degrades to
        the forecast fallback.
    sleep:
        Injectable backoff sleeper. The default is a no-op: inside the
        discrete-event serving loop real sleeping would stall simulated time,
        so the backoff *schedule* is recorded on the feed events instead;
        a real deployment passes ``time.sleep``.
    """

    adapter: CarbonFeed
    service: CarbonIntensityService
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    staleness_limit_s: float = 3600.0
    sleep: Callable[[float], None] = field(default=lambda _s: None, repr=False)
    events: list[FeedEvent] = field(default_factory=list)
    _zones: dict[str, _ZoneState] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.staleness_limit_s < 0:
            raise ValueError("staleness_limit_s must be non-negative")

    def _state(self, zone_id: str) -> _ZoneState:
        return self._zones.setdefault(zone_id, _ZoneState())

    def fetch(self, zone_id: str, hour: int, now_s: float = 0.0) -> FeedSample:
        """Resolve one zone's intensity, degrading gracefully on failure.

        Never raises: after ``retry.max_attempts`` adapter failures the feed
        falls back to the cached last-good value (while younger than
        ``staleness_limit_s``) and then to the synthetic forecast.
        """
        state = self._state(zone_id)
        delays = self.retry.delays()
        for attempt in range(self.retry.max_attempts):
            try:
                value = float(self.adapter.fetch(zone_id, hour))
            except FeedError:
                if attempt < len(delays):
                    delay = delays[attempt]
                    self.events.append(FeedEvent(
                        kind="retry", zone_id=zone_id, time_s=now_s, delay_s=delay))
                    self.sleep(delay)
                continue
            if state.failing:
                self.events.append(FeedEvent(
                    kind="recovered", zone_id=zone_id, time_s=now_s))
            state.failing = False
            state.last_good = value
            state.last_good_at_s = now_s
            return FeedSample(zone_id=zone_id, hour=hour, intensity=value,
                              source="live")
        state.failing = True
        age_s = now_s - state.last_good_at_s
        if state.last_good is not None and age_s <= self.staleness_limit_s:
            self.events.append(FeedEvent(
                kind="fallback-cache", zone_id=zone_id, time_s=now_s))
            return FeedSample(zone_id=zone_id, hour=hour,
                              intensity=state.last_good, source="cache")
        # Staleness-triggered graceful degradation: the synthetic forecast is
        # exactly what the optimiser's Ī_j already integrates, so a degraded
        # feed flags telemetry without perturbing placement decisions.
        self.events.append(FeedEvent(
            kind="fallback-forecast", zone_id=zone_id, time_s=now_s))
        value = float(self.service.forecast_mean(zone_id, hour, horizon_hours=1))
        return FeedSample(zone_id=zone_id, hour=hour, intensity=value,
                          source="forecast", stale=True)

    def refresh(self, zone_ids: list[str], hour: int,
                now_s: float = 0.0) -> dict[str, FeedSample]:
        """Fetch every zone once (the serving loop's intensity-update tick)."""
        return {zone: self.fetch(zone, hour, now_s) for zone in zone_ids}

    def any_failing(self) -> bool:
        """Whether any zone's adapter is currently in the failing state."""
        return any(state.failing for state in self._zones.values())

    def event_counts(self) -> dict[str, int]:
        """Histogram of recorded feed events by kind (stable key order)."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return dict(sorted(counts.items()))
