"""Replay-parity harness: online service vs. batch simulator, byte-diffed.

The correctness anchor of the serving mode is a *replay-parity contract*: a
:class:`~repro.serving.service.PlacementService` run driven by events derived
from a scenario must produce **bit-identical placement decisions** to the
batch :meth:`repro.simulator.cdn.CDNSimulator.run` loop over the same
scenario. This module canonicalises both sides' epoch records into compact
sorted-keys JSON (wall-clock fields excluded) and byte-diffs them —
:func:`check_replay_parity` is shared by the regression tests, the property
suite, and ``carbon-edge serve --replay-parity`` in CI, which runs it across
``--epoch-shards {1,2}`` and the scenario-tier kill-switch.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.core.policies.base import PlacementPolicy
from repro.simulator.cdn import CDNSimulator, default_policies
from repro.simulator.metrics import SimulationResult
from repro.simulator.scenario import CDNScenario


def canonical_records(result: SimulationResult, policy: str) -> str:
    """Canonical JSON of one policy's epoch records — decisions, not timings.

    Everything deterministic goes in: the full (app → server) assignment
    maps, carbon/energy, latency metrics, per-site counts, hosting
    intensities, shard diagnostics. ``solve_time_s`` is the one wall-clock
    field and is excluded; two runs that made the same decisions must
    serialize to *identical bytes* here.
    """
    entries = [{
        "epoch": r.epoch,
        "start_hour": r.start_hour,
        "policy": r.policy,
        "carbon_g": r.carbon_g,
        "energy_j": r.energy_j,
        "mean_one_way_latency_ms": r.mean_one_way_latency_ms,
        "latency_increase_one_way_ms": r.latency_increase_one_way_ms,
        "n_placed": r.n_placed,
        "n_unplaced": r.n_unplaced,
        "apps_per_site": r.apps_per_site,
        "hosting_intensities": r.hosting_intensities,
        "n_nearest_unreachable": r.n_nearest_unreachable,
        "shard_parallel_fraction": r.shard_parallel_fraction,
        "assignments": r.assignments,
    } for r in result.records[policy]]
    return json.dumps(entries, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class ParityCheck:
    """Byte-diff outcome for one policy."""

    policy: str
    matches: bool
    service_json: str
    batch_json: str


@dataclass
class ParityReport:
    """Replay-parity outcome across a set of policies."""

    scenario: CDNScenario
    checks: list[ParityCheck]

    @property
    def ok(self) -> bool:
        """Whether every policy's decisions matched byte-for-byte."""
        return all(check.matches for check in self.checks)

    def summary(self) -> str:
        """One line per policy, CLI-friendly."""
        lines = []
        for check in self.checks:
            status = "OK" if check.matches else "MISMATCH"
            lines.append(f"  {check.policy}: {status}")
        return "\n".join(lines)


def check_replay_parity(scenario: CDNScenario,
                        policies: list[PlacementPolicy] | None = None,
                        validate: bool = True) -> ParityReport:
    """Run both loops over one scenario and byte-diff their decisions.

    The batch side is one :meth:`CDNSimulator.run` over all policies (with
    assignment recording on); the service side is one
    :meth:`~repro.serving.service.PlacementService.run_replay` per policy.
    Policies default to the simulator's standard comparison set.
    """
    from repro.serving.service import PlacementService, ServingConfig

    if policies is None:
        policies = default_policies(scenario.solver, scenario.epoch_shards)
    batch = CDNSimulator(scenario=scenario).run(
        policies=policies, validate=validate, record_assignments=True)
    checks: list[ParityCheck] = []
    config = ServingConfig(horizon_hours=float(scenario.hours_per_epoch),
                           validate=validate)
    for policy in policies:
        service = PlacementService.from_scenario(scenario, policy=policy,
                                                 config=config)
        served = service.run_replay()
        service_json = canonical_records(served.result, policy.name)
        batch_json = canonical_records(batch, policy.name)
        checks.append(ParityCheck(policy=policy.name,
                                  matches=service_json == batch_json,
                                  service_json=service_json,
                                  batch_json=batch_json))
    return ParityReport(scenario=scenario, checks=checks)
