"""Serving-mode telemetry: decision latencies, throughput, feed health.

:class:`ServingMetrics` is the sink the online placement service writes while
it runs. It separates two kinds of truth:

* the **canonical decision log** — every placement decision's sim-time, kind,
  and (app → server) assignment map, with *no wall-clock data* — which is a
  pure function of the event stream and therefore byte-comparable across runs
  (the replay-parity contract and the determinism property suite diff its
  canonical JSON);
* **timing telemetry** — wall-clock decision latencies (p50/p99), sustained
  placements/sec, warm re-solve vs full-solve counts, feed fallback events —
  which is measurement, never compared byte-for-byte.

Latency telemetry is held in seeded :class:`LatencyReservoir` samples (one
overall, one per decision kind) rather than an unbounded in-memory list, so a
long soak's memory stays capped at the reservoir capacity while p50/p99 stay
deterministic for a fixed seed and event stream.

:meth:`ServingMetrics.to_artifact` emits the versioned JSON artifact the
``carbon-edge serve`` soak mode writes (and CI uploads).
"""

from __future__ import annotations

import hashlib
import json
import random
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

#: Version stamp of the serving-metrics artifact layout.
SERVING_METRICS_VERSION: int = 1

#: Default capacity of each latency reservoir. Streams shorter than this are
#: kept in full (percentiles are then exact); longer soaks degrade to a
#: uniform sample without growing memory.
LATENCY_RESERVOIR_SIZE: int = 4096

#: Fixed default seed of the latency reservoirs: the sample — and therefore
#: reported p50/p99 — is reproducible for a given event stream. (Latency
#: *values* are wall-clock measurement either way; only which ones survive
#: subsampling is pinned.)
LATENCY_RESERVOIR_SEED: int = 20250807


class LatencyReservoir:
    """Seeded Algorithm-R uniform reservoir over one latency stream.

    Every arriving value is kept until ``capacity`` is reached; after that
    each n-th value replaces a uniformly random slot with probability
    ``capacity / n`` (Vitter's Algorithm R), so at any point the retained
    values are a uniform sample of the stream seen so far — percentile
    estimates stay unbiased while memory stays O(capacity). The replacement
    randomness comes from a private seeded generator, making the sample a
    pure function of (seed, stream).
    """

    __slots__ = ("capacity", "n_seen", "_values", "_rng")

    def __init__(self, capacity: int = LATENCY_RESERVOIR_SIZE,
                 seed: int = LATENCY_RESERVOIR_SEED) -> None:
        if capacity < 1:
            raise ValueError(f"reservoir capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.n_seen = 0
        self._values: list[float] = []
        self._rng = random.Random(seed)

    def add(self, value: float) -> None:
        """Offer one value to the reservoir."""
        self.n_seen += 1
        if len(self._values) < self.capacity:
            self._values.append(float(value))
            return
        slot = self._rng.randrange(self.n_seen)
        if slot < self.capacity:
            self._values[slot] = float(value)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def saturated(self) -> bool:
        """Whether the stream outgrew the reservoir (sample is now partial)."""
        return self.n_seen > self.capacity

    def values(self) -> np.ndarray:
        """The retained sample, in retention order."""
        return np.asarray(self._values, dtype=float)


@dataclass(frozen=True)
class DecisionRecord:
    """One placement decision of the serving loop (canonical-log entry).

    ``kind`` is ``"batch"`` (full solve of newly arrived applications),
    ``"resolve"`` (rolling-horizon warm re-solve of everything running), or
    ``"epoch"`` (replay-mode epoch decision). ``latency_s`` is wall-clock and
    excluded from the canonical log.
    """

    index: int
    kind: str
    time_s: float
    hour: int
    n_apps: int
    n_placed: int
    carbon_g: float
    assignments: dict[str, str]
    latency_s: float = 0.0


@dataclass
class ServingMetrics:
    """Accumulates serving-loop telemetry; one instance per service run."""

    decisions: list[DecisionRecord] = field(default_factory=list)
    n_events: int = 0
    n_arrivals: int = 0
    n_departures: int = 0
    n_batch_solves: int = 0
    n_warm_resolves: int = 0
    #: Total requests represented by committed placements (rate x lifetime),
    #: accumulated by the service as it commits.
    total_requests: float = 0.0
    #: Feed health, mirrored from the resilient feed at run end.
    feed_events: dict[str, int] = field(default_factory=dict)
    feed_samples: dict[str, int] = field(default_factory=dict)
    feed_stale: bool = False
    started_at: float = field(default_factory=time.perf_counter, repr=False)
    wall_elapsed_s: float = 0.0
    #: Capacity of each latency reservoir (one overall + one per decision
    #: kind); long soaks hold at most this many latency floats per stream.
    latency_reservoir_size: int = LATENCY_RESERVOIR_SIZE
    #: Seed of the reservoirs' subsampling randomness (fixed by default so
    #: reported percentiles are reproducible for a given event stream).
    latency_reservoir_seed: int = LATENCY_RESERVOIR_SEED
    #: Keyed by decision kind (``None`` = all decisions). Lazily created so
    #: the dataclass stays trivially constructible in tests.
    _latency_samples: dict = field(default_factory=dict, repr=False)

    def _reservoir(self, kind: str | None) -> LatencyReservoir:
        if kind not in self._latency_samples:
            self._latency_samples[kind] = LatencyReservoir(
                capacity=self.latency_reservoir_size,
                seed=self.latency_reservoir_seed)
        return self._latency_samples[kind]

    # -- recording ---------------------------------------------------------

    def record_decision(self, kind: str, time_s: float, hour: int, solution,
                        latency_s: float) -> DecisionRecord:
        """Append one decision (assignments are read off the solution)."""
        problem = solution.problem
        assignments = {app_id: problem.servers[j].server_id
                       for app_id, j in solution.placements.items()}
        record = DecisionRecord(
            index=len(self.decisions),
            kind=kind,
            time_s=float(time_s),
            hour=int(hour),
            n_apps=problem.n_applications,
            n_placed=solution.n_placed,
            carbon_g=float(solution.total_carbon_g()),
            assignments=assignments,
            latency_s=float(latency_s),
        )
        self.decisions.append(record)
        self._reservoir(None).add(float(latency_s))
        self._reservoir(kind).add(float(latency_s))
        if kind == "resolve":
            self.n_warm_resolves += 1
        else:
            self.n_batch_solves += 1
        return record

    def record_feed(self, feed) -> None:
        """Mirror a :class:`~repro.serving.feed.ResilientCarbonFeed`'s health."""
        self.feed_events = feed.event_counts()
        self.feed_stale = feed.any_failing()

    def record_feed_samples(self, samples: dict) -> None:
        """Count one refresh round's samples by provenance source."""
        for sample in samples.values():
            self.feed_samples[sample.source] = \
                self.feed_samples.get(sample.source, 0) + 1

    def finish(self) -> None:
        """Freeze the wall-clock span of the run."""
        self.wall_elapsed_s = time.perf_counter() - self.started_at

    # -- derived telemetry -------------------------------------------------

    def decision_latencies_s(self, kind: str | None = None) -> np.ndarray:
        """Wall-clock decision latencies, optionally filtered by kind.

        Read from the kind's seeded reservoir: exact (every decision) until
        the stream outgrows :attr:`latency_reservoir_size`, a deterministic
        uniform sample after — so long soaks report stable percentiles at
        bounded memory.
        """
        if kind not in self._latency_samples:
            return np.asarray([], dtype=float)
        return self._latency_samples[kind].values()

    def latency_percentile_ms(self, q: float, kind: str | None = None) -> float:
        """``q``-th percentile decision latency in milliseconds (0 when empty)."""
        latencies = self.decision_latencies_s(kind)
        if latencies.size == 0:
            return 0.0
        return float(np.percentile(latencies, q) * 1000.0)

    def total_placed(self) -> int:
        """Applications placed across every decision (re-solves re-place)."""
        return int(sum(d.n_placed for d in self.decisions if d.kind != "resolve"))

    def total_carbon_g(self) -> float:
        """Carbon attributed at decision time, batch decisions only, grams."""
        return float(sum(d.carbon_g for d in self.decisions if d.kind != "resolve"))

    def placements_per_s(self) -> float:
        """Sustained placement throughput over the run's wall-clock span."""
        if self.wall_elapsed_s <= 0:
            return 0.0
        return self.total_placed() / self.wall_elapsed_s

    def carbon_per_request_g(self) -> float:
        """Decision-time carbon divided by the aggregate request rate served.

        Requests served = sum over placed apps of (request rate x lifetime);
        the service accumulates that total in ``total_requests`` as it
        commits placements.
        """
        if self.total_requests <= 0:
            return 0.0
        return self.total_carbon_g() / self.total_requests

    # -- canonical log and artifact ---------------------------------------

    def canonical_decision_log(self) -> str:
        """Deterministic JSON of the decision sequence (no wall-clock data).

        Two service runs over the same event stream must produce *identical
        bytes* here — the serving-determinism property and the fault-injection
        suite compare this string directly.
        """
        entries = [{
            "index": d.index,
            "kind": d.kind,
            "time_s": d.time_s,
            "hour": d.hour,
            "n_apps": d.n_apps,
            "n_placed": d.n_placed,
            "carbon_g": d.carbon_g,
            "assignments": d.assignments,
        } for d in self.decisions]
        return json.dumps(entries, sort_keys=True, separators=(",", ":"))

    def decision_digest(self) -> str:
        """SHA-256 of the canonical decision log (compact parity fingerprint)."""
        return hashlib.sha256(
            self.canonical_decision_log().encode("utf-8")).hexdigest()

    def to_artifact(self, include_decisions: bool = False) -> dict[str, object]:
        """The versioned serving-metrics artifact (JSON-safe)."""
        artifact: dict[str, object] = {
            "version": SERVING_METRICS_VERSION,
            "counters": {
                "events": self.n_events,
                "arrivals": self.n_arrivals,
                "departures": self.n_departures,
                "decisions": len(self.decisions),
                "batch_solves": self.n_batch_solves,
                "warm_resolves": self.n_warm_resolves,
                "placements": self.total_placed(),
            },
            "latency_ms": {
                "p50": self.latency_percentile_ms(50.0),
                "p99": self.latency_percentile_ms(99.0),
                "p50_resolve": self.latency_percentile_ms(50.0, kind="resolve"),
                "p99_resolve": self.latency_percentile_ms(99.0, kind="resolve"),
                "reservoir": {
                    "capacity": self.latency_reservoir_size,
                    "seed": self.latency_reservoir_seed,
                    "seen": self._reservoir(None).n_seen,
                    "sampled": len(self._reservoir(None)),
                },
            },
            "throughput": {
                "wall_elapsed_s": self.wall_elapsed_s,
                "placements_per_s": self.placements_per_s(),
            },
            "carbon": {
                "total_g": self.total_carbon_g(),
                "per_request_g": self.carbon_per_request_g(),
            },
            "feed": {
                "events": self.feed_events,
                "samples": self.feed_samples,
                "stale": self.feed_stale,
            },
            "decision_digest": self.decision_digest(),
        }
        if include_decisions:
            artifact["decisions"] = json.loads(self.canonical_decision_log())
        return artifact

    def write(self, path: str | Path, include_decisions: bool = False) -> Path:
        """Write the artifact JSON to ``path`` (parents created) and return it."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(self.to_artifact(include_decisions),
                             sort_keys=True, indent=2) + "\n"
        path.write_text(payload, encoding="utf-8")
        return path
