"""Distance-based one-way latency model and pairwise latency matrices.

The model is ``one-way latency = base + distance / propagation_speed ×
routing_inflation + jitter`` where the routing inflation is larger for
cross-border paths (internet routes rarely follow great circles, especially
between countries — which is why the paper's Table 1 shows Graz–Lyon at
16.2 ms even though the great-circle distance would suggest ~6 ms). Jitter is
deterministic per pair so latency matrices are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.network.geo import pairwise_distances_km
from repro.utils.rng import substream


#: Effective propagation speed of light in fibre, km per millisecond.
FIBER_KM_PER_MS: float = 200.0


@dataclass(frozen=True)
class LatencyModel:
    """Parameters of the distance→one-way-latency model.

    Internet routes rarely follow great circles, so the propagation delay is
    inflated by a per-pair routing factor drawn deterministically from a range
    — wider for cross-border pairs (where routes often detour through major
    exchange points, e.g. the paper's Graz–Lyon pair at 16.2 ms) than for
    intra-country pairs.

    Parameters
    ----------
    base_ms:
        Fixed per-path overhead (last-mile, switching), milliseconds.
    intra_inflation:
        (low, high) routing-inflation range for same-country/state endpoints.
    inter_inflation:
        (low, high) routing-inflation range for cross-border endpoints.
    seed:
        Seed for the deterministic per-pair inflation stream.
    """

    base_ms: float = 0.6
    intra_inflation: tuple[float, float] = (1.2, 2.2)
    inter_inflation: tuple[float, float] = (1.8, 4.5)
    seed: int = 0

    def routing_inflation(self, cross_border: bool,
                          pair_key: tuple[str, str] | None = None) -> float:
        """Deterministic routing-inflation factor for a pair of endpoints."""
        low, high = self.inter_inflation if cross_border else self.intra_inflation
        if pair_key is None:
            return 0.5 * (low + high)
        key = tuple(sorted(pair_key))
        rng = substream(self.seed, "latency-inflation", *key)
        return float(rng.uniform(low, high))

    def one_way_ms(self, distance_km: float, cross_border: bool = False,
                   pair_key: tuple[str, str] | None = None) -> float:
        """One-way latency in ms for a path of ``distance_km`` kilometres."""
        if distance_km < 0:
            raise ValueError(f"distance_km must be >= 0, got {distance_km}")
        if distance_km == 0:
            return 0.0
        inflation = self.routing_inflation(cross_border, pair_key)
        return self.base_ms + distance_km / FIBER_KM_PER_MS * inflation


def latency_for_distance_km(distance_km: float, model: LatencyModel | None = None) -> float:
    """One-way latency for a raw distance with the default model (no jitter)."""
    model = model or LatencyModel()
    return model.one_way_ms(distance_km)


@dataclass
class LatencyMatrix:
    """Symmetric one-way latency matrix over a set of named locations."""

    names: list[str]
    matrix_ms: np.ndarray

    def __post_init__(self) -> None:
        self.matrix_ms = np.asarray(self.matrix_ms, dtype=float)
        n = len(self.names)
        if self.matrix_ms.shape != (n, n):
            raise ValueError(
                f"latency matrix shape {self.matrix_ms.shape} does not match {n} names")
        if np.any(self.matrix_ms < 0):
            raise ValueError("latency matrix contains negative entries")
        self._index = {name: i for i, name in enumerate(self.names)}
        if len(self._index) != n:
            raise ValueError("location names must be unique")

    def __len__(self) -> int:
        return len(self.names)

    def index_of(self, name: str) -> int:
        """Row/column index of a location name."""
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(f"unknown location {name!r}") from None

    def one_way_ms(self, a: str, b: str) -> float:
        """One-way latency between two named locations."""
        return float(self.matrix_ms[self.index_of(a), self.index_of(b)])

    def round_trip_ms(self, a: str, b: str) -> float:
        """Round-trip latency between two named locations."""
        return 2.0 * self.one_way_ms(a, b)

    def row(self, name: str) -> np.ndarray:
        """One-way latencies from ``name`` to every location (matrix order)."""
        return self.matrix_ms[self.index_of(name)].copy()

    def neighbors_within(self, name: str, max_one_way_ms: float) -> list[str]:
        """Locations (excluding ``name``) reachable within a one-way latency bound."""
        row = self.matrix_ms[self.index_of(name)]
        return [n for n, lat in zip(self.names, row)
                if n != name and lat <= max_one_way_ms]

    def submatrix(self, names: Sequence[str]) -> "LatencyMatrix":
        """Restrict the matrix to a subset of locations (in the given order)."""
        idx = [self.index_of(n) for n in names]
        return LatencyMatrix(names=list(names), matrix_ms=self.matrix_ms[np.ix_(idx, idx)])

    def mean_off_diagonal(self) -> float:
        """Mean one-way latency over all distinct pairs."""
        n = len(self.names)
        if n < 2:
            return 0.0
        mask = ~np.eye(n, dtype=bool)
        return float(self.matrix_ms[mask].mean())


def build_latency_matrix(
    names: Sequence[str],
    coords: np.ndarray,
    countries: Sequence[str] | None = None,
    model: LatencyModel | None = None,
) -> LatencyMatrix:
    """Build the full pairwise one-way latency matrix for a set of locations.

    Parameters
    ----------
    names:
        Location names (must be unique).
    coords:
        (N, 2) array of [lat, lon] in degrees, aligned with ``names``.
    countries:
        Optional country/state labels used to decide cross-border inflation;
        defaults to treating every pair as intra-border.
    model:
        Latency model parameters (default :class:`LatencyModel`).
    """
    model = model or LatencyModel()
    names = list(names)
    n = len(names)
    coords = np.asarray(coords, dtype=float)
    if coords.shape != (n, 2):
        raise ValueError(f"coords must have shape ({n}, 2), got {coords.shape}")
    distances = pairwise_distances_km(coords)
    matrix = np.zeros((n, n), dtype=float)
    for i in range(n):
        for j in range(i + 1, n):
            cross = bool(countries is not None and countries[i] != countries[j])
            lat = model.one_way_ms(float(distances[i, j]), cross_border=cross,
                                   pair_key=(names[i], names[j]))
            matrix[i, j] = matrix[j, i] = lat
    return LatencyMatrix(names=names, matrix_ms=matrix)


def build_latency_matrix_fast(
    names: Sequence[str],
    coords: np.ndarray,
    countries: Sequence[str] | None = None,
    model: LatencyModel | None = None,
) -> LatencyMatrix:
    """Vectorised latency matrix with midpoint routing inflation.

    :func:`build_latency_matrix` draws a deterministic per-pair inflation
    factor from a named RNG substream — a Python loop over all pairs, which is
    minutes of interpreter time at planetary footprints (10k sites = 5·10^7
    pairs). This builder instead applies each pair class's *midpoint*
    inflation (``model.routing_inflation(cross, pair_key=None)``) uniformly,
    which vectorises to a handful of array ops over the chunked distance
    matrix. The midpoint model is the documented ``pair_key=None`` semantics
    of :meth:`LatencyModel.routing_inflation` — same mean, no per-pair jitter
    — so the two builders agree in expectation but not per entry; planetary
    specs use this one and say so.
    """
    model = model or LatencyModel()
    names = list(names)
    n = len(names)
    coords = np.asarray(coords, dtype=float)
    if coords.shape != (n, 2):
        raise ValueError(f"coords must have shape ({n}, 2), got {coords.shape}")
    distances = pairwise_distances_km(coords)
    intra = model.routing_inflation(cross_border=False)
    inter = model.routing_inflation(cross_border=True)
    if countries is not None:
        labels = np.asarray(list(countries), dtype=object)
        if labels.shape != (n,):
            raise ValueError(f"countries must have length {n}, got {labels.shape}")
        inflation = np.where(labels[:, None] != labels[None, :], inter, intra)
    else:
        inflation = intra
    matrix = np.where(distances > 0,
                      model.base_ms + distances / FIBER_KM_PER_MS * inflation,
                      0.0)
    np.fill_diagonal(matrix, 0.0)
    return LatencyMatrix(names=names, matrix_ms=matrix)
