"""Network substrate: geography, latency modelling, and site topology.

The paper uses WonderNetwork ping traces for pairwise city latencies. We model
one-way latency from geodesic distance (fibre propagation + routing inflation +
jitter), calibrated against the values the paper reports in Table 1, and expose
the same interfaces the placement policies need: pairwise latency matrices and
per-application-to-server latency lookups.
"""

from repro.network.geo import haversine_km, pairwise_distances_km, bounding_box
from repro.network.latency import (
    LatencyModel,
    LatencyMatrix,
    build_latency_matrix,
    latency_for_distance_km,
)
from repro.network.topology import SiteTopology, build_site_topology
from repro.network.traces import LatencyTrace, generate_latency_trace

__all__ = [
    "haversine_km",
    "pairwise_distances_km",
    "bounding_box",
    "LatencyModel",
    "LatencyMatrix",
    "build_latency_matrix",
    "latency_for_distance_km",
    "SiteTopology",
    "build_site_topology",
    "LatencyTrace",
    "generate_latency_trace",
]
