"""Geodesic helpers: haversine distances and bounding boxes.

All distances are great-circle (haversine) kilometres. The helpers are
vectorised: :func:`pairwise_distances_km` computes the full N×N matrix in NumPy
broadcasts rather than a Python double loop, which matters for the 496-site CDN
analysis. For planetary-scale footprints (10k+ sites) the broadcast temporaries
of a single full evaluation (five N×N float64 intermediates) dominate peak
memory, so the matrix is evaluated in row blocks: each block runs the exact
same elementwise expressions over a row slice, which is byte-identical to the
single-shot broadcast because every operation is elementwise in the row
dimension.
"""

from __future__ import annotations

import os

import numpy as np

#: Mean Earth radius in kilometres.
EARTH_RADIUS_KM: float = 6371.0088

#: Default row-block height for chunked pairwise evaluation. At 4096 rows the
#: largest transient is ~4096×N float64 — ~330 MB at N=10k instead of ~4 GB
#: per temporary for the full broadcast. Override per call via ``chunk_rows``
#: or process-wide via ``CARBON_EDGE_GEO_CHUNK_ROWS``.
DEFAULT_CHUNK_ROWS: int = 4096


def _resolved_chunk_rows(chunk_rows: int | None) -> int:
    if chunk_rows is None:
        raw = os.environ.get("CARBON_EDGE_GEO_CHUNK_ROWS", "")
        chunk_rows = int(raw) if raw else DEFAULT_CHUNK_ROWS
    if chunk_rows <= 0:
        raise ValueError(f"chunk_rows must be positive, got {chunk_rows}")
    return chunk_rows


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance in kilometres between two (lat, lon) points in degrees."""
    phi1, phi2 = np.radians(lat1), np.radians(lat2)
    dphi = phi2 - phi1
    dlmb = np.radians(lon2 - lon1)
    a = np.sin(dphi / 2.0) ** 2 + np.cos(phi1) * np.cos(phi2) * np.sin(dlmb / 2.0) ** 2
    return float(2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(a)))


def _haversine_block(a_block: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Haversine distances of one radian-coordinate row block against all of ``b``."""
    lat1 = a_block[:, 0][:, None]
    lon1 = a_block[:, 1][:, None]
    lat2 = b[:, 0][None, :]
    lon2 = b[:, 1][None, :]
    dphi = lat2 - lat1
    dlmb = lon2 - lon1
    s = np.sin(dphi / 2.0) ** 2 + np.cos(lat1) * np.cos(lat2) * np.sin(dlmb / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(np.clip(s, 0.0, 1.0)))


def pairwise_distances_km(coords: np.ndarray, coords_b: np.ndarray | None = None,
                          chunk_rows: int | None = None) -> np.ndarray:
    """Pairwise haversine distances between coordinate sets.

    Parameters
    ----------
    coords:
        (N, 2) array of [lat, lon] in degrees.
    coords_b:
        Optional (M, 2) array; when omitted the function returns the symmetric
        N×N matrix of ``coords`` against itself.
    chunk_rows:
        Row-block height for the chunked evaluation. Defaults to
        ``CARBON_EDGE_GEO_CHUNK_ROWS`` or :data:`DEFAULT_CHUNK_ROWS`. Results
        are byte-identical for every block height: each block evaluates the
        same elementwise expressions over its row slice.

    Returns
    -------
    numpy.ndarray
        (N, M) distance matrix in kilometres.
    """
    a = np.radians(np.atleast_2d(np.asarray(coords, dtype=float)))
    b = a if coords_b is None else np.radians(np.atleast_2d(np.asarray(coords_b, dtype=float)))
    if a.shape[1] != 2 or b.shape[1] != 2:
        raise ValueError("coordinate arrays must have shape (N, 2) of [lat, lon]")
    chunk = _resolved_chunk_rows(chunk_rows)
    n = a.shape[0]
    if n <= chunk:
        return _haversine_block(a, b)
    out = np.empty((n, b.shape[0]), dtype=float)
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        out[start:stop] = _haversine_block(a[start:stop], b)
    return out


def bounding_box(coords: np.ndarray) -> dict[str, float]:
    """Bounding box of a coordinate set with its width/height in kilometres.

    Mirrors the "807 km × 712 km" style annotations on the paper's Figure 2.
    """
    coords = np.atleast_2d(np.asarray(coords, dtype=float))
    lat_min, lat_max = float(coords[:, 0].min()), float(coords[:, 0].max())
    lon_min, lon_max = float(coords[:, 1].min()), float(coords[:, 1].max())
    mid_lat = 0.5 * (lat_min + lat_max)
    height_km = haversine_km(lat_min, lon_min, lat_max, lon_min)
    width_km = haversine_km(mid_lat, lon_min, mid_lat, lon_max)
    return {
        "lat_min": lat_min,
        "lat_max": lat_max,
        "lon_min": lon_min,
        "lon_max": lon_max,
        "width_km": width_km,
        "height_km": height_km,
    }
