"""Geodesic helpers: haversine distances and bounding boxes.

All distances are great-circle (haversine) kilometres. The helpers are
vectorised: :func:`pairwise_distances_km` computes the full N×N matrix in one
NumPy broadcast rather than a Python double loop, which matters for the
496-site CDN analysis.
"""

from __future__ import annotations

import numpy as np

#: Mean Earth radius in kilometres.
EARTH_RADIUS_KM: float = 6371.0088


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance in kilometres between two (lat, lon) points in degrees."""
    phi1, phi2 = np.radians(lat1), np.radians(lat2)
    dphi = phi2 - phi1
    dlmb = np.radians(lon2 - lon1)
    a = np.sin(dphi / 2.0) ** 2 + np.cos(phi1) * np.cos(phi2) * np.sin(dlmb / 2.0) ** 2
    return float(2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(a)))


def pairwise_distances_km(coords: np.ndarray, coords_b: np.ndarray | None = None) -> np.ndarray:
    """Pairwise haversine distances between coordinate sets.

    Parameters
    ----------
    coords:
        (N, 2) array of [lat, lon] in degrees.
    coords_b:
        Optional (M, 2) array; when omitted the function returns the symmetric
        N×N matrix of ``coords`` against itself.

    Returns
    -------
    numpy.ndarray
        (N, M) distance matrix in kilometres.
    """
    a = np.radians(np.atleast_2d(np.asarray(coords, dtype=float)))
    b = a if coords_b is None else np.radians(np.atleast_2d(np.asarray(coords_b, dtype=float)))
    if a.shape[1] != 2 or b.shape[1] != 2:
        raise ValueError("coordinate arrays must have shape (N, 2) of [lat, lon]")
    lat1 = a[:, 0][:, None]
    lon1 = a[:, 1][:, None]
    lat2 = b[:, 0][None, :]
    lon2 = b[:, 1][None, :]
    dphi = lat2 - lat1
    dlmb = lon2 - lon1
    s = np.sin(dphi / 2.0) ** 2 + np.cos(lat1) * np.cos(lat2) * np.sin(dlmb / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(np.clip(s, 0.0, 1.0)))


def bounding_box(coords: np.ndarray) -> dict[str, float]:
    """Bounding box of a coordinate set with its width/height in kilometres.

    Mirrors the "807 km × 712 km" style annotations on the paper's Figure 2.
    """
    coords = np.atleast_2d(np.asarray(coords, dtype=float))
    lat_min, lat_max = float(coords[:, 0].min()), float(coords[:, 0].max())
    lon_min, lon_max = float(coords[:, 1].min()), float(coords[:, 1].max())
    mid_lat = 0.5 * (lat_min + lat_max)
    height_km = haversine_km(lat_min, lon_min, lat_max, lon_min)
    width_km = haversine_km(mid_lat, lon_min, mid_lat, lon_max)
    return {
        "lat_min": lat_min,
        "lat_max": lat_max,
        "lon_min": lon_min,
        "lon_max": lon_max,
        "width_km": width_km,
        "height_km": height_km,
    }
