"""Time-varying latency traces.

The static latency matrix captures the mean one-way latency between sites; the
testbed experiments (Figure 9) additionally see request-level variation. A
:class:`LatencyTrace` models that variation as a mean plus bounded noise, with
an optional diurnal congestion component (slightly higher latency during local
busy hours).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import substream


@dataclass
class LatencyTrace:
    """Per-request one-way latency samples between one site pair."""

    pair: tuple[str, str]
    mean_ms: float
    samples_ms: np.ndarray

    def __post_init__(self) -> None:
        self.samples_ms = np.asarray(self.samples_ms, dtype=float)
        if self.samples_ms.ndim != 1 or len(self.samples_ms) == 0:
            raise ValueError("samples_ms must be a non-empty 1-D array")
        if np.any(self.samples_ms < 0):
            raise ValueError("latency samples must be non-negative")

    def __len__(self) -> int:
        return len(self.samples_ms)

    def percentile(self, q: float) -> float:
        """The q-th percentile latency (q in [0, 100])."""
        return float(np.percentile(self.samples_ms, q))

    def mean(self) -> float:
        """Mean sampled latency."""
        return float(self.samples_ms.mean())

    def max(self) -> float:
        """Maximum sampled latency."""
        return float(self.samples_ms.max())


def generate_latency_trace(
    pair: tuple[str, str],
    mean_one_way_ms: float,
    n_samples: int,
    jitter_fraction: float = 0.12,
    diurnal_fraction: float = 0.05,
    seed: int = 0,
) -> LatencyTrace:
    """Generate per-request latency samples around a mean one-way latency.

    Parameters
    ----------
    pair:
        (source, destination) names; used to seed the deterministic stream.
    mean_one_way_ms:
        Mean one-way latency between the pair.
    n_samples:
        Number of request samples to generate (spread uniformly over 24 h).
    jitter_fraction:
        Relative standard deviation of the log-normal jitter.
    diurnal_fraction:
        Relative amplitude of the diurnal congestion component.
    seed:
        Root seed.
    """
    if mean_one_way_ms < 0:
        raise ValueError("mean_one_way_ms must be >= 0")
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    rng = substream(seed, "latency-trace", *pair)
    hours = np.linspace(0.0, 24.0, n_samples, endpoint=False)
    diurnal = 1.0 + diurnal_fraction * np.sin(2.0 * np.pi * (hours - 14.0) / 24.0)
    sigma = np.sqrt(np.log(1.0 + jitter_fraction**2))
    jitter = rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma, size=n_samples)
    samples = np.clip(mean_one_way_ms * diurnal * jitter, 0.0, None)
    return LatencyTrace(pair=pair, mean_ms=float(mean_one_way_ms), samples_ms=samples)
