"""Site topology over a latency matrix, vectorised.

The topology view is used for reachability analysis (which edge sites can serve
an application within its latency SLO) and for reporting; placement itself only
needs the latency matrix. The topology is stored as a boolean adjacency mask
over the latency matrix so restriction and connectivity are NumPy array
operations (a row-mask BFS) rather than Python loops over site pairs — at
planetary footprints (10k+ sites) the old per-pair edge loop is minutes of
Python time. A :class:`networkx.Graph` view is still available through the
lazily built :attr:`SiteTopology.graph` property for reporting and ad-hoc
queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.latency import LatencyMatrix


@dataclass
class SiteTopology:
    """An undirected graph of edge sites with latency-weighted edges.

    ``adjacency`` is a symmetric boolean matrix (no self-loops) over
    ``names``; edge weights are read from ``matrix_ms``.
    """

    names: list[str]
    matrix_ms: np.ndarray
    adjacency: np.ndarray
    zone_by_site: dict[str, str] | None = None
    _graph: object = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.names = list(self.names)
        n = len(self.names)
        self.matrix_ms = np.asarray(self.matrix_ms, dtype=float)
        self.adjacency = np.asarray(self.adjacency, dtype=bool)
        if self.matrix_ms.shape != (n, n) or self.adjacency.shape != (n, n):
            raise ValueError(
                f"matrix/adjacency shapes {self.matrix_ms.shape}/{self.adjacency.shape} "
                f"do not match {n} names")
        if np.any(self.adjacency != self.adjacency.T):
            raise ValueError("adjacency must be symmetric")
        if np.any(np.diag(self.adjacency)):
            raise ValueError("adjacency must not contain self-loops")
        self._index = {name: i for i, name in enumerate(self.names)}
        if len(self._index) != n:
            raise ValueError("site names must be unique")

    def _index_of(self, site: str) -> int:
        try:
            return self._index[site]
        except KeyError:
            raise KeyError(f"unknown site {site!r}") from None

    @property
    def graph(self):
        """Lazily built :class:`networkx.Graph` view (nodes carry ``zone_id``)."""
        if self._graph is None:
            import networkx as nx

            g = nx.Graph()
            for name in self.names:
                attrs = {"zone_id": self.zone_by_site.get(name)} if self.zone_by_site else {}
                g.add_node(name, **attrs)
            rows, cols = np.nonzero(np.triu(self.adjacency, k=1))
            for i, j in zip(rows.tolist(), cols.tolist()):
                g.add_edge(self.names[i], self.names[j],
                           latency_ms=float(self.matrix_ms[i, j]))
            self._graph = g
        return self._graph

    @property
    def n_sites(self) -> int:
        """Number of sites in the topology."""
        return len(self.names)

    def sites(self) -> list[str]:
        """Site names in insertion order."""
        return list(self.names)

    def n_edges(self) -> int:
        """Number of undirected edges."""
        return int(self.adjacency.sum()) // 2

    def latency_ms(self, a: str, b: str) -> float:
        """One-way latency attribute of the edge between two sites."""
        i, j = self._index_of(a), self._index_of(b)
        if a == b:
            return 0.0
        if not self.adjacency[i, j]:
            raise KeyError(f"no edge between {a!r} and {b!r}")
        return float(self.matrix_ms[i, j])

    def neighbors_within(self, site: str, max_one_way_ms: float) -> list[str]:
        """Sites adjacent to ``site`` whose edge latency is within the bound."""
        i = self._index_of(site)
        hits = self.adjacency[i] & (self.matrix_ms[i] <= max_one_way_ms)
        return [self.names[j] for j in np.flatnonzero(hits)]

    def restricted(self, max_one_way_ms: float) -> "SiteTopology":
        """Topology containing only edges within the latency bound."""
        return SiteTopology(
            names=self.names,
            matrix_ms=self.matrix_ms,
            adjacency=self.adjacency & (self.matrix_ms <= max_one_way_ms),
            zone_by_site=self.zone_by_site,
        )

    def connected_components(self) -> list[set[str]]:
        """Connected components (as sets of site names), by lowest member index.

        A frontier BFS over adjacency rows: each sweep ORs the rows of the
        current frontier, so one component costs O(depth × n) row operations
        instead of a Python walk over every edge.
        """
        n = self.n_sites
        unvisited = np.ones(n, dtype=bool)
        components: list[set[str]] = []
        for start in range(n):
            if not unvisited[start]:
                continue
            member = np.zeros(n, dtype=bool)
            frontier = np.zeros(n, dtype=bool)
            frontier[start] = True
            while frontier.any():
                member |= frontier
                unvisited &= ~frontier
                frontier = self.adjacency[frontier].any(axis=0) & unvisited
            components.append({self.names[j] for j in np.flatnonzero(member)})
        return components

    def is_connected(self) -> bool:
        """Whether every site can reach every other site through the graph."""
        if self.n_sites == 0:
            return False
        components = self.connected_components()
        return len(components) == 1 and len(components[0]) == self.n_sites

    def average_degree(self) -> float:
        """Average node degree."""
        if self.n_sites == 0:
            return 0.0
        return 2.0 * self.n_edges() / self.n_sites


def build_site_topology(latency: LatencyMatrix,
                        zone_by_site: dict[str, str] | None = None) -> SiteTopology:
    """Build a complete topology from a latency matrix.

    Each site carries its carbon zone (when provided) and every pair of sites
    is connected by an edge weighted with its one-way latency.
    """
    n = len(latency.names)
    return SiteTopology(
        names=list(latency.names),
        matrix_ms=latency.matrix_ms,
        adjacency=~np.eye(n, dtype=bool),
        zone_by_site=dict(zone_by_site) if zone_by_site else None,
    )
