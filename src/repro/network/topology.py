"""Site topology graph built on networkx.

The topology view is used for reachability analysis (which edge sites can serve
an application within its latency SLO) and for reporting; placement itself only
needs the latency matrix, but the graph form makes neighbourhood queries and
connectivity checks convenient.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.network.latency import LatencyMatrix


@dataclass
class SiteTopology:
    """An undirected graph of edge sites with latency-weighted edges."""

    graph: nx.Graph

    @property
    def n_sites(self) -> int:
        """Number of sites in the topology."""
        return self.graph.number_of_nodes()

    def sites(self) -> list[str]:
        """Site names in insertion order."""
        return list(self.graph.nodes)

    def latency_ms(self, a: str, b: str) -> float:
        """One-way latency attribute of the edge between two sites."""
        if a == b:
            return 0.0
        if not self.graph.has_edge(a, b):
            raise KeyError(f"no edge between {a!r} and {b!r}")
        return float(self.graph.edges[a, b]["latency_ms"])

    def neighbors_within(self, site: str, max_one_way_ms: float) -> list[str]:
        """Sites adjacent to ``site`` whose edge latency is within the bound."""
        if site not in self.graph:
            raise KeyError(f"unknown site {site!r}")
        return [n for n in self.graph.neighbors(site)
                if self.graph.edges[site, n]["latency_ms"] <= max_one_way_ms]

    def restricted(self, max_one_way_ms: float) -> "SiteTopology":
        """Topology containing only edges within the latency bound."""
        g = nx.Graph()
        g.add_nodes_from(self.graph.nodes(data=True))
        for a, b, data in self.graph.edges(data=True):
            if data["latency_ms"] <= max_one_way_ms:
                g.add_edge(a, b, **data)
        return SiteTopology(graph=g)

    def connected_components(self) -> list[set[str]]:
        """Connected components (as sets of site names)."""
        return [set(c) for c in nx.connected_components(self.graph)]

    def is_connected(self) -> bool:
        """Whether every site can reach every other site through the graph."""
        return self.n_sites > 0 and nx.is_connected(self.graph)

    def average_degree(self) -> float:
        """Average node degree."""
        if self.n_sites == 0:
            return 0.0
        return 2.0 * self.graph.number_of_edges() / self.n_sites


def build_site_topology(latency: LatencyMatrix,
                        zone_by_site: dict[str, str] | None = None) -> SiteTopology:
    """Build a complete topology graph from a latency matrix.

    Each node carries its carbon zone (when provided) as a node attribute and
    every pair of sites is connected by an edge weighted with its one-way
    latency.
    """
    g = nx.Graph()
    for name in latency.names:
        attrs = {"zone_id": zone_by_site.get(name)} if zone_by_site else {}
        g.add_node(name, **attrs)
    matrix = latency.matrix_ms
    n = len(latency.names)
    for i in range(n):
        for j in range(i + 1, n):
            g.add_edge(latency.names[i], latency.names[j],
                       latency_ms=float(matrix[i, j]))
    return SiteTopology(graph=g)
