"""Deterministic named random substreams.

Every source of randomness in the reproduction (synthetic traces, arrival
processes, jitter, workload mixes) pulls its generator from :func:`substream`
so that experiments are reproducible bit-for-bit from a single root seed and
independent of the order in which components are constructed.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Root seed used by the experiments unless explicitly overridden.
DEFAULT_SEED: int = 20250720  # HPDC '25 start date


def spawn_seed(seed: int, *names: object) -> int:
    """Derive a child seed from ``seed`` and a sequence of stream names.

    The derivation hashes the names with SHA-256, so streams with different
    names are statistically independent and insensitive to call order.
    """
    h = hashlib.sha256()
    h.update(str(int(seed)).encode("utf-8"))
    for name in names:
        h.update(b"\x1f")
        h.update(str(name).encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "little")


def substream(seed: int, *names: object) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for the named substream."""
    return np.random.default_rng(spawn_seed(seed, *names))
