"""Simulation-calendar helpers.

The trace year is a non-leap year of 8760 hours; hour ``0`` is January 1st,
00:00 local time. All traces in :mod:`repro.carbon` and the CDN simulator use
this hour-of-year indexing, so the helpers here convert between hour indices,
days, and months without depending on :mod:`datetime`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.units import HOURS_PER_YEAR

#: Days per month for the non-leap trace year.
DAYS_PER_MONTH: tuple[int, ...] = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)

#: English month abbreviations, indexable by month number - 1.
MONTH_NAMES: tuple[str, ...] = (
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
)

#: Hour-of-year at which each month starts (length 13; last entry is 8760).
MONTH_START_HOURS: tuple[int, ...] = tuple(
    int(x) for x in np.concatenate([[0], np.cumsum(np.asarray(DAYS_PER_MONTH) * 24)])
)


def hour_of_day(hour_of_year: int | np.ndarray) -> int | np.ndarray:
    """Hour within the day (0–23) for an hour-of-year index."""
    return np.asarray(hour_of_year) % 24 if isinstance(hour_of_year, np.ndarray) else int(hour_of_year) % 24


def day_of_year(hour_of_year: int | np.ndarray) -> int | np.ndarray:
    """Zero-based day-of-year for an hour-of-year index."""
    return np.asarray(hour_of_year) // 24 if isinstance(hour_of_year, np.ndarray) else int(hour_of_year) // 24


def month_of_hour(hour_of_year: int) -> int:
    """One-based month number (1–12) containing the given hour-of-year."""
    h = int(hour_of_year) % HOURS_PER_YEAR
    month = int(np.searchsorted(MONTH_START_HOURS, h, side="right"))
    return month


def hours_in_month(month: int) -> int:
    """Number of hours in the one-based month ``month``."""
    if not 1 <= month <= 12:
        raise ValueError(f"month must be in 1..12, got {month}")
    return DAYS_PER_MONTH[month - 1] * 24


def month_slice(month: int) -> slice:
    """Slice over hour-of-year indices covered by the one-based month ``month``."""
    if not 1 <= month <= 12:
        raise ValueError(f"month must be in 1..12, got {month}")
    return slice(MONTH_START_HOURS[month - 1], MONTH_START_HOURS[month])


@dataclass
class SimClock:
    """A simple simulation clock tracking seconds since the start of the trace year.

    The discrete-event simulator advances this clock; traces are indexed by
    ``hour`` which is derived from the current time.
    """

    now_seconds: float = 0.0
    start_hour_of_year: int = 0
    _history: list[float] = field(default_factory=list, repr=False)

    @property
    def hour_of_year(self) -> int:
        """Hour-of-year index corresponding to the current simulation time."""
        return (self.start_hour_of_year + int(self.now_seconds // 3600)) % HOURS_PER_YEAR

    @property
    def hour_of_day(self) -> int:
        """Hour within the current simulated day (0–23)."""
        return hour_of_day(self.hour_of_year)

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` (must be non-negative) and return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time ({seconds})")
        self.now_seconds += float(seconds)
        self._history.append(self.now_seconds)
        return self.now_seconds

    def advance_to(self, timestamp: float) -> float:
        """Advance the clock to an absolute timestamp (monotonically non-decreasing)."""
        if timestamp < self.now_seconds:
            raise ValueError(
                f"cannot move clock backwards: now={self.now_seconds}, target={timestamp}"
            )
        self.now_seconds = float(timestamp)
        self._history.append(self.now_seconds)
        return self.now_seconds

    def reset(self) -> None:
        """Reset the clock to time zero and clear its history."""
        self.now_seconds = 0.0
        self._history.clear()
