"""Argument-validation helpers shared across the library.

These raise :class:`ValueError` with a consistent message format so tests can
assert on failure modes uniformly.
"""

from __future__ import annotations

from typing import Any


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def require_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive and return it as a float."""
    v = float(value)
    if not v > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return v


def require_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is >= 0 and return it as a float."""
    v = float(value)
    if v < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return v


def require_in_range(value: float, low: float, high: float, name: str) -> float:
    """Validate that ``value`` lies in the inclusive range [low, high]."""
    v = float(value)
    if not (low <= v <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return v


def require_probability(value: float, name: str) -> float:
    """Validate that ``value`` is a probability in [0, 1]."""
    return require_in_range(value, 0.0, 1.0, name)


def require_type(value: Any, expected: type | tuple[type, ...], name: str) -> Any:
    """Validate that ``value`` is an instance of ``expected`` and return it."""
    if not isinstance(value, expected):
        raise TypeError(f"{name} must be {expected!r}, got {type(value)!r}")
    return value
