"""Shared utilities for the CarbonEdge reproduction.

The utilities here are deliberately dependency-free (NumPy only) and are used by
every other subpackage:

* :mod:`repro.utils.units` — unit conversions (energy, power, carbon, distance, time).
* :mod:`repro.utils.rng` — deterministic, named random substreams.
* :mod:`repro.utils.timeutils` — the simulation calendar (hour-of-year arithmetic).
* :mod:`repro.utils.validation` — small argument-validation helpers.
"""

from repro.utils.units import (
    JOULES_PER_KWH,
    HOURS_PER_YEAR,
    joules_to_kwh,
    kwh_to_joules,
    watts_to_kw,
    grams_to_tonnes,
    tonnes_to_grams,
    ms_to_seconds,
    seconds_to_ms,
    km_to_m,
    m_to_km,
)
from repro.utils.rng import substream, spawn_seed
from repro.utils.timeutils import (
    SimClock,
    hour_of_day,
    day_of_year,
    month_of_hour,
    hours_in_month,
    month_slice,
    MONTH_NAMES,
)
from repro.utils.validation import (
    require,
    require_positive,
    require_non_negative,
    require_in_range,
    require_probability,
)

__all__ = [
    "JOULES_PER_KWH",
    "HOURS_PER_YEAR",
    "joules_to_kwh",
    "kwh_to_joules",
    "watts_to_kw",
    "grams_to_tonnes",
    "tonnes_to_grams",
    "ms_to_seconds",
    "seconds_to_ms",
    "km_to_m",
    "m_to_km",
    "substream",
    "spawn_seed",
    "SimClock",
    "hour_of_day",
    "day_of_year",
    "month_of_hour",
    "hours_in_month",
    "month_slice",
    "MONTH_NAMES",
    "require",
    "require_positive",
    "require_non_negative",
    "require_in_range",
    "require_probability",
]
