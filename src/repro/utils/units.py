"""Unit conversions used throughout the CarbonEdge reproduction.

Conventions
-----------
* Energy is tracked internally in **joules** (J); carbon intensity is expressed in
  **g CO2eq / kWh** to match Electricity Maps and the paper, so emissions are
  ``joules_to_kwh(E) * intensity`` grams.
* Power is in **watts** (W).
* Latency is in **milliseconds** (ms), one-way unless stated otherwise.
* Distance is in **kilometres** (km).
* Simulation time is in **hours** for traces and **seconds** inside the
  discrete-event simulator.
"""

from __future__ import annotations

import numpy as np

#: Joules in one kilowatt-hour.
JOULES_PER_KWH: float = 3.6e6

#: Number of hours in the (non-leap) trace year used by the synthetic datasets.
HOURS_PER_YEAR: int = 8760


def joules_to_kwh(joules: float | np.ndarray) -> float | np.ndarray:
    """Convert energy in joules to kilowatt-hours."""
    return np.asarray(joules, dtype=float) / JOULES_PER_KWH if isinstance(joules, np.ndarray) else float(joules) / JOULES_PER_KWH


def kwh_to_joules(kwh: float | np.ndarray) -> float | np.ndarray:
    """Convert energy in kilowatt-hours to joules."""
    return np.asarray(kwh, dtype=float) * JOULES_PER_KWH if isinstance(kwh, np.ndarray) else float(kwh) * JOULES_PER_KWH


def watts_to_kw(watts: float) -> float:
    """Convert power in watts to kilowatts."""
    return float(watts) / 1e3


def grams_to_tonnes(grams: float) -> float:
    """Convert mass in grams to metric tonnes."""
    return float(grams) / 1e6


def tonnes_to_grams(tonnes: float) -> float:
    """Convert mass in metric tonnes to grams."""
    return float(tonnes) * 1e6


def ms_to_seconds(ms: float) -> float:
    """Convert milliseconds to seconds."""
    return float(ms) / 1e3


def seconds_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return float(seconds) * 1e3


def km_to_m(km: float) -> float:
    """Convert kilometres to metres."""
    return float(km) * 1e3


def m_to_km(m: float) -> float:
    """Convert metres to kilometres."""
    return float(m) / 1e3


def energy_to_emissions(joules: float, intensity_g_per_kwh: float) -> float:
    """Operational emissions (grams CO2eq) of consuming ``joules`` at a given intensity.

    Parameters
    ----------
    joules:
        Energy consumed, in joules.
    intensity_g_per_kwh:
        Grid carbon intensity in g CO2eq per kWh.
    """
    return joules_to_kwh(joules) * float(intensity_g_per_kwh)
