"""Table 1: pairwise one-way network latency within Florida and Central Europe.

The paper lists the one-way latencies between every pair of cities in the two
regional deployments (a few ms within Florida, up to ~16 ms across Central
Europe). The runner returns the full pairwise matrices plus summary statistics.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.datasets.regions import CENTRAL_EU, FLORIDA
from repro.experiments.common import region_latency
from repro.experiments.registry import ExperimentSpec, RunContext, register


def run() -> dict[str, object]:
    """Pairwise one-way latency matrices for the two Table 1 regions."""
    out: dict[str, object] = {}
    for region in (FLORIDA, CENTRAL_EU):
        matrix = region_latency(region.name)
        pairs = {}
        for i, a in enumerate(matrix.names):
            for b in matrix.names[i + 1:]:
                pairs[(a, b)] = matrix.one_way_ms(a, b)
        out[region.name] = {
            "names": list(matrix.names),
            "pairs": pairs,
            "mean_ms": matrix.mean_off_diagonal(),
            "max_ms": float(matrix.matrix_ms.max()),
        }
    return out


def report(result: dict[str, object]) -> str:
    """Render Table 1 as text."""
    parts = []
    for region_name, data in result.items():
        rows = [{"pair": f"{a} - {b}", "one_way_ms": round(v, 2)}
                for (a, b), v in data["pairs"].items()]
        parts.append(format_table(
            rows, title=f"Table 1 ({region_name}): mean {data['mean_ms']:.2f} ms, "
                        f"max {data['max_ms']:.2f} ms"))
    return "\n\n".join(parts)


def compute(spec: ExperimentSpec, ctx: RunContext) -> dict[str, object]:
    """Registry entry point: run this experiment with the resolved parameters."""
    return run(**ctx.params)


SPEC = register(ExperimentSpec(
    name="table1",
    title="Pairwise one-way latency within Florida and Central Europe",
    kind="table",
    compute=compute,
    report=report,
    schema=("Florida", "Central EU"),
))


if __name__ == "__main__":
    print(report(run()))
