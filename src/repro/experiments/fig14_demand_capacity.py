"""Figure 14: effect of demand and capacity distributions on carbon savings.

The paper compares three scenarios — homogeneous demand/capacity, population-
proportional demand, and population-proportional capacity — and finds that in
the US, population-driven skew can reduce savings by ~6% (high-carbon,
high-population sites have no green neighbours), while in Europe the effect is
under 1.6% with latency changes below 0.6 ms.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments.common import EXPERIMENT_SEED
from repro.experiments.registry import ExperimentSpec, RunContext, SweepAxis, register
from repro.simulator.cdn import run_cdn_simulation
from repro.simulator.scenario import CDNScenario

#: The three scenarios of Figure 14.
SCENARIOS: tuple[tuple[str, str, str], ...] = (
    ("Homo", "homogeneous", "homogeneous"),
    ("Demand", "population", "homogeneous"),
    ("Capacity", "homogeneous", "population"),
)


def run(seed: int = EXPERIMENT_SEED, n_epochs: int = 4, max_sites: int | None = None,
        continents: tuple[str, ...] = ("US", "EU")) -> dict[str, object]:
    """Carbon savings and latency increases per scenario and continent."""
    rows = []
    for continent in continents:
        for label, demand, capacity in SCENARIOS:
            scenario = CDNScenario(continent=continent, demand=demand, capacity=capacity,
                                   n_epochs=n_epochs, max_sites=max_sites,
                                   servers_per_site=2, seed=seed)
            result = run_cdn_simulation(scenario)
            rows.append({
                "continent": continent,
                "scenario": label,
                "carbon_savings_pct": result.carbon_savings_pct("CarbonEdge"),
                "latency_increase_rtt_ms": result.mean_latency_increase_rtt_ms("CarbonEdge"),
                "unplaced": result.total_unplaced("CarbonEdge"),
            })
    return {"rows": rows}


def report(result: dict[str, object]) -> str:
    """Render the Figure 14 rows."""
    rows = [{k: (round(v, 1) if isinstance(v, float) else v) for k, v in row.items()}
            for row in result["rows"]]
    return format_table(rows, title="Figure 14: effect of demand and capacity distributions")


def compute(spec: ExperimentSpec, ctx: RunContext) -> dict[str, object]:
    """Registry entry point: run this experiment with the resolved parameters."""
    return run(**ctx.params)


SPEC = register(ExperimentSpec(
    name="fig14",
    title="Effect of demand and capacity distributions on carbon savings",
    kind="figure",
    compute=compute,
    report=report,
    params=dict(seed=EXPERIMENT_SEED, n_epochs=4, max_sites=None,
                continents=("US", "EU")),
    smoke_params=dict(n_epochs=1, max_sites=8, continents=("EU",)),
    sweep=(SweepAxis("continents"),),
    schema=("rows",),
))


if __name__ == "__main__":
    print(report(run()))
