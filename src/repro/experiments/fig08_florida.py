"""Figure 8: carbon intensity and per-application emissions across Florida.

The paper runs the CPU-based application for 24 hours on the Florida testbed
and shows (a) the hourly carbon intensity of the five zones, (b) hourly
emissions under the Latency-aware policy — which mirror each zone's intensity —
and (c) hourly emissions under CarbonEdge, which places every application in
the greenest zone (Miami) so all five emission curves collapse onto one.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_series, format_table
from repro.core.policies.carbon_edge import CarbonEdgePolicy
from repro.core.policies.latency_aware import LatencyAwarePolicy
from repro.datasets.regions import FLORIDA
from repro.experiments.common import EXPERIMENT_SEED
from repro.experiments.registry import ExperimentSpec, RunContext, register
from repro.testbed.emulation import build_testbed, run_testbed_experiment

#: Hour-of-year at which the 24-hour run starts (a mid-July day).
DEFAULT_START_HOUR: int = (31 + 28 + 31 + 30 + 31 + 30 + 14) * 24


def run(seed: int = EXPERIMENT_SEED, hours: int = 24,
        start_hour: int = DEFAULT_START_HOUR, workload: str = "Sci",
        request_rate_rps: float = 10.0) -> dict[str, object]:
    """Hourly intensity and per-app emission series for both policies."""
    testbed = build_testbed(FLORIDA, seed=seed)
    intensity = {
        site: testbed.carbon.trace(testbed.fleet.datacenter(site).zone_id).window(start_hour, hours)
        for site in testbed.sites()
    }
    results = {}
    for policy in (LatencyAwarePolicy(), CarbonEdgePolicy()):
        results[policy.name] = run_testbed_experiment(
            testbed, policy, workload=workload, hours=hours, start_hour=start_hour,
            request_rate_rps=request_rate_rps)
    return {"intensity": intensity, "runs": results, "hours": hours,
            "start_hour": start_hour}


def report(result: dict[str, object]) -> str:
    """Render the Figure 8 series and totals."""
    parts = [format_series({k: v for k, v in result["intensity"].items()},
                           title="Figure 8a: hourly carbon intensity (g CO2eq/kWh)")]
    for name, run_result in result["runs"].items():
        totals = run_result.emissions_by_app()
        rows = [{"app": a, "hosted_at": run_result.hosting_site.get(a, "-"),
                 "total_emissions_g": round(v, 1)} for a, v in totals.items()]
        parts.append(format_table(rows, title=f"Figure 8: {name} per-application emissions"))
    la = result["runs"]["Latency-aware"].total_emissions_g
    ce = result["runs"]["CarbonEdge"].total_emissions_g
    parts.append(f"Total: Latency-aware {la:.1f} g vs CarbonEdge {ce:.1f} g "
                 f"({(la - ce) / la * 100:.1f}% savings)")
    return "\n\n".join(parts)


def compute(spec: ExperimentSpec, ctx: RunContext) -> dict[str, object]:
    """Registry entry point: run this experiment with the resolved parameters."""
    return run(**ctx.params)


SPEC = register(ExperimentSpec(
    name="fig08",
    title="Carbon intensity and per-application emissions across Florida",
    kind="figure",
    compute=compute,
    report=report,
    params=dict(seed=EXPERIMENT_SEED, hours=24, start_hour=DEFAULT_START_HOUR,
                workload="Sci", request_rate_rps=10.0),
    smoke_params=dict(hours=6),
    # The raw testbed runs hold per-request response-time arrays; the
    # reproducible artifact keeps the hourly intensity series.
    drop_keys=("runs",),
    schema=("intensity", "hours", "start_hour"),
))


if __name__ == "__main__":
    print(report(run()))
