"""Figure 15: carbon and energy across heterogeneous edge resources and policies.

A mix of applications (EfficientNetB0, ResNet50, YOLOv4) is served on four
device pools — all Orin Nano, all NVIDIA A2, all GTX 1080, and a heterogeneous
mix — under the four policies. The paper's findings: every carbon-aware policy
beats Latency-aware; the Orin Nano pool uses ~95% less energy than the GTX 1080
pool; and with heterogeneous resources CarbonEdge beats Latency-aware,
Intensity-aware, and Energy-aware by ~98%, ~79%, and ~63% respectively by
jointly exploiting energy efficiency, carbon intensity, and processing speed.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments.common import EXPERIMENT_SEED
from repro.experiments.registry import ExperimentSpec, RunContext, SweepAxis, register
from repro.simulator.cdn import run_cdn_simulation
from repro.simulator.scenario import CDNScenario

#: The four device pools of Figure 15.
DEVICE_POOLS: tuple[tuple[str, tuple[str, ...] | None], ...] = (
    ("Orin Nano", None),
    ("NVIDIA A2", None),
    ("GTX 1080", None),
    ("Hetero.", ("Orin Nano", "NVIDIA A2", "GTX 1080")),
)

#: Workload mix used by the heterogeneity study.
WORKLOAD_MIX: dict[str, float] = {"EfficientNetB0": 0.4, "ResNet50": 0.4, "YOLOv4": 0.2}

#: Pool names in evaluation order (the shardable axis of this experiment).
POOL_NAMES: tuple[str, ...] = tuple(name for name, _ in DEVICE_POOLS)


def run(seed: int = EXPERIMENT_SEED, continent: str = "EU", n_epochs: int = 3,
        max_sites: int | None = 40, apps_per_site_per_epoch: float = 2.0,
        pools: tuple[str, ...] = POOL_NAMES) -> dict[str, object]:
    """Carbon and energy per device pool and policy."""
    pool_mix = dict(DEVICE_POOLS)
    unknown = [p for p in pools if p not in pool_mix]
    if unknown:
        raise ValueError(f"unknown device pool(s) {unknown}; have {list(pool_mix)}")
    rows = []
    per_pool: dict[str, dict[str, dict[str, float]]] = {}
    for pool_name in pools:
        mix = pool_mix[pool_name]
        scenario = CDNScenario(
            continent=continent,
            n_epochs=n_epochs,
            max_sites=max_sites,
            apps_per_site_per_epoch=apps_per_site_per_epoch,
            workload_mix=dict(WORKLOAD_MIX),
            accelerator=pool_name if mix is None else "NVIDIA A2",
            accelerator_mix=mix,
            seed=seed,
        )
        result = run_cdn_simulation(scenario)
        per_pool[pool_name] = {}
        for policy in result.policies():
            carbon = result.total_carbon_g(policy)
            energy = result.total_energy_j(policy)
            per_pool[pool_name][policy] = {"carbon_g": carbon, "energy_j": energy}
            rows.append({
                "pool": pool_name,
                "policy": policy,
                "carbon_g": carbon,
                "energy_MJ": energy / 1e6,
                "savings_vs_latency_pct": result.carbon_savings_pct(policy),
            })
    return {"rows": rows, "per_pool": per_pool}


def report(result: dict[str, object]) -> str:
    """Render the Figure 15 rows."""
    rows = [{k: (round(v, 2) if isinstance(v, float) else v) for k, v in row.items()}
            for row in result["rows"]]
    return format_table(rows, title="Figure 15: heterogeneity study "
                                    "(paper: CarbonEdge beats Latency/Intensity/Energy-aware "
                                    "by ~98%/79%/63% on the heterogeneous pool)")


def compute(spec: ExperimentSpec, ctx: RunContext) -> dict[str, object]:
    """Registry entry point: run this experiment with the resolved parameters."""
    return run(**ctx.params)


SPEC = register(ExperimentSpec(
    name="fig15",
    title="Carbon and energy across heterogeneous edge resources and policies",
    kind="figure",
    compute=compute,
    report=report,
    params=dict(seed=EXPERIMENT_SEED, continent="EU", n_epochs=3, max_sites=40,
                apps_per_site_per_epoch=2.0, pools=POOL_NAMES),
    smoke_params=dict(n_epochs=1, max_sites=6, pools=("Orin Nano", "Hetero.")),
    sweep=(SweepAxis("pools"),),
    schema=("rows", "per_pool"),
))


if __name__ == "__main__":
    print(report(run()))
