"""Backend tournament: heuristic vs. anytime-exact solver comparison.

Sweeps every solver backend of the anytime tier — the deterministic
``heuristic``, branch-and-bound ``bnb``, and the optional OR-Tools backends
``cpsat`` / ``milp`` — over identical fig17-style instances at several sizes,
recording per arm the placement objective, wall-clock solve time, the best
bound the backend proved, and the resulting optimality gap. The rows quantify
the heuristic-vs-exact gap the registry's ``auto`` rule trades against speed,
and double as the acceptance check for the OR-Tools tier: in an environment
without ``ortools`` the cpsat/milp arms fall back to the heuristic (recorded
via ``resolved_backend`` and the ``fell_back`` flag) instead of failing, so
the tournament runs end-to-end everywhere.

Every arm goes through the registry front door (:func:`repro.solver.solve`)
on purpose: the recorded time includes the baseline/fallback machinery a real
caller pays for, and the recorded solution is exactly what that caller would
receive.
"""

from __future__ import annotations

import time
import warnings

from repro.analysis.reporting import format_table
from repro.core.validation import validate_solution
from repro.experiments.common import EXPERIMENT_SEED
from repro.experiments.fig17_scalability import _build_problem
from repro.experiments.registry import ExperimentSpec, RunContext, register
from repro.solver import solve
from repro.solver.backends.ortools_exact import OrToolsUnavailableWarning

#: (n_servers, n_apps) instance sizes swept. Small enough that the exact
#: backends close the gap within the default budget, large enough that the
#: heuristic's speed advantage is visible.
TOURNAMENT_SIZES: tuple[tuple[int, int], ...] = ((40, 20), (100, 50), (200, 80))

#: Backends entered in the tournament. The OR-Tools arms degrade to the
#: heuristic with a structured warning when the optional dependency is absent.
TOURNAMENT_BACKENDS: tuple[str, ...] = ("heuristic", "bnb", "cpsat", "milp")

#: Backends whose answers count as "exact" when computing the heuristic gap.
EXACT_BACKENDS: frozenset = frozenset({"bnb", "cpsat", "milp"})


def _run_arm(problem, backend: str, time_budget_s: float | None,
             num_search_workers: int, seed: int) -> dict[str, object]:
    """One (instance, backend) tournament arm through the registry front door."""
    from repro.solver.compile import clear_compilation
    from repro.solver.config import SolverConfig

    # Each arm pays for its own compilation so timings are self-contained.
    clear_compilation(problem)
    config = SolverConfig(num_search_workers=num_search_workers)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        start = time.monotonic()
        solution = solve(problem, backend=backend, time_budget_s=time_budget_s,
                         seed=seed, config=config)
        elapsed = time.monotonic() - start
    validate_solution(solution)
    fell_back = any(isinstance(w.message, OrToolsUnavailableWarning) for w in caught)
    return {
        "backend": backend,
        "resolved_backend": solution.backend_name,
        "fell_back": fell_back,
        "carbon_g": solution.total_carbon_g(),
        "time_s": elapsed,
        "placed": solution.n_placed,
        "bound": solution.solver_bound,
        "solver_gap": solution.solver_gap,
        "solver_params": dict(solution.solver_params),
    }


def run(seed: int = EXPERIMENT_SEED,
        sizes: tuple[tuple[int, int], ...] = TOURNAMENT_SIZES,
        backends: tuple[str, ...] = TOURNAMENT_BACKENDS,
        time_budget_s: float | None = 10.0,
        num_search_workers: int = 1) -> dict[str, object]:
    """Run the tournament: one row per (size, backend), plus per-size gaps."""
    rows: list[dict[str, object]] = []
    gaps: list[dict[str, object]] = []
    for n_servers, n_apps in sizes:
        problem = _build_problem(n_servers, n_apps, seed)
        size_rows = []
        for backend in backends:
            row = _run_arm(problem, backend, time_budget_s,
                           num_search_workers, seed)
            row.update({"n_servers": n_servers, "n_apps": n_apps})
            size_rows.append(row)
        rows.extend(size_rows)
        # Heuristic-vs-exact gap: the genuinely-exact arms only (an OR-Tools
        # arm that fell back to the heuristic proves nothing about the gap).
        exact = [r for r in size_rows
                 if r["backend"] in EXACT_BACKENDS and not r["fell_back"]]
        heuristic = [r for r in size_rows if r["resolved_backend"] == "heuristic"]
        if exact and heuristic:
            best_exact = min(float(r["carbon_g"]) for r in exact)
            best_heur = min(float(r["carbon_g"]) for r in heuristic)
            gaps.append({
                "n_servers": n_servers, "n_apps": n_apps,
                "exact_carbon_g": best_exact,
                "heuristic_carbon_g": best_heur,
                "heuristic_gap": (best_heur - best_exact) / max(best_exact, 1e-12),
            })
    return {"arms": rows, "gaps": gaps}


def report(result: dict[str, object]) -> str:
    """Render tournament arms and heuristic-vs-exact gaps."""
    def fmt(rows, drop=()):
        return [{k: (round(v, 4) if isinstance(v, float) else v)
                 for k, v in row.items() if k not in drop} for row in rows]

    sections = [format_table(fmt(result["arms"], drop=("solver_params",)),
                             title="Backend tournament: one arm per (size, backend)")]
    if result["gaps"]:
        sections.append(format_table(fmt(result["gaps"]),
                                     title="Heuristic-vs-exact optimality gap per size"))
    return "\n\n".join(sections)


def compute(spec: ExperimentSpec, ctx: RunContext) -> dict[str, object]:
    """Registry entry point: run this experiment with the resolved parameters."""
    return run(**ctx.params)


SPEC = register(ExperimentSpec(
    name="backend_tournament",
    title="Solver backend tournament (heuristic vs. anytime exact tier)",
    kind="table",
    compute=compute,
    report=report,
    params=dict(seed=EXPERIMENT_SEED, sizes=TOURNAMENT_SIZES,
                backends=TOURNAMENT_BACKENDS, time_budget_s=10.0,
                num_search_workers=1),
    smoke_params=dict(sizes=((20, 8),), time_budget_s=2.0),
    schema=("arms", "gaps"),
    # Wall-clock rows (and, with OR-Tools installed, parallel-search
    # incumbents): inherently machine-dependent, excluded from byte-identity.
    deterministic=False,
))


if __name__ == "__main__":
    print(report(run()))
