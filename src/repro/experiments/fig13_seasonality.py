"""Figure 13: effect of seasonality on savings, latency, and placement decisions.

The paper plots, month by month: carbon savings (varying by ~3% in the US and
~10% in Europe), latency increases (varying ~1 ms), the carbon intensity of
four European cities (Paris, Oslo, Vienna, Zagreb), and how many applications
CarbonEdge assigns to each of those cities (up to 3x swings).
"""

from __future__ import annotations

from repro.analysis.reporting import format_series, format_table
from repro.carbon.statistics import monthly_means
from repro.datasets.cities import default_city_catalog
from repro.experiments.common import EXPERIMENT_SEED, zone_traces
from repro.experiments.registry import ExperimentSpec, RunContext, SweepAxis, register
from repro.simulator.cdn import run_cdn_simulation
from repro.simulator.scenario import CDNScenario

#: The four European cities whose intensity/placements the paper details.
FOCUS_CITIES: tuple[str, ...] = ("Paris", "Oslo", "Vienna", "Zagreb")


def run(seed: int = EXPERIMENT_SEED, max_sites: int | None = None,
        continents: tuple[str, ...] = ("US", "EU"),
        n_epochs: int = 12) -> dict[str, object]:
    """Monthly savings/latency series plus per-city intensity and placements.

    ``n_epochs`` defaults to the paper's monthly resolution; smoke runs reduce
    it (the series semantics degrade gracefully to coarser epochs).
    """
    monthly: dict[str, dict[str, list[float]]] = {}
    results = {}
    for continent in continents:
        scenario = CDNScenario(continent=continent, n_epochs=n_epochs,
                               max_sites=max_sites, seed=seed)
        result = run_cdn_simulation(scenario)
        results[continent] = result
        monthly[continent] = {
            "savings_pct": result.monthly_savings_pct("CarbonEdge"),
            "latency_increase_rtt_ms": result.monthly_latency_increase_rtt_ms("CarbonEdge"),
        }

    catalog = default_city_catalog()
    focus = [c for c in FOCUS_CITIES if c in catalog]
    focus_zone_ids = tuple(catalog.get(c).zone_id for c in focus)
    traces = zone_traces(focus_zone_ids, seed=seed)
    intensity_by_city = {
        city: list(monthly_means(traces, catalog.get(city).zone_id).values())
        for city in focus
    }
    placements_by_city = {}
    if "EU" in results:
        per_site = results["EU"].placements_per_site("CarbonEdge")
        placements_by_city = {city: per_site.get(city, [0] * n_epochs) for city in focus}
    return {
        "monthly": monthly,
        "intensity_by_city": intensity_by_city,
        "placements_by_city": placements_by_city,
        "results": results,
    }


def report(result: dict[str, object]) -> str:
    """Render the Figure 13 series."""
    parts = []
    for continent, series in result["monthly"].items():
        savings = series["savings_pct"]
        spread = max(savings) - min(savings)
        parts.append(format_series(
            series, title=f"Figure 13a/b ({continent}): monthly savings "
                          f"(spread {spread:.1f}%-points) and RTT latency increase"))
    parts.append(format_series(result["intensity_by_city"],
                               title="Figure 13c: monthly mean intensity of focus cities"))
    if result["placements_by_city"]:
        rows = [{"city": c, "min_apps": min(v), "max_apps": max(v)}
                for c, v in result["placements_by_city"].items()]
        parts.append(format_table(rows, title="Figure 13d: per-city placement swings"))
    return "\n\n".join(parts)


def compute(spec: ExperimentSpec, ctx: RunContext) -> dict[str, object]:
    """Registry entry point: run this experiment with the resolved parameters."""
    return run(**ctx.params)


SPEC = register(ExperimentSpec(
    name="fig13",
    title="Effect of seasonality on savings, latency, and placement decisions",
    kind="figure",
    compute=compute,
    report=report,
    params=dict(seed=EXPERIMENT_SEED, max_sites=None, continents=("US", "EU"),
                n_epochs=12),
    smoke_params=dict(max_sites=8, continents=("EU",), n_epochs=2),
    sweep=(SweepAxis("continents"),),
    drop_keys=("results",),
    schema=("monthly", "intensity_by_city", "placements_by_city"),
))


if __name__ == "__main__":
    print(report(run()))
