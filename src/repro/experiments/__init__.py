"""Experiment layer — one declarative spec per table/figure of the paper.

Every module registers an :class:`~repro.experiments.registry.ExperimentSpec`
(scenario parameters, smoke-scale overrides, shardable sweep axes, artifact
schema) and keeps a ``run(...)``/``report(...)`` pair for direct execution.
The sharded runner (:mod:`repro.simulator.runner`) and the ``carbon-edge
experiments`` CLI are the primary consumers; importing this package populates
the registry. See docs/EXPERIMENTS.md for paper-vs-measured values.
"""

from repro.experiments import registry, results  # noqa: F401
from repro.experiments import (  # noqa: F401
    common,
    fig01_energy_mix,
    fig02_snapshots,
    fig03_yearly,
    fig04_temporal,
    table1_latency,
    fig05_radius,
    fig07_profiles,
    fig08_florida,
    fig09_response,
    fig10_regional,
    fig11_cdn_year,
    fig12_latency_sweep,
    fig13_seasonality,
    fig14_demand_capacity,
    fig15_heterogeneity,
    fig16_tradeoff,
    fig17_scalability,
    serving_soak,
    planetary_sweep,
    backend_tournament,
)

__all__ = [
    "registry",
    "results",
    "common",
    "fig01_energy_mix",
    "fig02_snapshots",
    "fig03_yearly",
    "fig04_temporal",
    "table1_latency",
    "fig05_radius",
    "fig07_profiles",
    "fig08_florida",
    "fig09_response",
    "fig10_regional",
    "fig11_cdn_year",
    "fig12_latency_sweep",
    "fig13_seasonality",
    "fig14_demand_capacity",
    "fig15_heterogeneity",
    "fig16_tradeoff",
    "fig17_scalability",
    "serving_soak",
    "planetary_sweep",
    "backend_tournament",
]
