"""Experiment runners — one module per table/figure of the paper's evaluation.

Every module exposes a ``run(...)`` function returning plain dict/array data
(the rows or series the corresponding paper artifact reports) and is exercised
by a benchmark under ``benchmarks/``. See DESIGN.md §4 for the experiment
index and EXPERIMENTS.md for paper-vs-measured values.
"""

from repro.experiments import (  # noqa: F401
    common,
    fig01_energy_mix,
    fig02_snapshots,
    fig03_yearly,
    fig04_temporal,
    table1_latency,
    fig05_radius,
    fig07_profiles,
    fig08_florida,
    fig09_response,
    fig10_regional,
    fig11_cdn_year,
    fig12_latency_sweep,
    fig13_seasonality,
    fig14_demand_capacity,
    fig15_heterogeneity,
    fig16_tradeoff,
    fig17_scalability,
)

__all__ = [
    "common",
    "fig01_energy_mix",
    "fig02_snapshots",
    "fig03_yearly",
    "fig04_temporal",
    "table1_latency",
    "fig05_radius",
    "fig07_profiles",
    "fig08_florida",
    "fig09_response",
    "fig10_regional",
    "fig11_cdn_year",
    "fig12_latency_sweep",
    "fig13_seasonality",
    "fig14_demand_capacity",
    "fig15_heterogeneity",
    "fig16_tradeoff",
    "fig17_scalability",
]
