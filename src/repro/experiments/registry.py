"""Declarative experiment registry: every paper artifact as an ExperimentSpec.

Each figure/table module declares *what* it computes — default parameters,
reduced smoke-scale overrides, shardable sweep axes, which raw-result keys are
JSON artifacts, and the artifact's required schema — and registers the spec
here. The sharded runner (:mod:`repro.simulator.runner`) and the
``carbon-edge experiments`` CLI consume specs instead of importing bespoke
scripts, so new sweeps/ablations plug into one execution path.

Population is automatic: importing :mod:`repro.experiments` (which any access
through :func:`get` / :func:`all_specs` triggers) imports every experiment
module, and each module registers its spec at import time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

__all__ = [
    "ExperimentSpec",
    "RunContext",
    "SweepAxis",
    "register",
    "get",
    "names",
    "all_specs",
]

#: Valid values of :attr:`ExperimentSpec.kind`. ``"service"`` marks online
#: serving-mode artifacts (soak runs) that are not figures or tables of the
#: paper but ride the same registry/runner/CLI machinery.
KINDS: tuple[str, ...] = ("figure", "table", "service")


@dataclass(frozen=True)
class SweepAxis:
    """One shardable sweep axis of an experiment.

    ``param`` names a tuple-valued parameter of the experiment's ``run``
    function (e.g. ``continents``, ``limits_ms``). The runner expands the grid
    of all declared axes into independent work units — one per combination,
    each seeing a single-element tuple for every axis parameter — and merges
    the per-unit artifacts back in grid order. Axes must therefore be declared
    in the experiment's own loop-nesting order (outermost first) so the merged
    artifact is identical to a single sequential run.
    """

    param: str


@dataclass(frozen=True)
class RunContext:
    """Per-work-unit execution context handed to :meth:`ExperimentSpec.compute`.

    ``params`` are the fully resolved keyword arguments for this unit (spec
    defaults, overlaid with smoke overrides and runner overrides, with sweep
    axes narrowed to this unit's slice).
    """

    params: Mapping[str, object]
    smoke: bool = False
    unit_index: int = 0
    n_units: int = 1


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one reproducible paper artifact.

    Parameters
    ----------
    name:
        Registry key and artifact filename stem (``fig11``, ``table1``).
    title:
        One-line human description (shown by ``carbon-edge experiments list``).
    kind:
        ``"figure"``, ``"table"``, or ``"service"`` (online-serving soak).
    compute:
        Pure entry point ``compute(spec, ctx) -> dict``: runs the experiment
        with ``ctx.params`` and returns the raw result mapping. Must be
        deterministic in its parameters for ``deterministic`` specs.
    params:
        Full default parameter set — exactly the keyword arguments of the
        module's ``run`` function.
    smoke_params:
        Overrides applied on top of ``params`` for reduced-scale smoke runs
        (CI, registry round-trip tests).
    sweep:
        Shardable axes, outermost loop first (see :class:`SweepAxis`).
    drop_keys:
        Raw-result keys excluded from the JSON artifact (simulation objects,
        policy handles — anything non-serialisable or non-deterministic).
    schema:
        Top-level keys the projected artifact must contain
        (:meth:`repro.experiments.results.ExperimentResult.validate`).
    deterministic:
        Whether the artifact bytes are a pure function of the parameters.
        Timing experiments (fig17) set this to ``False`` and are excluded from
        byte-identity checks.
    report:
        Optional renderer of the *raw* result (the module's ``report``),
        used by direct module execution; the runner does not call it.
    """

    name: str
    title: str
    kind: str
    compute: Callable[["ExperimentSpec", RunContext], Mapping[str, object]]
    params: Mapping[str, object] = field(default_factory=dict)
    smoke_params: Mapping[str, object] = field(default_factory=dict)
    sweep: tuple[SweepAxis, ...] = ()
    drop_keys: tuple[str, ...] = ()
    schema: tuple[str, ...] = ()
    deterministic: bool = True
    report: Callable[[Mapping[str, object]], str] | None = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise ValueError(f"spec name must be a valid identifier, got {self.name!r}")
        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {self.kind!r}")
        for axis in self.sweep:
            if axis.param not in self.params:
                raise ValueError(
                    f"spec {self.name!r}: sweep axis {axis.param!r} is not a "
                    f"declared parameter {sorted(self.params)}")
            if not isinstance(self.params[axis.param], tuple):
                raise ValueError(
                    f"spec {self.name!r}: sweep axis {axis.param!r} must be a "
                    f"tuple-valued parameter")
        unknown = set(self.smoke_params) - set(self.params)
        if unknown:
            raise ValueError(
                f"spec {self.name!r}: smoke_params {sorted(unknown)} are not "
                f"declared parameters")

    def resolved_params(self, smoke: bool = False,
                        overrides: Mapping[str, object] | None = None) -> dict[str, object]:
        """Defaults, overlaid with smoke overrides, overlaid with ``overrides``.

        Override keys that are not parameters of this experiment are ignored —
        that lets the runner broadcast e.g. a ``--seed`` to every selected
        spec, including ones (table1, fig07) that take no seed at all.
        """
        params = dict(self.params)
        if smoke:
            params.update(self.smoke_params)
        if overrides:
            params.update({k: v for k, v in overrides.items() if k in self.params})
        return params


_REGISTRY: dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Register a spec (returns it, so modules can keep a ``SPEC`` handle)."""
    if spec.name in _REGISTRY:
        # ``python -m repro.experiments.figXX`` executes the module twice:
        # once during the package import (which registers the spec) and once
        # as ``__main__``. The re-execution registers the same spec under a
        # fresh module; keep the canonical one instead of failing.
        if getattr(spec.compute, "__module__", None) == "__main__":
            return _REGISTRY[spec.name]
        raise ValueError(f"experiment {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def _ensure_populated() -> None:
    # Importing the package imports every experiment module, each of which
    # registers its spec. Safe re-entrantly: if we are mid-package-import the
    # module is already in sys.modules and this is a no-op.
    import repro.experiments  # noqa: F401


def get(name: str) -> ExperimentSpec:
    """Look up one spec by name."""
    _ensure_populated()
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown experiment {name!r}; registered: {', '.join(names())}")
    return _REGISTRY[name]


def names() -> list[str]:
    """All registered experiment names, in registration (paper) order."""
    _ensure_populated()
    return list(_REGISTRY)


def all_specs() -> list[ExperimentSpec]:
    """All registered specs, in registration (paper) order."""
    _ensure_populated()
    return list(_REGISTRY.values())
