"""Figure 12: effect of the latency limit on carbon savings and latency increases.

Sweeping the round-trip latency limit from 5 to 30 ms, the paper shows savings
rising with the limit (28% US / 44.8% EU at 10 ms, +23%-points more at 20 ms)
with diminishing returns, while the actual latency increase grows roughly
linearly and stays below the limit.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments.common import EXPERIMENT_SEED
from repro.experiments.registry import ExperimentSpec, RunContext, SweepAxis, register
from repro.simulator.cdn import run_cdn_simulation
from repro.simulator.scenario import CDNScenario

#: Round-trip latency limits swept by the paper (ms).
LATENCY_LIMITS_MS: tuple[float, ...] = (5.0, 10.0, 15.0, 20.0, 25.0, 30.0)


def run(seed: int = EXPERIMENT_SEED, n_epochs: int = 4,
        limits_ms: tuple[float, ...] = LATENCY_LIMITS_MS,
        max_sites: int | None = None,
        continents: tuple[str, ...] = ("US", "EU")) -> dict[str, object]:
    """Carbon savings and latency increases per latency limit and continent."""
    rows = []
    for continent in continents:
        for limit in limits_ms:
            scenario = CDNScenario(continent=continent, latency_limit_ms=limit,
                                   n_epochs=n_epochs, max_sites=max_sites, seed=seed)
            result = run_cdn_simulation(scenario)
            rows.append({
                "continent": continent,
                "latency_limit_ms": limit,
                "carbon_savings_pct": result.carbon_savings_pct("CarbonEdge"),
                "latency_increase_rtt_ms": result.mean_latency_increase_rtt_ms("CarbonEdge"),
            })
    return {"rows": rows, "limits_ms": list(limits_ms)}


def report(result: dict[str, object]) -> str:
    """Render the Figure 12 sweep rows."""
    rows = [{k: (round(v, 1) if isinstance(v, float) else v) for k, v in row.items()}
            for row in result["rows"]]
    return format_table(rows, title="Figure 12: latency-tolerance sweep "
                                    "(paper: 28%/44.8% at 10 ms, diminishing returns beyond 20 ms)")


def compute(spec: ExperimentSpec, ctx: RunContext) -> dict[str, object]:
    """Registry entry point: run this experiment with the resolved parameters."""
    return run(**ctx.params)


SPEC = register(ExperimentSpec(
    name="fig12",
    title="Effect of the latency limit on carbon savings and latency increases",
    kind="figure",
    compute=compute,
    report=report,
    params=dict(seed=EXPERIMENT_SEED, n_epochs=4, limits_ms=LATENCY_LIMITS_MS,
                max_sites=None, continents=("US", "EU")),
    smoke_params=dict(n_epochs=1, limits_ms=(5.0, 30.0), max_sites=10,
                      continents=("EU",)),
    # Both axes shard: one work unit per (continent, limit) cell. Scenario
    # variants of one continent share the substrate cache (fleet, latency
    # matrix, traces), so per-unit cost is just the epoch loop.
    sweep=(SweepAxis("continents"), SweepAxis("limits_ms")),
    # "limits_ms" echoes the sweep grid, which per-unit narrowing would
    # garble on merge; the rows carry the limit per entry already.
    drop_keys=("limits_ms",),
    schema=("rows",),
))


if __name__ == "__main__":
    print(report(run()))
