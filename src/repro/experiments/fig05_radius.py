"""Figure 5: carbon savings available within a search radius, across 496 CDN sites.

For every CDN edge site the analysis finds the greenest other site within
radius D and reports the percentage intensity reduction; the paper's CDFs show
that with D = 200 km, 32% of sites can save >20% (12% can save >40%), rising to
78% / 45% at D = 1000 km, while the median one-way latency of pairs within the
radius grows from ~5 ms to ~14 ms.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.mesoscale import (
    radius_latency_analysis,
    radius_savings_analysis,
    savings_cdf,
)
from repro.analysis.reporting import format_table
from repro.experiments.common import EXPERIMENT_SEED, cdn_footprint, footprint_traces
from repro.experiments.registry import ExperimentSpec, RunContext, SweepAxis, register

#: Radii (km) evaluated by the paper.
RADII_KM: tuple[float, ...] = (200.0, 500.0, 1000.0)


def run(seed: int = EXPERIMENT_SEED, radii_km: tuple[float, ...] = RADII_KM,
        n_sites: int = 496) -> dict[str, object]:
    """Savings CDFs and latency distributions for each search radius."""
    footprint = cdn_footprint(seed=seed, n_sites=n_sites)
    traces = footprint_traces(seed=seed, n_sites=n_sites)
    out: dict[str, object] = {"radii_km": list(radii_km), "per_radius": {}}
    for radius in radii_km:
        savings = radius_savings_analysis(footprint, traces, radius)
        latencies = radius_latency_analysis(footprint, radius)
        out["per_radius"][radius] = {
            "savings": savings,
            "cdf": savings_cdf(savings),
            "median_latency_ms": float(np.median(latencies)) if latencies.size else 0.0,
            "n_sites": int(savings.size),
        }
    return out


def report(result: dict[str, object]) -> str:
    """Render the Figure 5 summary rows."""
    rows = []
    for radius in result["radii_km"]:
        data = result["per_radius"][radius]
        cdf = data["cdf"]
        rows.append({
            "radius_km": int(radius),
            "sites": data["n_sites"],
            "frac_saving_gt_20pct": round(cdf["above_20"], 2),
            "frac_saving_gt_40pct": round(cdf["above_40"], 2),
            "frac_saving_lt_20pct": round(cdf["below_20"], 2),
            "median_one_way_latency_ms": round(data["median_latency_ms"], 1),
        })
    return format_table(rows, title="Figure 5: savings within a search radius "
                                    "(paper: >20% savings at 32%/57%/78% of sites for 200/500/1000 km)")


def compute(spec: ExperimentSpec, ctx: RunContext) -> dict[str, object]:
    """Registry entry point: run this experiment with the resolved parameters."""
    return run(**ctx.params)


SPEC = register(ExperimentSpec(
    name="fig05",
    title="Carbon savings available within a search radius (496 CDN sites)",
    kind="figure",
    compute=compute,
    report=report,
    params=dict(seed=EXPERIMENT_SEED, radii_km=RADII_KM, n_sites=496),
    smoke_params=dict(radii_km=(200.0, 1000.0), n_sites=60),
    sweep=(SweepAxis("radii_km"),),
    schema=("radii_km", "per_radius"),
))


if __name__ == "__main__":
    print(report(run()))
