"""Figure 2: one-hour carbon-intensity snapshots of the four mesoscale regions.

The paper shows heat maps of the five zones in each region at a single hour,
annotated with the region's bounding box, and reports inter-zone variation
factors of 2.5x (Florida), 7.9x (West US), 2.2x (Italy) and 19.5x (Central EU).
The runner returns, per region, the per-city intensity at the snapshot hour,
the spread ratio, and the bounding-box dimensions.
"""

from __future__ import annotations

from repro.analysis.mesoscale import region_snapshot
from repro.analysis.reporting import format_table
from repro.datasets.regions import ALL_REGIONS
from repro.experiments.common import EXPERIMENT_SEED, region_traces

#: Snapshot hour used by default (a July evening, when solar has just dropped
#: off and fossil-heavy zones peak — the regime with the largest spreads).
DEFAULT_SNAPSHOT_HOUR: int = (31 + 28 + 31 + 30 + 31 + 30 + 14) * 24 + 19


def run(seed: int = EXPERIMENT_SEED, hour: int = DEFAULT_SNAPSHOT_HOUR) -> dict[str, object]:
    """Generate the Figure 2 snapshot data for all four mesoscale regions."""
    snapshots = {}
    for region in ALL_REGIONS:
        traces = region_traces(region.name, seed=seed)
        snapshots[region.name] = region_snapshot(region, traces, hour)
    return {
        "hour": hour,
        "snapshots": snapshots,
        "spread_ratios": {name: snap.spread_ratio for name, snap in snapshots.items()},
    }


def report(result: dict[str, object]) -> str:
    """Render the Figure 2 rows as text."""
    rows = []
    for name, snap in result["snapshots"].items():
        rows.append({
            "region": name,
            "spread_ratio": round(snap.spread_ratio, 2),
            "box_km": f"{snap.width_km:.0f} x {snap.height_km:.0f}",
            **{city: round(v, 0) for city, v in snap.intensities.items()},
        })
    # Column sets differ per region; render one table per region instead.
    parts = []
    for name, snap in result["snapshots"].items():
        city_rows = [{"city": c, "zone": snap.zone_of_city[c],
                      "intensity_g_per_kwh": round(v, 1)}
                     for c, v in snap.intensities.items()]
        parts.append(format_table(
            city_rows,
            title=f"Figure 2 ({name}) hour={result['hour']} "
                  f"spread={snap.spread_ratio:.1f}x box={snap.width_km:.0f}x{snap.height_km:.0f} km"))
    return "\n\n".join(parts)


if __name__ == "__main__":
    print(report(run()))
