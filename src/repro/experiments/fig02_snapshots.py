"""Figure 2: one-hour carbon-intensity snapshots of the four mesoscale regions.

The paper shows heat maps of the five zones in each region at a single hour,
annotated with the region's bounding box, and reports inter-zone variation
factors of 2.5x (Florida), 7.9x (West US), 2.2x (Italy) and 19.5x (Central EU).
The runner returns, per region, the per-city intensity at the snapshot hour,
the spread ratio, and the bounding-box dimensions.
"""

from __future__ import annotations

from repro.analysis.mesoscale import region_snapshot
from repro.analysis.reporting import format_table
from repro.datasets.regions import ALL_REGIONS, region_by_name
from repro.experiments.common import EXPERIMENT_SEED, region_traces
from repro.experiments.registry import ExperimentSpec, RunContext, SweepAxis, register

#: Snapshot hour used by default (a July evening, when solar has just dropped
#: off and fossil-heavy zones peak — the regime with the largest spreads).
DEFAULT_SNAPSHOT_HOUR: int = (31 + 28 + 31 + 30 + 31 + 30 + 14) * 24 + 19

#: Region names snapshotted by default (all four mesoscale regions).
REGION_NAMES: tuple[str, ...] = tuple(r.name for r in ALL_REGIONS)


def run(seed: int = EXPERIMENT_SEED, hour: int = DEFAULT_SNAPSHOT_HOUR,
        regions: tuple[str, ...] = REGION_NAMES) -> dict[str, object]:
    """Generate the Figure 2 snapshot data for the requested mesoscale regions."""
    snapshots = {}
    for region_name in regions:
        region = region_by_name(region_name)
        traces = region_traces(region.name, seed=seed)
        snapshots[region.name] = region_snapshot(region, traces, hour)
    return {
        "hour": hour,
        "snapshots": snapshots,
        "spread_ratios": {name: snap.spread_ratio for name, snap in snapshots.items()},
    }


def report(result: dict[str, object]) -> str:
    """Render the Figure 2 rows as text."""
    rows = []
    for name, snap in result["snapshots"].items():
        rows.append({
            "region": name,
            "spread_ratio": round(snap.spread_ratio, 2),
            "box_km": f"{snap.width_km:.0f} x {snap.height_km:.0f}",
            **{city: round(v, 0) for city, v in snap.intensities.items()},
        })
    # Column sets differ per region; render one table per region instead.
    parts = []
    for name, snap in result["snapshots"].items():
        city_rows = [{"city": c, "zone": snap.zone_of_city[c],
                      "intensity_g_per_kwh": round(v, 1)}
                     for c, v in snap.intensities.items()]
        parts.append(format_table(
            city_rows,
            title=f"Figure 2 ({name}) hour={result['hour']} "
                  f"spread={snap.spread_ratio:.1f}x box={snap.width_km:.0f}x{snap.height_km:.0f} km"))
    return "\n\n".join(parts)


def compute(spec: ExperimentSpec, ctx: RunContext) -> dict[str, object]:
    """Registry entry point: run this experiment with the resolved parameters."""
    return run(**ctx.params)


SPEC = register(ExperimentSpec(
    name="fig02",
    title="One-hour carbon-intensity snapshots of the four mesoscale regions",
    kind="figure",
    compute=compute,
    report=report,
    params=dict(seed=EXPERIMENT_SEED, hour=DEFAULT_SNAPSHOT_HOUR, regions=REGION_NAMES),
    smoke_params=dict(regions=("Florida", "Central EU")),
    sweep=(SweepAxis("regions"),),
    schema=("hour", "snapshots", "spread_ratios"),
))


if __name__ == "__main__":
    print(report(run()))
