"""Figure 17: scalability of the incremental placement algorithm.

The paper scales the placement to 400 servers and 140 applications and reports
solve times under 3 seconds and memory under 200 MB. The runner measures our
solver's wall-clock time and peak memory while varying one dimension at a time
(servers with applications fixed, applications with servers fixed).
"""

from __future__ import annotations

import time
import tracemalloc

from repro.analysis.reporting import format_table
from repro.carbon.service import CarbonIntensityService
from repro.carbon.synthetic import SyntheticTraceGenerator
from repro.cluster.fleet import build_cdn_fleet
from repro.core.policies.carbon_edge import CarbonEdgePolicy
from repro.core.problem import PlacementProblem
from repro.core.validation import validate_solution
from repro.datasets.akamai import CDNFootprint, build_cdn_footprint
from repro.datasets.cities import default_city_catalog
from repro.datasets.electricity_maps import default_zone_catalog
from repro.experiments.common import EXPERIMENT_SEED
from repro.network.latency import build_latency_matrix
from repro.workloads.generator import ApplicationGenerator

#: Server counts swept (paper: 100–400).
SERVER_COUNTS: tuple[int, ...] = (100, 200, 300, 400)
#: Application counts swept (paper: 20–140).
APP_COUNTS: tuple[int, ...] = (20, 60, 100, 140)


def _build_problem(n_servers: int, n_apps: int, seed: int) -> PlacementProblem:
    """A placement problem with the requested numbers of servers and applications."""
    catalog = default_city_catalog()
    zone_catalog = default_zone_catalog()
    footprint = build_cdn_footprint(seed=seed)
    us_sites = [s for s in footprint.one_per_city() if s.continent == "US"]
    us_sites = sorted(us_sites, key=lambda s: -s.population_k)
    servers_per_site = max(1, n_servers // len(us_sites))
    n_sites = max(2, min(len(us_sites), -(-n_servers // servers_per_site)))
    sites = us_sites[:n_sites]
    fleet = build_cdn_fleet(CDNFootprint(sites=tuple(sites)),
                            servers_per_site=servers_per_site, seed=seed)
    # Trim to exactly n_servers for an apples-to-apples sweep.
    servers = fleet.servers()[:n_servers]
    site_names = sorted({s.site for s in servers})
    cities = [catalog.get(n) for n in site_names]
    latency = build_latency_matrix(site_names, catalog.coordinates_array(site_names),
                                   countries=[c.state or c.country for c in cities])
    traces = SyntheticTraceGenerator(seed=seed, n_hours=168).generate_set(
        zone_catalog.get(z) for z in sorted({s.zone_id for s in servers}))
    carbon = CarbonIntensityService(traces=traces)
    generator = ApplicationGenerator(sites=site_names, latency_slo_ms=40.0,
                                     workload_mix={"ResNet50": 1.0}, seed=seed,
                                     mean_arrivals_per_batch=n_apps)
    batch = generator.generate_batch(0, 0, n_arrivals=n_apps)
    for server in servers:
        server.power_on()
    return PlacementProblem.build(list(batch.applications), servers, latency, carbon,
                                  hour=0, horizon_hours=1.0)


def _measure(problem: PlacementProblem, solver: str) -> tuple[float, float]:
    """(solve seconds, peak MiB) of one CarbonEdge placement."""
    policy = CarbonEdgePolicy(solver=solver)
    tracemalloc.start()
    start = time.monotonic()
    solution = policy.place(problem)
    elapsed = time.monotonic() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    validate_solution(solution)
    return elapsed, peak / (1024.0 * 1024.0)


def run(seed: int = EXPERIMENT_SEED, solver: str = "auto",
        server_counts: tuple[int, ...] = SERVER_COUNTS,
        app_counts: tuple[int, ...] = APP_COUNTS,
        fixed_apps: int = 50, fixed_servers: int = 100) -> dict[str, object]:
    """Runtime and memory scaling in both dimensions."""
    server_rows = []
    for n_servers in server_counts:
        problem = _build_problem(n_servers, fixed_apps, seed)
        elapsed, peak_mb = _measure(problem, solver)
        server_rows.append({"n_servers": n_servers, "n_apps": fixed_apps,
                            "time_s": elapsed, "peak_memory_mb": peak_mb})
    app_rows = []
    for n_apps in app_counts:
        problem = _build_problem(fixed_servers, n_apps, seed)
        elapsed, peak_mb = _measure(problem, solver)
        app_rows.append({"n_servers": fixed_servers, "n_apps": n_apps,
                         "time_s": elapsed, "peak_memory_mb": peak_mb})
    return {"by_servers": server_rows, "by_apps": app_rows}


def report(result: dict[str, object]) -> str:
    """Render the Figure 17 scaling rows."""
    fmt = lambda rows: [{k: (round(v, 3) if isinstance(v, float) else v)  # noqa: E731
                         for k, v in row.items()} for row in rows]
    return "\n\n".join([
        format_table(fmt(result["by_servers"]),
                     title="Figure 17a: scaling with the number of servers "
                           "(paper: <3 s, <200 MB at 400 servers)"),
        format_table(fmt(result["by_apps"]),
                     title="Figure 17b: scaling with the number of applications"),
    ])


if __name__ == "__main__":
    print(report(run()))
