"""Figure 17: scalability of the incremental placement algorithm.

The paper scales the placement to 400 servers and 140 applications and reports
solve times under 3 seconds and memory under 200 MB. The runner measures our
solver's wall-clock time and peak memory while varying one dimension at a time
(servers with applications fixed, applications with servers fixed). Solving
goes through the pluggable backend registry (:func:`repro.solver.solve`), so
the sweep can pin any registered backend — ``compare_backends`` runs the exact
and heuristic backends on identical instances to quantify the speed/quality
trade the registry's ``auto`` rule exploits.
"""

from __future__ import annotations

import time
import tracemalloc

from repro.analysis.reporting import format_table
from repro.carbon.service import CarbonIntensityService
from repro.carbon.synthetic import SyntheticTraceGenerator
from repro.cluster.fleet import build_cdn_fleet
from repro.core.problem import PlacementProblem
from repro.core.validation import validate_solution
from repro.datasets.akamai import CDNFootprint, build_cdn_footprint
from repro.datasets.cities import default_city_catalog
from repro.datasets.electricity_maps import default_zone_catalog
from repro.experiments.common import EXPERIMENT_SEED
from repro.experiments.registry import ExperimentSpec, RunContext, register
from repro.network.latency import build_latency_matrix
from repro.solver import solve
from repro.workloads.generator import ApplicationGenerator

#: Server counts swept (paper: 100–400).
SERVER_COUNTS: tuple[int, ...] = (100, 200, 300, 400)
#: Application counts swept (paper: 20–140).
APP_COUNTS: tuple[int, ...] = (20, 60, 100, 140)


def _build_problem(n_servers: int, n_apps: int, seed: int) -> PlacementProblem:
    """A placement problem with the requested numbers of servers and applications."""
    catalog = default_city_catalog()
    zone_catalog = default_zone_catalog()
    footprint = build_cdn_footprint(seed=seed)
    us_sites = [s for s in footprint.one_per_city() if s.continent == "US"]
    us_sites = sorted(us_sites, key=lambda s: -s.population_k)
    servers_per_site = max(1, n_servers // len(us_sites))
    n_sites = max(2, min(len(us_sites), -(-n_servers // servers_per_site)))
    sites = us_sites[:n_sites]
    fleet = build_cdn_fleet(CDNFootprint(sites=tuple(sites)),
                            servers_per_site=servers_per_site, seed=seed)
    # Trim to exactly n_servers for an apples-to-apples sweep.
    servers = fleet.servers()[:n_servers]
    site_names = sorted({s.site for s in servers})
    cities = [catalog.get(n) for n in site_names]
    latency = build_latency_matrix(site_names, catalog.coordinates_array(site_names),
                                   countries=[c.state or c.country for c in cities])
    traces = SyntheticTraceGenerator(seed=seed, n_hours=168).generate_set(
        zone_catalog.get(z) for z in sorted({s.zone_id for s in servers}))
    carbon = CarbonIntensityService(traces=traces)
    generator = ApplicationGenerator(sites=site_names, latency_slo_ms=40.0,
                                     workload_mix={"ResNet50": 1.0}, seed=seed,
                                     mean_arrivals_per_batch=n_apps)
    batch = generator.generate_batch(0, 0, n_arrivals=n_apps)
    for server in servers:
        server.power_on()
    return PlacementProblem.build(list(batch.applications), servers, latency, carbon,
                                  hour=0, horizon_hours=1.0)


def _measure(problem: PlacementProblem, backend: str,
             time_budget_s: float | None = None) -> tuple[float, float]:
    """(solve seconds, peak MiB) of one placement through the backend registry."""
    tracemalloc.start()
    start = time.monotonic()
    solution = solve(problem, backend=backend, time_budget_s=time_budget_s)
    elapsed = time.monotonic() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    validate_solution(solution)
    return elapsed, peak / (1024.0 * 1024.0)


def run(seed: int = EXPERIMENT_SEED, backend: str = "auto",
        server_counts: tuple[int, ...] = SERVER_COUNTS,
        app_counts: tuple[int, ...] = APP_COUNTS,
        fixed_apps: int = 50, fixed_servers: int = 100,
        time_budget_s: float | None = None) -> dict[str, object]:
    """Runtime and memory scaling in both dimensions."""
    server_rows = []
    for n_servers in server_counts:
        problem = _build_problem(n_servers, fixed_apps, seed)
        elapsed, peak_mb = _measure(problem, backend, time_budget_s)
        server_rows.append({"n_servers": n_servers, "n_apps": fixed_apps,
                            "time_s": elapsed, "peak_memory_mb": peak_mb})
    app_rows = []
    for n_apps in app_counts:
        problem = _build_problem(fixed_servers, n_apps, seed)
        elapsed, peak_mb = _measure(problem, backend, time_budget_s)
        app_rows.append({"n_servers": fixed_servers, "n_apps": n_apps,
                         "time_s": elapsed, "peak_memory_mb": peak_mb})
    return {"by_servers": server_rows, "by_apps": app_rows}


def compare_backends(seed: int = EXPERIMENT_SEED,
                     sizes: tuple[tuple[int, int], ...] = ((100, 50), (200, 100)),
                     backends: tuple[str, ...] = ("bnb", "heuristic")) -> list[dict[str, object]]:
    """Exact-vs-heuristic comparison on identical fig17-size instances.

    Each backend is invoked *directly* (``get_backend(name).solve(request)``)
    rather than through ``registry.solve``, so the measured time is the
    backend's alone — no heuristic-baseline runtime inflating the exact
    backend's numbers, and no silent fallback substituting another backend's
    solution for the one being labelled. Returns one row per (size, backend)
    with solve time and the Equation-6 carbon of the produced placement, plus
    per-size speedup of the fastest backend relative to the slowest.
    """
    from repro.solver.backend import SolveRequest
    from repro.solver.compile import clear_compilation
    from repro.solver.registry import get_backend

    rows: list[dict[str, object]] = []
    for n_servers, n_apps in sizes:
        problem = _build_problem(n_servers, n_apps, seed)
        timings: dict[str, float] = {}
        for backend in backends:
            # Fresh request per backend, and the problem's memoised epoch
            # compilation is dropped so each backend pays for its own
            # feasibility report and dense tensors — timings stay
            # self-contained. No tracemalloc either — its allocation-tracking
            # overhead would distort exactly the timings the comparison
            # reports.
            clear_compilation(problem)
            request = SolveRequest(problem=problem)
            start = time.monotonic()
            solution = get_backend(backend).solve(request)
            elapsed = time.monotonic() - start
            if solution is None:
                raise RuntimeError(f"backend {backend!r} returned no solution "
                                   f"at size ({n_servers}, {n_apps})")
            validate_solution(solution)
            timings[backend] = elapsed
            rows.append({"n_servers": n_servers, "n_apps": n_apps, "backend": backend,
                         "time_s": elapsed, "carbon_g": solution.total_carbon_g(),
                         "placed": solution.n_placed})
        slowest = max(timings.values())
        for row in rows[-len(backends):]:
            row["speedup_vs_slowest"] = slowest / max(row["time_s"], 1e-9)
    return rows


def report(result: dict[str, object]) -> str:
    """Render the Figure 17 scaling rows."""
    fmt = lambda rows: [{k: (round(v, 3) if isinstance(v, float) else v)  # noqa: E731
                         for k, v in row.items()} for row in rows]
    return "\n\n".join([
        format_table(fmt(result["by_servers"]),
                     title="Figure 17a: scaling with the number of servers "
                           "(paper: <3 s, <200 MB at 400 servers)"),
        format_table(fmt(result["by_apps"]),
                     title="Figure 17b: scaling with the number of applications"),
    ])


def compute(spec: ExperimentSpec, ctx: RunContext) -> dict[str, object]:
    """Registry entry point: run this experiment with the resolved parameters."""
    return run(**ctx.params)


SPEC = register(ExperimentSpec(
    name="fig17",
    title="Scalability of the incremental placement algorithm",
    kind="figure",
    compute=compute,
    report=report,
    params=dict(seed=EXPERIMENT_SEED, backend="auto", server_counts=SERVER_COUNTS,
                app_counts=APP_COUNTS, fixed_apps=50, fixed_servers=100,
                time_budget_s=None),
    smoke_params=dict(server_counts=(20,), app_counts=(10,), fixed_apps=10,
                      fixed_servers=20),
    schema=("by_servers", "by_apps"),
    # Wall-clock and peak-memory measurements: the artifact is inherently
    # machine- and run-dependent, so it is excluded from byte-identity checks.
    deterministic=False,
))


if __name__ == "__main__":
    print(report(run()))
