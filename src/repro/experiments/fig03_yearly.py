"""Figure 3: yearly mean carbon intensity of the West-US and Central-EU regions.

The paper reports that the difference between the greenest and dirtiest zone
persists across the whole year: 2.7x in the West US and 10.8x in Central
Europe. The runner returns the per-city yearly means and the max/min ratio for
both regions.
"""

from __future__ import annotations

from repro.analysis.mesoscale import yearly_region_stats
from repro.analysis.reporting import format_table
from repro.datasets.regions import CENTRAL_EU, WEST_US
from repro.experiments.common import EXPERIMENT_SEED, region_traces
from repro.experiments.registry import ExperimentSpec, RunContext, register


def run(seed: int = EXPERIMENT_SEED) -> dict[str, object]:
    """Yearly means and spread ratios for the two Figure 3 regions."""
    out: dict[str, object] = {}
    for region in (WEST_US, CENTRAL_EU):
        traces = region_traces(region.name, seed=seed)
        out[region.name] = yearly_region_stats(region, traces)
    return out


def report(result: dict[str, object]) -> str:
    """Render the Figure 3 rows as text."""
    parts = []
    for name, stats in result.items():
        rows = [{"city": city, "yearly_mean_g_per_kwh": round(v, 1)}
                for city, v in stats["means"].items()]
        parts.append(format_table(
            rows, title=f"Figure 3 ({name}): max/min ratio = {stats['ratio']:.1f}x "
                        f"(paper: 2.7x West US, 10.8x Central EU)"))
    return "\n\n".join(parts)


def compute(spec: ExperimentSpec, ctx: RunContext) -> dict[str, object]:
    """Registry entry point: run this experiment with the resolved parameters."""
    return run(**ctx.params)


SPEC = register(ExperimentSpec(
    name="fig03",
    title="Yearly mean carbon intensity of the West-US and Central-EU regions",
    kind="figure",
    compute=compute,
    report=report,
    params=dict(seed=EXPERIMENT_SEED),
    schema=("West US", "Central EU"),
))


if __name__ == "__main__":
    print(report(run()))
