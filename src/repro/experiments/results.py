"""Unified experiment results: versioned, JSON-serialisable artifacts.

Every experiment the registry runs produces one :class:`ExperimentResult` —
the declared projection of the raw ``run()`` output onto JSON-safe data —
serialised with sorted keys so an artifact's bytes depend only on the spec's
parameters, never on worker count, completion order, or wall-clock timings.
That byte-stability is what lets the sharded runner assert that ``--workers 4``
and ``--workers 1`` produced the same science.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

#: Version stamp written into every serialized artifact. Bump on any change to
#: the envelope layout (not to individual experiments' payloads).
ARTIFACT_VERSION: int = 1


class ArtifactSchemaError(ValueError):
    """An experiment's artifact is missing a key its spec declares as required."""


def _key(value: object) -> str:
    """Normalise a mapping key to the string JSON requires (deterministically)."""
    if isinstance(value, str):
        return value
    if isinstance(value, tuple):
        return "|".join(str(v) for v in value)
    if isinstance(value, (bool, np.bool_)):
        return str(bool(value))
    if isinstance(value, (int, np.integer)):
        return str(int(value))
    if isinstance(value, (float, np.floating)):
        return repr(float(value))
    return str(value)


def jsonable(value: object, path: str = "$") -> object:
    """Convert an experiment result fragment to plain JSON-safe data.

    Handles the types the experiment runners actually return — numpy arrays
    and scalars, nested mappings with non-string keys (radii, city pairs),
    tuples, and plain dataclasses. Anything else (simulation objects, policies,
    callables) raises ``TypeError`` naming the offending path, which forces the
    owning spec to either drop the key (``drop_keys``) or serialise it
    deliberately.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "Infinity" if value > 0 else "-Infinity"
        return value
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return jsonable(float(value), path)
    if isinstance(value, np.ndarray):
        return jsonable(value.tolist(), path)
    if isinstance(value, Mapping):
        out = {}
        for k, v in value.items():
            key = _key(k)
            if key in out:
                raise TypeError(f"duplicate JSON key {key!r} at {path}")
            out[key] = jsonable(v, f"{path}.{key}")
        return out
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=repr) if isinstance(value, (set, frozenset)) else value
        return [jsonable(v, f"{path}[{i}]") for i, v in enumerate(items)]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {f.name: getattr(value, f.name) for f in dataclasses.fields(value)}
        return jsonable(fields, path)
    raise TypeError(
        f"experiment artifact contains a non-JSON-serialisable value at {path}: "
        f"{type(value).__name__}. Drop the key via the spec's drop_keys or "
        f"convert it in compute().")


@dataclass
class ExperimentResult:
    """One experiment's artifact: the versioned unit every consumer shares.

    ``artifact`` holds only JSON-safe data (see :func:`jsonable`) and its
    serialised form is deterministic for deterministic specs: sorted keys, no
    timestamps, no timings. Wall-clock measurements live in ``elapsed_s``,
    which is deliberately *excluded* from :meth:`to_json`.
    """

    name: str
    kind: str
    params: dict[str, object]
    artifact: dict[str, object]
    smoke: bool = False
    n_units: int = 1
    version: int = ARTIFACT_VERSION
    #: Wall-clock seconds spent producing the artifact; never serialised.
    elapsed_s: float | None = field(default=None, compare=False)

    def validate(self, schema: Sequence[str]) -> None:
        """Check the artifact against the spec's declared schema keys."""
        missing = [key for key in schema if key not in self.artifact]
        if missing:
            raise ArtifactSchemaError(
                f"experiment {self.name!r}: artifact is missing required "
                f"key(s) {missing} (has {sorted(self.artifact)})")

    def to_json(self) -> str:
        """Serialise to the canonical artifact representation (stable bytes)."""
        payload = {
            "version": self.version,
            "name": self.name,
            "kind": self.kind,
            "smoke": self.smoke,
            "n_units": self.n_units,
            "params": self.params,
            "artifact": self.artifact,
        }
        return json.dumps(payload, sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Rebuild a result from its serialised form (``elapsed_s`` is lost)."""
        payload = json.loads(text)
        return cls(
            name=payload["name"],
            kind=payload["kind"],
            params=payload["params"],
            artifact=payload["artifact"],
            smoke=payload["smoke"],
            n_units=payload["n_units"],
            version=payload["version"],
        )

    def write(self, directory: str | Path) -> Path:
        """Write the artifact as ``<directory>/<name>.json`` and return the path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.name}.json"
        path.write_text(self.to_json(), encoding="utf-8")
        return path
