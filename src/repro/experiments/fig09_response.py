"""Figure 9: end-to-end response times across the Florida edge data centers.

The paper compares per-request response times under the Latency-aware policy
(every application served at its own city) and CarbonEdge (applications served
from the greenest zone) for each of the five source cities, reporting
increases below ~10 ms with an average of ~6.6 ms.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.policies.carbon_edge import CarbonEdgePolicy
from repro.core.policies.latency_aware import LatencyAwarePolicy
from repro.datasets.regions import FLORIDA
from repro.experiments.common import EXPERIMENT_SEED
from repro.experiments.fig08_florida import DEFAULT_START_HOUR
from repro.experiments.registry import ExperimentSpec, RunContext, register
from repro.testbed.emulation import build_testbed, run_testbed_experiment


def run(seed: int = EXPERIMENT_SEED, hours: int = 24, workload: str = "Sci",
        start_hour: int = DEFAULT_START_HOUR) -> dict[str, object]:
    """Per-source-city response time distributions under both policies."""
    testbed = build_testbed(FLORIDA, seed=seed)
    runs = {}
    for policy in (LatencyAwarePolicy(), CarbonEdgePolicy()):
        runs[policy.name] = run_testbed_experiment(
            testbed, policy, workload=workload, hours=hours, start_hour=start_hour)
    per_city = {}
    for site in testbed.sites():
        base = runs["Latency-aware"].response_times_ms[site]
        carbonedge = runs["CarbonEdge"].response_times_ms[site]
        per_city[site] = {
            "latency_aware_mean_ms": float(np.mean(base)),
            "carbon_edge_mean_ms": float(np.mean(carbonedge)),
            "increase_ms": float(np.mean(carbonedge) - np.mean(base)),
        }
    increases = [v["increase_ms"] for v in per_city.values()]
    return {"per_city": per_city, "mean_increase_ms": float(np.mean(increases)),
            "max_increase_ms": float(np.max(increases)), "runs": runs}


def report(result: dict[str, object]) -> str:
    """Render the Figure 9 per-city rows."""
    rows = [{"city": city, **{k: round(v, 2) for k, v in stats.items()}}
            for city, stats in result["per_city"].items()]
    title = (f"Figure 9: response times (mean increase {result['mean_increase_ms']:.1f} ms, "
             f"max {result['max_increase_ms']:.1f} ms; paper: avg 6.6 ms, max <10.1 ms)")
    return format_table(rows, title=title)


def compute(spec: ExperimentSpec, ctx: RunContext) -> dict[str, object]:
    """Registry entry point: run this experiment with the resolved parameters."""
    return run(**ctx.params)


SPEC = register(ExperimentSpec(
    name="fig09",
    title="End-to-end response times across the Florida edge data centers",
    kind="figure",
    compute=compute,
    report=report,
    params=dict(seed=EXPERIMENT_SEED, hours=24, workload="Sci",
                start_hour=DEFAULT_START_HOUR),
    smoke_params=dict(hours=6),
    drop_keys=("runs",),
    schema=("per_city", "mean_increase_ms", "max_increase_ms"),
))


if __name__ == "__main__":
    print(report(run()))
