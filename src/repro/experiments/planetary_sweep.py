"""Planetary-scale placement through the cluster-then-refine hierarchy.

The ROADMAP's planetary regime — 10k sites × 10^5 applications — is two
orders of magnitude past the paper's 496-site footprint. The flat compiled
path would need a 10^9-cell dense tensor per objective and is *refused* by
the :func:`repro.core.problem.ensure_dense_cell_budget` guard; this
experiment demonstrates that the hierarchical tier
(:mod:`repro.solver.hierarchy`) completes the same instance under the budget
and records what the coarse/refine decomposition costs (the objective gap)
and what it saves (no apps×servers tensor ever materialised).

Unlike the CDN-year experiments this one builds one data center per footprint
*site* (no one-per-city collapse — the whole point is the site count) and
uses the vectorised midpoint-inflation latency builder
(:func:`repro.network.latency.build_latency_matrix_fast`) — the per-pair
jittered builder is minutes of Python at 5·10^7 pairs.

The artifact is deterministic: placements, objectives, and region statistics
only. Wall-clock and memory measurements live in the benchmarks
(``benchmarks/test_bench_hierarchy.py``), never in artifact bytes, so
``--workers {1,2,4}`` and ``--merge {memory,stream}`` byte-diff clean.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table
from repro.carbon.service import CarbonIntensityService
from repro.carbon.synthetic import SyntheticTraceGenerator
from repro.cluster.datacenter import EdgeDataCenter
from repro.cluster.fleet import EdgeFleet
from repro.cluster.hardware import DEVICE_CATALOG, XEON_E5_2660V3
from repro.cluster.server import EdgeServer, PowerState
from repro.core.objective import ObjectiveKind
from repro.core.problem import ensure_dense_cell_budget
from repro.datasets.akamai import build_cdn_footprint
from repro.datasets.electricity_maps import default_zone_catalog
from repro.experiments.common import EXPERIMENT_SEED
from repro.experiments.registry import ExperimentSpec, RunContext, SweepAxis, register
from repro.network.latency import build_latency_matrix_fast
from repro.solver.compile import ScenarioCompilation
from repro.solver.config import SolverConfig
from repro.solver.hierarchy import build_region_plan, solve_hierarchical
from repro.workloads.generator import ApplicationGenerator, columnar_enabled


def build_planetary_substrate(n_sites: int, seed: int, accelerator: str = "NVIDIA A2"
                              ) -> tuple[EdgeFleet, "object", CarbonIntensityService]:
    """One data center (one server) per footprint site, planetary latency.

    The CDN-year builders collapse sites to one per city; here every site of
    the synthetic Akamai footprint becomes its own data center keyed by its
    unique ``site_id``, so ``n_sites`` is the real fleet size.
    """
    footprint = build_cdn_footprint(n_sites=n_sites, seed=seed)
    device = DEVICE_CATALOG[accelerator]
    datacenters = []
    for site in footprint:
        dc = EdgeDataCenter(site=site.site_id, zone_id=site.zone_id,
                            lat=site.lat, lon=site.lon)
        dc.add_server(EdgeServer(
            server_id=f"{site.site_id}-srv00", site=site.site_id,
            zone_id=site.zone_id, cpu=XEON_E5_2660V3, accelerator=device,
            power_state=PowerState.ON))
        datacenters.append(dc)
    fleet = EdgeFleet(name="planetary fleet", datacenters=datacenters)

    latency = build_latency_matrix_fast(
        fleet.sites(), fleet.site_coordinates(),
        countries=[dc.zone_id for dc in fleet])

    zone_catalog = default_zone_catalog()
    traces = SyntheticTraceGenerator(seed=seed).generate_set(
        zone_catalog.get(z) for z in fleet.zone_ids())
    carbon = CarbonIntensityService(traces=traces)
    return fleet, latency, carbon


def run(seed: int = EXPERIMENT_SEED, n_sites: int = 10_000,
        n_apps: int = 100_000, hour: int = 4700,
        latency_slo_ms: float = 40.0,
        hierarchy_regions: tuple[int, ...] = (32, 64),
        refine_backend: str = "greedy") -> dict[str, object]:
    """One placement epoch at planetary scale, swept over the region count.

    Records, per region count: placement coverage, the coarse (optimistic
    aggregate) and refined (achieved) objectives with their gap, spill
    activity, and region-size statistics. Scale facts (flat dense-cell count,
    whether the flat path is within the dense-cell budget) are sweep-invariant
    and recorded once.
    """
    fleet, latency, carbon = build_planetary_substrate(n_sites, seed)
    servers = fleet.servers()
    compilation = ScenarioCompilation(servers, latency, carbon)

    flat_within_budget = True
    try:
        ensure_dense_cell_budget(n_apps, len(servers),
                                 context="planetary flat placement")
    except ValueError:
        flat_within_budget = False

    generator = ApplicationGenerator(
        sites=fleet.sites(), latency_slo_ms=latency_slo_ms,
        mean_arrivals_per_batch=float(n_apps), duration_hours=1.0, seed=seed)
    batch = generator.generate_batch(0, hour, n_arrivals=n_apps)
    # The columnar batch flows to the hierarchy whole — per-app objects are
    # never materialised at 10^6 apps. The kill-switch arm materialises them
    # so the CI byte-diff exercises the true object path.
    applications = batch if columnar_enabled() else list(batch.applications)

    coords = fleet.site_coordinates()
    sweep: dict[str, dict[str, object]] = {}
    for n_regions in hierarchy_regions:
        plan = build_region_plan(fleet.sites(), coords, n_regions, seed=seed)
        outcome = solve_hierarchical(
            compilation, applications, plan,
            hour=hour, horizon_hours=1.0,
            objective=ObjectiveKind.CARBON,
            config=SolverConfig(hierarchy_regions=n_regions,
                                refine_backend=refine_backend),
            seed=seed)
        counts = np.asarray(outcome.region_server_counts)
        sweep[str(n_regions)] = {
            "n_placed": outcome.n_placed,
            "n_unplaced": outcome.n_unplaced,
            "n_spilled": outcome.n_spilled,
            "n_coarse_unrouted": outcome.n_coarse_unrouted,
            "coarse_carbon_g": outcome.coarse_objective,
            "refined_carbon_g": outcome.refined_objective,
            "objective_gap_g": outcome.objective_gap,
            "plan_method": plan.method,
            "n_effective_regions": int(len(counts)),
            "max_region_servers": int(counts.max()),
            "mean_region_servers": float(counts.mean()),
            "max_refine_cells": int(
                (np.asarray(outcome.region_app_counts) * counts).max()),
        }

    return {
        "scale": {
            "n_sites": n_sites,
            "n_servers": len(servers),
            "n_apps": n_apps,
            "n_app_classes": int(batch.n_classes),
            "flat_dense_cells": int(n_apps) * len(servers),
            "flat_within_budget": flat_within_budget,
        },
        "sweep": sweep,
    }


def report(result: dict[str, object]) -> str:
    """Render the planetary sweep summary."""
    scale = result["scale"]
    rows = [{"regions": r, **{k: (round(v, 1) if isinstance(v, float) else v)
                              for k, v in s.items()}}
            for r, s in result["sweep"].items()]
    return format_table(
        rows, title=f"Planetary sweep: {scale['n_apps']} apps x "
                    f"{scale['n_servers']} servers "
                    f"(flat {scale['flat_dense_cells']} cells, "
                    f"within budget: {scale['flat_within_budget']})")


def compute(spec: ExperimentSpec, ctx: RunContext) -> dict[str, object]:
    """Registry entry point: run this experiment with the resolved parameters."""
    return run(**ctx.params)


SPEC = register(ExperimentSpec(
    name="planetary_sweep",
    title="Planetary-scale placement via the hierarchical solver tier",
    kind="figure",
    compute=compute,
    report=report,
    params=dict(seed=EXPERIMENT_SEED, n_sites=10_000, n_apps=100_000,
                hour=4700, latency_slo_ms=40.0, hierarchy_regions=(32, 64),
                refine_backend="greedy"),
    # Two sweep units even at smoke scale so the CI hierarchy-determinism job
    # (--workers {1,2} x --merge {memory,stream}, byte-diffed) exercises a
    # real multi-unit merge.
    smoke_params=dict(n_sites=48, n_apps=160, hierarchy_regions=(2, 3)),
    sweep=(SweepAxis("hierarchy_regions"),),
    schema=("scale", "sweep"),
))

#: The 10^6-application point the columnar substrate unlocks: one epoch at
#: 10k sites x 10^6 apps (10^10 flat dense cells — far past the budget guard),
#: solved through the hierarchy from a columnar batch whose per-app objects
#: are never materialised.
SPEC_XL = register(ExperimentSpec(
    name="planetary_sweep_xl",
    title="Planetary-scale placement at one million applications",
    kind="figure",
    compute=compute,
    report=report,
    params=dict(seed=EXPERIMENT_SEED, n_sites=10_000, n_apps=1_000_000,
                hour=4700, latency_slo_ms=40.0, hierarchy_regions=(64,),
                refine_backend="greedy"),
    smoke_params=dict(n_sites=32, n_apps=120, hierarchy_regions=(2,)),
    sweep=(SweepAxis("hierarchy_regions"),),
    schema=("scale", "sweep"),
))


if __name__ == "__main__":
    print(report(run()))
