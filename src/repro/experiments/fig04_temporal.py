"""Figure 4: spatio-temporal carbon-intensity variation in the West US.

Figure 4a shows two days (Dec 25–27) of hourly intensity for the five West-US
zones — Flagstaff exhibits a ~300 g/kWh diurnal swing; Figure 4b shows monthly
means — Kingman swings ~200 g/kWh between March and November due to its solar
share. The runner returns both series plus the per-zone diurnal and seasonal
ranges.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_series, format_table
from repro.carbon.statistics import monthly_means, temporal_range
from repro.datasets.cities import default_city_catalog
from repro.datasets.regions import WEST_US
from repro.experiments.common import EXPERIMENT_SEED, region_traces
from repro.experiments.registry import ExperimentSpec, RunContext, register

#: Hour-of-year of December 25th, 00:00.
DEC_25_HOUR: int = (365 - 7) * 24


def run(seed: int = EXPERIMENT_SEED) -> dict[str, object]:
    """Two-day hourly series and monthly means for the West-US zones."""
    catalog = default_city_catalog()
    traces = region_traces(WEST_US.name, seed=seed)
    cities = WEST_US.cities(catalog)
    two_day: dict[str, np.ndarray] = {}
    monthly: dict[str, dict[str, float]] = {}
    diurnal_range: dict[str, float] = {}
    seasonal_range: dict[str, float] = {}
    for city in cities:
        trace = traces.get(city.zone_id)
        two_day[city.name] = trace.window(DEC_25_HOUR, 48)
        months = monthly_means(traces, city.zone_id)
        monthly[city.name] = months
        diurnal_range[city.name] = temporal_range(traces, city.zone_id, DEC_25_HOUR, 48)
        values = np.array(list(months.values()))
        seasonal_range[city.name] = float(values.max() - values.min())
    return {"two_day": two_day, "monthly": monthly,
            "diurnal_range": diurnal_range, "seasonal_range": seasonal_range}


def report(result: dict[str, object]) -> str:
    """Render the Figure 4 rows as text."""
    rows = [{"city": city,
             "two_day_range_g_per_kwh": round(result["diurnal_range"][city], 1),
             "seasonal_range_g_per_kwh": round(result["seasonal_range"][city], 1)}
            for city in result["diurnal_range"]]
    parts = [format_table(rows, title="Figure 4: temporal variation in the West US")]
    parts.append(format_series({c: list(m.values()) for c, m in result["monthly"].items()},
                               title="Figure 4b: monthly mean intensity (Jan..Dec)"))
    return "\n\n".join(parts)


def compute(spec: ExperimentSpec, ctx: RunContext) -> dict[str, object]:
    """Registry entry point: run this experiment with the resolved parameters."""
    return run(**ctx.params)


SPEC = register(ExperimentSpec(
    name="fig04",
    title="Spatio-temporal carbon-intensity variation in the West US",
    kind="figure",
    compute=compute,
    report=report,
    params=dict(seed=EXPERIMENT_SEED),
    schema=("two_day", "monthly", "diurnal_range", "seasonal_range"),
))


if __name__ == "__main__":
    print(report(run()))
