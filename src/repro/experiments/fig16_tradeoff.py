"""Figure 16: the carbon-energy trade-off (Equation 8 alpha sweep).

The multi-objective variant minimises ``α·energy + (1-α)·carbon`` over min-max
normalised coefficients. The paper sweeps α from 0 to 1 in low- and
high-utilisation scenarios and observes that (a) carbon-only placement (α=0)
costs substantially more energy than energy-only placement (α=1), and (b) a
small α recovers most of the energy while keeping most of the carbon savings
(e.g. α=0.1 keeps 97.5% of the savings while cutting energy by 67% at low
utilisation).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table
from repro.carbon.service import CarbonIntensityService
from repro.carbon.synthetic import SyntheticTraceGenerator
from repro.cluster.fleet import build_cdn_fleet
from repro.core.policies.carbon_edge import CarbonEdgePolicy
from repro.core.policies.latency_aware import LatencyAwarePolicy
from repro.core.problem import PlacementProblem
from repro.core.validation import validate_solution
from repro.datasets.akamai import CDNFootprint, build_cdn_footprint
from repro.datasets.cities import default_city_catalog
from repro.datasets.electricity_maps import default_zone_catalog
from repro.experiments.common import EXPERIMENT_SEED
from repro.experiments.registry import ExperimentSpec, RunContext, SweepAxis, register
from repro.network.latency import build_latency_matrix
from repro.workloads.generator import ApplicationGenerator

#: Alpha values swept by the paper.
ALPHAS: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def _build_problem(utilization: str, seed: int, n_sites: int, continent: str
                   ) -> PlacementProblem:
    """One heterogeneous placement problem at low or high utilisation."""
    if utilization not in ("low", "high"):
        raise ValueError("utilization must be 'low' or 'high'")
    catalog = default_city_catalog()
    zone_catalog = default_zone_catalog()
    footprint = build_cdn_footprint(seed=seed)
    sites = [s for s in footprint.one_per_city() if s.continent == continent]
    sites = sorted(sites, key=lambda s: -s.population_k)[:n_sites]
    # Servers start powered OFF: the placement decides which to activate, which is
    # where the carbon-energy trade-off is most pronounced (activation base power).
    fleet = build_cdn_fleet(CDNFootprint(sites=tuple(sites)), servers_per_site=2,
                            accelerator_mix=("Orin Nano", "NVIDIA A2", "GTX 1080"),
                            powered_on=False, seed=seed)
    # Heterogeneity is anti-correlated with greenness: the greenest zones host the
    # fast-but-power-hungry GTX 1080s and the dirtiest zones the efficient Orin
    # Nanos. This is the regime where carbon-optimal and energy-optimal placements
    # genuinely diverge (the trade-off the paper's Section 6.4 studies).
    from repro.cluster.hardware import GTX_1080, NVIDIA_A2, ORIN_NANO
    zone_rank = {dc.zone_id: zone_catalog.get(dc.zone_id).annual_mean_intensity
                 for dc in fleet}
    ordered = sorted(zone_rank, key=zone_rank.get)
    tier_of = {z: (0 if i < len(ordered) / 3 else 1 if i < 2 * len(ordered) / 3 else 2)
               for i, z in enumerate(ordered)}
    tier_device = {0: GTX_1080, 1: NVIDIA_A2, 2: ORIN_NANO}
    for server in fleet.servers():
        server.accelerator = tier_device[tier_of[server.zone_id]]
    site_names = fleet.sites()
    cities = [catalog.get(n) for n in site_names]
    latency = build_latency_matrix(site_names, catalog.coordinates_array(site_names),
                                   countries=[c.state or c.country for c in cities])
    traces = SyntheticTraceGenerator(seed=seed).generate_set(
        zone_catalog.get(z) for z in sorted({dc.zone_id for dc in fleet}))
    carbon = CarbonIntensityService(traces=traces)
    apps_per_site = 1.0 if utilization == "low" else 6.0
    generator = ApplicationGenerator(
        sites=site_names,
        workload_mix={"EfficientNetB0": 0.4, "ResNet50": 0.4, "YOLOv4": 0.2},
        mean_arrivals_per_batch=apps_per_site * len(site_names),
        latency_slo_ms=20.0,
        request_rate_rps=20.0 if utilization == "high" else 5.0,
        duration_hours=24.0 * 30,
        seed=seed,
    )
    batch = generator.generate_batch(0, 0)
    return PlacementProblem.build(list(batch.applications), fleet.servers(), latency,
                                  carbon, hour=0, horizon_hours=24.0 * 30)


def run(seed: int = EXPERIMENT_SEED, alphas: tuple[float, ...] = ALPHAS,
        n_sites: int = 25, continent: str = "EU",
        utilizations: tuple[str, ...] = ("low", "high")) -> dict[str, object]:
    """Carbon and energy across the alpha sweep for low and high utilisation."""
    out: dict[str, object] = {"alphas": list(alphas), "scenarios": {}}
    for utilization in utilizations:
        problem = _build_problem(utilization, seed, n_sites, continent)
        baseline = LatencyAwarePolicy().timed_place(problem)
        validate_solution(baseline)
        carbons, energies = [], []
        # The low-utilisation instance is small enough for the exact solver; the
        # high-utilisation instance uses the greedy backend (CDN-scale behaviour).
        solver = "exact" if utilization == "low" else "greedy"
        for alpha in alphas:
            policy = CarbonEdgePolicy(alpha=alpha, solver=solver)
            solution = policy.timed_place(problem)
            validate_solution(solution)
            carbons.append(solution.total_carbon_g())
            energies.append(solution.total_energy_j())
        carbons_arr = np.array(carbons)
        energies_arr = np.array(energies)
        out["scenarios"][utilization] = {
            "carbon_g": carbons,
            "energy_j": energies,
            "baseline_carbon_g": baseline.total_carbon_g(),
            "baseline_energy_j": baseline.total_energy_j(),
            "savings_at_alpha0_pct": float(
                (baseline.total_carbon_g() - carbons_arr[0]) / baseline.total_carbon_g() * 100.0),
            "energy_ratio_alpha0_vs_alpha1": float(energies_arr[0] / energies_arr[-1])
            if energies_arr[-1] > 0 else float("inf"),
        }
    return out


def report(result: dict[str, object]) -> str:
    """Render the Figure 16 sweep rows."""
    parts = []
    for utilization, data in result["scenarios"].items():
        rows = []
        for alpha, carbon, energy in zip(result["alphas"], data["carbon_g"], data["energy_j"]):
            rows.append({"alpha": alpha, "carbon_kg": round(carbon / 1e3, 2),
                         "energy_MJ": round(energy / 1e6, 2)})
        parts.append(format_table(
            rows,
            title=f"Figure 16 ({utilization} utilisation): savings at alpha=0: "
                  f"{data['savings_at_alpha0_pct']:.1f}%, energy(alpha=0)/energy(alpha=1): "
                  f"{data['energy_ratio_alpha0_vs_alpha1']:.2f}x"))
    return "\n\n".join(parts)


def compute(spec: ExperimentSpec, ctx: RunContext) -> dict[str, object]:
    """Registry entry point: run this experiment with the resolved parameters."""
    return run(**ctx.params)


SPEC = register(ExperimentSpec(
    name="fig16",
    title="The carbon-energy trade-off (Equation 8 alpha sweep)",
    kind="figure",
    compute=compute,
    report=report,
    params=dict(seed=EXPERIMENT_SEED, alphas=ALPHAS, n_sites=25, continent="EU",
                utilizations=("low", "high")),
    smoke_params=dict(alphas=(0.0, 1.0), n_sites=8),
    # The alpha loop stays inside one unit (the per-scenario summary statistics
    # compare alpha endpoints); utilisation scenarios shard cleanly.
    sweep=(SweepAxis("utilizations"),),
    schema=("alphas", "scenarios"),
))


if __name__ == "__main__":
    print(report(run()))
