"""Serving soak: a bounded online-service run plus its replay-parity gate.

Not a figure of the paper — an operational artifact of the online serving
mode (:mod:`repro.serving`). One run does two things:

1. **Soak** — drives :class:`~repro.serving.service.PlacementService` with a
   seeded :class:`~repro.serving.loadgen.LoadGenerator` stream for a bounded
   simulated duration and reports the versioned
   :class:`~repro.serving.metrics.ServingMetrics` artifact: sustained
   placements/sec, p50/p99 decision latency, warm re-solve vs full-solve
   counts, feed health, carbon per request.
2. **Parity** — byte-diffs the service's replay-mode decisions against the
   batch :class:`~repro.simulator.cdn.CDNSimulator` over the same scenario
   (:func:`repro.serving.parity.check_replay_parity`), so the soak artifact
   self-certifies the correctness anchor it rides on.

Wall-clock latencies make the artifact machine-dependent (``deterministic``
is ``False``), but the embedded ``decision_digest`` and the parity block are
pure functions of the parameters.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments.common import EXPERIMENT_SEED
from repro.experiments.registry import ExperimentSpec, RunContext, register
from repro.serving.loadgen import LoadGenerator
from repro.serving.parity import check_replay_parity
from repro.serving.service import PlacementService, ServingConfig
from repro.simulator.scenario import CDNScenario


def run(seed: int = EXPERIMENT_SEED, continent: str = "EU",
        max_sites: int | None = 10, apps_per_site_per_epoch: float = 6.0,
        n_epochs: int = 1, epoch_shards: int = 1,
        rate_per_s: float = 0.02, shape: str = "poisson",
        mean_lifetime_s: float = 5400.0,
        duration_s: float = 6 * 3600.0,
        batch_interval_s: float = 300.0,
        resolve_interval_s: float = 3600.0,
        max_events: int | None = None) -> dict[str, object]:
    """One bounded soak of the serving loop plus the replay-parity gate.

    The scenario parameters double as the parity scenario (its epochs are
    what the replay mode re-derives as events); the load parameters shape the
    live soak stream.
    """
    scenario = CDNScenario(
        continent=continent,
        n_epochs=n_epochs,
        apps_per_site_per_epoch=apps_per_site_per_epoch,
        max_sites=max_sites,
        epoch_shards=epoch_shards,
        seed=seed,
    )
    config = ServingConfig(batch_interval_s=batch_interval_s,
                           resolve_interval_s=resolve_interval_s,
                           horizon_hours=float(scenario.hours_per_epoch))
    service = PlacementService.from_scenario(scenario, config=config)
    load = LoadGenerator(sites=service.simulator.fleet.sites(),
                         rate_per_s=rate_per_s, shape=shape,
                         mean_lifetime_s=mean_lifetime_s, seed=seed)
    report = service.run_live(load, duration_s=duration_s,
                              max_events=max_events)
    parity = check_replay_parity(scenario)
    return {
        "serving": report.metrics.to_artifact(),
        "parity": {
            "ok": parity.ok,
            "policies": {check.policy: check.matches
                         for check in parity.checks},
        },
    }


def report(result: dict[str, object]) -> str:
    """Render the soak summary and the parity verdict."""
    serving = result["serving"]
    counters, latency = serving["counters"], serving["latency_ms"]
    rows = [{
        "events": counters["events"],
        "placements": counters["placements"],
        "batch_solves": counters["batch_solves"],
        "warm_resolves": counters["warm_resolves"],
        "p50_ms": round(latency["p50"], 3),
        "p99_ms": round(latency["p99"], 3),
        "placements_per_s": round(serving["throughput"]["placements_per_s"], 1),
        "parity": "OK" if result["parity"]["ok"] else "MISMATCH",
    }]
    return format_table(rows, title="Serving soak: bounded online-service run "
                                    "(replay parity gates the decisions)")


def compute(spec: ExperimentSpec, ctx: RunContext) -> dict[str, object]:
    """Registry entry point: run this experiment with the resolved parameters."""
    return run(**ctx.params)


SPEC = register(ExperimentSpec(
    name="serving_soak",
    title="Online serving soak with replay-parity gate",
    kind="service",
    compute=compute,
    report=report,
    params=dict(seed=EXPERIMENT_SEED, continent="EU", max_sites=10,
                apps_per_site_per_epoch=6.0, n_epochs=1, epoch_shards=1,
                rate_per_s=0.02, shape="poisson", mean_lifetime_s=5400.0,
                duration_s=6 * 3600.0, batch_interval_s=300.0,
                resolve_interval_s=3600.0, max_events=None),
    smoke_params=dict(max_sites=6, duration_s=2 * 3600.0, rate_per_s=0.01),
    schema=("serving", "parity"),
    # Wall-clock decision latencies make the artifact machine-dependent;
    # the embedded decision digest and parity block stay deterministic.
    deterministic=False,
))


if __name__ == "__main__":
    print(report(run()))
