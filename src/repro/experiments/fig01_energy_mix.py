"""Figure 1: energy mix and carbon intensity of four reference regions.

Figure 1a stacks the generation mix (hydro / solar / wind / nuclear / fossil)
of Ontario, California, New York, and Poland; Figure 1b plots their hourly
carbon intensity over three days in July. The paper's qualitative message —
Ontario far below the rest, Poland far above, California dipping mid-day due to
solar — is what the reproduction checks.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_series, format_table
from repro.carbon.synthetic import SyntheticTraceGenerator
from repro.datasets.electricity_maps import default_zone_catalog
from repro.datasets.regions import FIGURE1_ZONES
from repro.experiments.common import EXPERIMENT_SEED
from repro.experiments.registry import ExperimentSpec, RunContext, register

#: Hour-of-year at which the three-day window starts (July 15th, 00:00).
JULY_15_HOUR: int = (31 + 28 + 31 + 30 + 31 + 30 + 14) * 24


def run(seed: int = EXPERIMENT_SEED, n_days: int = 3) -> dict[str, object]:
    """Generate the Figure 1 data: per-zone energy mixes and 3-day intensity series."""
    if n_days <= 0:
        raise ValueError("n_days must be positive")
    catalog = default_zone_catalog()
    generator = SyntheticTraceGenerator(seed=seed)
    mixes: dict[str, dict[str, float]] = {}
    series: dict[str, np.ndarray] = {}
    means: dict[str, float] = {}
    for zone_id in FIGURE1_ZONES:
        spec = catalog.get(zone_id)
        mixes[zone_id] = spec.grouped_mix()
        trace = generator.generate(spec)
        series[zone_id] = trace.window(JULY_15_HOUR, n_days * 24)
        means[zone_id] = trace.mean()
    return {"mixes": mixes, "series": series, "means": means, "zones": list(FIGURE1_ZONES)}


def report(result: dict[str, object]) -> str:
    """Render the Figure 1 rows as text."""
    mix_rows = [{"zone": z, **{k: round(v, 3) for k, v in result["mixes"][z].items()}}
                for z in result["zones"]]
    mean_rows = [{"zone": z, "mean_intensity_g_per_kwh": round(result["means"][z], 1)}
                 for z in result["zones"]]
    parts = [
        format_table(mix_rows, title="Figure 1a: energy source ratios"),
        format_table(mean_rows, title="Figure 1b: mean carbon intensity"),
        format_series({z: result["series"][z][:24] for z in result["zones"]},
                      title="Figure 1b: first 24 h of the 3-day window (g CO2eq/kWh)"),
    ]
    return "\n\n".join(parts)


def compute(spec: ExperimentSpec, ctx: RunContext) -> dict[str, object]:
    """Registry entry point: run this experiment with the resolved parameters."""
    return run(**ctx.params)


SPEC = register(ExperimentSpec(
    name="fig01",
    title="Energy mix and carbon intensity of four reference regions",
    kind="figure",
    compute=compute,
    report=report,
    params=dict(seed=EXPERIMENT_SEED, n_days=3),
    smoke_params=dict(n_days=1),
    schema=("mixes", "series", "means", "zones"),
))


if __name__ == "__main__":
    print(report(run()))
