"""Figure 10: aggregate emissions and latency overheads per region and workload.

The paper runs the CPU-based application ("Sci") and the GPU-based ResNet50
serving application on the Florida and Central-EU testbeds for 24 hours and
reports: total emissions per policy (Latency-aware vs CarbonEdge), the
resulting savings (39.4% in Florida, 78.7% in Central EU), and the round-trip
response-time increases (6.6 ms and 10.5 ms).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.policies.carbon_edge import CarbonEdgePolicy
from repro.core.policies.latency_aware import LatencyAwarePolicy
from repro.datasets.regions import CENTRAL_EU, FLORIDA
from repro.experiments.common import EXPERIMENT_SEED
from repro.experiments.fig08_florida import DEFAULT_START_HOUR
from repro.experiments.registry import ExperimentSpec, RunContext, register
from repro.testbed.emulation import build_testbed, run_testbed_experiment

#: Workloads evaluated (CPU pipeline + GPU model serving).
WORKLOADS: tuple[str, ...] = ("Sci", "ResNet50")


def run(seed: int = EXPERIMENT_SEED, hours: int = 24,
        start_hour: int = DEFAULT_START_HOUR,
        workloads: tuple[str, ...] = WORKLOADS) -> dict[str, object]:
    """Per-region, per-workload emissions and latency increases for both policies."""
    rows = []
    savings_by_region: dict[str, list[float]] = {}
    latency_increase_by_region: dict[str, list[float]] = {}
    for region in (FLORIDA, CENTRAL_EU):
        testbed = build_testbed(region, seed=seed)
        for workload in workloads:
            runs = {}
            for policy in (LatencyAwarePolicy(), CarbonEdgePolicy()):
                runs[policy.name] = run_testbed_experiment(
                    testbed, policy, workload=workload, hours=hours, start_hour=start_hour)
            base = runs["Latency-aware"]
            ce = runs["CarbonEdge"]
            saving = (base.total_emissions_g - ce.total_emissions_g) / base.total_emissions_g * 100.0
            rt_increase = ce.mean_response_ms() - base.mean_response_ms()
            rows.append({
                "region": region.name,
                "workload": workload,
                "latency_aware_g": base.total_emissions_g,
                "carbon_edge_g": ce.total_emissions_g,
                "savings_pct": saving,
                "response_increase_ms": rt_increase,
            })
            savings_by_region.setdefault(region.name, []).append(saving)
            latency_increase_by_region.setdefault(region.name, []).append(rt_increase)
    summary = {
        region: {
            "savings_pct": float(np.mean(savings_by_region[region])),
            "response_increase_ms": float(np.mean(latency_increase_by_region[region])),
        }
        for region in savings_by_region
    }
    return {"rows": rows, "summary": summary}


def report(result: dict[str, object]) -> str:
    """Render the Figure 10 rows and region summary."""
    parts = [format_table(
        [{k: (round(v, 1) if isinstance(v, float) else v) for k, v in row.items()}
         for row in result["rows"]],
        title="Figure 10: regional emissions and latency overheads")]
    summary_rows = [{"region": r, "savings_pct": round(s["savings_pct"], 1),
                     "response_increase_ms": round(s["response_increase_ms"], 1)}
                    for r, s in result["summary"].items()]
    parts.append(format_table(
        summary_rows,
        title="Summary (paper: 39.4% / 6.6 ms Florida, 78.7% / 10.5 ms Central EU)"))
    return "\n\n".join(parts)


def compute(spec: ExperimentSpec, ctx: RunContext) -> dict[str, object]:
    """Registry entry point: run this experiment with the resolved parameters."""
    return run(**ctx.params)


SPEC = register(ExperimentSpec(
    name="fig10",
    title="Aggregate emissions and latency overheads per region and workload",
    kind="figure",
    compute=compute,
    report=report,
    params=dict(seed=EXPERIMENT_SEED, hours=24, start_hour=DEFAULT_START_HOUR,
                workloads=WORKLOADS),
    smoke_params=dict(hours=6, workloads=("ResNet50",)),
    schema=("rows", "summary"),
))


if __name__ == "__main__":
    print(report(run()))
