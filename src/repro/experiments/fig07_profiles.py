"""Figure 7: energy, GPU memory, and inference time of the ML workloads per device.

The paper highlights a ~45x energy spread across models on one device, a ~2x
spread across devices for one model, memory footprints of a few hundred MB, and
inference times from a few to a few tens of milliseconds. The runner returns
the full profile table and the two spread statistics.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments.registry import ExperimentSpec, RunContext, register
from repro.workloads.profiles import (
    DEVICE_NAMES,
    MODEL_NAMES,
    energy_spread_across_devices,
    energy_spread_across_models,
    get_profile,
)


def run() -> dict[str, object]:
    """The Figure 7 profile table plus the paper's spread statistics."""
    rows = []
    for model in MODEL_NAMES:
        for device in DEVICE_NAMES:
            profile = get_profile(model, device)
            rows.append({
                "model": model,
                "device": device,
                "energy_j": profile.energy_per_request_j,
                "gpu_memory_mb": profile.gpu_memory_mb,
                "inference_ms": profile.latency_ms,
            })
    return {
        "rows": rows,
        "energy_spread_across_models": {d: energy_spread_across_models(d) for d in DEVICE_NAMES},
        "energy_spread_across_devices": {m: energy_spread_across_devices(m) for m in MODEL_NAMES},
    }


def report(result: dict[str, object]) -> str:
    """Render the Figure 7 table."""
    parts = [format_table(result["rows"], title="Figure 7: workload profiles")]
    spread_rows = [{"device": d, "across_model_energy_spread_x": round(v, 1)}
                   for d, v in result["energy_spread_across_models"].items()]
    parts.append(format_table(spread_rows, title="Energy spread across models (paper: ~45x)"))
    device_rows = [{"model": m, "across_device_energy_spread_x": round(v, 1)}
                   for m, v in result["energy_spread_across_devices"].items()]
    parts.append(format_table(device_rows, title="Energy spread across devices (paper: ~2x)"))
    return "\n\n".join(parts)


def compute(spec: ExperimentSpec, ctx: RunContext) -> dict[str, object]:
    """Registry entry point: run this experiment with the resolved parameters."""
    return run(**ctx.params)


SPEC = register(ExperimentSpec(
    name="fig07",
    title="Energy, GPU memory, and inference time of the ML workload profiles",
    kind="figure",
    compute=compute,
    report=report,
    schema=("rows", "energy_spread_across_models", "energy_spread_across_devices"),
))


if __name__ == "__main__":
    print(report(run()))
