"""Shared helpers for the experiment runners.

Trace generation for a full year is the dominant cost of several experiments,
so the helpers here cache generated trace sets, latency matrices, and CDN
footprints within the process.

Every cache is keyed on *normalised explicit* arguments: the public functions
resolve defaults (``seed=None`` -> :data:`EXPERIMENT_SEED`) and coerce types
before touching the memoised builders, so ``region_traces("Florida")``,
``region_traces("Florida", seed=7)`` and ``region_traces("Florida", 7, 8760)``
all hit the same entry. (The previous arrangement baked ``EXPERIMENT_SEED``
into ``lru_cache`` defaults, so spec-level seed overrides silently created
duplicate entries.) :func:`clear_caches` drops everything — the sharded
scenario runner calls it between experiments so long ``run --all`` sessions
keep bounded memory.
"""

from __future__ import annotations

from functools import lru_cache

from repro.carbon.synthetic import SyntheticTraceGenerator
from repro.carbon.traces import TraceSet
from repro.datasets.akamai import CDNFootprint, build_cdn_footprint
from repro.datasets.cities import default_city_catalog
from repro.datasets.electricity_maps import default_zone_catalog
from repro.datasets.regions import MesoscaleRegion, region_by_name
from repro.network.latency import LatencyMatrix, build_latency_matrix

#: Default seed used by every experiment unless overridden.
EXPERIMENT_SEED: int = 7

#: Default trace horizon (one year of hourly samples).
DEFAULT_TRACE_HOURS: int = 8760


def _seed(seed: int | None) -> int:
    return EXPERIMENT_SEED if seed is None else int(seed)


def region_traces(region_name: str, seed: int | None = None,
                  n_hours: int = DEFAULT_TRACE_HOURS) -> TraceSet:
    """Year-long traces for the zones of one mesoscale region (cached)."""
    return _region_traces(str(region_name), _seed(seed), int(n_hours))


@lru_cache(maxsize=16)
def _region_traces(region_name: str, seed: int, n_hours: int) -> TraceSet:
    region = region_by_name(region_name)
    catalog = default_city_catalog()
    zone_catalog = default_zone_catalog()
    generator = SyntheticTraceGenerator(seed=seed, n_hours=n_hours)
    return generator.generate_set(zone_catalog.get(z) for z in region.zone_ids(catalog))


def zone_traces(zone_ids: tuple[str, ...], seed: int | None = None,
                n_hours: int = DEFAULT_TRACE_HOURS) -> TraceSet:
    """Year-long traces for an arbitrary tuple of zone ids (cached)."""
    return _zone_traces(tuple(zone_ids), _seed(seed), int(n_hours))


@lru_cache(maxsize=8)
def _zone_traces(zone_ids: tuple[str, ...], seed: int, n_hours: int) -> TraceSet:
    zone_catalog = default_zone_catalog()
    generator = SyntheticTraceGenerator(seed=seed, n_hours=n_hours)
    return generator.generate_set(zone_catalog.get(z) for z in zone_ids)


def region_latency(region_name: str) -> LatencyMatrix:
    """Pairwise one-way latency matrix over one region's cities (cached)."""
    return _region_latency(str(region_name))


@lru_cache(maxsize=8)
def _region_latency(region_name: str) -> LatencyMatrix:
    region = region_by_name(region_name)
    catalog = default_city_catalog()
    cities = region.cities(catalog)
    names = [c.name for c in cities]
    return build_latency_matrix(names, catalog.coordinates_array(names),
                                countries=[c.state or c.country for c in cities])


def cdn_footprint(seed: int | None = None, n_sites: int = 496) -> CDNFootprint:
    """The synthetic CDN footprint (cached)."""
    return _cdn_footprint(_seed(seed), int(n_sites))


@lru_cache(maxsize=4)
def _cdn_footprint(seed: int, n_sites: int) -> CDNFootprint:
    return build_cdn_footprint(n_sites=n_sites, seed=seed)


def footprint_traces(seed: int | None = None, n_sites: int = 496,
                     n_hours: int = DEFAULT_TRACE_HOURS) -> TraceSet:
    """Year-long traces for every zone covered by the CDN footprint (cached)."""
    return _footprint_traces(_seed(seed), int(n_sites), int(n_hours))


@lru_cache(maxsize=4)
def _footprint_traces(seed: int, n_sites: int, n_hours: int) -> TraceSet:
    footprint = _cdn_footprint(seed, n_sites)
    zone_catalog = default_zone_catalog()
    generator = SyntheticTraceGenerator(seed=seed, n_hours=n_hours)
    return generator.generate_set(zone_catalog.get(z) for z in footprint.zone_ids())


#: The memoised builders, in one place so they can be cleared together.
_CACHES = (_region_traces, _zone_traces, _region_latency, _cdn_footprint,
           _footprint_traces)


def clear_caches() -> None:
    """Drop every experiment-level cache (traces, latencies, footprints).

    Also clears the CDN simulator's scenario-substrate cache and shuts down
    the solver's persistent shard-dispatch pool (idle worker threads are not
    worth keeping between experiments; the next sharded solve transparently
    re-creates it). The sharded runner calls this in each worker process
    when it moves from one experiment's work units to another's, bounding
    resident memory across a ``run --all`` session without giving up
    within-experiment reuse.
    """
    for cache in _CACHES:
        cache.cache_clear()
    from repro.simulator.cdn import clear_substrate_cache
    from repro.solver.dispatch import shutdown_dispatch_pool
    clear_substrate_cache()
    shutdown_dispatch_pool()


def region(name: str) -> MesoscaleRegion:
    """Shorthand for :func:`repro.datasets.regions.region_by_name`."""
    return region_by_name(name)
