"""Shared helpers for the experiment runners.

Trace generation for a full year is the dominant cost of several experiments,
so the helpers here cache generated trace sets, latency matrices, and CDN
footprints per (seed, key) within the process.
"""

from __future__ import annotations

from functools import lru_cache

from repro.carbon.synthetic import SyntheticTraceGenerator
from repro.carbon.traces import TraceSet
from repro.datasets.akamai import CDNFootprint, build_cdn_footprint
from repro.datasets.cities import default_city_catalog
from repro.datasets.electricity_maps import default_zone_catalog
from repro.datasets.regions import MesoscaleRegion, region_by_name
from repro.network.latency import LatencyMatrix, build_latency_matrix

#: Default seed used by every experiment unless overridden.
EXPERIMENT_SEED: int = 7


@lru_cache(maxsize=16)
def region_traces(region_name: str, seed: int = EXPERIMENT_SEED,
                  n_hours: int = 8760) -> TraceSet:
    """Year-long traces for the zones of one mesoscale region (cached)."""
    region = region_by_name(region_name)
    catalog = default_city_catalog()
    zone_catalog = default_zone_catalog()
    generator = SyntheticTraceGenerator(seed=seed, n_hours=n_hours)
    return generator.generate_set(zone_catalog.get(z) for z in region.zone_ids(catalog))


@lru_cache(maxsize=8)
def zone_traces(zone_ids: tuple[str, ...], seed: int = EXPERIMENT_SEED,
                n_hours: int = 8760) -> TraceSet:
    """Year-long traces for an arbitrary tuple of zone ids (cached)."""
    zone_catalog = default_zone_catalog()
    generator = SyntheticTraceGenerator(seed=seed, n_hours=n_hours)
    return generator.generate_set(zone_catalog.get(z) for z in zone_ids)


@lru_cache(maxsize=8)
def region_latency(region_name: str) -> LatencyMatrix:
    """Pairwise one-way latency matrix over one region's cities (cached)."""
    region = region_by_name(region_name)
    catalog = default_city_catalog()
    cities = region.cities(catalog)
    names = [c.name for c in cities]
    return build_latency_matrix(names, catalog.coordinates_array(names),
                                countries=[c.state or c.country for c in cities])


@lru_cache(maxsize=4)
def cdn_footprint(seed: int = EXPERIMENT_SEED, n_sites: int = 496) -> CDNFootprint:
    """The synthetic CDN footprint (cached)."""
    return build_cdn_footprint(n_sites=n_sites, seed=seed)


@lru_cache(maxsize=4)
def footprint_traces(seed: int = EXPERIMENT_SEED, n_sites: int = 496) -> TraceSet:
    """Year-long traces for every zone covered by the CDN footprint (cached)."""
    footprint = cdn_footprint(seed=seed, n_sites=n_sites)
    zone_catalog = default_zone_catalog()
    generator = SyntheticTraceGenerator(seed=seed)
    return generator.generate_set(zone_catalog.get(z) for z in footprint.zone_ids())


def region(name: str) -> MesoscaleRegion:
    """Shorthand for :func:`repro.datasets.regions.region_by_name`."""
    return region_by_name(name)
